// Navigability study: the paper's headline contrast in one program.
//
//   ./navigability_study [scale] [seed]
//
// Kleinberg's small-world grid at r = 2 is *navigable*: greedy routing
// with coordinates finds polylog paths. Random scale-free graphs are NOT:
// even the best local algorithm pays polynomial cost to find the newest
// vertex, despite the diameter being just as small. This example measures
// both on comparable sizes side by side.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "gen/kleinberg.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "search/kleinberg_routing.hpp"
#include "search/runner.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::graph::VertexId;

double mean_greedy_route(std::size_t L, std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  const sfs::gen::KleinbergGrid grid(L, sfs::gen::KleinbergParams{2.0, 1},
                                     rng);
  sfs::stats::Accumulator acc;
  for (int i = 0; i < 200; ++i) {
    const auto s =
        static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
    const auto t =
        static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
    acc.add(static_cast<double>(sfs::search::greedy_route(grid, s, t).steps));
  }
  return acc.mean();
}

double best_weak_cost(std::size_t n, std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  const auto g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  double best = 1e18;
  for (auto& searcher : sfs::search::weak_portfolio()) {
    sfs::rng::Rng search_rng(seed + 1);
    const auto r = sfs::search::run_weak(
        g, 0, static_cast<VertexId>(n - 1), *searcher, search_rng,
        sfs::search::RunBudget{.max_raw_requests = 50 * n});
    if (r.found) best = std::min(best, static_cast<double>(r.requests));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t scale =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  std::cout << "navigability_study: Kleinberg grid (r=2, navigable) vs "
               "Mori scale-free graph (non-searchable), matched sizes.\n\n";

  sfs::sim::Table t("local search cost vs n",
                    {"n", "Kleinberg greedy route (hops)",
                     "Mori best weak search (requests)", "sqrt(n)",
                     "log2(n)^2"});
  for (std::size_t i = 0; i < scale; ++i) {
    const std::size_t L = 16u << i;     // 16, 32, 64, 128...
    const std::size_t n = L * L;        // matched vertex count
    const double route = mean_greedy_route(L, seed + i);
    const double weak = best_weak_cost(n, seed + 100 + i);
    const double lg = std::log2(static_cast<double>(n));
    t.row()
        .integer(n)
        .num(route, 1)
        .num(weak, 1)
        .num(std::sqrt(static_cast<double>(n)), 1)
        .num(lg * lg, 1);
  }
  t.print(std::cout);

  std::cout << "\nReading: the Kleinberg column tracks log^2(n) (navigable); "
               "the Mori column tracks sqrt(n) (Theorem 1). Both graph "
               "families have O(log n) diameter — short paths exist in "
               "both, but only geographic structure makes them findable.\n";
  return 0;
}
