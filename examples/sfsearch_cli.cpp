// sfsearch_cli — command-line driver over the library's file format.
//
//   sfsearch_cli generate <model> <n> <out.graph> [seed]
//       model: mori[:p] | merged-mori[:p,m] | cf[:alpha] | ba[:m]
//              | config[:k] | er[:avg-degree]
//   sfsearch_cli stats <in.graph> [--json]
//       structural report: degrees, components, distances, power-law fit,
//       core decomposition, assortativity. --json emits one machine-
//       readable JSON object instead of the table (sim/json).
//   sfsearch_cli search <in.graph> <start> <target> [weak|strong]
//                [--policies a,b,c]
//       runs the portfolio from <start> (1-based paper ids); --policies
//       selects registered policies by name (default: the model's full
//       portfolio).
//   sfsearch_cli policies [--list|--json]
//       prints the policy registry (name, model, description); --json
//       emits one JSON object per policy (sim/json), matching
//       sfs_bench --list.
//   sfsearch_cli bound <p> <n>
//       prints the Theorem 1 lower-bound estimate for finding vertex n.
//   sfsearch_cli merge-checkpoints <out.csv> <in.csv> [<in.csv>...]
//       folds per-shard scaling checkpoints (sfs_bench --run e1 --large
//       --shard i/k --checkpoint shard_i.csv) into one checkpoint; point
//       an unsharded rerun at <out.csv> to replay the merged grid.
//
// Exit status: 0 on success, 1 on usage error, 2 on runtime failure.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/lower_bound.hpp"
#include "core/theory.hpp"
#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "graph/degree.hpp"
#include "graph/io.hpp"
#include "graph/structure.hpp"
#include "search/policy.hpp"
#include "search/runner.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "sim/scaling.hpp"
#include "sim/table.hpp"
#include "stats/powerlaw.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

int usage() {
  std::cerr
      << "usage:\n"
         "  sfsearch_cli generate <model> <n> <out.graph> [seed]\n"
         "      model: mori[:p] merged-mori[:p,m] cf[:alpha] ba[:m] "
         "config[:k] er[:avg-deg]\n"
         "  sfsearch_cli stats <in.graph> [--json]\n"
         "  sfsearch_cli search <in.graph> <start> <target> [weak|strong]"
         " [--policies a,b,c]\n"
         "  sfsearch_cli policies [--list|--json]\n"
         "  sfsearch_cli bound <p> <n>\n"
         "  sfsearch_cli merge-checkpoints <out.csv> <in.csv> "
         "[<in.csv>...]\n";
  return 1;
}

/// Splits "name:a,b" into the name and numeric parameters.
struct ModelSpec {
  std::string name;
  std::vector<double> params;
};

ModelSpec parse_model(const std::string& arg) {
  ModelSpec spec;
  const auto colon = arg.find(':');
  spec.name = arg.substr(0, colon);
  if (colon != std::string::npos) {
    std::string rest = arg.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
      const auto comma = rest.find(',', pos);
      const std::string tok = rest.substr(pos, comma - pos);
      spec.params.push_back(std::strtod(tok.c_str(), nullptr));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return spec;
}

double param(const ModelSpec& spec, std::size_t i, double fallback) {
  return i < spec.params.size() ? spec.params[i] : fallback;
}

int cmd_generate(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const ModelSpec spec = parse_model(args[0]);
  const std::size_t n = std::strtoull(args[1].c_str(), nullptr, 10);
  const std::string out = args[2];
  const std::uint64_t seed =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 1;
  Rng rng(seed);

  Graph g;
  if (spec.name == "mori") {
    g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{param(spec, 0, 0.5)},
                            rng);
  } else if (spec.name == "merged-mori") {
    g = sfs::gen::merged_mori_graph(
        n, static_cast<std::size_t>(param(spec, 1, 2)),
        sfs::gen::MoriParams{param(spec, 0, 0.5)}, rng);
  } else if (spec.name == "cf") {
    sfs::gen::CooperFriezeParams params;
    params.alpha = param(spec, 0, 0.5);
    g = sfs::gen::cooper_frieze(n, params, rng).graph;
  } else if (spec.name == "ba") {
    g = sfs::gen::barabasi_albert(
        n,
        sfs::gen::BarabasiAlbertParams{
            static_cast<std::size_t>(param(spec, 0, 2)), true},
        rng);
  } else if (spec.name == "config") {
    g = sfs::gen::power_law_configuration_graph(
        n, sfs::gen::PowerLawSequenceParams{param(spec, 0, 2.3), 1, 0},
        sfs::gen::ConfigModelOptions{false}, rng);
  } else if (spec.name == "er") {
    const double avg = param(spec, 0, 4.0);
    g = sfs::gen::erdos_renyi_gnp(n, avg / static_cast<double>(n), rng);
  } else {
    std::cerr << "unknown model: " << spec.name << "\n";
    return 1;
  }
  sfs::graph::save(out, g);
  std::cout << "wrote " << out << ": " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges (seed " << seed << ")\n";
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  const bool as_json = args.size() == 2;
  if (as_json && args[1] != "--json") return usage();
  const Graph g = sfs::graph::load(args[0]);
  Rng rng(1);

  sfs::sim::Table t("graph statistics: " + args[0], {"metric", "value"});
  sfs::sim::JsonObjectWriter json;
  json.str_field("graph", args[0]);
  t.row().cell("vertices").integer(g.num_vertices());
  json.int_field("vertices", g.num_vertices());
  t.row().cell("edges").integer(g.num_edges());
  json.int_field("edges", g.num_edges());
  const double mean_deg =
      sfs::graph::mean_degree(g, sfs::graph::DegreeKind::kUndirected);
  t.row().cell("mean degree").num(mean_deg, 3);
  json.num_field("mean_degree", mean_deg);
  const auto max_deg =
      sfs::graph::max_degree(g, sfs::graph::DegreeKind::kUndirected);
  t.row().cell("max degree").integer(max_deg);
  json.int_field("max_degree", max_deg);
  const auto comps = sfs::graph::connected_components(g);
  t.row().cell("components").integer(comps.count);
  json.int_field("components", comps.count);
  if (comps.count == 1 && g.num_vertices() > 1) {
    const auto st = sfs::graph::sample_distances(g, 8, rng);
    const auto diam = sfs::graph::pseudo_diameter(g);
    t.row().cell("mean distance (sampled)").num(st.mean_distance, 2);
    t.row().cell("pseudo-diameter").integer(diam);
    json.num_field("mean_distance_sampled", st.mean_distance);
    json.int_field("pseudo_diameter", diam);
  } else {
    json.null_field("mean_distance_sampled");
    json.null_field("pseudo_diameter");
  }
  const auto core = sfs::graph::core_decomposition(g);
  t.row().cell("degeneracy (max core)").integer(core.degeneracy);
  json.int_field("degeneracy", core.degeneracy);
  const double assort = sfs::graph::degree_assortativity(g);
  t.row().cell("degree assortativity").num(assort, 4);
  json.num_field("degree_assortativity", assort);
  const double age_corr = sfs::graph::age_degree_correlation(g);
  t.row().cell("age-degree correlation").num(age_corr, 4);
  json.num_field("age_degree_correlation", age_corr);

  // Power-law tail fit on positive degrees.
  std::vector<std::size_t> degrees;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) >= 1) degrees.push_back(g.degree(v));
  }
  bool have_fit = false;
  if (degrees.size() >= 50) {
    try {
      const auto fit = sfs::stats::fit_power_law_auto(degrees);
      t.row().cell("power-law alpha (auto xmin)").num(fit.alpha, 3);
      t.row().cell("power-law xmin").integer(fit.xmin);
      t.row().cell("power-law KS").num(fit.ks_distance, 4);
      json.num_field("powerlaw_alpha", fit.alpha);
      json.int_field("powerlaw_xmin", fit.xmin);
      json.num_field("powerlaw_ks", fit.ks_distance);
      have_fit = true;
    } catch (const std::exception&) {
      t.row().cell("power-law fit").cell("n/a (no viable tail)");
    }
  }
  if (!have_fit) {
    json.null_field("powerlaw_alpha");
    json.null_field("powerlaw_xmin");
    json.null_field("powerlaw_ks");
  }
  if (as_json) {
    std::cout << json.str() << "\n";
  } else {
    t.print(std::cout);
  }
  return 0;
}

int cmd_search(const std::vector<std::string>& args) {
  if (args.size() < 3) return usage();
  const Graph g = sfs::graph::load(args[0]);
  const std::size_t start_paper = std::strtoull(args[1].c_str(), nullptr, 10);
  const std::size_t target_paper =
      std::strtoull(args[2].c_str(), nullptr, 10);
  std::string model_arg = "weak";
  std::vector<std::string> policy_names;
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (args[i] == "--policies") {
      if (i + 1 >= args.size() ||
          !sfs::sim::parse_name_list(args[++i], policy_names)) {
        std::cerr << "--policies expects a comma-separated name list\n";
        return 1;
      }
    } else if (args[i] == "weak" || args[i] == "strong") {
      model_arg = args[i];
    } else {
      return usage();
    }
  }
  if (start_paper < 1 || start_paper > g.num_vertices() || target_paper < 1 ||
      target_paper > g.num_vertices()) {
    std::cerr << "start/target must be paper ids in [1, n]\n";
    return 1;
  }
  const auto start = static_cast<VertexId>(start_paper - 1);
  const auto target = static_cast<VertexId>(target_paper - 1);
  const auto model = model_arg == "weak" ? sfs::search::KnowledgeModel::kWeak
                                         : sfs::search::KnowledgeModel::kStrong;

  // Policy selection by registry name (empty = the model's full
  // portfolio), replacing the hard-coded portfolio list calls.
  const auto specs = sfs::search::resolve_policies(model, policy_names);
  sfs::sim::Table t("search " + std::to_string(start_paper) + " -> " +
                        std::to_string(target_paper) + " (" + model_arg + ")",
                    {"policy", "requests", "raw", "path len", "found"});
  for (const auto* spec : specs) {
    Rng rng(42);
    sfs::search::SearchResult r;
    if (model == sfs::search::KnowledgeModel::kWeak) {
      const auto policy = spec->make_weak();
      r = sfs::search::run_weak(
          g, start, target, *policy, rng,
          sfs::search::RunBudget{.max_raw_requests = 100 * g.num_vertices()});
    } else {
      const auto policy = spec->make_strong();
      r = sfs::search::run_strong(g, start, target, *policy, rng);
    }
    t.row()
        .cell(spec->name)
        .integer(r.requests)
        .integer(r.raw_requests)
        .integer(r.path_length)
        .cell(r.found ? "yes" : "no");
  }
  t.print(std::cout);
  return 0;
}

int cmd_policies(const std::vector<std::string>& args) {
  if (args.size() > 1) return usage();
  const bool as_json = args.size() == 1 && args[0] == "--json";
  if (!as_json && args.size() == 1 && args[0] != "--list") return usage();
  const auto specs = sfs::search::PolicyRegistry::instance().all();
  if (as_json) {
    // One JSON object per policy (JSONL), the machine-readable mirror of
    // the table below.
    for (const auto* spec : specs) {
      sfs::sim::JsonObjectWriter json;
      json.str_field("name", spec->name);
      json.str_field("model", std::string(sfs::search::model_name(spec->model)));
      json.str_field("description", spec->description);
      std::cout << json.str() << "\n";
    }
    return 0;
  }
  sfs::sim::Table t("registered search policies (" +
                        std::to_string(specs.size()) + ")",
                    {"name", "model", "description"});
  for (const auto* spec : specs) {
    t.row()
        .cell(spec->name)
        .cell(std::string(sfs::search::model_name(spec->model)))
        .cell(spec->description);
  }
  t.print(std::cout);
  std::cout << "\nselect with: sfsearch_cli search <graph> <s> <t> "
               "[weak|strong] --policies a,b  (or sfs_bench --policies)\n";
  return 0;
}

int cmd_bound(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const double p = std::strtod(args[0].c_str(), nullptr);
  const std::size_t n = std::strtoull(args[1].c_str(), nullptr, 10);
  const auto est = sfs::core::mori_lower_bound(p, n, 3000, 99);
  std::cout << "Theorem 1 (weak model), Mori p=" << p << ", target vertex "
            << n << ":\n  equivalent window (" << est.a << ", " << est.b
            << "], |V| = " << est.window_size << "\n  P(E_{a,b}) ~= "
            << est.event.probability << " (Lemma 3 floor "
            << sfs::core::theory::lemma3_bound(p) << ")\n  lower bound "
            << est.bound << " expected requests (closed-form floor "
            << est.theory_floor << ")\n";
  return 0;
}

int cmd_merge_checkpoints(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const std::string out = args[0];
  const std::vector<std::string> inputs(args.begin() + 1, args.end());
  const std::size_t cells = sfs::sim::merge_checkpoints(inputs, out);
  std::cout << "merged " << inputs.size() << " checkpoint(s) into " << out
            << ": " << cells << " distinct cell(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "search") return cmd_search(args);
    if (cmd == "policies") return cmd_policies(args);
    if (cmd == "bound") return cmd_bound(args);
    if (cmd == "merge-checkpoints") return cmd_merge_checkpoints(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
