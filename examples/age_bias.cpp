// Age bias: why the theorems target the NEWEST vertex.
//
//   ./age_bias [n] [seed]
//
// In evolving scale-free graphs, age and degree correlate: the oldest
// vertices are hubs every algorithm stumbles into, while the newest vertex
// is a leaf hidden among ~sqrt(n) statistical twins (Lemma 2). This example
// prints search cost as a function of target age, plus the degree/age
// profile that explains it.
#include <cstdlib>
#include <iostream>

#include "gen/mori.hpp"
#include "graph/degree.hpp"
#include "search/runner.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;

  sfs::rng::Rng rng(seed);
  const auto g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);

  std::cout << "age_bias: Mori tree, n=" << n << "\n\n";

  // Degree/age profile.
  sfs::sim::Table profile("degree by age decile",
                          {"paper-id range", "mean degree", "max degree"});
  const std::size_t bucket = n / 10;
  for (std::size_t d = 0; d < 10; ++d) {
    const std::size_t lo = d * bucket;
    const std::size_t hi = d == 9 ? n : (d + 1) * bucket;
    double sum = 0.0;
    std::size_t dmax = 0;
    for (std::size_t v = lo; v < hi; ++v) {
      const auto deg = g.degree(static_cast<sfs::graph::VertexId>(v));
      sum += static_cast<double>(deg);
      dmax = std::max(dmax, deg);
    }
    profile.row()
        .cell(std::to_string(lo + 1) + "-" + std::to_string(hi))
        .num(sum / static_cast<double>(hi - lo), 2)
        .integer(dmax);
  }
  profile.print(std::cout);

  // Search cost by target age (degree-greedy, from the middle-aged vertex
  // 2 so every row is comparable).
  std::cout << '\n';
  sfs::sim::Table cost("weak degree-greedy cost by target age",
                       {"target paper id", "requests", "found"});
  for (const std::size_t target :
       {std::size_t{1}, n / 8, n / 2, 7 * n / 8, n}) {
    auto greedy = sfs::search::make_degree_greedy_weak();
    sfs::rng::Rng search_rng(seed + target);
    const auto r = sfs::search::run_weak(
        g, 1, static_cast<sfs::graph::VertexId>(target - 1), *greedy,
        search_rng, sfs::search::RunBudget{.max_raw_requests = 100 * n});
    cost.row()
        .integer(target)
        .integer(r.requests)
        .cell(r.found ? "yes" : "no");
  }
  cost.print(std::cout);

  std::cout << "\nOld targets cost O(polylog); the newest costs "
               "Omega(sqrt(n)) — no labeling trick helps, because the last "
               "sqrt(n) vertices are probabilistically equivalent.\n";
  return 0;
}
