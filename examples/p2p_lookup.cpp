// P2P lookup scenario (the paper's motivating application): a
// Gnutella-like unstructured overlay, modeled as a power-law configuration
// graph, where a peer looks up content held by another peer.
//
//   ./p2p_lookup [n] [k] [seed]
//
// Compares three deployable strategies end to end:
//   1. degree-greedy search (Adamic et al.)        — no replication
//   2. random-walk search                          — no replication
//   3. percolation search (Sarshar et al.)         — with replication
#include <cstdlib>
#include <iostream>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "search/percolation.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const double k = argc > 2 ? std::strtod(argv[2], nullptr) : 2.3;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  std::cout << "p2p_lookup: power-law overlay, n=" << n << ", exponent k="
            << k << "\n";

  sfs::rng::Rng rng(seed);
  const auto full = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{k, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  const auto g = sfs::graph::largest_component(full).graph;
  std::cout << "overlay (largest component): " << g.num_vertices()
            << " peers, " << g.num_edges() << " links\n\n";

  constexpr std::size_t kLookups = 60;
  sfs::stats::Accumulator greedy_cost;
  sfs::stats::Accumulator walk_cost;
  sfs::stats::Accumulator perc_cost;
  std::size_t walk_found = 0;
  std::size_t perc_found = 0;

  for (std::uint64_t rep = 0; rep < kLookups; ++rep) {
    sfs::rng::Rng lookup_rng(sfs::rng::derive_seed(seed, rep));
    const auto owner = static_cast<sfs::graph::VertexId>(
        lookup_rng.uniform_index(g.num_vertices()));
    auto requester = owner;
    while (requester == owner) {
      requester = static_cast<sfs::graph::VertexId>(
          lookup_rng.uniform_index(g.num_vertices()));
    }

    auto greedy = sfs::search::make_degree_greedy_strong();
    const auto gr =
        sfs::search::run_strong(g, requester, owner, *greedy, lookup_rng);
    greedy_cost.add(static_cast<double>(gr.requests));

    sfs::search::RandomWalkWeak walk;
    const auto wr = sfs::search::run_weak(
        g, requester, owner, walk, lookup_rng,
        sfs::search::RunBudget{.max_raw_requests = 50 * n});
    walk_cost.add(static_cast<double>(wr.raw_requests));
    if (wr.found) ++walk_found;

    const auto pr = sfs::search::percolation_search(
        g, owner, requester, sfs::search::PercolationParams{60, 15, 0.12},
        lookup_rng);
    perc_cost.add(static_cast<double>(pr.messages));
    if (pr.found) ++perc_found;
  }

  sfs::sim::Table t("lookup strategies over " + std::to_string(kLookups) +
                        " random (owner, requester) pairs",
                    {"strategy", "mean cost", "unit", "success"});
  t.row()
      .cell("degree-greedy (Adamic)")
      .num(greedy_cost.mean(), 0)
      .cell("peers visited")
      .num(1.0, 2);
  t.row()
      .cell("random walk")
      .num(walk_cost.mean(), 0)
      .cell("hops")
      .num(static_cast<double>(walk_found) / kLookups, 2);
  t.row()
      .cell("percolation search (Sarshar)")
      .num(perc_cost.mean(), 0)
      .cell("messages")
      .num(static_cast<double>(perc_found) / kLookups, 2);
  t.print(std::cout);

  std::cout << "\nTakeaway: high-degree greedy beats blind walking "
               "(n^{2(1-2/k)} vs n^{3(1-2/k)}), and replication + "
               "percolation trades storage for per-query traffic.\n";
  return 0;
}
