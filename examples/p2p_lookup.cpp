// P2P lookup scenario (the paper's motivating application): a
// Gnutella-like unstructured overlay, modeled as a power-law configuration
// graph, where peers look up content held by other peers.
//
//   ./p2p_lookup [n] [k] [seed]
//
// The overlay is long-lived and the lookups are many — exactly the regime
// search::QueryEngine exists for: the registered search policies run as
// engine sessions over ONE fixed graph, each serving the same batch of
// lookups (paired comparison, deterministic per-query RNG streams, batch
// fan-out over the shared pool). Percolation search keeps its own loop —
// replication+broadcast is a different primitive, not a registered
// searcher policy.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "rng/stream_audit.hpp"
#include "search/percolation.hpp"
#include "search/query_engine.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const double k = argc > 2 ? std::strtod(argv[2], nullptr) : 2.3;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  std::cout << "p2p_lookup: power-law overlay, n=" << n << ", exponent k="
            << k << "\n";

  sfs::rng::Rng rng(seed);
  const auto full = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{k, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  const auto g = sfs::graph::largest_component(full).graph;
  const std::size_t peers = g.num_vertices();
  std::cout << "overlay (largest component): " << peers << " peers, "
            << g.num_edges() << " links\n\n";

  // One batch of (requester -> owner) lookups, shared by every strategy.
  constexpr std::size_t kLookups = 60;
  std::vector<sfs::search::Query> lookups(kLookups);
  for (std::uint64_t rep = 0; rep < kLookups; ++rep) {
    sfs::rng::Rng lookup_rng(sfs::rng::derive_seed(seed, rep));
    auto& q = lookups[rep];
    q.target = static_cast<sfs::graph::VertexId>(
        lookup_rng.uniform_index(peers));  // the content owner
    do {
      q.start = static_cast<sfs::graph::VertexId>(
          lookup_rng.uniform_index(peers));
    } while (q.start == q.target);
  }

  sfs::sim::Table t("lookup strategies over " + std::to_string(kLookups) +
                        " random (owner, requester) pairs",
                    {"strategy", "mean cost", "unit", "success"});

  // Deployable searcher policies as QueryEngine sessions over the fixed
  // overlay; the batch fans out over the shared pool (threads=0) with
  // results bit-identical to a sequential run.
  struct EngineRow {
    std::string policy;
    std::string label;
    std::string unit;
    bool raw_cost;  // walks are traditionally measured in raw steps
  };
  const std::vector<EngineRow> rows = {
      {"degree-greedy-strong", "degree-greedy (Adamic)", "peers visited",
       false},
      {"random-walk", "random walk", "hops", true},
  };
  for (const auto& row : rows) {
    sfs::search::QueryEngineOptions options;
    options.seed = sfs::rng::derive_seed(seed, 0xE26);
    options.budget.max_raw_requests = 50 * peers;
    sfs::search::QueryEngine engine(g, row.policy, options);
    const auto results = engine.run_batch(lookups, /*threads=*/0);

    sfs::stats::Accumulator cost;
    std::size_t found = 0;
    for (const auto& r : results) {
      cost.add(static_cast<double>(row.raw_cost ? r.raw_requests
                                                : r.requests));
      if (r.found) ++found;
    }
    t.row()
        .cell(row.label)
        .num(cost.mean(), 0)
        .cell(row.unit)
        .num(static_cast<double>(found) / kLookups, 2);
  }

  // Percolation search (Sarshar et al.): replication + broadcast, measured
  // in messages.
  sfs::stats::Accumulator perc_cost;
  std::size_t perc_found = 0;
  for (std::uint64_t rep = 0; rep < kLookups; ++rep) {
    // A distinct stream per rep: derive_seed(seed, rep) already fed the
    // endpoint draws above, and replaying it here would correlate the
    // percolation coin flips with the endpoint choice bit for bit.
    sfs::rng::Rng lookup_rng(
        sfs::rng::audited_stream_seed(seed, sfs::rng::mix64(0x9e6c), rep));
    const auto pr = sfs::search::percolation_search(
        g, lookups[rep].target, lookups[rep].start,
        sfs::search::PercolationParams{60, 15, 0.12}, lookup_rng);
    perc_cost.add(static_cast<double>(pr.messages));
    if (pr.found) ++perc_found;
  }
  t.row()
      .cell("percolation search (Sarshar)")
      .num(perc_cost.mean(), 0)
      .cell("messages")
      .num(static_cast<double>(perc_found) / kLookups, 2);
  t.print(std::cout);

  std::cout << "\nTakeaway: high-degree greedy beats blind walking "
               "(n^{2(1-2/k)} vs n^{3(1-2/k)}), and replication + "
               "percolation trades storage for per-query traffic.\n";
  return 0;
}
