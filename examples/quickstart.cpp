// Quickstart: build a scale-free graph, search it under the paper's weak
// local-knowledge model, and compare what you paid against what was
// theoretically possible.
//
//   ./quickstart [n] [p] [seed]
//
// Walks through the core API: generator -> LocalView/searcher -> result,
// plus the Lemma-1 lower bound for context.
#include <cstdlib>
#include <iostream>

#include "core/lower_bound.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "search/runner.hpp"
#include "search/weak_algorithms.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const double p = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  std::cout << "sfsearch quickstart: Mori tree, n=" << n << ", p=" << p
            << ", seed=" << seed << "\n\n";

  // 1. Generate a Móri random tree (mixed preferential/uniform attachment).
  sfs::rng::Rng rng(seed);
  const sfs::graph::Graph g =
      sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
  std::cout << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges, diameter ~ "
            << sfs::graph::pseudo_diameter(g) << " (logarithmic)\n";

  // 2. Search for the newest vertex (paper id n) from the oldest (id 1)
  //    with every portfolio policy under the weak knowledge model.
  const auto target = static_cast<sfs::graph::VertexId>(n - 1);
  std::cout << "\nweak-model search for vertex " << n << " from vertex 1:\n";
  for (auto& searcher : sfs::search::weak_portfolio()) {
    sfs::rng::Rng search_rng(seed + 1);
    const auto r = sfs::search::run_weak(
        g, 0, target, *searcher, search_rng,
        sfs::search::RunBudget{.max_raw_requests = 100 * n});
    std::cout << "  " << searcher->name() << ": "
              << (r.found ? "found" : "NOT FOUND") << " after " << r.requests
              << " requests (path length " << r.path_length << ")\n";
  }

  // 3. Context: the paper's lower bound says nobody can do well here.
  const auto bound = sfs::core::mori_lower_bound(p, n, 2000, seed);
  std::cout << "\nTheorem 1 context: vertex " << n << " sits in a window of "
            << bound.window_size
            << " equivalent vertices (P(E) ~= " << bound.event.probability
            << "), so ANY weak algorithm needs >= " << bound.bound
            << " expected requests — Omega(sqrt(n)).\n";
  return 0;
}
