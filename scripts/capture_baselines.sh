#!/usr/bin/env bash
# Regenerates every committed BENCH_*.json baseline in one deterministic
# command. Run from the repo root after a deliberate perf change, then
# commit the refreshed files alongside the change that explains them.
#
#   scripts/capture_baselines.sh [build-dir]
#
# Baselines are captured in --quick mode so CI's bench-baseline step can
# compare like against like on a small time budget; full-length numbers
# belong in docs/PERF.md tables, not in these files. SFS_RNG_AUDIT=1 makes
# every capture double as a stream-plan audit, and SFS_THREADS=4 pins the
# pool width so pool_qps means the same thing across hosts with different
# core counts.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH="${BUILD_DIR}/sfs_bench"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not found or not executable." >&2
  echo "Build it first: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

export SFS_RNG_AUDIT=1
export SFS_THREADS=4

capture() {
  local run="$1" out="$2"
  echo "== capturing ${out} (sfs_bench --run ${run} --quick)"
  "${BENCH}" --run "${run}" --quick --json "${out}" > /dev/null
  # Validate against the same BENCH_SCHEMA table the CI baseline guard
  # uses (one source of truth — see scripts/check_baselines.py).
  python3 scripts/check_baselines.py --schema-only "${out}" --bench "${run}"
  echo "   $(wc -l < "${out}") records"
}

capture m2 BENCH_m2.json
capture m5_query_engine BENCH_m5.json
capture m6_compression BENCH_m6.json

echo "done. Review the diffs and commit the refreshed baselines:"
echo "  git diff --stat BENCH_m2.json BENCH_m5.json BENCH_m6.json"
