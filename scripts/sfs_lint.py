#!/usr/bin/env python3
"""sfs_lint: determinism & API-invariant static analysis for sfsearch.

The repo's credibility rests on bit-identity invariants (seq==parallel
portfolios, frozen kLegacy streams, audited seed derivation, byte-stable
BENCH_JSON artifacts).  Runtime tests enforce them after the fact; this
linter enforces them *statically*, so a stray `std::mt19937` or a raw
`derive_stream_seed` call is rejected before it can silently decorrelate
a measurement.  Full rule catalog and war stories: docs/ANALYSIS.md.

Rules
-----
  rng-sources         (R1) no std::mt19937 / std::random_device / rand()
                      / clock-as-entropy outside src/rng/ and the test
                      allowlist.  All randomness flows from sfs::rng.
  raw-derive          (R2) rng::derive_stream_seed callers outside
                      src/rng/ must route through audited_stream_seed or
                      a versioned StreamPlan (the PR 3 audit caught a
                      real seed collision this rule prevents statically).
  unordered-emission  (R3) no iteration over std::unordered_{map,set} in
                      a TU that touches the sim/report emitter surface —
                      hash-iteration order would leak into committed
                      artifacts.
  legacy-api          (R4) no call-expression-level use of the legacy
                      measure_weak_portfolio / measure_strong_portfolio
                      compat surface outside its three pinned files
                      (replaces the CI api-guard grep; strings and
                      comments cannot false-positive here).
  check-discipline    (R5) no raw `throw` / `assert(` in src/ — use
                      SFS_REQUIRE / SFS_CHECK (base/check.hpp) so
                      failures carry expression, location, and context.
  rng-reachability    (R6) cross-TU call-graph pass: every path from a
                      registered experiment run-fn (`.run = fn` in an
                      ExperimentRegistrar literal) to a raw Rng /
                      Philox4x64 construction must traverse an audited
                      or versioned seed derivation (audited_stream_seed,
                      StreamPlan, *.stream_seed).  An experiment whose
                      call chain seeds an engine any other way can
                      silently correlate replications.
  float-order         (R7) no unordered floating-point accumulation in a
                      TU feeding BENCH_JSON artifacts: std::reduce /
                      std::transform_reduce (reduction order
                      unspecified), parallel execution policies, and
                      std::accumulate over unordered containers are all
                      rejected — FP addition does not commute, so the
                      emitted bytes would depend on hashing/scheduling.
  layering            (R8) src/ include DAG base→rng→graph→gen→stats→
                      search→sim→core: an upward #include across layer
                      directories is a violation (so include cycles are
                      impossible by construction), and every contiguous
                      run of quoted includes must be sorted (the sorted
                      form is mechanically restorable with --fix).

Suppression
-----------
A violation is suppressible ONLY via an annotation on the same line or
the line directly above, with a mandatory non-empty reason:

    // SFS_LINT_ALLOW(check-discipline): I/O failure is environmental,
    //   std::runtime_error is the documented contract.

An SFS_LINT_ALLOW without a reason (or naming an unknown rule) is itself
a violation (`allow-no-reason` / `allow-unknown-rule`) and cannot be
suppressed.

Engines
-------
`--engine token` (default fallback) lexes each file, strips comments and
string/character literals with full raw-string support, and applies the
rules to the remaining token text — no network, no non-stdlib deps.
`--engine libclang` upgrades R2/R4/R5 to true call-/throw-expression
checks when python clang bindings + libclang are installed; `--engine
auto` (default) probes and falls back.  The R6 call graph is built by
the token engine in every mode (function definitions + call edges from
the lexed text) — reported as such, never silently.  `--engine-report`
prints a JSON probe of what is actually available and exits nonzero on
the one silent-degrade case: bindings importable but libclang unusable.
Both engines share scoping, suppression, and reporting, and the fixture
corpus under tests/lint_fixtures/ pins their behavior (`--self-test`,
which also asserts that `--fix` is idempotent).

Fixing
------
`--fix` rewrites the mechanically fixable findings in place: raw
single-line `assert(expr);` in src/ becomes `SFS_CHECK(expr, "expr");`
(inserting the base/check.hpp include when needed), and unsorted
quoted-include runs are stably sorted.  Running --fix twice is a no-op
by construction.

Exit codes: 0 clean, 1 violations found (or self-test mismatch, or
--engine-report degrade), 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

# Directories scanned by --all, relative to the repo root.
SCAN_DIRS = ("src", "bench", "examples", "tests")
SOURCE_SUFFIXES = (".cpp", ".hpp", ".cc", ".hh", ".h")
# Deliberate-violation corpus for --self-test; never part of --all.
FIXTURE_DIR = "tests/lint_fixtures"

# The include-layering DAG (R8): a src/<dir>/ file may include only from
# its own directory or directories of strictly lower rank.  This is the
# one-way dependency order the whole library is built around; an upward
# include is how cycles (and untestable layers) start.
LAYER_RANK = {
    "base": 0,
    "rng": 1,
    "graph": 2,
    "gen": 3,
    "stats": 4,
    "search": 5,
    "sim": 6,
    "core": 7,
}


def _in_dir(path: str, prefix: str) -> bool:
    return path == prefix or path.startswith(prefix + "/")


@dataclass(frozen=True)
class Rule:
    name: str
    summary: str
    in_scope: object  # Callable[[str], bool] over repo-relative posix paths


# R1: files where process-global or non-sfs RNG sources are legitimate.
# src/rng/ *implements* the RNG layer; the test allowlist names tests that
# exercise third-party generator parity on purpose (currently none — add a
# path here, with a PR justification, rather than sprinkling ALLOWs).
R1_ALLOWED_PATHS: tuple[str, ...] = ()

# R4: the pinned legacy compat surface (mirrors the retired api-guard job).
R4_COMPAT_FILES = (
    "src/sim/sweep.hpp",
    "src/sim/sweep.cpp",
    "tests/test_sweep_compat.cpp",
)

RULES = {
    "rng-sources": Rule(
        "rng-sources",
        "std RNG / libc rand / clock-as-entropy outside src/rng/",
        lambda p: not _in_dir(p, "src/rng") and p not in R1_ALLOWED_PATHS,
    ),
    "raw-derive": Rule(
        "raw-derive",
        "raw rng::derive_stream_seed call outside src/rng/ "
        "(use audited_stream_seed / StreamPlan)",
        lambda p: not _in_dir(p, "src/rng"),
    ),
    "unordered-emission": Rule(
        "unordered-emission",
        "unordered-container iteration in a TU touching the "
        "sim/report emitter surface",
        lambda p: True,
    ),
    "legacy-api": Rule(
        "legacy-api",
        "legacy measure_*_portfolio call outside the compat surface",
        lambda p: p not in R4_COMPAT_FILES,
    ),
    "check-discipline": Rule(
        "check-discipline",
        "raw throw/assert in src/ (use SFS_REQUIRE / SFS_CHECK)",
        lambda p: _in_dir(p, "src") and p != "src/base/check.hpp",
    ),
    "rng-reachability": Rule(
        "rng-reachability",
        "experiment-reachable Rng/Philox construction without an "
        "audited/versioned seed derivation on the path (cross-TU)",
        # tests/ link into their own binaries (no experiment registry) and
        # legitimately pin literal seeds; src/rng implements the engines.
        lambda p: not _in_dir(p, "src/rng") and not _in_dir(p, "tests"),
    ),
    "float-order": Rule(
        "float-order",
        "unordered floating-point accumulation (std::reduce / parallel "
        "policy / accumulate over unordered) in an emitter TU",
        lambda p: True,
    ),
    "layering": Rule(
        "layering",
        "upward include across the src/ layer DAG, or an unsorted "
        "quoted-include run (--fix restores order)",
        lambda p: _in_dir(p, "src"),
    ),
}

# Rules evaluated over the whole lint corpus at once rather than one file
# at a time (they need the cross-TU call graph).
CORPUS_RULES = ("rng-reachability",)

# Meta-diagnostics emitted by the suppression machinery itself.  They are
# not suppressible and fire regardless of path scope.
META_RULES = ("allow-no-reason", "allow-unknown-rule")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexing: strip comments and string/char literals, keep line structure
# --------------------------------------------------------------------------

@dataclass
class LexedFile:
    """`code` has comments and literal *contents* blanked (same line count
    and column positions as the original); `comments` maps line -> comment
    text found on that line (concatenated if several)."""

    code: str
    comments: dict[int, str] = field(default_factory=dict)


def lex(text: str) -> LexedFile:
    out: list[str] = []
    comments: dict[int, str] = {}
    i, n = 0, len(text)
    line = 1

    def note_comment(ln: int, s: str) -> None:
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            note_comment(line, text[i:j])
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            # Attribute each comment line's text to its own line number.
            for k, part in enumerate(chunk.split("\n")):
                note_comment(line + k, part)
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j
        elif c == 'R' and nxt == '"' and (i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")):
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n if j == -1 else j + len(closer)
            chunk = text[i:j]
            out.append('""' + "".join(ch if ch == "\n" else " " for ch in chunk[2:]))
            line += chunk.count("\n")
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                if j < n and text[j] == "\n":
                    break  # unterminated literal; stop at line end
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * max(0, j - i - 2) + (quote if j - i >= 2 else ""))
            line += text[i:j].count("\n")
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    return LexedFile("".join(out), comments)


# --------------------------------------------------------------------------
# Suppression annotations
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(
    r"SFS_LINT_ALLOW\s*\(\s*([A-Za-z0-9_-]*)\s*\)\s*(?::\s*(.*))?$")
# Prose may mention SFS_LINT_ALLOW without parentheses (docs, fixture
# headers); only the call-shaped form is an annotation attempt.
ALLOW_ATTEMPT_RE = re.compile(r"SFS_LINT_ALLOW\s*\(")
# Fixtures declare the path they pretend to live at, so path-scoped rules
# are exercised for real from inside tests/lint_fixtures/.
FIXTURE_PATH_RE = re.compile(r"SFS_LINT_FIXTURE_PATH:\s*(\S+)")


@dataclass
class Allow:
    line: int
    rule: str
    reason: str


def parse_allows(lexed: LexedFile) -> tuple[list[Allow], list[Finding]]:
    """Returns (valid allows, meta findings for malformed ones)."""
    allows: list[Allow] = []
    meta: list[Finding] = []
    for ln, comment in sorted(lexed.comments.items()):
        m = ALLOW_RE.search(comment)
        if not m:
            if ALLOW_ATTEMPT_RE.search(comment):
                meta.append(Finding("", ln, "allow-no-reason",
                                    "malformed SFS_LINT_ALLOW — expected "
                                    "SFS_LINT_ALLOW(rule): reason"))
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if rule not in RULES:
            meta.append(Finding("", ln, "allow-unknown-rule",
                                f"SFS_LINT_ALLOW names unknown rule '{rule}'"))
            continue
        if not reason:
            meta.append(Finding("", ln, "allow-no-reason",
                                f"SFS_LINT_ALLOW({rule}) has no reason — a "
                                "justification is mandatory"))
            continue
        allows.append(Allow(ln, rule, reason))
    return allows, meta


def apply_allows(findings: list[Finding], allows: list[Allow]) -> list[Finding]:
    """An allow on line L suppresses findings of its rule on L (trailing
    annotation) and L+1 (annotation on its own line above)."""
    allowed: set[tuple[str, int]] = set()
    for a in allows:
        allowed.add((a.rule, a.line))
        allowed.add((a.rule, a.line + 1))
    return [f for f in findings if (f.rule, f.line) not in allowed]


# --------------------------------------------------------------------------
# Token-engine rules
# --------------------------------------------------------------------------

R1_STD_RNG_RE = re.compile(
    r"\bstd\s*::\s*(mt19937(?:_64)?|random_device|default_random_engine|"
    r"minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b|s?rand)\b")
R1_LIBC_RNG_RE = re.compile(r"(?<![\w:.>])(rand|srand|random|srandom|"
                            r"drand48|lrand48|mrand48|rand_r)\s*\(")
R1_TIME_ENTROPY_RE = re.compile(r"\btime\s*\(\s*(?:0|NULL|nullptr)\s*\)")
R1_CLOCK_SEED_RE = re.compile(
    r"(seed|Seed|Rng|rng)\w*[^;\n]*_clock\s*::\s*now\s*\(|"
    r"_clock\s*::\s*now\s*\(\s*\)[^;\n]*\b(seed|Seed)")

R2_RE = re.compile(r"\bderive_stream_seed\s*\(")

R3_SURFACE_RE = re.compile(
    r'#\s*include\s*"sim/(report|experiment)\.hpp"|'
    r"\bResultsEmitter\b|\bemit_object\b|\bBENCH_JSON\b")
R3_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<[^;{]*?>\s+(\w+)")

R4_RE = re.compile(r"\b(measure_weak_portfolio|measure_strong_portfolio)\s*\(")

R5_THROW_RE = re.compile(r"\bthrow\b")
R5_ASSERT_RE = re.compile(r"(?<!static_)\bassert\s*\(")

# R7: the lexer blanks string contents, so the include form of the emitter
# surface must be spotted in the original text.
R7_INCLUDE_SURFACE_RE = re.compile(
    r'#\s*include\s*"sim/(report|experiment)\.hpp"')
R7_REDUCE_RE = re.compile(r"\bstd\s*::\s*(?:transform_reduce|reduce)\s*\(")
R7_EXEC_POLICY_RE = re.compile(
    r"\bstd\s*::\s*execution\s*::\s*(?:par_unseq|par|unseq)\b")
R7_ACCUMULATE_RE = re.compile(
    r"\baccumulate\s*\(\s*([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")

R8_INCLUDE_RE = re.compile(r'\s*#\s*include\s*"([^"]+)"')


def _line_findings(path: str, code: str, regex: re.Pattern, rule: str,
                   message: str) -> list[Finding]:
    found = []
    for idx, line_text in enumerate(code.split("\n"), start=1):
        if regex.search(line_text):
            found.append(Finding(path, idx, rule, message))
    return found


def token_rule_rng_sources(path: str, lexed: LexedFile,
                           original: str = "") -> list[Finding]:
    out = []
    out += _line_findings(path, lexed.code, R1_STD_RNG_RE, "rng-sources",
                          "std::<random> engine/device — all randomness must "
                          "come from sfs::rng (src/rng/) so streams stay "
                          "seeded, derived, and auditable")
    out += _line_findings(path, lexed.code, R1_LIBC_RNG_RE, "rng-sources",
                          "libc RNG — process-global, unseeded-by-discipline; "
                          "use sfs::rng")
    out += _line_findings(path, lexed.code, R1_TIME_ENTROPY_RE, "rng-sources",
                          "time(...) as entropy — wall clock in a seed makes "
                          "every run unreproducible")
    out += _line_findings(path, lexed.code, R1_CLOCK_SEED_RE, "rng-sources",
                          "clock-derived value feeding a seed/Rng — "
                          "reproducibility requires explicit seeds")
    return out


def token_rule_raw_derive(path: str, lexed: LexedFile,
                          original: str = "") -> list[Finding]:
    return _line_findings(
        path, lexed.code, R2_RE, "raw-derive",
        "raw derive_stream_seed call — route through "
        "rng::audited_stream_seed (SFS_RNG_AUDIT coverage) or a versioned "
        "rng::StreamPlan; the PR 3 audit caught a real seed collision here")


def token_rule_unordered_emission(path: str, lexed: LexedFile,
                                  original: str = "") -> list[Finding]:
    code = lexed.code
    if not R3_SURFACE_RE.search(code):
        return []
    out: list[Finding] = []
    unordered_vars = set(R3_DECL_RE.findall(code))
    msg = ("iteration over a std::unordered_ container in an emitter TU — "
           "hash-iteration order is implementation-defined and would leak "
           "into committed BENCH_JSON artifacts; iterate a sorted copy or "
           "an ordered container")
    for idx, line_text in enumerate(code.split("\n"), start=1):
        # Range-for directly over an unordered temporary or declared var.
        m = re.search(r"for\s*\([^;)]*:\s*([\w:]+)", line_text)
        if m:
            target = m.group(1).split("::")[-1]
            if target in unordered_vars or "unordered_" in m.group(1):
                out.append(Finding(path, idx, "unordered-emission", msg))
                continue
        # Explicit iterator walks: var.begin() / var.cbegin().
        m = re.search(r"\b(\w+)\s*\.\s*c?begin\s*\(", line_text)
        if m and m.group(1) in unordered_vars:
            out.append(Finding(path, idx, "unordered-emission", msg))
    return out


def token_rule_legacy_api(path: str, lexed: LexedFile,
                          original: str = "") -> list[Finding]:
    return _line_findings(
        path, lexed.code, R4_RE, "legacy-api",
        "legacy measure_*_portfolio call — the compat surface is pinned to "
        "src/sim/sweep.{hpp,cpp} + tests/test_sweep_compat.cpp; use "
        "sim::measure_portfolio(RunPlan) (docs/SEARCH.md)")


def token_rule_check_discipline(path: str, lexed: LexedFile,
                                original: str = "") -> list[Finding]:
    out = []
    out += _line_findings(path, lexed.code, R5_THROW_RE, "check-discipline",
                          "raw throw in src/ — use SFS_REQUIRE (precondition) "
                          "or SFS_CHECK (invariant) from base/check.hpp so "
                          "failures carry expression + location")
    out += _line_findings(path, lexed.code, R5_ASSERT_RE, "check-discipline",
                          "assert() compiles out in release builds — use "
                          "SFS_CHECK, which is always on by policy")
    return out


def token_rule_float_order(path: str, lexed: LexedFile,
                           original: str = "") -> list[Finding]:
    code = lexed.code
    if not (R3_SURFACE_RE.search(code)
            or R7_INCLUDE_SURFACE_RE.search(original)):
        return []
    out: list[Finding] = []
    out += _line_findings(
        path, code, R7_REDUCE_RE, "float-order",
        "std::reduce/transform_reduce leaves the FP reduction order "
        "unspecified — in an emitter TU that breaks byte-stable BENCH_JSON; "
        "use std::accumulate (left fold) over an ordered range")
    out += _line_findings(
        path, code, R7_EXEC_POLICY_RE, "float-order",
        "parallel/unsequenced execution policy in an emitter TU — "
        "scheduling-dependent accumulation order leaks into artifacts; "
        "fold per-slot results in index order instead (base/parallel.hpp)")
    unordered_vars = set(R3_DECL_RE.findall(code))
    for idx, line_text in enumerate(code.split("\n"), start=1):
        m = R7_ACCUMULATE_RE.search(line_text)
        if m and m.group(1) in unordered_vars:
            out.append(Finding(
                path, idx, "float-order",
                "std::accumulate over an unordered container — "
                "hash-iteration order makes the FP sum "
                "implementation-defined; accumulate a sorted copy"))
    return out


def _include_runs(lexed: LexedFile,
                  original: str) -> list[list[tuple[int, str]]]:
    """Contiguous runs of quoted #include lines as (1-based line, path),
    taken from the original text but gated on the lexed text so a
    commented-out include neither joins nor splits a run."""
    code_lines = lexed.code.split("\n")
    orig_lines = original.split("\n")
    runs: list[list[tuple[int, str]]] = []
    cur: list[tuple[int, str]] = []
    for idx, (cl, ol) in enumerate(zip(code_lines, orig_lines), start=1):
        m = R8_INCLUDE_RE.match(ol)
        if m and re.match(r'\s*#\s*include\s*"', cl):
            cur.append((idx, m.group(1)))
        else:
            if cur:
                runs.append(cur)
            cur = []
    if cur:
        runs.append(cur)
    return runs


def token_rule_layering(path: str, lexed: LexedFile,
                        original: str = "") -> list[Finding]:
    parts = path.split("/")
    own_rank = None
    if len(parts) >= 3 and parts[0] == "src" and parts[1] in LAYER_RANK:
        own_rank = LAYER_RANK[parts[1]]
    out: list[Finding] = []
    runs = _include_runs(lexed, original)
    for run in runs:
        # Upward includes: every offending line reports.
        for line_no, inc in run:
            top = inc.split("/")[0]
            if (own_rank is not None and top in LAYER_RANK
                    and LAYER_RANK[top] > own_rank):
                out.append(Finding(
                    path, line_no, "layering",
                    f"upward include: {parts[1]}/ (layer {own_rank}) must "
                    f"not include {top}/ (layer {LAYER_RANK[top]}) — the "
                    "DAG is base→rng→graph→gen→stats→search→sim→core; "
                    "move the shared code down a layer or invert the "
                    "dependency (docs/ANALYSIS.md)"))
        # Ordering: one report per unsorted run, at the first regression.
        for k in range(1, len(run)):
            if run[k][1] < run[k - 1][1]:
                out.append(Finding(
                    path, run[k][0], "layering",
                    f'unsorted include run: "{run[k][1]}" sorts before '
                    f'"{run[k - 1][1]}" — run sfs_lint --fix to restore '
                    "order"))
                break
    return out


TOKEN_RULE_FNS = {
    "rng-sources": token_rule_rng_sources,
    "raw-derive": token_rule_raw_derive,
    "unordered-emission": token_rule_unordered_emission,
    "legacy-api": token_rule_legacy_api,
    "check-discipline": token_rule_check_discipline,
    "float-order": token_rule_float_order,
    "layering": token_rule_layering,
}


# --------------------------------------------------------------------------
# R6: cross-TU rng-reachability (token call graph)
# --------------------------------------------------------------------------
#
# Roots are the registered experiment entry points — the `.run = fn`
# designated initializers of sim::ExperimentRegistrar literals.  Function
# definitions and call edges are recovered from the lexed text: an
# identifier + balanced parens + optional trailer (const/noexcept/macro
# attributes/ctor-initializers) followed by `{` is a definition; every
# known-function identifier followed by `(` inside its brace-matched body
# is an edge.  A "draw" is a construction of rng::Rng or rng::Philox4x64.
# The draw is sanctioned when its enclosing function — or anything that
# function can reach — derives seeds through audited_stream_seed, a
# StreamPlan, or a *.stream_seed() helper.  A violation is a draw in a
# root-reachable, unsanctioned function: an experiment path that seeds an
# engine outside the derivation discipline.
#
# This is a heuristic (token-level) analysis: same-name functions merge
# into one node, bodies include nested lambdas, and declarations-only TUs
# contribute nothing.  That is the right bias for a lint — merging only
# ever *adds* reachability, and false positives carry a reasoned
# SFS_LINT_ALLOW that documents why the seeding is sound.

R6_ROOT_RE = re.compile(r"\.run\s*=\s*&?([A-Za-z_]\w*)")
R6_DRAW_NAMED_RE = re.compile(
    r"\b(?:rng\s*::\s*)?(?:Rng|Philox4x64)\s+\w+\s*[({]")
R6_DRAW_TEMP_RE = re.compile(r"\b(?:rng\s*::\s*)?(?:Rng|Philox4x64)\s*\(")
R6_SANCTION_RE = re.compile(
    r"\baudited_stream_seed\s*\(|\bStreamPlan\b|\bstream_seed\s*\(")
R6_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
R6_NOT_FN = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "assert", "defined", "case",
    "new", "delete", "throw", "co_await", "co_return", "co_yield",
})
R6_FN_TRAILER_RE = re.compile(
    r"(?:\s*(?:const\b|noexcept\b(?:\s*\([^()]*\))?|override\b|final\b|"
    r"[A-Z_][A-Za-z0-9_]*\s*\([^()]*\)))*"
    r"(?:\s*->\s*[^{;]+?)?(?:\s*:[^{;]*)?\s*\{")


@dataclass
class FnDef:
    name: str
    path: str
    line: int
    body: str  # lexed body text including the braces


def _match_forward(code: str, i: int, open_ch: str, close_ch: str) -> int:
    """Index of the close matching the open at code[i], or -1."""
    depth = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def extract_functions(path: str, lexed: LexedFile) -> list[FnDef]:
    code = lexed.code
    fns: list[FnDef] = []
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\(", code):
        name = m.group(1)
        if name in R6_NOT_FN:
            continue
        close = _match_forward(code, m.end() - 1, "(", ")")
        if close == -1:
            continue
        tm = R6_FN_TRAILER_RE.match(code, close + 1)
        if not tm or not tm.group(0).rstrip().endswith("{"):
            continue
        body_open = tm.end() - 1
        body_close = _match_forward(code, body_open, "{", "}")
        if body_close == -1:
            continue
        fns.append(FnDef(name, path,
                         code.count("\n", 0, m.start()) + 1,
                         code[body_open:body_close + 1]))
    return fns


def rng_reachability_findings(
        lexed_map: dict[str, LexedFile],
        graph_extra: dict[str, LexedFile] | None = None) -> list[Finding]:
    """R6 over the corpus.  `graph_extra` extends the call graph (e.g. the
    TUs of compile_commands.json) without adding reportable files."""
    whole: dict[str, LexedFile] = dict(graph_extra or {})
    whole.update(lexed_map)

    # name -> merged node
    callees: dict[str, set[str]] = {}
    sanctioned: dict[str, bool] = {}
    draws: dict[str, list[tuple[str, int]]] = {}
    roots: set[str] = set()

    all_fns: list[FnDef] = []
    for path, lexed in whole.items():
        all_fns.extend(extract_functions(path, lexed))
        for m in R6_ROOT_RE.finditer(lexed.code):
            roots.add(m.group(1))
    known = {fn.name for fn in all_fns}

    rule = RULES["rng-reachability"]
    for fn in all_fns:
        node = callees.setdefault(fn.name, set())
        node.update(c for c in set(R6_CALL_RE.findall(fn.body))
                    if c in known and c != fn.name)
        sanctioned[fn.name] = (sanctioned.get(fn.name, False)
                               or bool(R6_SANCTION_RE.search(fn.body)))
        if not rule.in_scope(fn.path):
            continue
        for dm in list(R6_DRAW_NAMED_RE.finditer(fn.body)) + \
                list(R6_DRAW_TEMP_RE.finditer(fn.body)):
            line = fn.line + fn.body.count("\n", 0, dm.start())
            draws.setdefault(fn.name, []).append((fn.path, line))

    def closure(start: set[str]) -> set[str]:
        seen = set(start)
        stack = list(start)
        while stack:
            for nxt in callees.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    reachable = closure(roots & known)

    reverse: dict[str, set[str]] = {}
    for caller, outs in callees.items():
        if caller not in reachable:
            continue
        for callee in outs:
            reverse.setdefault(callee, set()).add(caller)

    def self_sanctioned(name: str) -> bool:
        """Sanction inside the function or anything it can call — the
        "derives its own seed (possibly via a helper)" case."""
        return any(sanctioned.get(n, False) for n in closure({name}))

    # Backward all-paths check: a draw in `name` is clean iff EVERY path
    # from a root to `name` traverses a sanctioned body — either `name`
    # seeds itself (self_sanctioned) or all of its root-reachable callers
    # are, recursively, path-sanctioned (they derived the seed they pass
    # down).  Cycle members are optimistically clean; the path into the
    # cycle still decides.
    memo: dict[str, bool] = {}

    def path_sanctioned(name: str, visiting: frozenset[str]) -> bool:
        if name in visiting:
            return True
        if name in memo:
            return memo[name]
        if self_sanctioned(name):
            result = True
        elif name in roots:
            result = False  # an experiment entry path with no sanction yet
        else:
            callers = [c for c in reverse.get(name, ()) if c in reachable]
            result = bool(callers) and all(
                path_sanctioned(c, visiting | {name}) for c in callers)
        memo[name] = result
        return result

    out: list[Finding] = []
    for name, sites in draws.items():
        if name not in reachable:
            continue
        if path_sanctioned(name, frozenset()):
            continue
        # De-duplicate sites (the named/temp regexes can overlap).
        for path, line in sorted(set(sites)):
            if path in lexed_map:  # report only inside the lint set
                out.append(Finding(
                    path, line, "rng-reachability",
                    f"'{name}' is reachable from a registered experiment "
                    "run-fn and constructs an RNG engine, but nothing on "
                    "the path derives its seed through audited_stream_seed "
                    "/ StreamPlan / stream_seed — replications seeded this "
                    "way can silently correlate (docs/PERF.md seed "
                    "discipline; docs/ANALYSIS.md R6)"))
    return out


# --------------------------------------------------------------------------
# Optional libclang engine (upgrades R2/R4/R5 to AST precision)
# --------------------------------------------------------------------------

def probe_libclang() -> tuple[object | None, dict]:
    """Returns (clang.cindex module or None, probe detail dict)."""
    info: dict = {"module_importable": False, "index_created": False}
    try:
        import clang.cindex as cindex  # type: ignore
    except Exception as exc:
        info["error"] = f"import clang.cindex: {exc}"
        return None, info
    info["module_importable"] = True
    try:
        cindex.Index.create()
    except Exception as exc:
        info["error"] = f"Index.create: {exc}"
        return None, info
    info["index_created"] = True
    return cindex, info


def try_libclang():
    """Returns the clang.cindex module, or None when unavailable."""
    return probe_libclang()[0]


def libclang_findings(path: str, repo_root: Path, cindex) -> list[Finding] | None:
    """AST-level R2/R4/R5 for one file; None on parse failure (caller falls
    back to the token engine for those rules)."""
    try:
        index = cindex.Index.create()
        tu = index.parse(str(repo_root / path),
                         args=["-std=c++20", f"-I{repo_root / 'src'}"])
    except Exception:
        return None
    if tu is None:
        return None
    out: list[Finding] = []
    this_file = str(repo_root / path)
    for node in tu.cursor.walk_preorder():
        loc = node.location
        if loc.file is None or str(loc.file) != this_file:
            continue
        kind = node.kind
        if kind == cindex.CursorKind.CALL_EXPR:
            name = node.spelling or ""
            if name == "derive_stream_seed":
                out.append(Finding(path, loc.line, "raw-derive",
                                   "raw derive_stream_seed call (AST) — use "
                                   "audited_stream_seed / StreamPlan"))
            elif name in ("measure_weak_portfolio", "measure_strong_portfolio"):
                out.append(Finding(path, loc.line, "legacy-api",
                                   f"legacy {name} call (AST) — use "
                                   "sim::measure_portfolio(RunPlan)"))
        elif kind == cindex.CursorKind.CXX_THROW_EXPR:
            out.append(Finding(path, loc.line, "check-discipline",
                               "raw throw expression (AST) — use "
                               "SFS_REQUIRE / SFS_CHECK"))
    return out


LIBCLANG_RULES = ("raw-derive", "legacy-api", "check-discipline")


# --------------------------------------------------------------------------
# Mechanical fixes (--fix): R5 assert rewrite, R8 include reorder
# --------------------------------------------------------------------------

def fix_include_order(path: str, text: str) -> tuple[str, int]:
    if not RULES["layering"].in_scope(path):
        return text, 0
    lexed = lex(text)
    lines = text.split("\n")
    fixes = 0
    for run in _include_runs(lexed, text):
        idxs = [ln - 1 for ln, _ in run]
        paths = [p for _, p in run]
        order = sorted(range(len(run)), key=lambda k: paths[k])
        if order != list(range(len(run))):
            originals = [lines[i] for i in idxs]
            for slot, k in zip(idxs, order):
                lines[slot] = originals[k]
            fixes += 1
    return "\n".join(lines), fixes


def _insert_check_include(lines: list[str]) -> list[str]:
    """Inserts #include "base/check.hpp" into the first quoted-include run
    (keeping it sorted), else after the last top-of-file angle include,
    else after #pragma once."""
    inc = '#include "base/check.hpp"'
    first_run_start = None
    for i, line in enumerate(lines):
        if R8_INCLUDE_RE.match(line):
            first_run_start = i
            break
    if first_run_start is not None:
        j = first_run_start
        while j < len(lines):
            m = R8_INCLUDE_RE.match(lines[j])
            if not m or m.group(1) > "base/check.hpp":
                break
            j += 1
        return lines[:j] + [inc] + lines[j:]
    last_angle = None
    for i, line in enumerate(lines):
        if re.match(r"\s*#\s*include\s*<", line):
            last_angle = i
    if last_angle is not None:
        return lines[:last_angle + 1] + ["", inc] + lines[last_angle + 1:]
    for i, line in enumerate(lines):
        if re.match(r"\s*#\s*pragma\s+once", line):
            return lines[:i + 1] + ["", inc] + lines[i + 1:]
    return [inc, ""] + lines


def fix_asserts(path: str, text: str) -> tuple[str, int]:
    if not RULES["check-discipline"].in_scope(path):
        return text, 0
    lexed = lex(text)
    code_lines = lexed.code.split("\n")
    lines = text.split("\n")
    fixes = 0
    for i, cl in enumerate(code_lines):
        if i >= len(lines) or not R5_ASSERT_RE.search(cl):
            continue
        m = re.match(r"^(\s*)assert\s*\((.*)\)\s*;(\s*//.*)?$", lines[i])
        if not m:
            continue  # multi-line / compound statements are not mechanical
        indent, expr, trail = m.group(1), m.group(2), m.group(3) or ""
        if expr.count("(") != expr.count(")"):
            continue
        msg = expr.replace("\\", "\\\\").replace('"', '\\"')
        lines[i] = f'{indent}SFS_CHECK({expr}, "{msg}");{trail}'
        fixes += 1
    if fixes and '#include "base/check.hpp"' not in text:
        lines = _insert_check_include(lines)
    return "\n".join(lines), fixes


def apply_fixes(path: str, text: str) -> tuple[str, int]:
    """All mechanical fixes for one file; idempotent by construction
    (asserted over the fixture corpus by --self-test)."""
    text, n1 = fix_asserts(path, text)
    text, n2 = fix_include_order(path, text)
    return text, n1 + n2


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_corpus(corpus: dict[str, str], engine: str, repo_root: Path,
                cindex=None,
                graph_extra: dict[str, str] | None = None) -> list[Finding]:
    """Lints a set of files together: per-file rules plus the cross-TU
    rules over the whole set.  Keys are repo-relative paths (which drive
    rule scoping); values are file contents."""
    lexed_map = {p: lex(t) for p, t in corpus.items()}
    allows_map: dict[str, list[Allow]] = {}
    all_findings: list[Finding] = []

    for path, lexed in lexed_map.items():
        allows, meta = parse_allows(lexed)
        for f in meta:
            f.path = path
        allows_map[path] = allows

        ast_findings: list[Finding] | None = None
        if engine == "libclang" and cindex is not None:
            ast_findings = libclang_findings(path, repo_root, cindex)

        findings: list[Finding] = []
        for rule_name, rule in RULES.items():
            if rule_name in CORPUS_RULES or not rule.in_scope(path):
                continue
            if ast_findings is not None and rule_name in LIBCLANG_RULES:
                findings.extend(f for f in ast_findings if f.rule == rule_name)
            else:
                findings.extend(
                    TOKEN_RULE_FNS[rule_name](path, lexed, corpus[path]))
        findings = apply_allows(findings, allows)
        findings.extend(meta)
        all_findings.extend(findings)

    extra_lexed = ({p: lex(t) for p, t in graph_extra.items()}
                   if graph_extra else None)
    cross = rng_reachability_findings(lexed_map, extra_lexed)
    by_path: dict[str, list[Finding]] = {}
    for f in cross:
        by_path.setdefault(f.path, []).append(f)
    for path, findings in by_path.items():
        all_findings.extend(apply_allows(findings, allows_map.get(path, [])))

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return all_findings


def lint_text(path: str, text: str, engine: str, repo_root: Path,
              cindex=None) -> list[Finding]:
    """Lints one file's contents under its repo-relative `path`; the file
    is its own cross-TU corpus (what --self-test fixtures rely on)."""
    return lint_corpus({path: text}, engine, repo_root, cindex)


def collect_files(repo_root: Path, explicit: list[str]) -> list[str]:
    if explicit:
        out = []
        for raw in explicit:
            p = Path(raw)
            rel = p if not p.is_absolute() else p.relative_to(repo_root)
            out.append(rel.as_posix())
        return out
    files = []
    for d in SCAN_DIRS:
        base = repo_root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            rel = p.relative_to(repo_root).as_posix()
            if p.suffix in SOURCE_SUFFIXES and not _in_dir(rel, FIXTURE_DIR):
                files.append(rel)
    return files


def load_compile_commands(repo_root: Path, cc_path: Path,
                          already: set[str]) -> dict[str, str] | None:
    """TUs listed in compile_commands.json (restricted to the repo, minus
    files already being linted) as extra call-graph corpus for R6."""
    try:
        entries = json.loads(cc_path.read_text())
    except Exception as exc:
        print(f"sfs_lint: cannot read {cc_path}: {exc}", file=sys.stderr)
        return None
    extra: dict[str, str] = {}
    root = repo_root.resolve()
    for entry in entries:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        try:
            rel = f.resolve().relative_to(root).as_posix()
        except ValueError:
            continue  # generated / out-of-repo TU
        if (rel in already or rel in extra or _in_dir(rel, FIXTURE_DIR)
                or not f.suffix in SOURCE_SUFFIXES):
            continue
        if f.is_file():
            extra[rel] = f.read_text(encoding="utf-8", errors="replace")
    return extra


def run_lint(repo_root: Path, files: list[str], engine: str, as_json: bool,
             compile_commands: str | None = None) -> int:
    cindex = None
    if engine in ("auto", "libclang"):
        cindex = try_libclang()
        if engine == "libclang" and cindex is None:
            print("sfs_lint: --engine libclang requested but python clang "
                  "bindings/libclang are unavailable", file=sys.stderr)
            return 2
    effective = "libclang" if cindex is not None else "token"

    corpus: dict[str, str] = {}
    for rel in files:
        full = repo_root / rel
        if not full.is_file():
            print(f"sfs_lint: no such file: {rel}", file=sys.stderr)
            return 2
        text = full.read_text(encoding="utf-8", errors="replace")
        # Fixtures linted explicitly (the CI seeded-violation step does)
        # run under their declared virtual path, the same remapping the
        # self-test applies — rule scoping is path-based, and the point of
        # a fixture is the path it pretends to live at.
        if _in_dir(rel, FIXTURE_DIR):
            m = FIXTURE_PATH_RE.search(text)
            if m:
                rel = m.group(1)
        corpus[rel] = text

    graph_extra = None
    if compile_commands:
        graph_extra = load_compile_commands(
            repo_root, Path(compile_commands), set(corpus))
        if graph_extra is None:
            return 2

    all_findings = lint_corpus(corpus, effective, repo_root, cindex,
                               graph_extra)

    if as_json:
        for f in all_findings:
            print(json.dumps({"path": f.path, "line": f.line, "rule": f.rule,
                              "message": f.message}))
    else:
        for f in all_findings:
            print(f.render())
    if all_findings:
        print(f"sfs_lint: {len(all_findings)} violation(s) in "
              f"{len(files)} file(s) [{effective} engine]", file=sys.stderr)
        return 1
    print(f"sfs_lint: OK — {len(files)} file(s) clean "
          f"[{effective} engine]")
    return 0


def run_fix(repo_root: Path, files: list[str]) -> int:
    fixed_files = 0
    total = 0
    for rel in files:
        full = repo_root / rel
        if not full.is_file():
            print(f"sfs_lint: no such file: {rel}", file=sys.stderr)
            return 2
        text = full.read_text(encoding="utf-8")
        new_text, n = apply_fixes(rel, text)
        if n:
            full.write_text(new_text, encoding="utf-8")
            fixed_files += 1
            total += n
            print(f"fixed {rel}: {n} mechanical fix(es)")
    print(f"sfs_lint --fix: {total} fix(es) in {fixed_files} file(s)")
    return 0


def run_engine_report() -> int:
    cindex, info = probe_libclang()
    info["effective_engine"] = "libclang" if cindex is not None else "token"
    # The R6 call graph is token-engine by design in every mode; report it
    # so CI never mistakes that for a degraded run.
    info["cross_tu_engine"] = "token"
    # The silent-degrade case --engine auto would otherwise hide: bindings
    # import but libclang cannot be loaded/used.
    info["degraded"] = bool(info["module_importable"]
                            and not info["index_created"])
    print(json.dumps(info, sort_keys=True))
    return 1 if info["degraded"] else 0


# --------------------------------------------------------------------------
# Self-test over the fixture corpus
# --------------------------------------------------------------------------

def parse_expectations(fixture: Path) -> list[tuple[int, str]]:
    """Sidecar `<fixture>.expect`: one `LINE RULE` pair per line; missing
    or empty sidecar means the fixture must lint clean."""
    sidecar = fixture.with_suffix(fixture.suffix + ".expect")
    if not sidecar.is_file():
        return []
    expected = []
    for raw in sidecar.read_text().splitlines():
        raw = raw.strip()
        if not raw or raw.startswith("#"):
            continue
        line_s, rule = raw.split()
        expected.append((int(line_s), rule))
    return expected


def run_self_test(repo_root: Path, fixtures_dir: Path, engine: str) -> int:
    if not fixtures_dir.is_dir():
        print(f"sfs_lint: fixture dir not found: {fixtures_dir}",
              file=sys.stderr)
        return 2
    cindex = try_libclang() if engine in ("auto", "libclang") else None
    effective = "libclang" if cindex is not None else "token"

    fixtures = sorted(p for p in fixtures_dir.iterdir()
                      if p.suffix in SOURCE_SUFFIXES)
    if not fixtures:
        print(f"sfs_lint: no fixtures under {fixtures_dir}", file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        m = FIXTURE_PATH_RE.search(text)
        if not m:
            print(f"FAIL {fixture.name}: missing "
                  "// SFS_LINT_FIXTURE_PATH: <virtual path> marker")
            failures += 1
            continue
        vpath = m.group(1)
        # Fixtures exercise scoping via their declared virtual path; the
        # AST engine cannot parse a file at a path it does not exist at,
        # so fixtures always run the token engine (the engines share the
        # suppression/scoping logic pinned here).
        got = {(f.line, f.rule)
               for f in lint_text(vpath, text, "token", repo_root)}
        want = set(parse_expectations(fixture))
        if got != want:
            failures += 1
            print(f"FAIL {fixture.name} (as {vpath}):")
            for line, rule in sorted(want - got):
                print(f"  missing expected {rule} at line {line}")
            for line, rule in sorted(got - want):
                print(f"  unexpected {rule} at line {line}")
            continue

        # --fix contract, pinned on every fixture: applying the mechanical
        # fixes twice must equal applying them once (idempotence), and a
        # fixture that advertises itself as fixable must come out clean
        # (and actually change) after one pass.
        fixed1, _ = apply_fixes(vpath, text)
        fixed2, _ = apply_fixes(vpath, fixed1)
        if fixed1 != fixed2:
            failures += 1
            print(f"FAIL {fixture.name}: --fix is not idempotent")
            continue
        if "fixable" in fixture.name:
            if fixed1 == text:
                failures += 1
                print(f"FAIL {fixture.name}: --fix changed nothing")
                continue
            residue = lint_text(vpath, fixed1, "token", repo_root)
            if residue:
                failures += 1
                print(f"FAIL {fixture.name}: findings survive --fix:")
                for f in residue:
                    print(f"  {f.render()}")
                continue

        verdict = "clean" if not want else f"{len(want)} expected hit(s)"
        print(f"ok   {fixture.name}: {verdict}")

    total = len(fixtures)
    if failures:
        print(f"sfs_lint self-test: {failures}/{total} fixture(s) FAILED "
              f"[{effective} engine available: "
              f"{'yes' if cindex else 'no'}]")
        return 1
    print(f"sfs_lint self-test: {total}/{total} fixtures OK")
    return 0


# --------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sfs_lint.py",
        description="determinism & API-invariant lint for sfsearch "
                    "(docs/ANALYSIS.md)")
    parser.add_argument("--all", action="store_true",
                        help="lint every C++ file under "
                             + ", ".join(SCAN_DIRS))
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (repo-relative)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--engine", choices=("auto", "token", "libclang"),
                        default="auto")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSONL")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", metavar="FIXTURE_DIR",
                        help="run the fixture corpus and verify each rule "
                             "fires exactly where expected (also asserts "
                             "--fix idempotence)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes in place (assert -> "
                             "SFS_CHECK, include reorder) instead of "
                             "reporting")
    parser.add_argument("--engine-report", action="store_true",
                        help="print a JSON engine-availability probe; "
                             "exits 1 if libclang mode silently degraded")
    parser.add_argument("--compile-commands", metavar="PATH", default=None,
                        help="compile_commands.json whose TUs extend the "
                             "cross-TU call graph (R6) beyond the linted "
                             "files")
    args = parser.parse_args(argv)

    repo_root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.name:20} {rule.summary}")
        for name in META_RULES:
            print(f"{name:20} (meta) malformed/unreasoned SFS_LINT_ALLOW")
        return 0

    if args.engine_report:
        return run_engine_report()

    if args.self_test:
        return run_self_test(repo_root, Path(args.self_test), args.engine)

    if not args.all and not args.files:
        parser.print_usage(sys.stderr)
        print("sfs_lint: pass --all or explicit files", file=sys.stderr)
        return 2
    if args.all and args.files:
        print("sfs_lint: --all and explicit files are mutually exclusive",
              file=sys.stderr)
        return 2

    files = collect_files(repo_root, args.files)
    if args.fix:
        return run_fix(repo_root, files)
    return run_lint(repo_root, files, args.engine, args.json,
                    args.compile_commands)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
