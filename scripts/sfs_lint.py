#!/usr/bin/env python3
"""sfs_lint: determinism & API-invariant static analysis for sfsearch.

The repo's credibility rests on bit-identity invariants (seq==parallel
portfolios, frozen kLegacy streams, audited seed derivation, byte-stable
BENCH_JSON artifacts).  Runtime tests enforce them after the fact; this
linter enforces them *statically*, so a stray `std::mt19937` or a raw
`derive_stream_seed` call is rejected before it can silently decorrelate
a measurement.  Full rule catalog and war stories: docs/ANALYSIS.md.

Rules
-----
  rng-sources         (R1) no std::mt19937 / std::random_device / rand()
                      / clock-as-entropy outside src/rng/ and the test
                      allowlist.  All randomness flows from sfs::rng.
  raw-derive          (R2) rng::derive_stream_seed callers outside
                      src/rng/ must route through audited_stream_seed or
                      a versioned StreamPlan (the PR 3 audit caught a
                      real seed collision this rule prevents statically).
  unordered-emission  (R3) no iteration over std::unordered_{map,set} in
                      a TU that touches the sim/report emitter surface —
                      hash-iteration order would leak into committed
                      artifacts.
  legacy-api          (R4) no call-expression-level use of the legacy
                      measure_weak_portfolio / measure_strong_portfolio
                      compat surface outside its three pinned files
                      (replaces the CI api-guard grep; strings and
                      comments cannot false-positive here).
  check-discipline    (R5) no raw `throw` / `assert(` in src/ — use
                      SFS_REQUIRE / SFS_CHECK (base/check.hpp) so
                      failures carry expression, location, and context.

Suppression
-----------
A violation is suppressible ONLY via an annotation on the same line or
the line directly above, with a mandatory non-empty reason:

    // SFS_LINT_ALLOW(check-discipline): I/O failure is environmental,
    //   std::runtime_error is the documented contract.

An SFS_LINT_ALLOW without a reason (or naming an unknown rule) is itself
a violation (`allow-no-reason` / `allow-unknown-rule`) and cannot be
suppressed.

Engines
-------
`--engine token` (default fallback) lexes each file, strips comments and
string/character literals with full raw-string support, and applies the
rules to the remaining token text — no network, no non-stdlib deps.
`--engine libclang` upgrades R2/R4/R5 to true call-/throw-expression
checks when python clang bindings + libclang are installed; `--engine
auto` (default) probes and falls back.  Both engines share scoping,
suppression, and reporting, and the fixture corpus under
tests/lint_fixtures/ pins their behavior (`--self-test`).

Exit codes: 0 clean, 1 violations found (or self-test mismatch),
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Rule table
# --------------------------------------------------------------------------

# Directories scanned by --all, relative to the repo root.
SCAN_DIRS = ("src", "bench", "examples", "tests")
SOURCE_SUFFIXES = (".cpp", ".hpp", ".cc", ".hh", ".h")
# Deliberate-violation corpus for --self-test; never part of --all.
FIXTURE_DIR = "tests/lint_fixtures"


def _in_dir(path: str, prefix: str) -> bool:
    return path == prefix or path.startswith(prefix + "/")


@dataclass(frozen=True)
class Rule:
    name: str
    summary: str
    in_scope: object  # Callable[[str], bool] over repo-relative posix paths


# R1: files where process-global or non-sfs RNG sources are legitimate.
# src/rng/ *implements* the RNG layer; the test allowlist names tests that
# exercise third-party generator parity on purpose (currently none — add a
# path here, with a PR justification, rather than sprinkling ALLOWs).
R1_ALLOWED_PATHS: tuple[str, ...] = ()

# R4: the pinned legacy compat surface (mirrors the retired api-guard job).
R4_COMPAT_FILES = (
    "src/sim/sweep.hpp",
    "src/sim/sweep.cpp",
    "tests/test_sweep_compat.cpp",
)

RULES = {
    "rng-sources": Rule(
        "rng-sources",
        "std RNG / libc rand / clock-as-entropy outside src/rng/",
        lambda p: not _in_dir(p, "src/rng") and p not in R1_ALLOWED_PATHS,
    ),
    "raw-derive": Rule(
        "raw-derive",
        "raw rng::derive_stream_seed call outside src/rng/ "
        "(use audited_stream_seed / StreamPlan)",
        lambda p: not _in_dir(p, "src/rng"),
    ),
    "unordered-emission": Rule(
        "unordered-emission",
        "unordered-container iteration in a TU touching the "
        "sim/report emitter surface",
        lambda p: True,
    ),
    "legacy-api": Rule(
        "legacy-api",
        "legacy measure_*_portfolio call outside the compat surface",
        lambda p: p not in R4_COMPAT_FILES,
    ),
    "check-discipline": Rule(
        "check-discipline",
        "raw throw/assert in src/ (use SFS_REQUIRE / SFS_CHECK)",
        lambda p: _in_dir(p, "src") and p != "src/base/check.hpp",
    ),
}

# Meta-diagnostics emitted by the suppression machinery itself.  They are
# not suppressible and fire regardless of path scope.
META_RULES = ("allow-no-reason", "allow-unknown-rule")


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexing: strip comments and string/char literals, keep line structure
# --------------------------------------------------------------------------

@dataclass
class LexedFile:
    """`code` has comments and literal *contents* blanked (same line count
    and column positions as the original); `comments` maps line -> comment
    text found on that line (concatenated if several)."""

    code: str
    comments: dict[int, str] = field(default_factory=dict)


def lex(text: str) -> LexedFile:
    out: list[str] = []
    comments: dict[int, str] = {}
    i, n = 0, len(text)
    line = 1

    def note_comment(ln: int, s: str) -> None:
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            note_comment(line, text[i:j])
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            # Attribute each comment line's text to its own line number.
            for k, part in enumerate(chunk.split("\n")):
                note_comment(line + k, part)
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j
        elif c == 'R' and nxt == '"' and (i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")):
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n if j == -1 else j + len(closer)
            chunk = text[i:j]
            out.append('""' + "".join(ch if ch == "\n" else " " for ch in chunk[2:]))
            line += chunk.count("\n")
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                if j < n and text[j] == "\n":
                    break  # unterminated literal; stop at line end
                j += 1
            j = min(j + 1, n)
            out.append(quote + " " * max(0, j - i - 2) + (quote if j - i >= 2 else ""))
            line += text[i:j].count("\n")
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    return LexedFile("".join(out), comments)


# --------------------------------------------------------------------------
# Suppression annotations
# --------------------------------------------------------------------------

ALLOW_RE = re.compile(
    r"SFS_LINT_ALLOW\s*\(\s*([A-Za-z0-9_-]*)\s*\)\s*(?::\s*(.*))?$")
# Prose may mention SFS_LINT_ALLOW without parentheses (docs, fixture
# headers); only the call-shaped form is an annotation attempt.
ALLOW_ATTEMPT_RE = re.compile(r"SFS_LINT_ALLOW\s*\(")
# Fixtures declare the path they pretend to live at, so path-scoped rules
# are exercised for real from inside tests/lint_fixtures/.
FIXTURE_PATH_RE = re.compile(r"SFS_LINT_FIXTURE_PATH:\s*(\S+)")


@dataclass
class Allow:
    line: int
    rule: str
    reason: str


def parse_allows(lexed: LexedFile) -> tuple[list[Allow], list[Finding]]:
    """Returns (valid allows, meta findings for malformed ones)."""
    allows: list[Allow] = []
    meta: list[Finding] = []
    for ln, comment in sorted(lexed.comments.items()):
        m = ALLOW_RE.search(comment)
        if not m:
            if ALLOW_ATTEMPT_RE.search(comment):
                meta.append(Finding("", ln, "allow-no-reason",
                                    "malformed SFS_LINT_ALLOW — expected "
                                    "SFS_LINT_ALLOW(rule): reason"))
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if rule not in RULES:
            meta.append(Finding("", ln, "allow-unknown-rule",
                                f"SFS_LINT_ALLOW names unknown rule '{rule}'"))
            continue
        if not reason:
            meta.append(Finding("", ln, "allow-no-reason",
                                f"SFS_LINT_ALLOW({rule}) has no reason — a "
                                "justification is mandatory"))
            continue
        allows.append(Allow(ln, rule, reason))
    return allows, meta


def apply_allows(findings: list[Finding], allows: list[Allow]) -> list[Finding]:
    """An allow on line L suppresses findings of its rule on L (trailing
    annotation) and L+1 (annotation on its own line above)."""
    allowed: set[tuple[str, int]] = set()
    for a in allows:
        allowed.add((a.rule, a.line))
        allowed.add((a.rule, a.line + 1))
    return [f for f in findings if (f.rule, f.line) not in allowed]


# --------------------------------------------------------------------------
# Token-engine rules
# --------------------------------------------------------------------------

R1_STD_RNG_RE = re.compile(
    r"\bstd\s*::\s*(mt19937(?:_64)?|random_device|default_random_engine|"
    r"minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b|s?rand)\b")
R1_LIBC_RNG_RE = re.compile(r"(?<![\w:.>])(rand|srand|random|srandom|"
                            r"drand48|lrand48|mrand48|rand_r)\s*\(")
R1_TIME_ENTROPY_RE = re.compile(r"\btime\s*\(\s*(?:0|NULL|nullptr)\s*\)")
R1_CLOCK_SEED_RE = re.compile(
    r"(seed|Seed|Rng|rng)\w*[^;\n]*_clock\s*::\s*now\s*\(|"
    r"_clock\s*::\s*now\s*\(\s*\)[^;\n]*\b(seed|Seed)")

R2_RE = re.compile(r"\bderive_stream_seed\s*\(")

R3_SURFACE_RE = re.compile(
    r'#\s*include\s*"sim/(report|experiment)\.hpp"|'
    r"\bResultsEmitter\b|\bemit_object\b|\bBENCH_JSON\b")
R3_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set)\s*<[^;{]*?>\s+(\w+)")
R3_INLINE_ITER_RE = re.compile(r":\s*\w[\w:]*\s*\.?\s*$")  # unused; kept simple below

R4_RE = re.compile(r"\b(measure_weak_portfolio|measure_strong_portfolio)\s*\(")

R5_THROW_RE = re.compile(r"\bthrow\b")
R5_ASSERT_RE = re.compile(r"(?<!static_)\bassert\s*\(")


def _line_findings(path: str, code: str, regex: re.Pattern, rule: str,
                   message: str) -> list[Finding]:
    found = []
    for idx, line_text in enumerate(code.split("\n"), start=1):
        if regex.search(line_text):
            found.append(Finding(path, idx, rule, message))
    return found


def token_rule_rng_sources(path: str, lexed: LexedFile) -> list[Finding]:
    out = []
    out += _line_findings(path, lexed.code, R1_STD_RNG_RE, "rng-sources",
                          "std::<random> engine/device — all randomness must "
                          "come from sfs::rng (src/rng/) so streams stay "
                          "seeded, derived, and auditable")
    out += _line_findings(path, lexed.code, R1_LIBC_RNG_RE, "rng-sources",
                          "libc RNG — process-global, unseeded-by-discipline; "
                          "use sfs::rng")
    out += _line_findings(path, lexed.code, R1_TIME_ENTROPY_RE, "rng-sources",
                          "time(...) as entropy — wall clock in a seed makes "
                          "every run unreproducible")
    out += _line_findings(path, lexed.code, R1_CLOCK_SEED_RE, "rng-sources",
                          "clock-derived value feeding a seed/Rng — "
                          "reproducibility requires explicit seeds")
    return out


def token_rule_raw_derive(path: str, lexed: LexedFile) -> list[Finding]:
    return _line_findings(
        path, lexed.code, R2_RE, "raw-derive",
        "raw derive_stream_seed call — route through "
        "rng::audited_stream_seed (SFS_RNG_AUDIT coverage) or a versioned "
        "rng::StreamPlan; the PR 3 audit caught a real seed collision here")


def token_rule_unordered_emission(path: str, lexed: LexedFile) -> list[Finding]:
    code = lexed.code
    if not R3_SURFACE_RE.search(code):
        return []
    out: list[Finding] = []
    unordered_vars = set(R3_DECL_RE.findall(code))
    msg = ("iteration over a std::unordered_ container in an emitter TU — "
           "hash-iteration order is implementation-defined and would leak "
           "into committed BENCH_JSON artifacts; iterate a sorted copy or "
           "an ordered container")
    for idx, line_text in enumerate(code.split("\n"), start=1):
        # Range-for directly over an unordered temporary or declared var.
        m = re.search(r"for\s*\([^;)]*:\s*([\w:]+)", line_text)
        if m:
            target = m.group(1).split("::")[-1]
            if target in unordered_vars or "unordered_" in m.group(1):
                out.append(Finding(path, idx, "unordered-emission", msg))
                continue
        # Explicit iterator walks: var.begin() / var.cbegin().
        m = re.search(r"\b(\w+)\s*\.\s*c?begin\s*\(", line_text)
        if m and m.group(1) in unordered_vars:
            out.append(Finding(path, idx, "unordered-emission", msg))
    return out


def token_rule_legacy_api(path: str, lexed: LexedFile) -> list[Finding]:
    return _line_findings(
        path, lexed.code, R4_RE, "legacy-api",
        "legacy measure_*_portfolio call — the compat surface is pinned to "
        "src/sim/sweep.{hpp,cpp} + tests/test_sweep_compat.cpp; use "
        "sim::measure_portfolio(RunPlan) (docs/SEARCH.md)")


def token_rule_check_discipline(path: str, lexed: LexedFile) -> list[Finding]:
    out = []
    out += _line_findings(path, lexed.code, R5_THROW_RE, "check-discipline",
                          "raw throw in src/ — use SFS_REQUIRE (precondition) "
                          "or SFS_CHECK (invariant) from base/check.hpp so "
                          "failures carry expression + location")
    out += _line_findings(path, lexed.code, R5_ASSERT_RE, "check-discipline",
                          "assert() compiles out in release builds — use "
                          "SFS_CHECK, which is always on by policy")
    return out


TOKEN_RULE_FNS = {
    "rng-sources": token_rule_rng_sources,
    "raw-derive": token_rule_raw_derive,
    "unordered-emission": token_rule_unordered_emission,
    "legacy-api": token_rule_legacy_api,
    "check-discipline": token_rule_check_discipline,
}


# --------------------------------------------------------------------------
# Optional libclang engine (upgrades R2/R4/R5 to AST precision)
# --------------------------------------------------------------------------

def try_libclang():
    """Returns the clang.cindex module, or None when unavailable."""
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def libclang_findings(path: str, repo_root: Path, cindex) -> list[Finding] | None:
    """AST-level R2/R4/R5 for one file; None on parse failure (caller falls
    back to the token engine for those rules)."""
    try:
        index = cindex.Index.create()
        tu = index.parse(str(repo_root / path),
                         args=["-std=c++20", f"-I{repo_root / 'src'}"])
    except Exception:
        return None
    if tu is None:
        return None
    out: list[Finding] = []
    this_file = str(repo_root / path)
    for node in tu.cursor.walk_preorder():
        loc = node.location
        if loc.file is None or str(loc.file) != this_file:
            continue
        kind = node.kind
        if kind == cindex.CursorKind.CALL_EXPR:
            name = node.spelling or ""
            if name == "derive_stream_seed":
                out.append(Finding(path, loc.line, "raw-derive",
                                   "raw derive_stream_seed call (AST) — use "
                                   "audited_stream_seed / StreamPlan"))
            elif name in ("measure_weak_portfolio", "measure_strong_portfolio"):
                out.append(Finding(path, loc.line, "legacy-api",
                                   f"legacy {name} call (AST) — use "
                                   "sim::measure_portfolio(RunPlan)"))
        elif kind == cindex.CursorKind.CXX_THROW_EXPR:
            out.append(Finding(path, loc.line, "check-discipline",
                               "raw throw expression (AST) — use "
                               "SFS_REQUIRE / SFS_CHECK"))
    return out


LIBCLANG_RULES = ("raw-derive", "legacy-api", "check-discipline")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint_text(path: str, text: str, engine: str, repo_root: Path,
              cindex=None) -> list[Finding]:
    """Lints one file's contents under its repo-relative `path` (which
    drives rule scoping). Returns unsuppressed findings + meta findings."""
    lexed = lex(text)
    allows, meta = parse_allows(lexed)
    for f in meta:
        f.path = path

    ast_findings: list[Finding] | None = None
    if engine == "libclang" and cindex is not None:
        ast_findings = libclang_findings(path, repo_root, cindex)

    findings: list[Finding] = []
    for rule_name, rule in RULES.items():
        if not rule.in_scope(path):
            continue
        if ast_findings is not None and rule_name in LIBCLANG_RULES:
            findings.extend(f for f in ast_findings if f.rule == rule_name)
        else:
            findings.extend(TOKEN_RULE_FNS[rule_name](path, lexed))

    findings = apply_allows(findings, allows)
    findings.extend(meta)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_files(repo_root: Path, explicit: list[str]) -> list[str]:
    if explicit:
        out = []
        for raw in explicit:
            p = Path(raw)
            rel = p if not p.is_absolute() else p.relative_to(repo_root)
            out.append(rel.as_posix())
        return out
    files = []
    for d in SCAN_DIRS:
        base = repo_root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            rel = p.relative_to(repo_root).as_posix()
            if p.suffix in SOURCE_SUFFIXES and not _in_dir(rel, FIXTURE_DIR):
                files.append(rel)
    return files


def run_lint(repo_root: Path, files: list[str], engine: str,
             as_json: bool) -> int:
    cindex = None
    if engine in ("auto", "libclang"):
        cindex = try_libclang()
        if engine == "libclang" and cindex is None:
            print("sfs_lint: --engine libclang requested but python clang "
                  "bindings/libclang are unavailable", file=sys.stderr)
            return 2
    effective = "libclang" if cindex is not None else "token"

    all_findings: list[Finding] = []
    for rel in files:
        full = repo_root / rel
        if not full.is_file():
            print(f"sfs_lint: no such file: {rel}", file=sys.stderr)
            return 2
        text = full.read_text(encoding="utf-8", errors="replace")
        all_findings.extend(lint_text(rel, text, effective, repo_root, cindex))

    if as_json:
        for f in all_findings:
            print(json.dumps({"path": f.path, "line": f.line, "rule": f.rule,
                              "message": f.message}))
    else:
        for f in all_findings:
            print(f.render())
    if all_findings:
        print(f"sfs_lint: {len(all_findings)} violation(s) in "
              f"{len(files)} file(s) [{effective} engine]", file=sys.stderr)
        return 1
    print(f"sfs_lint: OK — {len(files)} file(s) clean "
          f"[{effective} engine]")
    return 0


# --------------------------------------------------------------------------
# Self-test over the fixture corpus
# --------------------------------------------------------------------------

def parse_expectations(fixture: Path) -> list[tuple[int, str]]:
    """Sidecar `<fixture>.expect`: one `LINE RULE` pair per line; missing
    or empty sidecar means the fixture must lint clean."""
    sidecar = fixture.with_suffix(fixture.suffix + ".expect")
    if not sidecar.is_file():
        return []
    expected = []
    for raw in sidecar.read_text().splitlines():
        raw = raw.strip()
        if not raw or raw.startswith("#"):
            continue
        line_s, rule = raw.split()
        expected.append((int(line_s), rule))
    return expected


def run_self_test(repo_root: Path, fixtures_dir: Path, engine: str) -> int:
    if not fixtures_dir.is_dir():
        print(f"sfs_lint: fixture dir not found: {fixtures_dir}",
              file=sys.stderr)
        return 2
    cindex = try_libclang() if engine in ("auto", "libclang") else None
    effective = "libclang" if cindex is not None else "token"

    fixtures = sorted(p for p in fixtures_dir.iterdir()
                      if p.suffix in SOURCE_SUFFIXES)
    if not fixtures:
        print(f"sfs_lint: no fixtures under {fixtures_dir}", file=sys.stderr)
        return 2

    failures = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        m = FIXTURE_PATH_RE.search(text)
        if not m:
            print(f"FAIL {fixture.name}: missing "
                  "// SFS_LINT_FIXTURE_PATH: <virtual path> marker")
            failures += 1
            continue
        vpath = m.group(1)
        # Fixtures exercise scoping via their declared virtual path; the
        # AST engine cannot parse a file at a path it does not exist at,
        # so fixtures always run the token engine (the engines share the
        # suppression/scoping logic pinned here).
        got = {(f.line, f.rule)
               for f in lint_text(vpath, text, "token", repo_root)}
        want = set(parse_expectations(fixture))
        if got == want:
            verdict = "clean" if not want else f"{len(want)} expected hit(s)"
            print(f"ok   {fixture.name}: {verdict}")
            continue
        failures += 1
        print(f"FAIL {fixture.name} (as {vpath}):")
        for line, rule in sorted(want - got):
            print(f"  missing expected {rule} at line {line}")
        for line, rule in sorted(got - want):
            print(f"  unexpected {rule} at line {line}")

    total = len(fixtures)
    if failures:
        print(f"sfs_lint self-test: {failures}/{total} fixture(s) FAILED "
              f"[{effective} engine available: "
              f"{'yes' if cindex else 'no'}]")
        return 1
    print(f"sfs_lint self-test: {total}/{total} fixtures OK")
    return 0


# --------------------------------------------------------------------------

def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sfs_lint.py",
        description="determinism & API-invariant lint for sfsearch "
                    "(docs/ANALYSIS.md)")
    parser.add_argument("--all", action="store_true",
                        help="lint every C++ file under "
                             + ", ".join(SCAN_DIRS))
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (repo-relative)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--engine", choices=("auto", "token", "libclang"),
                        default="auto")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSONL")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", metavar="FIXTURE_DIR",
                        help="run the fixture corpus and verify each rule "
                             "fires exactly where expected")
    args = parser.parse_args(argv)

    repo_root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.name:20} {rule.summary}")
        for name in META_RULES:
            print(f"{name:20} (meta) malformed/unreasoned SFS_LINT_ALLOW")
        return 0

    if args.self_test:
        return run_self_test(repo_root, Path(args.self_test), args.engine)

    if not args.all and not args.files:
        parser.print_usage(sys.stderr)
        print("sfs_lint: pass --all or explicit files", file=sys.stderr)
        return 2
    if args.all and args.files:
        print("sfs_lint: --all and explicit files are mutually exclusive",
              file=sys.stderr)
        return 2

    files = collect_files(repo_root, args.files)
    return run_lint(repo_root, files, args.engine, args.json)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
