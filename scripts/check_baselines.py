#!/usr/bin/env python3
"""Baseline guard for the committed BENCH_*.json perf artifacts.

Usage: scripts/check_baselines.py FRESH_M2.json FRESH_M5.json

Checks, against the committed BENCH_m2.json / BENCH_m5.json at the repo
root:

  1. the fresh captures are non-empty JSONL with the expected schema keys
     (an emitter regression that silently produces empty or misshapen
     files is exactly what left BENCH_m2.json at 0 bytes once);
  2. every committed record's case/policy still exists in the fresh
     capture;
  3. throughput has not regressed by more than the fence (fresh must be
     at least committed/3). The wide 3x fence absorbs host-class noise
     between the capture machine and CI runners while still catching
     order-of-magnitude regressions (an accidentally quadratic hot path,
     a debug-build artifact);
  4. m5's bit_identical flag is still true in the fresh capture.

Exit 0 when all checks pass, 1 with a per-failure report otherwise.
"""

import json
import pathlib
import sys

FENCE = 3.0

CHECKS = {
    "m2": {
        "committed": "BENCH_m2.json",
        "key": "case",
        "metric": "items_per_second",
        "required": {
            "bench", "case", "iterations", "real_time", "cpu_time",
            "time_unit", "items_per_second",
        },
    },
    "m5_query_engine": {
        "committed": "BENCH_m5.json",
        "key": "policy",
        "metric": "seq_qps",
        "required": {
            "bench", "policy", "model", "n", "queries", "seq_qps",
            "pool_qps", "speedup", "mean_requests", "found_frac",
            "bit_identical", "stream_plan", "interleave",
        },
    },
}


def load_jsonl(path):
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def check(bench, fresh_path, errors):
    spec = CHECKS[bench]
    root = pathlib.Path(__file__).resolve().parent.parent
    committed_path = root / spec["committed"]

    fresh = load_jsonl(fresh_path)
    committed = load_jsonl(committed_path)
    if not fresh:
        errors.append(f"{bench}: fresh capture {fresh_path} is empty")
        return
    if not committed:
        errors.append(f"{bench}: committed baseline {committed_path} is empty")
        return

    for rec in fresh:
        missing = spec["required"] - rec.keys()
        if missing:
            errors.append(
                f"{bench}: fresh record {rec.get(spec['key'], '?')} is "
                f"missing keys {sorted(missing)}")
        if rec.get("bit_identical") is False:
            errors.append(
                f"{bench}: {rec.get(spec['key'], '?')} reports "
                "bit_identical=false (seq/pool divergence)")

    fresh_by_key = {rec[spec["key"]]: rec for rec in fresh
                    if spec["key"] in rec}
    for rec in committed:
        key = rec[spec["key"]]
        if key not in fresh_by_key:
            errors.append(f"{bench}: committed case '{key}' missing from "
                          "the fresh capture")
            continue
        old = rec[spec["metric"]]
        new = fresh_by_key[key][spec["metric"]]
        if new * FENCE < old:
            errors.append(
                f"{bench}: '{key}' {spec['metric']} regressed beyond the "
                f"{FENCE}x fence: committed {old:.0f}, fresh {new:.0f}")


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    errors = []
    check("m2", argv[1], errors)
    check("m5_query_engine", argv[2], errors)
    if errors:
        print("baseline check FAILED:")
        for e in errors:
            print(f"  - {e}")
        return 1
    print("baseline check passed: schema OK, all cases present, "
          f"throughput within the {FENCE}x fence.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
