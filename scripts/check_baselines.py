#!/usr/bin/env python3
"""Baseline guard for the committed BENCH_*.json perf artifacts.

Usage:
  check_baselines.py FRESH_M2.json FRESH_M5.json FRESH_M6.json
                                                     full check
  check_baselines.py --schema-only FILE --bench B    schema-check one file
  check_baselines.py --print-schema BENCH            list required keys
  check_baselines.py --self-test                     exercise the checker

The full check compares fresh --quick captures against the committed
BENCH_m2.json / BENCH_m5.json / BENCH_m6.json at the repo root:

  1. SCHEMA — the fresh captures are non-empty JSONL with the required
     keys per record (an emitter regression that silently produces empty
     or misshapen files is exactly what left BENCH_m2.json at 0 bytes
     once), and m5's bit_identical flag is still true;
  2. MISSING-CASE — every committed record's case/policy still exists in
     the fresh capture;
  3. REGRESSION — throughput has not regressed by more than the fence
     (fresh must be at least committed/3). The wide 3x fence absorbs
     host-class noise between the capture machine and CI runners while
     still catching order-of-magnitude regressions (an accidentally
     quadratic hot path, a debug-build artifact).

The BENCH_SCHEMA table below is the single source of truth for the
required keys; scripts/capture_baselines.sh validates its captures
through --schema-only, so the capture and check sides cannot drift.

Exit codes (distinct per failure class; most severe class wins):
  0  all checks passed
  2  usage error / missing input file
  3  schema failure (empty capture, missing keys, bit_identical=false)
  4  committed case missing from the fresh capture
  5  throughput regression beyond the fence
"""

import argparse
import json
import pathlib
import sys
import tempfile

FENCE = 3.0

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_SCHEMA = 3
EXIT_MISSING_CASE = 4
EXIT_REGRESSION = 5

# One source of truth for the BENCH_JSON record schema of every committed
# baseline (capture_baselines.sh consumes it via --schema-only).
BENCH_SCHEMA = {
    "m2": {
        "committed": "BENCH_m2.json",
        "key": "case",
        "metric": "items_per_second",
        "required": {
            "bench", "case", "iterations", "real_time", "cpu_time",
            "time_unit", "items_per_second",
        },
    },
    "m5_query_engine": {
        "committed": "BENCH_m5.json",
        "key": "policy",
        "metric": "seq_qps",
        "required": {
            "bench", "policy", "model", "n", "queries", "seq_qps",
            "pool_qps", "speedup", "mean_requests", "found_frac",
            "bit_identical", "stream_plan", "interleave",
        },
    },
    "m6_compression": {
        "committed": "BENCH_m6.json",
        "key": "case",
        "metric": "decode_mslots_per_s",
        "required": {
            "bench", "case", "n", "edges", "graph_bytes",
            "compressed_bytes", "ratio", "decode_mslots_per_s",
            "bit_identical",
        },
    },
}

# The full check's positional capture order (and the committed files it
# compares them against).
FULL_CHECK_ORDER = ("m2", "m5_query_engine", "m6_compression")


class Failures:
    """Failures bucketed by class; the exit code is the most severe
    bucket present (schema > missing-case > regression)."""

    def __init__(self):
        self.schema = []
        self.missing = []
        self.regression = []

    def empty(self):
        return not (self.schema or self.missing or self.regression)

    def exit_code(self):
        if self.schema:
            return EXIT_SCHEMA
        if self.missing:
            return EXIT_MISSING_CASE
        if self.regression:
            return EXIT_REGRESSION
        return EXIT_OK

    def report(self, out=sys.stdout):
        for label, bucket in (("schema", self.schema),
                              ("missing-case", self.missing),
                              ("regression", self.regression)):
            for msg in bucket:
                print(f"  - [{label}] {msg}", file=out)


def load_jsonl(path):
    records = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def check_schema(bench, records, label, failures):
    spec = BENCH_SCHEMA[bench]
    if not records:
        failures.schema.append(f"{bench}: {label} is empty")
        return
    for rec in records:
        missing = spec["required"] - rec.keys()
        if missing:
            failures.schema.append(
                f"{bench}: {label} record {rec.get(spec['key'], '?')} is "
                f"missing keys {sorted(missing)}")
        if rec.get("bit_identical") is False:
            failures.schema.append(
                f"{bench}: {rec.get(spec['key'], '?')} reports "
                "bit_identical=false (seq/pool divergence)")


def check(bench, fresh_path, repo_root, failures):
    spec = BENCH_SCHEMA[bench]
    fresh = load_jsonl(fresh_path)
    committed = load_jsonl(repo_root / spec["committed"])

    check_schema(bench, fresh, f"fresh capture {fresh_path}", failures)
    if not committed:
        failures.schema.append(
            f"{bench}: committed baseline {spec['committed']} is empty")
    if not fresh or not committed:
        return

    fresh_by_key = {rec[spec["key"]]: rec for rec in fresh
                    if spec["key"] in rec}
    for rec in committed:
        key = rec[spec["key"]]
        if key not in fresh_by_key:
            failures.missing.append(
                f"{bench}: committed case '{key}' missing from the fresh "
                "capture")
            continue
        old = rec[spec["metric"]]
        new = fresh_by_key[key].get(spec["metric"])
        if not isinstance(new, (int, float)) or isinstance(new, bool):
            failures.schema.append(
                f"{bench}: '{key}' fresh {spec['metric']} is not numeric")
            continue
        if new * FENCE < old:
            failures.regression.append(
                f"{bench}: '{key}' {spec['metric']} regressed beyond the "
                f"{FENCE}x fence: committed {old:.0f}, fresh {new:.0f}")


# -------------------------------------------------------------- self-test

GOOD_M2 = {"bench": "m2", "case": "strong/4096", "iterations": 10,
           "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ns",
           "items_per_second": 1000.0}
GOOD_M5 = {"bench": "m5_query_engine", "policy": "bfs", "model": "weak",
           "n": 1000, "queries": 64, "seq_qps": 500.0, "pool_qps": 900.0,
           "speedup": 1.8, "mean_requests": 10.0, "found_frac": 1.0,
           "bit_identical": True, "stream_plan": "kCounter",
           "interleave": 1}
GOOD_M6 = {"bench": "m6_compression", "case": "varint", "n": 65536,
           "edges": 65535, "graph_bytes": 2621424.0,
           "compressed_bytes": 468554.0, "ratio": 5.59,
           "decode_mslots_per_s": 7.5, "bit_identical": True}


def _write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def self_test():
    """Fixture cases asserting one distinct exit code per failure class,
    plus the schema > missing-case > regression precedence."""
    cases = []

    def case(name, fresh_m2, fresh_m5, want, fresh_m6=None):
        fresh_m6 = [GOOD_M6] if fresh_m6 is None else fresh_m6
        cases.append((name, fresh_m2, fresh_m5, fresh_m6, want))

    case("all-good", [GOOD_M2], [GOOD_M5], EXIT_OK)
    case("empty-fresh", [], [GOOD_M5], EXIT_SCHEMA)
    case("missing-key",
         [{k: v for k, v in GOOD_M2.items() if k != "items_per_second"}],
         [GOOD_M5], EXIT_SCHEMA)
    case("bit-identical-false", [GOOD_M2],
         [dict(GOOD_M5, bit_identical=False)], EXIT_SCHEMA)
    case("missing-case", [dict(GOOD_M2, case="other/1")], [GOOD_M5],
         EXIT_MISSING_CASE)
    case("regression", [dict(GOOD_M2, items_per_second=100.0)], [GOOD_M5],
         EXIT_REGRESSION)
    case("within-fence", [dict(GOOD_M2, items_per_second=400.0)], [GOOD_M5],
         EXIT_OK)
    case("schema-beats-regression",
         [dict(GOOD_M2, items_per_second=100.0)],
         [{k: v for k, v in GOOD_M5.items() if k != "found_frac"}],
         EXIT_SCHEMA)
    case("missing-beats-regression",
         [dict(GOOD_M2, items_per_second=100.0),
          dict(GOOD_M2, case="extra/1")],
         [dict(GOOD_M5, policy="renamed")], EXIT_MISSING_CASE)
    # m6 is guarded by the same machinery: a lossy codec (bit_identical
    # false) is a schema failure, a decode-rate collapse a regression.
    case("m6-lossy-codec", [GOOD_M2], [GOOD_M5], EXIT_SCHEMA,
         fresh_m6=[dict(GOOD_M6, bit_identical=False)])
    case("m6-missing-codec", [GOOD_M2], [GOOD_M5], EXIT_MISSING_CASE,
         fresh_m6=[dict(GOOD_M6, case="renamed")])
    case("m6-decode-regression", [GOOD_M2], [GOOD_M5], EXIT_REGRESSION,
         fresh_m6=[dict(GOOD_M6, decode_mslots_per_s=1.0)])

    failed = 0
    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = pathlib.Path(tmp)
        for name, m2, m5, m6, want in cases:
            root = tmpdir / name
            root.mkdir()
            _write_jsonl(root / "BENCH_m2.json", [GOOD_M2])
            _write_jsonl(root / "BENCH_m5.json", [GOOD_M5])
            _write_jsonl(root / "BENCH_m6.json", [GOOD_M6])
            _write_jsonl(root / "fresh_m2.json", m2)
            _write_jsonl(root / "fresh_m5.json", m5)
            _write_jsonl(root / "fresh_m6.json", m6)
            failures = Failures()
            check("m2", root / "fresh_m2.json", root, failures)
            check("m5_query_engine", root / "fresh_m5.json", root, failures)
            check("m6_compression", root / "fresh_m6.json", root, failures)
            got = failures.exit_code()
            if got == want:
                print(f"ok   {name}: exit {got}")
            else:
                failed += 1
                print(f"FAIL {name}: want exit {want}, got {got}")
                failures.report()

        # --schema-only surface: good file passes, truncated file fails.
        root = tmpdir / "schema-only"
        root.mkdir()
        _write_jsonl(root / "good.json", [GOOD_M5])
        _write_jsonl(root / "bad.json",
                     [{k: v for k, v in GOOD_M5.items() if k != "seq_qps"}])
        for fname, want in (("good.json", EXIT_OK), ("bad.json", EXIT_SCHEMA)):
            failures = Failures()
            check_schema("m5_query_engine", load_jsonl(root / fname),
                         fname, failures)
            got = failures.exit_code()
            if got == want:
                print(f"ok   schema-only/{fname}: exit {got}")
            else:
                failed += 1
                print(f"FAIL schema-only/{fname}: want exit {want}, "
                      f"got {got}")

    total = len(cases) + 2
    if failed:
        print(f"check_baselines self-test: {failed}/{total} case(s) FAILED")
        return 1
    print(f"check_baselines self-test: {total}/{total} cases OK")
    return 0


# ------------------------------------------------------------------- main

def main(argv):
    parser = argparse.ArgumentParser(
        prog="check_baselines.py",
        description="guard the committed BENCH_*.json perf baselines",
        epilog="exit codes: 0 ok, 2 usage, 3 schema, 4 missing-case, "
               "5 regression")
    parser.add_argument("fresh", nargs="*", metavar="FRESH.json",
                        help="fresh captures, in order: FRESH_M2.json "
                             "FRESH_M5.json FRESH_M6.json")
    parser.add_argument("--repo-root", default=None,
                        help="directory holding the committed baselines "
                             "(default: parent of this script)")
    parser.add_argument("--schema-only", metavar="FILE",
                        help="only schema-check FILE (requires --bench)")
    parser.add_argument("--bench", choices=sorted(BENCH_SCHEMA),
                        help="which schema --schema-only validates against")
    parser.add_argument("--print-schema", metavar="BENCH",
                        choices=sorted(BENCH_SCHEMA),
                        help="print BENCH's required keys, one per line")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixture cases")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    if args.print_schema:
        for key in sorted(BENCH_SCHEMA[args.print_schema]["required"]):
            print(key)
        return EXIT_OK

    if args.schema_only:
        if not args.bench:
            parser.error("--schema-only requires --bench")
        path = pathlib.Path(args.schema_only)
        if not path.is_file():
            print(f"check_baselines: no such file: {path}", file=sys.stderr)
            return EXIT_USAGE
        failures = Failures()
        check_schema(args.bench, load_jsonl(path), str(path), failures)
        if not failures.empty():
            print(f"schema check FAILED for {path} [{args.bench}]:")
            failures.report()
            return failures.exit_code()
        print(f"schema OK: {path} [{args.bench}]")
        return EXIT_OK

    if len(args.fresh) != len(FULL_CHECK_ORDER):
        parser.error("expected exactly three captures: FRESH_M2.json "
                     "FRESH_M5.json FRESH_M6.json")
    repo_root = (pathlib.Path(args.repo_root) if args.repo_root else
                 pathlib.Path(__file__).resolve().parent.parent)
    for p in args.fresh:
        if not pathlib.Path(p).is_file():
            print(f"check_baselines: no such file: {p}", file=sys.stderr)
            return EXIT_USAGE

    failures = Failures()
    for bench, fresh in zip(FULL_CHECK_ORDER, args.fresh):
        check(bench, pathlib.Path(fresh), repo_root, failures)
    if not failures.empty():
        print("baseline check FAILED:")
        failures.report()
        return failures.exit_code()
    print("baseline check passed: schema OK, all cases present, "
          f"throughput within the {FENCE}x fence.")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
