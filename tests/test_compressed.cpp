// Tests for the compressed CSR substrate (graph/compressed.hpp): the
// Elias-Fano sequence primitives, both row codecs, and the headline
// contract — Graph ⇄ CompressedGraph round-trips bit-exactly for every
// generator in the tree, and decode_adjacent reproduces Graph::adjacent
// slot for slot.
#include "graph/compressed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/kleinberg.hpp"
#include "gen/mori.hpp"
#include "graph/builder.hpp"

namespace {

using sfs::graph::AdjacencyDecodeBuffer;
using sfs::graph::CompressedGraph;
using sfs::graph::EliasFanoSequence;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::RowCodec;
using sfs::graph::VertexId;
using sfs::rng::Rng;

constexpr RowCodec kCodecs[] = {RowCodec::kVarint, RowCodec::kEliasFano};

void expect_graph_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ea = a.edges();
  const auto eb = b.edges();
  EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin()));
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto ia = a.incident(v);
    const auto ib = b.incident(v);
    ASSERT_EQ(ia.size(), ib.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
    const auto aa = a.adjacent(v);
    const auto ab = b.adjacent(v);
    EXPECT_TRUE(std::equal(aa.begin(), aa.end(), ab.begin()));
    EXPECT_EQ(a.in_degree(v), b.in_degree(v));
    EXPECT_EQ(a.out_degree(v), b.out_degree(v));
  }
}

/// The full contract for one graph and codec: row decode matches
/// adjacent(v) slot for slot, and decompress() rebuilds the Graph
/// bit-exactly.
void expect_round_trip(const Graph& g, RowCodec codec) {
  const CompressedGraph c = CompressedGraph::from_graph(g, codec);
  ASSERT_EQ(c.num_vertices(), g.num_vertices());
  ASSERT_EQ(c.num_edges(), g.num_edges());
  AdjacencyDecodeBuffer buffer;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(c.degree(v), g.degree(v)) << "vertex " << v;
    const auto decoded = c.adjacent(v, buffer);
    const auto expected = g.adjacent(v);
    ASSERT_EQ(decoded.size(), expected.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(), expected.begin()))
        << "row mismatch at vertex " << v << " codec "
        << sfs::graph::row_codec_name(codec);
  }
  expect_graph_equal(g, c.decompress());
}

// -------------------------------------------------- Elias-Fano sequence

TEST(EliasFano, RoundTripsAssortedSequences) {
  const std::vector<std::vector<std::uint64_t>> cases = {
      {},
      {0},
      {7},
      {0, 0, 0, 0},
      {1, 2, 3, 4, 5},
      {0, 0, 5, 5, 5, 1000, 1000000, 1000000},
  };
  for (const auto& values : cases) {
    const auto seq = EliasFanoSequence::encode(values);
    ASSERT_EQ(seq.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(seq.get(i), values[i]) << "index " << i;
    }
  }
}

TEST(EliasFano, CrossesSelectSampleBoundaries) {
  // > 4 sample blocks with irregular gaps, so get() exercises the sampled
  // select path, not just the first word.
  std::vector<std::uint64_t> values;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 1500; ++i) {
    v += (i * i) % 97;
    values.push_back(v);
  }
  const auto seq = EliasFanoSequence::encode(values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(seq.get(i), values[i]) << "index " << i;
  }
}

TEST(EliasFano, RejectsDecreasingInputAndBadIndex) {
  const std::vector<std::uint64_t> bad = {3, 2};
  EXPECT_THROW((void)EliasFanoSequence::encode(bad), std::invalid_argument);
  const std::vector<std::uint64_t> good = {1, 2};
  const auto seq = EliasFanoSequence::encode(good);
  EXPECT_THROW((void)seq.get(2), std::invalid_argument);
}

// ------------------------------------------------------ hand-built edges

TEST(CompressedGraph, EmptyAndEdgelessGraphs) {
  for (const RowCodec codec : kCodecs) {
    expect_round_trip(Graph{}, codec);
    expect_round_trip(GraphBuilder(5).build(), codec);
  }
}

TEST(CompressedGraph, SelfLoopsAndParallelEdges) {
  // Self-loops (two consecutive incidence slots), parallel edges in both
  // orientations, and an isolated vertex — the edge cases of the
  // tail-replay reconstruction.
  GraphBuilder b(5);
  (void)b.add_edge(0, 0);
  (void)b.add_edge(1, 2);
  (void)b.add_edge(2, 1);
  (void)b.add_edge(1, 2);
  (void)b.add_edge(3, 3);
  (void)b.add_edge(3, 3);
  (void)b.add_edge(0, 3);
  const Graph g = b.build();
  for (const RowCodec codec : kCodecs) expect_round_trip(g, codec);
}

TEST(CompressedGraph, NonMonotoneTailOrder) {
  // Tails that jump backwards exercise the signed zigzag deltas of the
  // tail stream (growth models only ever move forward).
  GraphBuilder b(6);
  (void)b.add_edge(5, 0);
  (void)b.add_edge(0, 4);
  (void)b.add_edge(3, 5);
  (void)b.add_edge(1, 1);
  (void)b.add_edge(4, 0);
  const Graph g = b.build();
  for (const RowCodec codec : kCodecs) expect_round_trip(g, codec);
}

// --------------------------------------------------- all seven generators

TEST(CompressedGraph, RoundTripsBarabasiAlbert) {
  for (const bool distinct : {true, false}) {
    Rng rng(41 + distinct);
    const Graph g = sfs::gen::barabasi_albert(
        400, {.m = 3, .distinct_targets = distinct}, rng);
    for (const RowCodec codec : kCodecs) expect_round_trip(g, codec);
  }
}

TEST(CompressedGraph, RoundTripsConfigurationModel) {
  const sfs::gen::PowerLawSequenceParams seq{.exponent = 2.3, .d_min = 1};
  for (const bool erase : {false, true}) {
    Rng rng(42 + erase);
    const Graph g = sfs::gen::power_law_configuration_graph(
        400, seq, {.erase_defects = erase}, rng);
    for (const RowCodec codec : kCodecs) expect_round_trip(g, codec);
  }
}

TEST(CompressedGraph, RoundTripsCooperFrieze) {
  sfs::gen::CooperFriezeParams params;
  params.p = {0.5, 0.5};
  Rng rng(43);
  const auto g = sfs::gen::cooper_frieze(300, params, rng);
  for (const RowCodec codec : kCodecs) expect_round_trip(g.graph, codec);
}

TEST(CompressedGraph, RoundTripsErdosRenyi) {
  Rng r1(44);
  const Graph gnm = sfs::gen::erdos_renyi_gnm(300, 900, r1);
  Rng r2(45);
  const Graph gnp = sfs::gen::erdos_renyi_gnp(300, 0.02, r2);
  for (const RowCodec codec : kCodecs) {
    expect_round_trip(gnm, codec);
    expect_round_trip(gnp, codec);
  }
}

TEST(CompressedGraph, RoundTripsKleinberg) {
  Rng rng(46);
  const sfs::gen::KleinbergGrid grid(12, {.r = 2.0, .q = 2}, rng);
  for (const RowCodec codec : kCodecs) {
    expect_round_trip(grid.graph(), codec);
  }
}

TEST(CompressedGraph, RoundTripsMoriTree) {
  Rng rng(47);
  const Graph g = sfs::gen::mori_tree(400, sfs::gen::MoriParams{0.5}, rng);
  for (const RowCodec codec : kCodecs) expect_round_trip(g, codec);
}

TEST(CompressedGraph, RoundTripsMergedMori) {
  Rng rng(48);
  const Graph g =
      sfs::gen::merged_mori_graph(400, 3, sfs::gen::MoriParams{0.6}, rng);
  for (const RowCodec codec : kCodecs) expect_round_trip(g, codec);
}

// ----------------------------------------------------- memory accounting

TEST(CompressedGraph, CompressesPreferentialAttachmentSubstantially) {
  // The acceptance-grade 4x claim is measured at n >= 1e6 by the m6
  // experiment; at test scale the ratio is already well above 2x and the
  // accounting functions must agree with the actual stream sizes.
  Rng rng(49);
  const Graph g =
      sfs::gen::merged_mori_graph(20000, 1, sfs::gen::MoriParams{0.5}, rng);
  const std::size_t raw = sfs::graph::graph_memory_bytes(g);
  for (const RowCodec codec : kCodecs) {
    const CompressedGraph c = CompressedGraph::from_graph(g, codec);
    EXPECT_GT(c.memory_bytes(), 0u);
    EXPECT_GT(static_cast<double>(raw) / static_cast<double>(c.memory_bytes()),
              2.0)
        << sfs::graph::row_codec_name(codec);
  }
}

TEST(CompressedGraph, DecodeBufferIsReusedAcrossRows) {
  Rng rng(50);
  const Graph g = sfs::gen::barabasi_albert(500, {.m = 4}, rng);
  const CompressedGraph c = CompressedGraph::from_graph(g);
  AdjacencyDecodeBuffer buffer;
  // Warm the buffer past the maximum degree, then confirm no further
  // capacity growth while sweeping every row (the zero-alloc contract the
  // per-worker buffer in sim::WorkerContext relies on).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    (void)c.adjacent(v, buffer);
  }
  const std::size_t high_water = buffer.slots.capacity();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    (void)c.adjacent(v, buffer);
  }
  EXPECT_EQ(buffer.slots.capacity(), high_water);
}

}  // namespace
