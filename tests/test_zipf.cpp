// Tests for the bounded power-law sampler.
#include "rng/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using sfs::rng::BoundedZipf;
using sfs::rng::natural_cutoff;
using sfs::rng::Rng;

TEST(BoundedZipf, PmfSumsToOne) {
  BoundedZipf z(1, 50, 2.3);
  double total = 0.0;
  for (std::uint32_t d = 1; d <= 50; ++d) total += z.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BoundedZipf, PmfZeroOutsideSupport) {
  BoundedZipf z(2, 10, 2.0);
  EXPECT_DOUBLE_EQ(z.pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(z.pmf(11), 0.0);
  EXPECT_GT(z.pmf(2), 0.0);
  EXPECT_GT(z.pmf(10), 0.0);
}

TEST(BoundedZipf, PmfRatioFollowsPowerLaw) {
  const double k = 2.5;
  BoundedZipf z(1, 100, k);
  EXPECT_NEAR(z.pmf(2) / z.pmf(1), std::pow(2.0, -k), 1e-12);
  EXPECT_NEAR(z.pmf(10) / z.pmf(5), std::pow(2.0, -k), 1e-12);
}

TEST(BoundedZipf, SamplesWithinSupport) {
  BoundedZipf z(3, 17, 2.1);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const auto d = z.sample(rng);
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 17u);
  }
}

TEST(BoundedZipf, EmpiricalMeanMatchesAnalytic) {
  BoundedZipf z(1, 64, 2.3);
  Rng rng(2);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(z.sample(rng));
  EXPECT_NEAR(sum / kDraws, z.mean(), 0.02 * z.mean());
}

TEST(BoundedZipf, DegenerateSupport) {
  BoundedZipf z(4, 4, 3.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(z.mean(), 4.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 4u);
}

TEST(BoundedZipf, RejectsBadParams) {
  EXPECT_THROW(BoundedZipf(0, 5, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedZipf(5, 4, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedZipf(1, 5, 0.0), std::invalid_argument);
}

TEST(NaturalCutoff, KnownValues) {
  // n^{1/(k-1)}: 10000^{1/1.5} ≈ 464.1 -> 464.
  EXPECT_EQ(natural_cutoff(10000, 2.5), 464u);
  // k = 3: sqrt(n).
  EXPECT_EQ(natural_cutoff(10000, 3.0), 100u);
}

TEST(NaturalCutoff, MonotoneInN) {
  EXPECT_LE(natural_cutoff(1000, 2.3), natural_cutoff(10000, 2.3));
}

TEST(NaturalCutoff, RejectsFlatExponent) {
  EXPECT_THROW((void)natural_cutoff(100, 1.0), std::invalid_argument);
}

}  // namespace
