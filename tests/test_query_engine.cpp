// Tests for search::QueryEngine: the batched fixed-graph lookup runner.
// Core contract: a batch is a pure function of (graph, policy, seed,
// queries) — bit-identical for any thread count — verified here under the
// RNG stream audit.
#include "search/query_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gen/mori.hpp"
#include "graph/overlay.hpp"
#include "rng/random.hpp"
#include "rng/stream_audit.hpp"
#include "search/weak_algorithms.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::search::Query;
using sfs::search::QueryEngine;
using sfs::search::QueryEngineOptions;
using sfs::search::SearchResult;

Graph test_graph(std::size_t n = 300) {
  sfs::rng::Rng rng(99);
  return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
}

std::vector<Query> test_queries(const Graph& g, std::size_t count,
                                std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  std::vector<Query> queries(count);
  for (auto& q : queries) {
    q.start = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    do {
      q.target = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    } while (q.target == q.start);
  }
  return queries;
}

void expect_identical(const std::vector<SearchResult>& a,
                      const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].found, b[i].found) << i;
    EXPECT_EQ(a[i].requests, b[i].requests) << i;
    EXPECT_EQ(a[i].raw_requests, b[i].raw_requests) << i;
    EXPECT_EQ(a[i].path_length, b[i].path_length) << i;
    EXPECT_EQ(a[i].budget_exhausted, b[i].budget_exhausted) << i;
    EXPECT_EQ(a[i].gave_up, b[i].gave_up) << i;
    EXPECT_EQ(a[i].failed_requests, b[i].failed_requests) << i;
    EXPECT_EQ(a[i].restarts, b[i].restarts) << i;
    EXPECT_EQ(a[i].abandoned, b[i].abandoned) << i;
  }
}

TEST(QueryEngine, UnknownPolicyIsCheckedError) {
  const Graph g = test_graph();
  EXPECT_THROW(QueryEngine(g, "no-such-policy"), std::invalid_argument);
}

TEST(QueryEngine, BindsPolicyAndModelFromTheRegistry) {
  const Graph g = test_graph();
  QueryEngine weak(g, "bfs");
  EXPECT_EQ(weak.policy().name, "bfs");
  EXPECT_EQ(weak.model(), sfs::search::KnowledgeModel::kWeak);
  QueryEngine strong(g, "degree-greedy-strong");
  EXPECT_EQ(strong.model(), sfs::search::KnowledgeModel::kStrong);
}

TEST(QueryEngine, ExhaustivePolicyAnswersEveryQuery) {
  const Graph g = test_graph();
  QueryEngine engine(g, "bfs-strong");
  const auto queries = test_queries(g, 40, 7);
  const auto results = engine.run_batch(queries);
  EXPECT_EQ(engine.queries_served(), 40u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.found);
    EXPECT_LE(r.requests, g.num_vertices());
  }
}

TEST(QueryEngine, BatchBitIdenticalAcrossThreadCounts) {
  // The acceptance-criteria audit: threads=1 vs threads=4 vs the shared
  // pool, all under SFS_RNG_AUDIT, for a weak (randomized walk) policy —
  // the hardest case, since every step consumes RNG.
  auto& audit = sfs::rng::StreamAudit::instance();
  const bool was_enabled = audit.enabled();
  audit.set_enabled(true);
  audit.reset();

  const Graph g = test_graph();
  QueryEngineOptions options;
  options.seed = 0xCAFE;
  options.budget.max_raw_requests = 20000;
  QueryEngine engine(g, "random-walk", options);
  const auto queries = test_queries(g, 30, 13);

  const auto seq = engine.run_batch(queries, /*threads=*/1);
  const auto par = engine.run_batch(queries, /*threads=*/4);
  const auto pool = engine.run_batch(queries, /*threads=*/0);
  expect_identical(seq, par);
  expect_identical(seq, pool);
  EXPECT_EQ(engine.queries_served(), 90u);
  // One audited derivation per distinct (seed, stream, batch index);
  // re-running the same batch re-records the same triples.
  EXPECT_EQ(audit.recorded_count(), queries.size());

  audit.reset();
  audit.set_enabled(was_enabled);
}

TEST(QueryEngine, InterleaveWidthNeverChangesResults) {
  // The interleaved executor (search/drive.hpp lanes) is an execution-order
  // optimization only: widths 1 (run-to-completion), 3 (partial blocks),
  // and 8 (default) must agree bit for bit, across thread counts, under
  // the stream audit. Covers both knowledge models; random-walk is the
  // hardest case (every step consumes RNG).
  auto& audit = sfs::rng::StreamAudit::instance();
  const bool was_enabled = audit.enabled();
  audit.set_enabled(true);
  audit.reset();

  const Graph g = test_graph();
  const auto queries = test_queries(g, 29, 17);  // not a multiple of 8
  for (const char* policy : {"random-walk", "degree-greedy-strong"}) {
    std::vector<std::vector<SearchResult>> runs;
    for (const std::size_t width : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
      QueryEngineOptions options;
      options.seed = 0xBEEF;
      options.budget.max_raw_requests = 20000;
      options.interleave = width;
      QueryEngine engine(g, policy, options);
      runs.push_back(engine.run_batch(queries, /*threads=*/1));
      runs.push_back(engine.run_batch(queries, /*threads=*/4));
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
      expect_identical(runs[0], runs[r]);
    }
  }

  audit.reset();
  audit.set_enabled(was_enabled);
}

TEST(QueryEngine, LegacyStreamPlanReproducesPreVersioningStreams) {
  // options.stream_plan = kLegacy must reproduce the historical
  // derive_stream_seed-based engine exactly: a batch under the legacy plan
  // equals a hand-rolled run seeded with audited_stream_seed per index.
  const Graph g = test_graph(120);
  QueryEngineOptions options;
  options.seed = 0x5EED;
  options.budget.max_raw_requests = 20000;
  options.stream_plan = sfs::rng::StreamPlanVersion::kLegacy;
  QueryEngine engine(g, "bfs", options);
  const auto queries = test_queries(g, 8, 9);
  const auto results = engine.run_batch(queries);
  const std::uint64_t tag = sfs::rng::mix64(0x10e57ULL);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // SFS_LINT_ALLOW(raw-derive): replays the frozen kLegacy per-query stream by hand
    sfs::rng::Rng rng(sfs::rng::derive_stream_seed(options.seed, tag, i));
    sfs::search::BfsWeak searcher;
    sfs::search::SearchWorkspace ws;
    const auto expected = sfs::search::run_weak(
        g, queries[i].start, queries[i].target, searcher, rng,
        options.budget, ws);
    EXPECT_EQ(results[i].requests, expected.requests) << i;
    EXPECT_EQ(results[i].raw_requests, expected.raw_requests) << i;
    EXPECT_EQ(results[i].path_length, expected.path_length) << i;
  }
}

TEST(QueryEngine, StreamPlansDecorrelate) {
  // v1 and v2 give different randomness for the same seed (same policy,
  // same queries): at least one walk must diverge.
  const Graph g = test_graph();
  const auto queries = test_queries(g, 12, 23);
  std::vector<std::vector<SearchResult>> by_plan;
  for (const auto plan : {sfs::rng::StreamPlanVersion::kLegacy,
                          sfs::rng::StreamPlanVersion::kCounter}) {
    QueryEngineOptions options;
    options.seed = 7;
    options.budget.max_raw_requests = 20000;
    options.stream_plan = plan;
    QueryEngine engine(g, "random-walk", options);
    by_plan.push_back(engine.run_batch(queries));
  }
  bool any_different = false;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    any_different |=
        by_plan[0][i].raw_requests != by_plan[1][i].raw_requests;
  }
  EXPECT_TRUE(any_different);
}

TEST(QueryEngine, TwoEnginesSameSeedAgree) {
  const Graph g = test_graph();
  QueryEngineOptions options;
  options.seed = 42;
  options.budget.max_raw_requests = 20000;
  QueryEngine a(g, "random-frontier", options);
  QueryEngine b(g, "random-frontier", options);
  const auto queries = test_queries(g, 20, 3);
  expect_identical(a.run_batch(queries), b.run_batch(queries, 2));
}

TEST(QueryEngine, ResultsSpanOverloadMatchesAllocating) {
  const Graph g = test_graph();
  QueryEngine engine(g, "degree-greedy");
  const auto queries = test_queries(g, 10, 5);
  std::vector<SearchResult> results(queries.size());
  engine.run_batch(queries, results, /*threads=*/2);
  expect_identical(results, engine.run_batch(queries));
}

TEST(QueryEngine, ValidatesBatchBeforeRunningAnyOfIt) {
  const Graph g = test_graph(50);
  QueryEngine engine(g, "bfs");
  std::vector<Query> queries = test_queries(g, 4, 1);
  queries.push_back(Query{.start = 0, .target = 50});  // out of range
  EXPECT_THROW((void)engine.run_batch(queries), std::invalid_argument);
  EXPECT_EQ(engine.queries_served(), 0u);  // nothing ran

  std::vector<SearchResult> too_small(2);
  EXPECT_THROW(
      engine.run_batch(std::span<const Query>(queries.data(), 4), too_small),
      std::invalid_argument);
}

TEST(QueryEngine, EmptyBatchIsANoOp) {
  const Graph g = test_graph(50);
  QueryEngine engine(g, "bfs");
  const auto results = engine.run_batch({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.queries_served(), 0u);
}

// --------------------------------------------------------- overlay binding

TEST(QueryEngineOverlay, UnknownPolicyIsCheckedError) {
  sfs::graph::Overlay overlay(test_graph(60));
  EXPECT_THROW(QueryEngine(overlay, "no-such-policy"), std::invalid_argument);
}

TEST(QueryEngineOverlay, PristineOverlayMatchesStaticEngineBitForBit) {
  // The churn-rate-0 contract at the engine level: an overlay that has
  // never mutated must answer exactly like a static engine on its
  // snapshot, for both knowledge models.
  sfs::graph::Overlay overlay(test_graph());
  const auto queries = test_queries(overlay.snapshot(), 25, 11);
  for (const char* policy : {"random-walk", "degree-greedy-strong"}) {
    QueryEngineOptions options;
    options.seed = 0xD1;
    options.budget.max_raw_requests = 20000;
    QueryEngine dynamic(overlay, policy, options);
    QueryEngine fixed(overlay.snapshot(), policy, options);
    expect_identical(dynamic.run_batch(queries, 2), fixed.run_batch(queries));
  }
}

TEST(QueryEngineOverlay, DepartedEndpointsAreCheckedErrors) {
  sfs::graph::Overlay overlay(test_graph(80));
  overlay.depart(3);
  overlay.depart(7);
  QueryEngine engine(overlay, "bfs");
  const std::vector<Query> to_dead{Query{.start = 0, .target = 7}};
  const std::vector<Query> from_dead{Query{.start = 3, .target = 0}};
  EXPECT_THROW((void)engine.run_batch(to_dead), std::invalid_argument);
  EXPECT_THROW((void)engine.run_batch(from_dead), std::invalid_argument);
  EXPECT_EQ(engine.queries_served(), 0u);
  // A live pair on the same engine still runs.
  const std::vector<Query> live{Query{.start = 0, .target = 1}};
  EXPECT_EQ(engine.run_batch(live).size(), 1u);
  EXPECT_EQ(engine.queries_served(), 1u);
}

TEST(QueryEngineOverlay, StagedJoinsMustBeCompactedBeforeServing) {
  sfs::graph::Overlay overlay(test_graph(60));
  sfs::rng::Rng rng(5);
  (void)overlay.join(2, rng);
  QueryEngine engine(overlay, "bfs");
  const std::vector<Query> one{Query{.start = 0, .target = 1}};
  EXPECT_THROW((void)engine.run_batch(one), std::invalid_argument);
  overlay.compact();
  EXPECT_EQ(engine.run_batch(one).size(), 1u);
}

TEST(QueryEngineOverlay, MutationBetweenBatchesRebuildsSessions) {
  sfs::graph::Overlay overlay(test_graph());
  QueryEngineOptions options;
  options.budget.max_raw_requests = 20000;
  QueryEngine engine(overlay, "degree-greedy-strong", options);
  const auto queries = test_queries(overlay.snapshot(), 10, 21);
  (void)engine.run_batch(queries);
  // Fresh sessions count as rebuilds (overlay epochs start above the
  // session's initial marker); remember the baseline.
  const std::size_t baseline = engine.sessions_rebuilt();
  (void)engine.run_batch(queries);
  EXPECT_EQ(engine.sessions_rebuilt(), baseline);  // unchanged epoch: reuse
  overlay.depart(0);
  auto live_queries = test_queries(overlay.snapshot(), 10, 22);
  for (auto& q : live_queries) {  // steer clear of the departed vertex
    if (q.start == 0) q.start = 1;
    if (q.target <= 1) q.target = 2;
  }
  (void)engine.run_batch(live_queries);
  EXPECT_GT(engine.sessions_rebuilt(), baseline);  // stale epoch: rebuilt
}

TEST(QueryEngineOverlay, SetSeedGivesRoundsIndependentRandomness) {
  sfs::graph::Overlay overlay(test_graph());
  QueryEngineOptions options;
  options.seed = 1;
  options.budget.max_raw_requests = 20000;
  QueryEngine engine(overlay, "random-walk", options);
  const auto queries = test_queries(overlay.snapshot(), 12, 31);
  const auto round1 = engine.run_batch(queries);
  engine.set_seed(2);
  const auto round2 = engine.run_batch(queries);
  engine.set_seed(1);
  const auto replay = engine.run_batch(queries);
  expect_identical(round1, replay);  // same seed: bit-identical replay
  bool any_different = false;        // new seed: fresh randomness
  for (std::size_t i = 0; i < round1.size(); ++i) {
    any_different |= round1[i].raw_requests != round2[i].raw_requests;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
