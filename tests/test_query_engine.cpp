// Tests for search::QueryEngine: the batched fixed-graph lookup runner.
// Core contract: a batch is a pure function of (graph, policy, seed,
// queries) — bit-identical for any thread count — verified here under the
// RNG stream audit.
#include "search/query_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gen/mori.hpp"
#include "rng/stream_audit.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::search::Query;
using sfs::search::QueryEngine;
using sfs::search::QueryEngineOptions;
using sfs::search::SearchResult;

Graph test_graph(std::size_t n = 300) {
  sfs::rng::Rng rng(99);
  return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
}

std::vector<Query> test_queries(const Graph& g, std::size_t count,
                                std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  std::vector<Query> queries(count);
  for (auto& q : queries) {
    q.start = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    do {
      q.target = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    } while (q.target == q.start);
  }
  return queries;
}

void expect_identical(const std::vector<SearchResult>& a,
                      const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].found, b[i].found) << i;
    EXPECT_EQ(a[i].requests, b[i].requests) << i;
    EXPECT_EQ(a[i].raw_requests, b[i].raw_requests) << i;
    EXPECT_EQ(a[i].path_length, b[i].path_length) << i;
    EXPECT_EQ(a[i].budget_exhausted, b[i].budget_exhausted) << i;
    EXPECT_EQ(a[i].gave_up, b[i].gave_up) << i;
  }
}

TEST(QueryEngine, UnknownPolicyIsCheckedError) {
  const Graph g = test_graph();
  EXPECT_THROW(QueryEngine(g, "no-such-policy"), std::invalid_argument);
}

TEST(QueryEngine, BindsPolicyAndModelFromTheRegistry) {
  const Graph g = test_graph();
  QueryEngine weak(g, "bfs");
  EXPECT_EQ(weak.policy().name, "bfs");
  EXPECT_EQ(weak.model(), sfs::search::KnowledgeModel::kWeak);
  QueryEngine strong(g, "degree-greedy-strong");
  EXPECT_EQ(strong.model(), sfs::search::KnowledgeModel::kStrong);
}

TEST(QueryEngine, ExhaustivePolicyAnswersEveryQuery) {
  const Graph g = test_graph();
  QueryEngine engine(g, "bfs-strong");
  const auto queries = test_queries(g, 40, 7);
  const auto results = engine.run_batch(queries);
  EXPECT_EQ(engine.queries_served(), 40u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.found);
    EXPECT_LE(r.requests, g.num_vertices());
  }
}

TEST(QueryEngine, BatchBitIdenticalAcrossThreadCounts) {
  // The acceptance-criteria audit: threads=1 vs threads=4 vs the shared
  // pool, all under SFS_RNG_AUDIT, for a weak (randomized walk) policy —
  // the hardest case, since every step consumes RNG.
  auto& audit = sfs::rng::StreamAudit::instance();
  const bool was_enabled = audit.enabled();
  audit.set_enabled(true);
  audit.reset();

  const Graph g = test_graph();
  QueryEngineOptions options;
  options.seed = 0xCAFE;
  options.budget.max_raw_requests = 20000;
  QueryEngine engine(g, "random-walk", options);
  const auto queries = test_queries(g, 30, 13);

  const auto seq = engine.run_batch(queries, /*threads=*/1);
  const auto par = engine.run_batch(queries, /*threads=*/4);
  const auto pool = engine.run_batch(queries, /*threads=*/0);
  expect_identical(seq, par);
  expect_identical(seq, pool);
  EXPECT_EQ(engine.queries_served(), 90u);
  // One audited derivation per distinct (seed, stream, batch index);
  // re-running the same batch re-records the same triples.
  EXPECT_EQ(audit.recorded_count(), queries.size());

  audit.reset();
  audit.set_enabled(was_enabled);
}

TEST(QueryEngine, TwoEnginesSameSeedAgree) {
  const Graph g = test_graph();
  QueryEngineOptions options;
  options.seed = 42;
  options.budget.max_raw_requests = 20000;
  QueryEngine a(g, "random-frontier", options);
  QueryEngine b(g, "random-frontier", options);
  const auto queries = test_queries(g, 20, 3);
  expect_identical(a.run_batch(queries), b.run_batch(queries, 2));
}

TEST(QueryEngine, ResultsSpanOverloadMatchesAllocating) {
  const Graph g = test_graph();
  QueryEngine engine(g, "degree-greedy");
  const auto queries = test_queries(g, 10, 5);
  std::vector<SearchResult> results(queries.size());
  engine.run_batch(queries, results, /*threads=*/2);
  expect_identical(results, engine.run_batch(queries));
}

TEST(QueryEngine, ValidatesBatchBeforeRunningAnyOfIt) {
  const Graph g = test_graph(50);
  QueryEngine engine(g, "bfs");
  std::vector<Query> queries = test_queries(g, 4, 1);
  queries.push_back(Query{.start = 0, .target = 50});  // out of range
  EXPECT_THROW((void)engine.run_batch(queries), std::invalid_argument);
  EXPECT_EQ(engine.queries_served(), 0u);  // nothing ran

  std::vector<SearchResult> too_small(2);
  EXPECT_THROW(
      engine.run_batch(std::span<const Query>(queries.data(), 4), too_small),
      std::invalid_argument);
}

TEST(QueryEngine, EmptyBatchIsANoOp) {
  const Graph g = test_graph(50);
  QueryEngine engine(g, "bfs");
  const auto results = engine.run_batch({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.queries_served(), 0u);
}

}  // namespace
