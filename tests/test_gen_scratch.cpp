// Tests for the reusable generation subsystem (gen::GenScratch): every
// scratch-taking generator overload must produce graphs bit-identical to
// the fresh-allocation path (including when the scratch is recycled across
// shrinking and growing sizes), the builder's overflow guards must reject
// wrap-around arithmetic, and the harness-level scratch plumbing
// (sim/sweep, sim/scaling) must be a pure performance transform.
#include "gen/scratch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/degree_sequence.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/kleinberg.hpp"
#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "sim/scaling.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::gen::GenScratch;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::kNoVertex;
using sfs::graph::VertexId;
using sfs::rng::Rng;

void expect_graph_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  // Edge records in construction order determine the whole CSR, but audit
  // the derived structure too: incidence, adjacency and degrees.
  const auto ea = a.edges();
  const auto eb = b.edges();
  EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin()));
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto ia = a.incident(v);
    const auto ib = b.incident(v);
    ASSERT_EQ(ia.size(), ib.size()) << "vertex " << v;
    EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
    const auto aa = a.adjacent(v);
    const auto ab = b.adjacent(v);
    EXPECT_TRUE(std::equal(aa.begin(), aa.end(), ab.begin()));
    EXPECT_EQ(a.in_degree(v), b.in_degree(v));
    EXPECT_EQ(a.out_degree(v), b.out_degree(v));
  }
}

// ------------------------------------------ scratch == fresh, per generator

TEST(GenScratch, BarabasiAlbertMatchesFresh) {
  GenScratch scratch;
  Graph reused;
  // Growing and shrinking sizes: leftover scratch content must not leak.
  for (const std::size_t n : {300u, 50u, 500u, 500u, 20u}) {
    for (const bool distinct : {true, false}) {
      const sfs::gen::BarabasiAlbertParams params{
          .m = 3, .distinct_targets = distinct};
      Rng r1(n + distinct);
      Rng r2(n + distinct);
      const Graph fresh = sfs::gen::barabasi_albert(n, params, r1);
      sfs::gen::barabasi_albert(n, params, r2, scratch, reused);
      expect_graph_equal(fresh, reused);
    }
  }
}

TEST(GenScratch, ConfigurationModelMatchesFresh) {
  GenScratch scratch;
  Graph reused;
  const sfs::gen::PowerLawSequenceParams seq{.exponent = 2.3, .d_min = 1};
  for (const std::size_t n : {400u, 80u, 600u}) {
    for (const bool erase : {false, true}) {
      const sfs::gen::ConfigModelOptions opts{.erase_defects = erase};
      Rng r1(7 * n + erase);
      Rng r2(7 * n + erase);
      const Graph fresh =
          sfs::gen::power_law_configuration_graph(n, seq, opts, r1);
      sfs::gen::power_law_configuration_graph(n, seq, opts, r2, scratch,
                                              reused);
      expect_graph_equal(fresh, reused);
    }
  }
}

TEST(GenScratch, CooperFriezeMatchesFresh) {
  GenScratch scratch;
  sfs::gen::CooperFriezeGraph reused;
  sfs::gen::CooperFriezeParams params;
  params.p = {0.5, 0.5};
  for (const std::size_t n : {250u, 60u, 400u}) {
    Rng r1(n);
    Rng r2(n);
    const auto fresh = sfs::gen::cooper_frieze(n, params, r1);
    sfs::gen::cooper_frieze(n, params, r2, scratch, reused);
    expect_graph_equal(fresh.graph, reused.graph);
    EXPECT_EQ(fresh.steps, reused.steps);
    EXPECT_EQ(fresh.birth_order, reused.birth_order);
  }
  // The fixed-step entry point shares the scratch machinery.
  Rng r1(11);
  Rng r2(11);
  const auto fresh = sfs::gen::cooper_frieze_steps(300, params, r1);
  sfs::gen::cooper_frieze_steps(300, params, r2, scratch, reused);
  expect_graph_equal(fresh.graph, reused.graph);
  EXPECT_EQ(fresh.steps, reused.steps);
}

TEST(GenScratch, ErdosRenyiMatchesFresh) {
  GenScratch scratch;
  Graph reused;
  for (const std::size_t n : {200u, 40u, 350u}) {
    Rng r1(n);
    Rng r2(n);
    const Graph fresh = sfs::gen::erdos_renyi_gnm(n, 3 * n, r1);
    sfs::gen::erdos_renyi_gnm(n, 3 * n, r2, scratch, reused);
    expect_graph_equal(fresh, reused);

    Rng r3(n ^ 0xabc);
    Rng r4(n ^ 0xabc);
    const Graph fresh_p = sfs::gen::erdos_renyi_gnp(n, 0.02, r3);
    sfs::gen::erdos_renyi_gnp(n, 0.02, r4, scratch, reused);
    expect_graph_equal(fresh_p, reused);
  }
}

TEST(GenScratch, KleinbergMatchesFresh) {
  GenScratch scratch;
  const sfs::gen::KleinbergParams params{.r = 2.0, .q = 2};
  // Scratch constructor and in-place rebuild both match a fresh grid.
  Rng r0(1);
  sfs::gen::KleinbergGrid reused(8, params, r0, scratch);
  {
    Rng r1(1);
    Rng r2(1);
    const sfs::gen::KleinbergGrid fresh(8, params, r1);
    sfs::gen::KleinbergGrid scratch_built(8, params, r2, scratch);
    expect_graph_equal(fresh.graph(), scratch_built.graph());
  }
  for (const std::size_t L : {12u, 5u, 16u}) {
    Rng r1(L);
    Rng r2(L);
    const sfs::gen::KleinbergGrid fresh(L, params, r1);
    reused.rebuild(L, params, r2, scratch);
    EXPECT_EQ(reused.side(), L);
    expect_graph_equal(fresh.graph(), reused.graph());
  }
}

TEST(GenScratch, MoriMatchesFresh) {
  GenScratch scratch;
  Graph reused;
  for (const std::size_t n : {300u, 50u, 450u}) {
    Rng r1(n);
    Rng r2(n);
    const Graph fresh = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, r1);
    sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, r2, scratch, reused);
    expect_graph_equal(fresh, reused);

    Rng r3(n ^ 0x77);
    Rng r4(n ^ 0x77);
    const Graph fresh_m =
        sfs::gen::merged_mori_graph(n, 3, sfs::gen::MoriParams{0.6}, r3);
    sfs::gen::merged_mori_graph(n, 3, sfs::gen::MoriParams{0.6}, r4, scratch,
                                reused);
    expect_graph_equal(fresh_m, reused);
  }
}

TEST(GenScratch, DegreeSequenceMatchesFresh) {
  std::vector<std::uint32_t> reused;
  const sfs::gen::PowerLawSequenceParams params{.exponent = 2.5, .d_min = 2};
  for (const std::size_t n : {500u, 100u, 800u}) {
    Rng r1(n);
    Rng r2(n);
    const auto fresh = sfs::gen::power_law_degree_sequence(n, params, r1);
    sfs::gen::power_law_degree_sequence(n, params, r2, reused);
    EXPECT_EQ(fresh, reused);
  }
}

// --------------------------------------------------- overflow hardening

TEST(GraphBuilderOverflow, AddVerticesRejectsWrapAroundCount) {
  GraphBuilder b;
  (void)b.add_vertices(5);
  // 5 + (SIZE_MAX - 2) wraps to 2 < kNoVertex, so the old additive guard
  // passed; the subtraction form must reject it.
  EXPECT_THROW((void)b.add_vertices(std::numeric_limits<std::size_t>::max() - 2),
               std::invalid_argument);
  // Sane growth still works and ids stay contiguous.
  EXPECT_EQ(b.add_vertices(3), 5u);
  EXPECT_EQ(b.num_vertices(), 8u);
  // Directly over the id range, no wrap involved.
  EXPECT_THROW((void)b.add_vertices(static_cast<std::size_t>(kNoVertex)),
               std::invalid_argument);
}

TEST(GraphBuilderOverflow, ConstructorAndResetRejectOverflowingCounts) {
  EXPECT_THROW(GraphBuilder(std::numeric_limits<std::size_t>::max()),
               std::invalid_argument);
  GraphBuilder b;
  EXPECT_THROW(b.reset(static_cast<std::size_t>(kNoVertex) + 1),
               std::invalid_argument);
}

TEST(GraphBuilderOverflow, BarabasiAlbertRejectsOverflowingReserveMath) {
  // (n - 1) * m wraps in size_t; the checked multiplication must throw
  // instead of silently under-reserving (or building a bogus graph).
  Rng rng(1);
  const sfs::gen::BarabasiAlbertParams params{.m = 16};
  EXPECT_THROW((void)sfs::gen::barabasi_albert(
                   std::numeric_limits<std::size_t>::max() / 2, params, rng),
               std::invalid_argument);
}

// -------------------------------------------- scaling seed stream fix

TEST(ScalingSeeds, NearbySeedsDoNotAliasAcrossSizeIndices) {
  // Under the old derivation (point seed = mix64(seed ^ (0x9e37 + i))) two
  // experiments whose seeds differ by (0x9e37+i1) ^ (0x9e37+i2) — 0x0F for
  // adjacent indices — received identical replication streams at shifted
  // size indices. The tempered stream tags must keep them fully disjoint.
  auto capture = [](std::uint64_t seed) {
    std::vector<std::uint64_t> cell_seeds;
    (void)sfs::sim::measure_scaling(
        {10, 20, 30}, 4, seed,
        [&](std::size_t, std::uint64_t s) {
          cell_seeds.push_back(s);
          return 1.0;
        },
        /*threads=*/1);
    return cell_seeds;
  };
  const auto a = capture(7);
  const auto b = capture(7 ^ 0x0F);
  const std::set<std::uint64_t> sa(a.begin(), a.end());
  EXPECT_EQ(sa.size(), a.size());  // distinct within one experiment
  for (const std::uint64_t s : b) {
    EXPECT_EQ(sa.count(s), 0u) << "seed stream shared across experiments";
  }
}

// ------------------------------------- harness-level scratch plumbing

void expect_identical_cost(const sfs::sim::PortfolioCost& a,
                           const sfs::sim::PortfolioCost& b) {
  ASSERT_EQ(a.policies.size(), b.policies.size());
  EXPECT_EQ(a.best, b.best);
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    const auto& pa = a.policies[i];
    const auto& pb = b.policies[i];
    EXPECT_EQ(pa.name, pb.name);
    EXPECT_EQ(pa.requests.mean, pb.requests.mean) << pa.name;
    EXPECT_EQ(pa.requests.stddev, pb.requests.stddev) << pa.name;
    EXPECT_EQ(pa.raw_requests.mean, pb.raw_requests.mean) << pa.name;
    EXPECT_EQ(pa.median_requests, pb.median_requests) << pa.name;
    EXPECT_EQ(pa.p90_requests, pb.p90_requests) << pa.name;
    EXPECT_EQ(pa.found_fraction, pb.found_fraction) << pa.name;
  }
}

TEST(SweepScratchFactory, WeakPortfolioMatchesPlainFactory) {
  const auto budget = sfs::search::RunBudget{.max_raw_requests = 200000};
  const sfs::sim::GraphFactory plain = [](Rng& rng) {
    return sfs::gen::merged_mori_graph(80, 2, sfs::gen::MoriParams{0.5}, rng);
  };
  const sfs::sim::ScratchGraphFactory reusing =
      [](Rng& rng, GenScratch& scratch, Graph& out) {
        sfs::gen::merged_mori_graph(80, 2, sfs::gen::MoriParams{0.5}, rng,
                                    scratch, out);
      };
  sfs::sim::RunPlan plan;
  plan.factory = plain;
  plan.endpoints = sfs::sim::oldest_to_newest();
  plan.reps = 8;
  plan.seed = 21;
  plan.budget = budget;
  const auto a = sfs::sim::measure_portfolio(plan);
  plan.factory = nullptr;
  plan.scratch_factory = reusing;
  const auto b = sfs::sim::measure_portfolio(plan);
  expect_identical_cost(a, b);
  // And the scratch path stays bit-identical under parallel fan-out.
  plan.threads = 4;
  const auto c = sfs::sim::measure_portfolio(plan);
  expect_identical_cost(a, c);
}

TEST(SweepScratchFactory, StrongPortfolioMatchesPlainFactory) {
  const sfs::sim::GraphFactory plain = [](Rng& rng) {
    return sfs::gen::mori_tree(120, sfs::gen::MoriParams{0.4}, rng);
  };
  const sfs::sim::ScratchGraphFactory reusing =
      [](Rng& rng, GenScratch& scratch, Graph& out) {
        sfs::gen::mori_tree(120, sfs::gen::MoriParams{0.4}, rng, scratch, out);
      };
  sfs::sim::RunPlan plan;
  plan.model = sfs::search::KnowledgeModel::kStrong;
  plan.factory = plain;
  plan.endpoints = sfs::sim::oldest_to_newest();
  plan.reps = 6;
  plan.seed = 9;
  const auto a = sfs::sim::measure_portfolio(plan);
  plan.factory = nullptr;
  plan.scratch_factory = reusing;
  plan.threads = 3;
  const auto b = sfs::sim::measure_portfolio(plan);
  expect_identical_cost(a, b);
}

TEST(ScalingScratchOverload, MatchesPlainOverload) {
  const std::vector<std::size_t> sizes{30, 60, 120};
  const auto plain = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    const Graph g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
    return static_cast<double>(g.num_edges());
  };
  const auto reusing = [](std::size_t n, std::uint64_t seed,
                          GenScratch& scratch) {
    Rng rng(seed);
    Graph g;
    sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng, scratch, g);
    return static_cast<double>(g.num_edges());
  };
  const auto a = sfs::sim::measure_scaling(sizes, 5, 31, plain, /*threads=*/1);
  const auto b =
      sfs::sim::measure_scaling(sizes, 5, 31, reusing, /*threads=*/4);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].raw, b.points[i].raw);
    EXPECT_EQ(a.points[i].summary.mean, b.points[i].summary.mean);
  }
  EXPECT_EQ(a.fit.slope, b.fit.slope);
}

}  // namespace
