// Tests for the mmap-able snapshot format (graph/snapshot.hpp): write →
// map round-trips for both row codecs, and — the satellite contract —
// every failure path (truncated file, flipped payload byte, bad magic /
// version / endianness, mid-write interrupt fragment, cache identity
// collision) is rejected with a context-carrying error instead of
// decoding garbage.
#include "graph/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "graph/builder.hpp"

namespace {

using sfs::graph::AdjacencyDecodeBuffer;
using sfs::graph::CompressedGraph;
using sfs::graph::Graph;
using sfs::graph::MappedSnapshot;
using sfs::graph::RowCodec;
using sfs::graph::SnapshotMeta;
using sfs::graph::VertexId;
using sfs::rng::Rng;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

Graph make_graph() {
  Rng rng(0xBEEF);
  return sfs::gen::barabasi_albert(200, {.m = 3}, rng);
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

/// Writes a fresh valid snapshot of the shared test graph and returns its
/// path; `mutate` then gets to corrupt the raw bytes before mapping.
template <typename MutateFn>
std::string corrupted_snapshot(const std::string& name, MutateFn&& mutate) {
  const std::string path = temp_path(name);
  const Graph g = make_graph();
  const CompressedGraph c = CompressedGraph::from_graph(g);
  sfs::graph::write_snapshot(path, c.view(), {.generator = "ba_m3", .seed = 1});
  std::vector<char> bytes = read_file(path);
  mutate(bytes);
  write_file(path, bytes);
  return path;
}

// ------------------------------------------------------------ round trip

TEST(Snapshot, WriteThenMapRoundTripsBothCodecs) {
  const Graph g = make_graph();
  for (const RowCodec codec : {RowCodec::kVarint, RowCodec::kEliasFano}) {
    const std::string path =
        temp_path(std::string("rt_") + sfs::graph::row_codec_name(codec) +
                  ".sfsnap");
    const CompressedGraph c = CompressedGraph::from_graph(g, codec);
    const SnapshotMeta meta{.generator = "ba_m3", .seed = 0xABCDEF};
    sfs::graph::write_snapshot(path, c.view(), meta);

    const MappedSnapshot snap(path);
    EXPECT_EQ(snap.meta().generator, meta.generator);
    EXPECT_EQ(snap.meta().seed, meta.seed);
    ASSERT_EQ(snap.view().num_vertices, g.num_vertices());
    ASSERT_EQ(snap.view().num_edges, g.num_edges());
    EXPECT_EQ(snap.view().codec, codec);

    // Decode straight off the mapping: every row matches the source graph.
    AdjacencyDecodeBuffer buffer;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto row = sfs::graph::decode_adjacent(snap.view(), v, buffer);
      const auto expected = g.adjacent(v);
      ASSERT_EQ(row.size(), expected.size()) << "vertex " << v;
      EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()));
    }
    // And the full decompression reproduces the edge log bit-exactly.
    const Graph back = sfs::graph::decompress(snap.view());
    ASSERT_EQ(back.num_edges(), g.num_edges());
    const auto ea = g.edges();
    const auto eb = back.edges();
    EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin()));
  }
}

TEST(Snapshot, MoveTransfersTheMapping) {
  const std::string path = temp_path("move.sfsnap");
  const CompressedGraph c = CompressedGraph::from_graph(make_graph());
  sfs::graph::write_snapshot(path, c.view(), {.generator = "ba_m3", .seed = 2});
  MappedSnapshot a(path);
  const std::size_t n = a.view().num_vertices;
  MappedSnapshot b(std::move(a));
  EXPECT_EQ(b.view().num_vertices, n);
  AdjacencyDecodeBuffer buffer;
  EXPECT_EQ(sfs::graph::decode_adjacent(b.view(), 0, buffer).size(),
            sfs::graph::decoded_degree(b.view(), 0));
}

// ---------------------------------------------------------- failure paths

TEST(SnapshotFailure, RejectsMissingFile) {
  EXPECT_THROW(MappedSnapshot(temp_path("nope.sfsnap")), std::runtime_error);
}

TEST(SnapshotFailure, RejectsTruncatedFile) {
  // Both below-header truncation and mid-payload truncation (the shape a
  // non-atomic writer would leave after a mid-write interrupt).
  for (const double keep : {0.1, 0.6, 0.98}) {
    const std::string path = corrupted_snapshot(
        "trunc.sfsnap", [keep](std::vector<char>& bytes) {
          bytes.resize(static_cast<std::size_t>(
              static_cast<double>(bytes.size()) * keep));
        });
    EXPECT_THROW(MappedSnapshot{path}, std::invalid_argument) << keep;
  }
}

TEST(SnapshotFailure, RejectsFlippedPayloadByte) {
  const std::string path = corrupted_snapshot(
      "checksum.sfsnap",
      [](std::vector<char>& bytes) { bytes[bytes.size() - 1] ^= 0x40; });
  try {
    MappedSnapshot snap(path);
    FAIL() << "corrupt payload accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("checksum.sfsnap"),
              std::string::npos)
        << "error must carry the offending path: " << e.what();
  }
}

TEST(SnapshotFailure, RejectsBadMagic) {
  const std::string path = corrupted_snapshot(
      "magic.sfsnap", [](std::vector<char>& bytes) { bytes[0] ^= 0x01; });
  EXPECT_THROW(MappedSnapshot{path}, std::invalid_argument);
}

TEST(SnapshotFailure, RejectsFutureVersion) {
  const std::string path = corrupted_snapshot(
      "version.sfsnap", [](std::vector<char>& bytes) { bytes[8] += 1; });
  try {
    MappedSnapshot snap(path);
    FAIL() << "future version accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotFailure, RejectsForeignEndianness) {
  // Byte-swap the endian marker word: exactly what the header of a
  // big-endian-written snapshot would look like here.
  const std::string path = corrupted_snapshot(
      "endian.sfsnap", [](std::vector<char>& bytes) {
        std::reverse(bytes.begin() + 16, bytes.begin() + 24);
      });
  try {
    MappedSnapshot snap(path);
    FAIL() << "foreign-endian snapshot accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotFailure, RejectsUnknownRowCodec) {
  // Header word 6 holds the codec; 0x7f is not a RowCodec value.
  const std::string path = corrupted_snapshot(
      "codec.sfsnap", [](std::vector<char>& bytes) { bytes[48] = 0x7f; });
  EXPECT_THROW(MappedSnapshot{path}, std::invalid_argument);
}

TEST(SnapshotFailure, InterruptedWriteLeavesNoSnapshot) {
  // The writer goes through "<path>.tmp" + rename. A leftover fragment at
  // the tmp path (a genuinely interrupted write) must neither be visible
  // at the final path nor break the next successful write.
  const std::string path = temp_path("interrupt.sfsnap");
  std::remove(path.c_str());
  write_file(path + ".tmp", {'p', 'a', 'r', 't', 'i', 'a', 'l'});
  EXPECT_THROW(MappedSnapshot{path}, std::runtime_error);  // nothing at path

  const CompressedGraph c = CompressedGraph::from_graph(make_graph());
  sfs::graph::write_snapshot(path, c.view(),
                             {.generator = "ba_m3", .seed = 3});
  const MappedSnapshot snap(path);  // fresh write is fully valid
  EXPECT_EQ(snap.meta().seed, 3u);
  // And the successful write consumed its tmp file.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
}

// ------------------------------------------------------------------ cache

TEST(SnapshotCache, PathIsDeterministic) {
  const SnapshotMeta meta{.generator = "mori_m1", .seed = 0x1A26E1};
  EXPECT_EQ(sfs::graph::snapshot_cache_path("/tmp/cache", meta, 4096),
            "/tmp/cache/mori_m1-n4096-s1a26e1.sfsnap");
  EXPECT_EQ(sfs::graph::snapshot_cache_path("/tmp/cache/", meta, 4096),
            "/tmp/cache/mori_m1-n4096-s1a26e1.sfsnap");
}

TEST(SnapshotCache, BuildsOnceThenMapsFromDisk) {
  const Graph g = make_graph();
  const SnapshotMeta meta{.generator = "ba_m3", .seed = 7};
  const std::string path = temp_path("cache.sfsnap");
  std::remove(path.c_str());
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return CompressedGraph::from_graph(g);
  };
  const MappedSnapshot first = sfs::graph::load_or_write_snapshot(
      path, meta, g.num_vertices(), build);
  const MappedSnapshot second = sfs::graph::load_or_write_snapshot(
      path, meta, g.num_vertices(), build);
  EXPECT_EQ(builds, 1) << "cache hit must not rebuild";
  EXPECT_EQ(first.view().num_edges, second.view().num_edges);
  AdjacencyDecodeBuffer buffer;
  const auto row = sfs::graph::decode_adjacent(second.view(), 5, buffer);
  const auto expected = g.adjacent(5);
  EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()));
}

TEST(SnapshotCache, IdentityCollisionIsRejected) {
  const Graph g = make_graph();
  const std::string path = temp_path("collide.sfsnap");
  std::remove(path.c_str());
  const auto build = [&] { return CompressedGraph::from_graph(g); };
  (void)sfs::graph::load_or_write_snapshot(
      path, {.generator = "ba_m3", .seed = 11}, g.num_vertices(), build);
  // Same path, different seed: must throw, never silently reuse.
  EXPECT_THROW((void)sfs::graph::load_or_write_snapshot(
                   path, {.generator = "ba_m3", .seed = 12},
                   g.num_vertices(), build),
               std::invalid_argument);
  // Different generator name too.
  EXPECT_THROW((void)sfs::graph::load_or_write_snapshot(
                   path, {.generator = "mori", .seed = 11}, g.num_vertices(),
                   build),
               std::invalid_argument);
}

TEST(SnapshotFailure, RejectsOverlongGeneratorName) {
  const CompressedGraph c = CompressedGraph::from_graph(make_graph());
  EXPECT_THROW(
      sfs::graph::write_snapshot(
          temp_path("long.sfsnap"), c.view(),
          {.generator = std::string(40, 'x'), .seed = 1}),
      std::invalid_argument);
}

}  // namespace
