// Tests for k-core decomposition and correlation measures.
#include "graph/structure.hpp"

#include <gtest/gtest.h>

#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/mori.hpp"
#include "graph/builder.hpp"

namespace {

using sfs::gen::mori_tree;
using sfs::graph::age_degree_correlation;
using sfs::graph::core_decomposition;
using sfs::graph::degree_assortativity;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::rng::Rng;

Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

TEST(CoreDecomposition, TreeIsOneCore) {
  Rng rng(1);
  const Graph g = mori_tree(200, sfs::gen::MoriParams{0.5}, rng);
  const auto core = core_decomposition(g);
  EXPECT_EQ(core.degeneracy, 1u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(core.core_number[v], 1u);
  }
  // Leaves are exactly the 1-core boundary; every vertex in a tree with
  // n >= 2 has core number 1.
  EXPECT_EQ(core.core_members(1).size(), g.num_vertices());
}

TEST(CoreDecomposition, CompleteGraph) {
  const Graph g = complete_graph(6);
  const auto core = core_decomposition(g);
  EXPECT_EQ(core.degeneracy, 5u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(core.core_number[v], 5u);
}

TEST(CoreDecomposition, TriangleWithPendant) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 0);
  const auto core = core_decomposition(b.build());
  EXPECT_EQ(core.core_number[0], 2u);
  EXPECT_EQ(core.core_number[1], 2u);
  EXPECT_EQ(core.core_number[2], 2u);
  EXPECT_EQ(core.core_number[3], 1u);
  EXPECT_EQ(core.degeneracy, 2u);
  EXPECT_EQ(core.core_members(2).size(), 3u);
}

TEST(CoreDecomposition, IsolatedVerticesAreZeroCore) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto core = core_decomposition(b.build());
  EXPECT_EQ(core.core_number[2], 0u);
}

TEST(CoreDecomposition, EmptyGraph) {
  const auto core = core_decomposition(GraphBuilder(0).build());
  EXPECT_EQ(core.degeneracy, 0u);
  EXPECT_TRUE(core.core_number.empty());
}

TEST(CoreDecomposition, CoreNumberAtMostDegree) {
  Rng rng(2);
  const Graph g = sfs::gen::power_law_configuration_graph(
      2000, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  const auto core = core_decomposition(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(core.core_number[v], g.degree(v));
  }
}

TEST(CoreDecomposition, MonotoneUnderKIncrease) {
  Rng rng(3);
  const Graph g = sfs::gen::barabasi_albert(
      1000, sfs::gen::BarabasiAlbertParams{3, true}, rng);
  const auto core = core_decomposition(g);
  EXPECT_GE(core.core_members(1).size(), core.core_members(2).size());
  EXPECT_GE(core.core_members(2).size(), core.core_members(3).size());
  // BA with m = 3: every non-seed vertex has degree >= 3, so the 3-core is
  // large.
  EXPECT_GT(core.core_members(3).size(), 500u);
}

TEST(DegreeAssortativity, StarIsDisassortative) {
  GraphBuilder b(6);
  for (VertexId v = 1; v < 6; ++v) b.add_edge(v, 0);
  EXPECT_LT(degree_assortativity(b.build()), -0.99);
}

TEST(DegreeAssortativity, RegularGraphIsDegenerate) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  EXPECT_DOUBLE_EQ(degree_assortativity(b.build()), 0.0);
}

TEST(DegreeAssortativity, LoopsIgnored) {
  GraphBuilder with_loop(2);
  with_loop.add_edge(0, 0);
  with_loop.add_edge(0, 1);
  // The loop is skipped but still inflates vertex 0's degree: the single
  // counted edge joins degrees (3, 1), which is perfectly disassortative.
  EXPECT_DOUBLE_EQ(degree_assortativity(with_loop.build()), -1.0);
  // All-loop graph: no counted edges, degenerate -> 0.
  GraphBuilder only_loops(1);
  only_loops.add_edge(0, 0);
  EXPECT_DOUBLE_EQ(degree_assortativity(only_loops.build()), 0.0);
}

TEST(DegreeAssortativity, EvolvingGraphsAreDisassortative) {
  // Preferential attachment yields negative degree correlations (young
  // low-degree vertices attach to old hubs).
  Rng rng(4);
  const Graph g = mori_tree(5000, sfs::gen::MoriParams{0.7}, rng);
  EXPECT_LT(degree_assortativity(g), -0.01);
}

TEST(AgeDegreeCorrelation, StronglyNegativeInMori) {
  Rng rng(5);
  const Graph g = mori_tree(5000, sfs::gen::MoriParams{0.7}, rng);
  EXPECT_LT(age_degree_correlation(g), -0.05);
}

TEST(AgeDegreeCorrelation, NearZeroInConfigurationModel) {
  // Configuration-model degrees are assigned independently of the id, so
  // the age correlation the paper highlights is absent.
  Rng rng(6);
  const Graph g = sfs::gen::power_law_configuration_graph(
      5000, sfs::gen::PowerLawSequenceParams{2.5, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  EXPECT_NEAR(age_degree_correlation(g), 0.0, 0.05);
}

TEST(AgeDegreeCorrelation, DegenerateGraphs) {
  EXPECT_DOUBLE_EQ(age_degree_correlation(GraphBuilder(1).build()), 0.0);
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  // All degrees equal: zero variance -> 0.
  EXPECT_DOUBLE_EQ(age_degree_correlation(b.build()), 0.0);
}

}  // namespace
