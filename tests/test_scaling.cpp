// Tests for the scaling-experiment harness.
#include "sim/scaling.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "rng/random.hpp"

namespace {

using sfs::sim::geometric_sizes;
using sfs::sim::measure_scaling;
using sfs::sim::ScalingOptions;
using sfs::sim::ScalingSeries;

// Bit-exact equality of two series, including every raw replication value
// and the derived fits: the checkpoint-resume contract is "same bits".
void expect_bit_identical(const ScalingSeries& a, const ScalingSeries& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].n, b.points[i].n);
    ASSERT_EQ(a.points[i].raw.size(), b.points[i].raw.size());
    for (std::size_t r = 0; r < a.points[i].raw.size(); ++r) {
      EXPECT_EQ(a.points[i].raw[r], b.points[i].raw[r]);
    }
    EXPECT_EQ(a.points[i].summary.mean, b.points[i].summary.mean);
    EXPECT_EQ(a.points[i].summary.variance, b.points[i].summary.variance);
  }
  EXPECT_EQ(a.fit.slope, b.fit.slope);
  EXPECT_EQ(a.fit.intercept, b.fit.intercept);
  EXPECT_EQ(a.fit.slope_stderr, b.fit.slope_stderr);
  EXPECT_EQ(a.weighted_fit.slope, b.weighted_fit.slope);
  EXPECT_EQ(a.slope_ci.point, b.slope_ci.point);
  EXPECT_EQ(a.slope_ci.lo, b.slope_ci.lo);
  EXPECT_EQ(a.slope_ci.hi, b.slope_ci.hi);
  EXPECT_EQ(a.excluded, b.excluded);
}

// A unique-ish scratch path under the test temp dir.
std::string temp_checkpoint(const char* name) {
  const std::string path = ::testing::TempDir() + "sfs_ckpt_" + name + ".csv";
  std::remove(path.c_str());
  return path;
}

TEST(MeasureScaling, RecoversExactExponent) {
  const auto series = measure_scaling(
      {100, 200, 400, 800, 1600}, 3, 1,
      [](std::size_t n, std::uint64_t) {
        return 2.0 * std::sqrt(static_cast<double>(n));
      });
  EXPECT_NEAR(series.fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(series.fit.intercept), 2.0, 1e-6);
  EXPECT_EQ(series.points.size(), 5u);
  for (const auto& p : series.points) {
    EXPECT_EQ(p.summary.count, 3u);
    EXPECT_EQ(p.raw.size(), 3u);
  }
}

TEST(MeasureScaling, NoisyExponentWithinTolerance) {
  const auto series = measure_scaling(
      {128, 256, 512, 1024, 2048, 4096}, 10, 2,
      [](std::size_t n, std::uint64_t seed) {
        sfs::rng::Rng rng(seed);
        const double base = std::pow(static_cast<double>(n), 0.8);
        return base * rng.uniform(0.8, 1.2);
      });
  EXPECT_NEAR(series.fit.slope, 0.8, 0.06);
  EXPECT_GT(series.fit.r_squared, 0.98);
}

TEST(MeasureScaling, SeedsAreDeterministic) {
  std::vector<double> seen_a;
  std::vector<double> seen_b;
  // The measure lambda mutates unguarded state, so this test must stay on
  // the sequential path (threads=1, also the default).
  auto run = [](std::vector<double>& seen) {
    return [&seen](std::size_t n, std::uint64_t seed) {
      seen.push_back(static_cast<double>(seed));
      return static_cast<double>(n);
    };
  };
  (void)measure_scaling({10, 20}, 2, 7, run(seen_a), /*threads=*/1);
  (void)measure_scaling({10, 20}, 2, 7, run(seen_b), /*threads=*/1);
  EXPECT_EQ(seen_a, seen_b);
  // Distinct seeds across reps and sizes.
  std::set<double> unique(seen_a.begin(), seen_a.end());
  EXPECT_EQ(unique.size(), seen_a.size());
}

TEST(MeasureScaling, MeansAndSizesHelpers) {
  const auto series = measure_scaling(
      {10, 100}, 1, 3,
      [](std::size_t n, std::uint64_t) { return static_cast<double>(n); });
  EXPECT_EQ(series.sizes(), (std::vector<double>{10.0, 100.0}));
  EXPECT_EQ(series.means(), (std::vector<double>{10.0, 100.0}));
}

TEST(MeasureScaling, Preconditions) {
  auto f = [](std::size_t, std::uint64_t) { return 1.0; };
  EXPECT_THROW((void)measure_scaling({}, 1, 1, f), std::invalid_argument);
  EXPECT_THROW((void)measure_scaling({10}, 0, 1, f), std::invalid_argument);
}

TEST(GeometricSizes, EndpointsAndMonotonicity) {
  const auto sizes = geometric_sizes(100, 10000, 5);
  EXPECT_EQ(sizes.front(), 100u);
  EXPECT_EQ(sizes.back(), 10000u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i - 1], sizes[i]);
  }
}

TEST(GeometricSizes, RoughlyGeometric) {
  const auto sizes = geometric_sizes(100, 1600, 5);
  // Ratios near 2.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    const double ratio = static_cast<double>(sizes[i]) /
                         static_cast<double>(sizes[i - 1]);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 2.7);
  }
}

TEST(GeometricSizes, CollapsesSmallRanges) {
  const auto sizes = geometric_sizes(10, 12, 6);
  EXPECT_EQ(sizes.front(), 10u);
  EXPECT_EQ(sizes.back(), 12u);
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LT(sizes[i - 1], sizes[i]);
}

TEST(GeometricSizes, Preconditions) {
  EXPECT_THROW((void)geometric_sizes(0, 10, 3), std::invalid_argument);
  EXPECT_THROW((void)geometric_sizes(10, 5, 3), std::invalid_argument);
  EXPECT_THROW((void)geometric_sizes(1, 10, 1), std::invalid_argument);
}

TEST(GeometricSizes, TailOvershootStaysMonotone) {
  // Regression: with hi large enough that the accumulated FP drift of
  // count-1 ratio multiplications exceeds 0.5, the last rounded point
  // used to overshoot hi — and the endpoint patch then appended hi
  // *below* sizes.back(), breaking monotonicity. These triples reproduce
  // the overshoot on IEEE-754 doubles (found by brute force).
  if constexpr (sizeof(std::size_t) >= 8) {
    const struct {
      std::size_t lo, hi, count;
    } cases[] = {
        {143, 2518436161492595ULL, 9},
        {415, 5464996533652832ULL, 33},
        {266, 9211308109841658ULL, 34},
    };
    for (const auto& c : cases) {
      const auto sizes = geometric_sizes(c.lo, c.hi, c.count);
      EXPECT_EQ(sizes.front(), c.lo);
      EXPECT_EQ(sizes.back(), c.hi);
      for (std::size_t i = 1; i < sizes.size(); ++i) {
        EXPECT_LT(sizes[i - 1], sizes[i])
            << "non-monotone at i=" << i << " for lo=" << c.lo
            << " hi=" << c.hi << " count=" << c.count;
      }
    }
  }
}

TEST(GeometricSizes, PropertyMonotoneWithExactEndpoints) {
  // Property sweep: strictly increasing, first == lo, last == hi, never
  // exceeding hi anywhere, for a spread of grids including degenerate
  // lo == hi and large-n sweep shapes.
  sfs::rng::Rng rng(0x6e0);
  for (int trial = 0; trial < 300; ++trial) {
    const auto lo = static_cast<std::size_t>(rng.uniform_index(2000)) + 1;
    const auto span = static_cast<std::size_t>(rng.uniform_index(4000000));
    const std::size_t hi = lo + span;
    const auto count = static_cast<std::size_t>(rng.uniform_index(38)) + 2;
    const auto sizes = geometric_sizes(lo, hi, count);
    ASSERT_FALSE(sizes.empty());
    EXPECT_EQ(sizes.front(), lo);
    EXPECT_EQ(sizes.back(), hi);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      EXPECT_LE(sizes[i], hi);
      if (i > 0) EXPECT_LT(sizes[i - 1], sizes[i]);
    }
  }
}

TEST(MeasureScaling, AllNonPositiveMeansYieldNoFit) {
  // A measure that never returns a positive value must not leave callers
  // reading slope == 0.0 as a measured exponent: has_fit() is false and
  // every size is reported excluded.
  const auto series = measure_scaling(
      {10, 20, 40}, 2, 5,
      [](std::size_t, std::uint64_t) { return -1.0; });
  EXPECT_FALSE(series.has_fit());
  EXPECT_FALSE(series.fit.ok());
  EXPECT_EQ(series.excluded, (std::vector<std::size_t>{10, 20, 40}));
  EXPECT_FALSE(series.weighted_fit.ok());
}

TEST(MeasureScaling, NoBootstrapCiWithoutAFit) {
  // Even with bootstrap requested, a series with no usable fit must not
  // report a confidence interval: mixed-sign reps can make individual
  // resamples fittable, but an interval around a slope the series itself
  // declares unmeasured would be a fabricated error bar.
  ScalingOptions options;
  options.bootstrap_replicates = 100;
  std::map<std::size_t, int> calls;  // sequential run: plain state is fine
  const auto series = measure_scaling(
      {10, 20, 40}, 2, 5,
      [&calls](std::size_t n, std::uint64_t) {
        if (n == 10) return 1.0;  // the single usable point
        // Mixed-sign reps {3, -9}: the point's mean is negative, but a
        // resample drawing 3 twice is positive — fittable without the
        // guard.
        return calls[n]++ == 0 ? 3.0 : -9.0;
      },
      options);
  ASSERT_FALSE(series.has_fit());
  EXPECT_EQ(series.slope_ci.replicates, 0u);
  EXPECT_EQ(series.slope_ci.lo, 0.0);
  EXPECT_EQ(series.slope_ci.hi, 0.0);
  // The standalone recompute entry point enforces the same contract
  // rather than fabricating a finite interval from fittable resamples.
  EXPECT_THROW((void)sfs::sim::bootstrap_slope_ci(series, 100, 0.05, 1),
               std::invalid_argument);
}

TEST(MeasureScaling, SingleUsablePointYieldsNoFit) {
  const auto series = measure_scaling(
      {10, 20, 40}, 2, 5,
      [](std::size_t n, std::uint64_t) { return n == 20 ? 3.0 : 0.0; });
  EXPECT_FALSE(series.has_fit());
  EXPECT_EQ(series.excluded, (std::vector<std::size_t>{10, 40}));
}

TEST(MeasureScaling, SingleDistinctSizeIsDegenerateNotFatal) {
  // A grid whose sizes collapsed to one distinct value (duplicate n) has
  // an undefined slope; this must degrade to a flagged no-fit, not an
  // exception that kills a multi-hour sweep mid-flight.
  const auto series = measure_scaling(
      {100, 100}, 3, 5,
      [](std::size_t, std::uint64_t seed) {
        sfs::rng::Rng rng(seed);
        return 1.0 + rng.uniform();
      });
  EXPECT_TRUE(series.fit.degenerate);
  EXPECT_FALSE(series.has_fit());
  EXPECT_TRUE(series.excluded.empty());
}

TEST(MeasureScaling, WeightedFitMatchesOlsOnHomoscedasticData) {
  // Deterministic measure: no point has measured spread, so the weights
  // degrade to uniform and the weighted fit must equal plain OLS.
  const auto series = measure_scaling(
      {100, 200, 400, 800}, 3, 1,
      [](std::size_t n, std::uint64_t) {
        return 2.0 * std::sqrt(static_cast<double>(n));
      });
  ASSERT_TRUE(series.has_fit());
  ASSERT_TRUE(series.weighted_fit.ok());
  EXPECT_EQ(series.weighted_fit.slope, series.fit.slope);
  EXPECT_EQ(series.weighted_fit.intercept, series.fit.intercept);
}

TEST(MeasureScaling, WeightedFitFavorsLowVariancePoints) {
  // Noise grows steeply with n; the weighted exponent should sit closer
  // to the true 0.5 than OLS more often than not — here we just check it
  // is produced, finite, and in a sane band.
  const auto series = measure_scaling(
      {64, 128, 256, 512, 1024, 2048}, 8, 11,
      [](std::size_t n, std::uint64_t seed) {
        sfs::rng::Rng rng(seed);
        const double base = std::sqrt(static_cast<double>(n));
        const double rel = n > 512 ? 0.5 : 0.02;
        return base * (1.0 + rel * (rng.uniform() - 0.5));
      });
  ASSERT_TRUE(series.has_fit());
  ASSERT_TRUE(series.weighted_fit.ok());
  EXPECT_NEAR(series.weighted_fit.slope, 0.5, 0.1);
  EXPECT_GT(series.weighted_fit.slope_stderr, 0.0);
}

TEST(MeasureScaling, BootstrapSlopeCiBracketsSlope) {
  ScalingOptions options;
  options.bootstrap_replicates = 200;
  const auto series = measure_scaling(
      {128, 256, 512, 1024}, 12, 3,
      [](std::size_t n, std::uint64_t seed) {
        sfs::rng::Rng rng(seed);
        return std::pow(static_cast<double>(n), 0.6) *
               rng.uniform(0.9, 1.1);
      },
      options);
  ASSERT_TRUE(series.has_fit());
  ASSERT_GT(series.slope_ci.replicates, 0u);
  // The point statistic of the CI is the OLS slope itself.
  EXPECT_EQ(series.slope_ci.point, series.fit.slope);
  EXPECT_LE(series.slope_ci.lo, series.fit.slope);
  EXPECT_GE(series.slope_ci.hi, series.fit.slope);
  EXPECT_NEAR(series.slope_ci.lo, 0.6, 0.1);
  EXPECT_NEAR(series.slope_ci.hi, 0.6, 0.1);
  EXPECT_LT(series.slope_ci.lo, series.slope_ci.hi);

  // Recomputable from the stored series, deterministically.
  const auto again = sfs::sim::bootstrap_slope_ci(
      series, options.bootstrap_replicates, options.bootstrap_alpha,
      options.bootstrap_seed);
  EXPECT_EQ(again.lo, series.slope_ci.lo);
  EXPECT_EQ(again.hi, series.slope_ci.hi);
}

TEST(MeasureScaling, BootstrapCiSkippedByDefault) {
  const auto series = measure_scaling(
      {10, 20}, 2, 3,
      [](std::size_t n, std::uint64_t) { return static_cast<double>(n); });
  EXPECT_EQ(series.slope_ci.replicates, 0u);
}

TEST(MeasureScalingCheckpoint, WritesAndReplaysBitIdentically) {
  const std::string path = temp_checkpoint("full");
  auto measure = [](std::size_t n, std::uint64_t seed) {
    sfs::rng::Rng rng(seed);
    return std::sqrt(static_cast<double>(n)) * rng.uniform(0.5, 1.5);
  };
  const std::vector<std::size_t> sizes{32, 64, 128, 256};
  const std::size_t reps = 4;

  ScalingOptions plain;
  plain.bootstrap_replicates = 50;
  const auto reference = measure_scaling(sizes, reps, 0xC0, measure, plain);

  ScalingOptions with_ckpt = plain;
  with_ckpt.checkpoint_path = path;
  const auto first = measure_scaling(sizes, reps, 0xC0, measure, with_ckpt);
  expect_bit_identical(reference, first);

  // Second run over the complete checkpoint: every cell restored, the
  // measure function must never run, and the series is the same bits.
  std::atomic<int> calls{0};
  const auto replay = measure_scaling(
      sizes, reps, 0xC0,
      [&](std::size_t n, std::uint64_t seed) {
        ++calls;
        return measure(n, seed);
      },
      with_ckpt);
  EXPECT_EQ(calls.load(), 0);
  expect_bit_identical(reference, replay);
}

TEST(MeasureScalingCheckpoint, ResumesPartialGridBitIdentically) {
  const std::string full_path = temp_checkpoint("rfull");
  const std::string part_path = temp_checkpoint("rpart");
  auto measure = [](std::size_t n, std::uint64_t seed) {
    sfs::rng::Rng rng(seed);
    return static_cast<double>(n) * rng.uniform(0.9, 1.1);
  };
  const std::vector<std::size_t> sizes{16, 32, 64};
  const std::size_t reps = 3;

  ScalingOptions options;
  options.checkpoint_path = full_path;
  const auto reference = measure_scaling(sizes, reps, 0xCAFE, measure,
                                         options);

  // Simulate an interrupted run: keep the meta/header rows, the first 4
  // complete cell records, and one torn (half-written) record.
  {
    std::ifstream in(full_path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_GE(lines.size(), 2u + 5u);
    std::ofstream out(part_path);
    for (std::size_t i = 0; i < 2 + 4; ++i) out << lines[i] << '\n';
    out << lines[6].substr(0, lines[6].size() / 2);  // torn final line
  }

  std::atomic<int> calls{0};
  ScalingOptions resume;
  resume.checkpoint_path = part_path;
  const auto resumed = measure_scaling(
      sizes, reps, 0xCAFE,
      [&](std::size_t n, std::uint64_t seed) {
        ++calls;
        return measure(n, seed);
      },
      resume);
  expect_bit_identical(reference, resumed);
  // 9 cells total, 4 restored, the torn one and the rest recomputed.
  EXPECT_EQ(calls.load(), 5);

  // And the repaired checkpoint now replays completely.
  std::atomic<int> replay_calls{0};
  const auto replay = measure_scaling(
      sizes, reps, 0xCAFE,
      [&](std::size_t n, std::uint64_t seed) {
        ++replay_calls;
        return measure(n, seed);
      },
      resume);
  EXPECT_EQ(replay_calls.load(), 0);
  expect_bit_identical(reference, replay);
}

TEST(MeasureScalingCheckpoint, ResumeMatchesAnyThreadCount) {
  // A checkpoint written sequentially must resume bit-identically under a
  // parallel fan-out and vice versa: cell values depend only on (i, r).
  const std::string path = temp_checkpoint("threads");
  auto measure = [](std::size_t n, std::uint64_t seed) {
    sfs::rng::Rng rng(seed);
    return std::sqrt(static_cast<double>(n)) + rng.uniform();
  };
  const std::vector<std::size_t> sizes{16, 32, 64, 128};
  const std::size_t reps = 4;

  const auto reference =
      measure_scaling(sizes, reps, 0x7D, measure, /*threads=*/1);

  // Partial sequential run: interrupt by keeping only 3 data rows.
  ScalingOptions seq;
  seq.checkpoint_path = path;
  seq.threads = 1;
  (void)measure_scaling(sizes, reps, 0x7D, measure, seq);
  {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 2 + 3; ++i) out << lines[i] << '\n';
  }

  ScalingOptions par;
  par.checkpoint_path = path;
  par.threads = 3;
  const auto resumed = measure_scaling(sizes, reps, 0x7D, measure, par);
  expect_bit_identical(reference, resumed);
}

TEST(MeasureScalingCheckpoint, MismatchedGridIsRejected) {
  const std::string path = temp_checkpoint("mismatch");
  auto measure = [](std::size_t n, std::uint64_t) {
    return static_cast<double>(n);
  };
  ScalingOptions options;
  options.checkpoint_path = path;
  (void)measure_scaling({8, 16}, 2, 1, measure, options);

  // Different seed, reps, or sizes: resuming would silently mix
  // incompatible experiments, so it must throw instead.
  EXPECT_THROW((void)measure_scaling({8, 16}, 2, 2, measure, options),
               std::invalid_argument);
  EXPECT_THROW((void)measure_scaling({8, 16}, 3, 1, measure, options),
               std::invalid_argument);
  EXPECT_THROW((void)measure_scaling({8, 32}, 2, 1, measure, options),
               std::invalid_argument);
}

}  // namespace
