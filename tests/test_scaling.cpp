// Tests for the scaling-experiment harness.
#include "sim/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rng/random.hpp"

namespace {

using sfs::sim::geometric_sizes;
using sfs::sim::measure_scaling;

TEST(MeasureScaling, RecoversExactExponent) {
  const auto series = measure_scaling(
      {100, 200, 400, 800, 1600}, 3, 1,
      [](std::size_t n, std::uint64_t) {
        return 2.0 * std::sqrt(static_cast<double>(n));
      });
  EXPECT_NEAR(series.fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(series.fit.intercept), 2.0, 1e-6);
  EXPECT_EQ(series.points.size(), 5u);
  for (const auto& p : series.points) {
    EXPECT_EQ(p.summary.count, 3u);
    EXPECT_EQ(p.raw.size(), 3u);
  }
}

TEST(MeasureScaling, NoisyExponentWithinTolerance) {
  const auto series = measure_scaling(
      {128, 256, 512, 1024, 2048, 4096}, 10, 2,
      [](std::size_t n, std::uint64_t seed) {
        sfs::rng::Rng rng(seed);
        const double base = std::pow(static_cast<double>(n), 0.8);
        return base * rng.uniform(0.8, 1.2);
      });
  EXPECT_NEAR(series.fit.slope, 0.8, 0.06);
  EXPECT_GT(series.fit.r_squared, 0.98);
}

TEST(MeasureScaling, SeedsAreDeterministic) {
  std::vector<double> seen_a;
  std::vector<double> seen_b;
  // The measure lambda mutates unguarded state, so this test must stay on
  // the sequential path (threads=1, also the default).
  auto run = [](std::vector<double>& seen) {
    return [&seen](std::size_t n, std::uint64_t seed) {
      seen.push_back(static_cast<double>(seed));
      return static_cast<double>(n);
    };
  };
  (void)measure_scaling({10, 20}, 2, 7, run(seen_a), /*threads=*/1);
  (void)measure_scaling({10, 20}, 2, 7, run(seen_b), /*threads=*/1);
  EXPECT_EQ(seen_a, seen_b);
  // Distinct seeds across reps and sizes.
  std::set<double> unique(seen_a.begin(), seen_a.end());
  EXPECT_EQ(unique.size(), seen_a.size());
}

TEST(MeasureScaling, MeansAndSizesHelpers) {
  const auto series = measure_scaling(
      {10, 100}, 1, 3,
      [](std::size_t n, std::uint64_t) { return static_cast<double>(n); });
  EXPECT_EQ(series.sizes(), (std::vector<double>{10.0, 100.0}));
  EXPECT_EQ(series.means(), (std::vector<double>{10.0, 100.0}));
}

TEST(MeasureScaling, Preconditions) {
  auto f = [](std::size_t, std::uint64_t) { return 1.0; };
  EXPECT_THROW((void)measure_scaling({}, 1, 1, f), std::invalid_argument);
  EXPECT_THROW((void)measure_scaling({10}, 0, 1, f), std::invalid_argument);
}

TEST(GeometricSizes, EndpointsAndMonotonicity) {
  const auto sizes = geometric_sizes(100, 10000, 5);
  EXPECT_EQ(sizes.front(), 100u);
  EXPECT_EQ(sizes.back(), 10000u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_LT(sizes[i - 1], sizes[i]);
  }
}

TEST(GeometricSizes, RoughlyGeometric) {
  const auto sizes = geometric_sizes(100, 1600, 5);
  // Ratios near 2.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    const double ratio = static_cast<double>(sizes[i]) /
                         static_cast<double>(sizes[i - 1]);
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 2.7);
  }
}

TEST(GeometricSizes, CollapsesSmallRanges) {
  const auto sizes = geometric_sizes(10, 12, 6);
  EXPECT_EQ(sizes.front(), 10u);
  EXPECT_EQ(sizes.back(), 12u);
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LT(sizes[i - 1], sizes[i]);
}

TEST(GeometricSizes, Preconditions) {
  EXPECT_THROW((void)geometric_sizes(0, 10, 3), std::invalid_argument);
  EXPECT_THROW((void)geometric_sizes(10, 5, 3), std::invalid_argument);
  EXPECT_THROW((void)geometric_sizes(1, 10, 1), std::invalid_argument);
}

}  // namespace
