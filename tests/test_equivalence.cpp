// Tests for the vertex-equivalence machinery (Lemmas 1-3).
#include "core/equivalence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"

namespace {

using sfs::core::estimate_cf_event_probability;
using sfs::core::estimate_event_probability;
using sfs::core::event_holds;
using sfs::core::window_feature_stats;
using sfs::graph::kNoVertex;
using sfs::graph::VertexId;

TEST(EventHolds, ManualExamples) {
  // Paper ids: vertex k = internal k-1. fathers[] is internal.
  // Tree on 6 vertices: fathers of paper vertices 2..6.
  // E_{3,5}: paper vertices 4 and 5 must have fathers with paper id <= 3.
  const std::vector<VertexId> ok{kNoVertex, 0, 1, 2, 0, 3};
  // paper 4 (idx 3): father internal 2 = paper 3 <= 3 ✓
  // paper 5 (idx 4): father internal 0 = paper 1 <= 3 ✓
  EXPECT_TRUE(event_holds(ok, 3, 5));

  const std::vector<VertexId> bad{kNoVertex, 0, 1, 2, 3, 3};
  // paper 5 (idx 4): father internal 3 = paper 4 > 3 ✗
  EXPECT_FALSE(event_holds(bad, 3, 5));
}

TEST(EventHolds, EmptyWindowAlwaysHolds) {
  const std::vector<VertexId> f{kNoVertex, 0, 0};
  EXPECT_TRUE(event_holds(f, 3, 3));
}

TEST(EventHolds, Preconditions) {
  const std::vector<VertexId> f{kNoVertex, 0, 0};
  EXPECT_THROW((void)event_holds(f, 1, 2), std::invalid_argument);
  EXPECT_THROW((void)event_holds(f, 3, 2), std::invalid_argument);
  EXPECT_THROW((void)event_holds(f, 2, 9), std::invalid_argument);
}

TEST(Lemma3, ProbabilityOneAtPEqualsOne) {
  // Pure indegree preference: fresh vertices have weight 0, so no window
  // vertex can ever be chosen as a father.
  const auto est = estimate_event_probability(1.0, 50,
                                              sfs::core::theory::lemma3_window_end(50),
                                              500, 42);
  EXPECT_DOUBLE_EQ(est.probability, 1.0);
}

class Lemma3Bound : public ::testing::TestWithParam<double> {};

TEST_P(Lemma3Bound, EstimateRespectsTheBound) {
  const double p = GetParam();
  const std::size_t a = 400;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);
  const auto est = estimate_event_probability(p, a, b, 3000, 7);
  const double bound = sfs::core::theory::lemma3_bound(p);
  // Allow 3 binomial standard errors of slack below the bound.
  EXPECT_GE(est.probability, bound - 3.0 * est.stderr_est)
      << "p=" << p << " bound=" << bound;
  EXPECT_EQ(est.reps, 3000u);
  EXPECT_EQ(est.hits, static_cast<std::size_t>(
                          std::llround(est.probability * 3000.0)));
}

INSTANTIATE_TEST_SUITE_P(PSweep, Lemma3Bound,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(Lemma3, SmallerUniformShareRaisesProbability) {
  const std::size_t a = 256;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);
  const auto lo = estimate_event_probability(0.2, a, b, 3000, 11);
  const auto hi = estimate_event_probability(0.9, a, b, 3000, 12);
  EXPECT_GT(hi.probability, lo.probability);
}

TEST(WindowFeatures, ExchangeabilityOfConditionalMeans) {
  // Lemma 2: conditional on E_{a,b}, window positions are exchangeable, so
  // the per-position conditional mean indegree (and leaf probability) must
  // agree across the window up to Monte-Carlo noise.
  const std::size_t a = 64;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);  // 64+7
  const auto st = window_feature_stats(0.5, a, b, 200, 4000, 13);
  ASSERT_EQ(st.mean_final_indegree.size(), b - a);
  ASSERT_GT(st.accepted, 500u);
  double lo = 1e18;
  double hi = -1e18;
  for (const double m : st.mean_final_indegree) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  // Means are O(1); equality up to noise: spread below 0.25 absolute.
  EXPECT_LT(hi - lo, 0.25) << "indegree means spread";
  double plo = 1.0;
  double phi = 0.0;
  for (const double q : st.leaf_probability) {
    plo = std::min(plo, q);
    phi = std::max(phi, q);
  }
  EXPECT_LT(phi - plo, 0.1) << "leaf probability spread";
}

TEST(WindowFeatures, AcceptanceMatchesEventProbability) {
  const std::size_t a = 100;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);
  const auto st = window_feature_stats(0.5, a, b, 150, 2000, 17);
  const auto est = estimate_event_probability(0.5, a, b, 2000, 17);
  const double acc_rate =
      static_cast<double>(st.accepted) / static_cast<double>(st.attempted);
  EXPECT_NEAR(acc_rate, est.probability, 0.05);
}

TEST(WindowFeatures, Preconditions) {
  EXPECT_THROW((void)window_feature_stats(0.5, 10, 10, 50, 10, 1),
               std::invalid_argument);
  EXPECT_THROW((void)window_feature_stats(0.5, 10, 12, 11, 10, 1),
               std::invalid_argument);
}

TEST(CfEvent, ProbabilityInUnitInterval) {
  sfs::gen::CooperFriezeParams params;
  const auto est = estimate_cf_event_probability(params, 100, 105, 500, 19);
  EXPECT_GE(est.probability, 0.0);
  EXPECT_LE(est.probability, 1.0);
  EXPECT_GT(est.probability, 0.01);  // window of 5 is survivable
}

TEST(CfEvent, LargerWindowLessLikely) {
  sfs::gen::CooperFriezeParams params;
  const auto small = estimate_cf_event_probability(params, 200, 203, 800, 23);
  const auto large = estimate_cf_event_probability(params, 200, 230, 800, 23);
  EXPECT_GE(small.probability, large.probability);
}

TEST(CfEvent, MostlyOldHeadsWhenPreferential) {
  // With beta = gamma = 0 and indegree preference, late heads concentrate
  // on old vertices, so the event is more likely than under uniform heads.
  sfs::gen::CooperFriezeParams pref;
  pref.beta = 0.0;
  pref.gamma = 0.0;
  sfs::gen::CooperFriezeParams unif;
  unif.beta = 1.0;
  unif.gamma = 1.0;
  const std::size_t a = 300;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);
  const auto p_pref = estimate_cf_event_probability(pref, a, b, 1500, 29);
  const auto p_unif = estimate_cf_event_probability(unif, a, b, 1500, 31);
  EXPECT_GT(p_pref.probability, p_unif.probability);
}

}  // namespace
