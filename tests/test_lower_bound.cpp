// Tests for the composed Lemma 1+2+3 lower-bound estimator.
#include "core/lower_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"

namespace {

using sfs::core::cooper_frieze_lower_bound;
using sfs::core::mori_lower_bound;

TEST(MoriLowerBound, WindowGeometry) {
  const auto est = mori_lower_bound(0.5, 1001, 200, 1);
  EXPECT_EQ(est.a, 1000u);
  EXPECT_EQ(est.b, sfs::core::theory::lemma3_window_end(1000));
  EXPECT_EQ(est.window_size, est.b - est.a);
  // Window ~ sqrt(n).
  EXPECT_NEAR(static_cast<double>(est.window_size),
              std::sqrt(1000.0), 2.0);
}

TEST(MoriLowerBound, BoundIsHalfWindowTimesProbability) {
  const auto est = mori_lower_bound(0.5, 501, 400, 2);
  EXPECT_DOUBLE_EQ(est.bound,
                   static_cast<double>(est.window_size) *
                       est.event.probability / 2.0);
}

TEST(MoriLowerBound, EstimateAboveTheoryFloor) {
  // Lemma 3 guarantees P(E) >= e^{-(1-p)}; the estimated bound must sit at
  // or above the closed-form floor (up to Monte-Carlo noise).
  for (const double p : {0.25, 0.5, 0.75}) {
    const auto est = mori_lower_bound(p, 401, 2000, 3);
    const double noise = 3.0 * est.event.stderr_est *
                         static_cast<double>(est.window_size) / 2.0;
    EXPECT_GE(est.bound, est.theory_floor - noise) << "p=" << p;
  }
}

TEST(MoriLowerBound, GrowsLikeSqrtN) {
  const auto small = mori_lower_bound(0.5, 257, 1500, 4);
  const auto large = mori_lower_bound(0.5, 4097, 1500, 5);
  // sqrt(4096)/sqrt(256) = 4; allow generous tolerance around it.
  const double ratio = large.bound / small.bound;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(MoriLowerBound, PEqualOneGivesExactWindowHalf) {
  const auto est = mori_lower_bound(1.0, 226, 300, 6);
  EXPECT_DOUBLE_EQ(est.event.probability, 1.0);
  EXPECT_DOUBLE_EQ(est.bound, static_cast<double>(est.window_size) / 2.0);
}

TEST(MoriLowerBound, Preconditions) {
  EXPECT_THROW((void)mori_lower_bound(0.5, 2, 10, 1), std::invalid_argument);
}

TEST(CooperFriezeLowerBound, ProducesPositiveBound) {
  sfs::gen::CooperFriezeParams params;
  const auto est = cooper_frieze_lower_bound(params, 401, 400, 7);
  EXPECT_EQ(est.a, 400u);
  EXPECT_GT(est.window_size, 0u);
  EXPECT_GE(est.bound, 0.0);
  EXPECT_DOUBLE_EQ(est.theory_floor, 0.0);
}

TEST(CooperFriezeLowerBound, BoundFormulaConsistent) {
  sfs::gen::CooperFriezeParams params;
  params.alpha = 0.75;
  const auto est = cooper_frieze_lower_bound(params, 301, 300, 8);
  EXPECT_DOUBLE_EQ(est.bound,
                   static_cast<double>(est.window_size) *
                       est.event.probability / 2.0);
}

}  // namespace
