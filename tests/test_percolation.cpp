// Tests for the Sarshar-style percolation search protocol.
#include "search/percolation.hpp"

#include <gtest/gtest.h>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::search::percolation_search;
using sfs::search::PercolationParams;

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph power_law_lcc(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  return sfs::graph::largest_component(g).graph;
}

TEST(PercolationSearch, FullBroadcastFindsOnConnectedGraph) {
  const Graph g = path_graph(20);
  Rng rng(1);
  const auto r = percolation_search(g, 19, 0,
                                    PercolationParams{0, 0, 1.0}, rng);
  EXPECT_TRUE(r.found);
  EXPECT_GT(r.messages, 0u);
}

TEST(PercolationSearch, ZeroProbabilityFindsOnlyLocally) {
  const Graph g = path_graph(20);
  Rng rng(2);
  const auto r = percolation_search(g, 19, 0,
                                    PercolationParams{0, 0, 0.0}, rng);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.vertices_reached, 1u);
}

TEST(PercolationSearch, RequesterHoldingReplicaSucceedsFree) {
  const Graph g = path_graph(5);
  Rng rng(3);
  const auto r =
      percolation_search(g, 2, 2, PercolationParams{0, 0, 0.0}, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.messages, 0u);
}

TEST(PercolationSearch, ReplicationWalkPlantsReplicas) {
  const Graph g = path_graph(10);
  Rng rng(4);
  // Walk of length 30 on a 10-path covers several vertices.
  const auto r =
      percolation_search(g, 0, 9, PercolationParams{30, 0, 0.0}, rng);
  EXPECT_GT(r.replicas, 1u);
  EXPECT_GE(r.messages, 30u);  // walk steps are counted as messages
}

TEST(PercolationSearch, QueryWalkCanFindReplicaDirectly) {
  const Graph g = path_graph(6);
  Rng rng(5);
  // Long query walk with no broadcast: must bump into the owner.
  const auto r =
      percolation_search(g, 5, 0, PercolationParams{0, 200, 0.0}, rng);
  EXPECT_TRUE(r.found);
}

TEST(PercolationSearch, HigherEdgeProbabilityHelps) {
  const Graph g = power_law_lcc(2000, 6);
  const VertexId owner = static_cast<VertexId>(g.num_vertices() - 1);
  int found_low = 0;
  int found_high = 0;
  for (std::uint64_t rep = 0; rep < 60; ++rep) {
    Rng lo(sfs::rng::derive_seed(7, rep));
    Rng hi(sfs::rng::derive_seed(8, rep));
    if (percolation_search(g, owner, 0, PercolationParams{10, 10, 0.05}, lo)
            .found)
      ++found_low;
    if (percolation_search(g, owner, 0, PercolationParams{10, 10, 0.9}, hi)
            .found)
      ++found_high;
  }
  EXPECT_GT(found_high, found_low);
  EXPECT_GT(found_high, 50);  // near-certain at q_e = 0.9 with replication
}

TEST(PercolationSearch, ReplicationImprovesSuccess) {
  const Graph g = power_law_lcc(2000, 9);
  const VertexId owner = static_cast<VertexId>(g.num_vertices() / 2);
  int found_bare = 0;
  int found_replicated = 0;
  for (std::uint64_t rep = 0; rep < 60; ++rep) {
    Rng a(sfs::rng::derive_seed(10, rep));
    Rng b(sfs::rng::derive_seed(11, rep));
    if (percolation_search(g, owner, 0, PercolationParams{0, 0, 0.2}, a)
            .found)
      ++found_bare;
    if (percolation_search(g, owner, 0, PercolationParams{60, 10, 0.2}, b)
            .found)
      ++found_replicated;
  }
  EXPECT_GT(found_replicated, found_bare);
}

TEST(PercolationSearch, MessagesSublinearInHighDegreeRegime) {
  // With modest q_e the broadcast stops early; messages well below edges.
  const Graph g = power_law_lcc(5000, 12);
  Rng rng(13);
  const auto r = percolation_search(
      g, static_cast<VertexId>(g.num_vertices() - 1), 0,
      PercolationParams{40, 10, 0.3}, rng);
  EXPECT_LT(r.messages, g.num_edges());
}

TEST(PercolationSearch, Preconditions) {
  const Graph g = path_graph(3);
  Rng rng(14);
  EXPECT_THROW((void)percolation_search(g, 5, 0, PercolationParams{}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)percolation_search(
                   g, 0, 1, PercolationParams{0, 0, 1.5}, rng),
               std::invalid_argument);
}

}  // namespace
