// Tests for the immutable multigraph and its builder.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/builder.hpp"

namespace {

using sfs::graph::Edge;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::kNoVertex;
using sfs::graph::VertexId;

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b;
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, AddVertexReturnsSequentialIds) {
  GraphBuilder b;
  EXPECT_EQ(b.add_vertex(), 0u);
  EXPECT_EQ(b.add_vertex(), 1u);
  EXPECT_EQ(b.add_vertices(3), 2u);
  EXPECT_EQ(b.num_vertices(), 5u);
}

TEST(GraphBuilder, RejectsDanglingEdge) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(b.add_edge(2, 0), std::invalid_argument);
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Graph, EdgeRecordsKeepOrientation) {
  const Graph g = triangle();
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{1, 2}));
  EXPECT_EQ(g.edge(2), (Edge{2, 0}));
}

TEST(Graph, InOutDegrees) {
  const Graph g = triangle();
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.in_degree(v), 1u);
    EXPECT_EQ(g.out_degree(v), 1u);
  }
}

TEST(Graph, OtherEndpoint) {
  const Graph g = triangle();
  EXPECT_EQ(g.other_endpoint(0, 0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 1), 0u);
  EXPECT_THROW((void)g.other_endpoint(0, 2), std::invalid_argument);
}

TEST(Graph, SelfLoopCountsTwiceInDegree) {
  GraphBuilder b(1);
  b.add_edge(0, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 0), 0u);
  EXPECT_TRUE(g.edge(0).is_loop());
}

TEST(Graph, SelfLoopAppearsTwiceInIncidence) {
  GraphBuilder b(1);
  b.add_edge(0, 0);
  const Graph g = b.build();
  const auto inc = g.incident(0);
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_EQ(inc[0], 0u);
  EXPECT_EQ(inc[1], 0u);
}

TEST(Graph, ParallelEdgesAllowed) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 3u);
}

TEST(Graph, NeighborsMultiset) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(0, 0);
  b.add_edge(2, 0);
  const Graph g = b.build();
  auto nb = g.neighbors(0);
  std::sort(nb.begin(), nb.end());
  // Self-loop contributes 0 twice, two parallel edges to 1, one edge to 2.
  const std::vector<VertexId> expected{0, 0, 1, 1, 2};
  EXPECT_EQ(nb, expected);
}

TEST(Graph, HasEdge) {
  const Graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph h = b.build();
  EXPECT_FALSE(h.has_edge(0, 2));
  EXPECT_FALSE(h.has_edge(1, 2));
}

TEST(Graph, IncidentOrderIsByInsertion) {
  GraphBuilder b(3);
  b.add_edge(0, 1);  // edge 0
  b.add_edge(2, 0);  // edge 1
  b.add_edge(0, 2);  // edge 2
  const Graph g = b.build();
  const auto inc = g.incident(0);
  ASSERT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc[0], 0u);
  EXPECT_EQ(inc[1], 1u);
  EXPECT_EQ(inc[2], 2u);
}

TEST(Graph, RangeChecks) {
  const Graph g = triangle();
  EXPECT_THROW((void)g.degree(3), std::invalid_argument);
  EXPECT_THROW((void)g.incident(3), std::invalid_argument);
  EXPECT_THROW((void)g.edge(3), std::invalid_argument);
  EXPECT_THROW((void)g.in_degree(5), std::invalid_argument);
}

TEST(Graph, IsolatedVerticesHaveZeroDegree) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.incident(2).empty());
}

TEST(Graph, HandshakeLemma) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 3);
  const Graph g = b.build();
  std::size_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(Graph, BuilderIsReusableAfterBuild) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(b.num_vertices(), 0u);
  EXPECT_EQ(b.num_edges(), 0u);
}

TEST(GraphBuilder, ValidateEdgeCapacity) {
  using sfs::graph::kNoEdge;
  using sfs::graph::validate_edge_capacity;
  // In-range counts pass, including the largest representable one
  // (add_edge allows ids up to kNoEdge - 1, i.e. kNoEdge edges total).
  EXPECT_NO_THROW(validate_edge_capacity(0));
  EXPECT_NO_THROW(validate_edge_capacity(1000000));
  EXPECT_NO_THROW(validate_edge_capacity(static_cast<std::size_t>(kNoEdge)));
  // One past the EdgeId range — what a high-degree model at n >= 10^6
  // could request — must be rejected before any CSR array is sized.
  EXPECT_THROW(validate_edge_capacity(static_cast<std::size_t>(kNoEdge) + 1),
               std::invalid_argument);
  // And a count whose 2m incidence slot total would wrap size_t.
  EXPECT_THROW(
      validate_edge_capacity(std::numeric_limits<std::size_t>::max() / 2 + 1),
      std::invalid_argument);
}

}  // namespace
