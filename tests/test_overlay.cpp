// Tests for graph::Overlay: the incremental mutation layer — staged joins,
// tombstone departures, targeted edge failures, periodic compaction, and
// the epoch/determinism contracts the churn engine builds on.
#include "graph/overlay.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "rng/random.hpp"

namespace {

using sfs::graph::Edge;
using sfs::graph::EdgeId;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::Overlay;
using sfs::graph::VertexId;

// Triangle 0-1-2 plus pendant 3 hanging off 2 (edges 0:01, 1:12, 2:02, 3:23).
Graph diamond() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  return b.build();
}

Graph mori(std::size_t n, std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
}

TEST(Overlay, StartsFullyAliveAtEpochOne) {
  Overlay o(diamond());
  EXPECT_EQ(o.epoch(), 1u);
  EXPECT_EQ(o.num_vertices(), 4u);
  EXPECT_EQ(o.num_alive(), 4u);
  EXPECT_EQ(o.staged_joins(), 0u);
  EXPECT_EQ(o.compactions(), 0u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_TRUE(o.alive(v));
  for (EdgeId e = 0; e < 4; ++e) EXPECT_TRUE(o.edge_alive(e));
  EXPECT_EQ(o.vertex_alive_mask().size(), 4u);
  EXPECT_EQ(o.edge_alive_mask().size(), 4u);
  EXPECT_EQ(o.live_degree(2), 3u);
}

TEST(Overlay, DepartTombstonesAndBumpsEpoch) {
  Overlay o(diamond());
  o.depart(3);
  EXPECT_EQ(o.epoch(), 2u);
  EXPECT_FALSE(o.alive(3));
  EXPECT_EQ(o.num_alive(), 3u);
  EXPECT_EQ(o.num_vertices(), 4u);  // the id remains issued
  // Edge 3 (2-3) still sits in the CSR and in the edge mask (tombstones
  // leave their edges dangling until compaction)...
  EXPECT_TRUE(o.edge_alive(3));
  // ...but the *live* degree of 2 no longer counts the dead endpoint.
  EXPECT_EQ(o.live_degree(2), 2u);
  EXPECT_EQ(o.live_degree(3), 0u);
  EXPECT_THROW(o.depart(3), std::invalid_argument);  // already dead
}

TEST(Overlay, FailEdgeMasksLink) {
  Overlay o(diamond());
  o.fail_edge(1);  // link 1-2
  EXPECT_EQ(o.epoch(), 2u);
  EXPECT_FALSE(o.edge_alive(1));
  EXPECT_EQ(o.live_degree(1), 1u);
  EXPECT_EQ(o.live_degree(2), 2u);
  EXPECT_THROW(o.fail_edge(1), std::invalid_argument);  // already dead
}

TEST(Overlay, JoinStagesUntilCompaction) {
  Overlay o(diamond());
  sfs::rng::Rng rng(7);
  const VertexId v = o.join(2, rng);
  EXPECT_EQ(v, 4u);  // next never-reused id
  EXPECT_EQ(o.num_vertices(), 5u);
  EXPECT_EQ(o.num_alive(), 5u);
  EXPECT_EQ(o.staged_joins(), 1u);
  EXPECT_TRUE(o.alive(v));
  EXPECT_EQ(o.live_degree(v), 2u);  // staged links count toward live degree
  // The CSR snapshot is unchanged until compact().
  EXPECT_EQ(o.snapshot().num_vertices(), 4u);
  EXPECT_EQ(o.snapshot().num_edges(), 4u);

  o.compact();
  EXPECT_EQ(o.staged_joins(), 0u);
  EXPECT_EQ(o.compactions(), 1u);
  EXPECT_EQ(o.snapshot().num_vertices(), 5u);
  EXPECT_EQ(o.snapshot().num_edges(), 6u);
  EXPECT_EQ(o.snapshot().degree(v), 2u);
  // Every committed join edge lands on a pre-existing vertex.
  for (EdgeId e : o.snapshot().incident(v)) {
    const Edge& ed = o.snapshot().edge(e);
    const VertexId far = ed.tail == v ? ed.head : ed.tail;
    EXPECT_LT(far, 4u);
  }
}

TEST(Overlay, CompactDropsDeadEdgesAndPreservesIds) {
  Overlay o(diamond());
  o.depart(3);
  o.fail_edge(0);  // link 0-1
  o.compact();
  const Graph& g = o.snapshot();
  EXPECT_EQ(g.num_vertices(), 4u);  // tombstone keeps its id, isolated
  EXPECT_EQ(g.num_edges(), 2u);     // 1-2 and 0-2 survive
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(o.alive(3));  // still dead after compaction
  // Edge mask reset to all-alive at the new (renumbered) edge ids.
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_TRUE(o.edge_alive(e));
}

TEST(Overlay, MaybeCompactPolicy) {
  Overlay o(mori(100, 3));
  const std::size_t m = o.snapshot().num_edges();
  EXPECT_FALSE(o.maybe_compact(0.25));  // nothing staged, no debt
  o.fail_edge(0);
  EXPECT_FALSE(o.maybe_compact(0.25));  // 1 dead edge: below threshold
  // Push the dead-edge debt over 25% of m.
  std::size_t failed = 1;
  for (EdgeId e = 1; e < m && failed <= m / 4; ++e) {
    o.fail_edge(e);
    ++failed;
  }
  EXPECT_TRUE(o.maybe_compact(0.25));
  EXPECT_EQ(o.compactions(), 1u);
  // Staged joins always force a compaction regardless of debt.
  sfs::rng::Rng rng(11);
  (void)o.join(2, rng);
  EXPECT_TRUE(o.maybe_compact(0.25));
}

TEST(Overlay, JoinTargetsOnlyLivePeers) {
  Overlay o(diamond());
  o.depart(0);
  o.depart(1);  // only 2 and 3 remain alive
  sfs::rng::Rng rng(13);
  for (int i = 0; i < 8; ++i) {
    const VertexId v = o.join(3, rng);
    o.compact();
    for (EdgeId e : o.snapshot().incident(v)) {
      const Edge& ed = o.snapshot().edge(e);
      const VertexId far = ed.tail == v ? ed.head : ed.tail;
      EXPECT_TRUE(o.alive(far)) << "join " << i << " hit dead peer " << far;
    }
  }
}

TEST(Overlay, DeterministicUnderIdenticalMutationSequence) {
  auto mutate = [](Overlay& o, std::uint64_t seed) {
    sfs::rng::Rng rng(seed);
    o.depart(5);
    o.fail_edge(2);
    (void)o.join(2, rng);
    (void)o.join(3, rng);
    o.depart(17);
    o.compact();
    (void)o.join(2, rng);
    o.compact();
  };
  Overlay a(mori(200, 42));
  Overlay b(mori(200, 42));
  mutate(a, 9);
  mutate(b, 9);
  EXPECT_EQ(a.epoch(), b.epoch());
  ASSERT_EQ(a.snapshot().num_vertices(), b.snapshot().num_vertices());
  ASSERT_EQ(a.snapshot().num_edges(), b.snapshot().num_edges());
  for (EdgeId e = 0; e < a.snapshot().num_edges(); ++e) {
    EXPECT_EQ(a.snapshot().edge(e).tail, b.snapshot().edge(e).tail) << e;
    EXPECT_EQ(a.snapshot().edge(e).head, b.snapshot().edge(e).head) << e;
  }
}

TEST(Overlay, ValidatesArguments) {
  Overlay o(diamond());
  sfs::rng::Rng rng(1);
  EXPECT_THROW((void)o.alive(4), std::invalid_argument);
  EXPECT_THROW((void)o.edge_alive(4), std::invalid_argument);
  EXPECT_THROW(o.depart(4), std::invalid_argument);
  EXPECT_THROW(o.fail_edge(9), std::invalid_argument);
  EXPECT_THROW((void)o.join(0, rng), std::invalid_argument);
  EXPECT_THROW((void)o.live_degree(4), std::invalid_argument);
}

TEST(Overlay, CompactionEpochInvalidatesMasksBySize) {
  // After a compaction the edge mask tracks the renumbered edge set; a
  // consumer holding a pre-compaction span would see the size change.
  Overlay o(mori(60, 5));
  const std::size_t m_before = o.edge_alive_mask().size();
  o.depart(0);
  const std::uint64_t epoch_before = o.epoch();
  o.compact();
  EXPECT_GT(o.epoch(), epoch_before);
  EXPECT_LT(o.edge_alive_mask().size(), m_before);
}

// ------------------------------------------------- join sampler backends

using sfs::graph::OverlaySampler;

// The incremental live mass must track live_degree(v) + 1 exactly through
// an arbitrary interleaving of joins, departures, edge failures and
// compactions — any drift would silently bias every later join.
void expect_mass_matches_live_degree(Overlay& o) {
  for (VertexId v = 0; v < o.num_vertices(); ++v) {
    const std::uint64_t expected =
        o.alive(v) ? static_cast<std::uint64_t>(o.live_degree(v)) + 1 : 0;
    EXPECT_EQ(o.join_mass(v), expected) << "vertex " << v;
  }
}

TEST(Overlay, BucketedMassTracksLiveDegreeThroughMutationStorm) {
  Overlay o(mori(80, 21), OverlaySampler::kBucketed);
  sfs::rng::Rng rng(22);
  expect_mass_matches_live_degree(o);
  for (int round = 0; round < 60; ++round) {
    const auto move = rng.uniform_index(10);
    if (move < 4) {
      (void)o.join(1 + static_cast<std::size_t>(rng.uniform_index(3)), rng);
    } else if (move < 7 && o.num_alive() > 10) {
      // Depart a random live vertex.
      for (;;) {
        const auto v =
            static_cast<VertexId>(rng.uniform_index(o.num_vertices()));
        if (o.alive(v)) {
          o.depart(v);
          break;
        }
      }
    } else if (move < 9) {
      // Fail a random live snapshot edge, if any remain.
      const auto m = o.edge_alive_mask().size();
      for (std::size_t tries = 0; tries < 2 * m + 1; ++tries) {
        const auto e = static_cast<EdgeId>(rng.uniform_index(m));
        if (o.edge_alive(e)) {
          o.fail_edge(e);
          break;
        }
      }
    } else {
      (void)o.maybe_compact(0.1);
    }
    if (round % 10 == 0) expect_mass_matches_live_degree(o);
  }
  expect_mass_matches_live_degree(o);
  o.compact();
  expect_mass_matches_live_degree(o);
}

TEST(Overlay, BagModeReproducesReferenceDraws) {
  // kBag is the frozen PR 6 draw stream: target i of a join is
  // bag[uniform_index(bag.size())] over the id-ordered live bag. Verify
  // against an independent reconstruction of that bag.
  Overlay o(diamond(), OverlaySampler::kBag);
  EXPECT_EQ(o.sampler(), OverlaySampler::kBag);
  o.depart(3);
  // Reference bag after departing 3: id order, one baseline entry per live
  // vertex plus one entry per live incidence slot.
  // degrees: 0 -> {1,2}, 1 -> {0,2}, 2 -> {0,1} (slot to 3 is dead).
  const std::vector<VertexId> reference{0, 0, 0, 1, 1, 1, 2, 2, 2};
  sfs::rng::Rng draw_rng(77);
  sfs::rng::Rng check_rng(77);
  const VertexId joined = o.join(2, draw_rng);
  EXPECT_EQ(joined, 4u);
  // The join drew exactly two uniform indices from the bag. Each live
  // vertex had live degree 2 before the join and gains one per edge drawn
  // to it, which pins the drawn targets exactly.
  const auto t0 = reference[static_cast<std::size_t>(
      check_rng.uniform_index(reference.size()))];
  const auto t1 = reference[static_cast<std::size_t>(
      check_rng.uniform_index(reference.size()))];
  for (VertexId v = 0; v < 3; ++v) {
    const std::size_t drawn = (v == t0 ? 1u : 0u) + (v == t1 ? 1u : 0u);
    EXPECT_EQ(o.live_degree(v), 2u + drawn) << "vertex " << v;
  }
  EXPECT_EQ(o.join_mass(joined), 3u);  // baseline + two staged edges
}

TEST(Overlay, SamplerBackendsAgreeOnJoinDistribution) {
  // Same live mass, same target distribution: empirical join-target
  // frequencies from both backends must match the live_degree + 1 law.
  // (The draw streams differ by design; the distribution must not.)
  constexpr int kJoins = 30000;
  const Graph base = diamond();
  std::vector<std::size_t> hits_bucketed(4, 0);
  std::vector<std::size_t> hits_bag(4, 0);
  std::size_t total_bucketed = 0;
  std::size_t total_bag = 0;
  for (int trial = 0; trial < kJoins; ++trial) {
    Overlay ob(base, OverlaySampler::kBucketed);
    Overlay og(base, OverlaySampler::kBag);
    sfs::rng::Rng rb(1000 + trial);
    sfs::rng::Rng rg(5000 + trial);
    const VertexId jb = ob.join(1, rb);
    const VertexId jg = og.join(1, rg);
    for (VertexId v = 0; v < 4; ++v) {
      const std::size_t db = ob.live_degree(v);
      const std::size_t dg = og.live_degree(v);
      // The single join target is the vertex whose live degree grew.
      const std::size_t base_deg = base.degree(v);
      if (db > base_deg) {
        hits_bucketed[v] += db - base_deg;
        total_bucketed += db - base_deg;
      }
      if (dg > base_deg) {
        hits_bag[v] += dg - base_deg;
        total_bag += dg - base_deg;
      }
    }
    (void)jb;
    (void)jg;
  }
  // Expected mass: degree+1 over total 4 + 8 = 12 -> {3,3,4,2}/12.
  const double expected[4] = {3.0 / 12, 3.0 / 12, 4.0 / 12, 2.0 / 12};
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_NEAR(static_cast<double>(hits_bucketed[v]) / total_bucketed,
                expected[v], 0.02)
        << "bucketed, vertex " << v;
    EXPECT_NEAR(static_cast<double>(hits_bag[v]) / total_bag, expected[v],
                0.02)
        << "bag, vertex " << v;
  }
}

}  // namespace
