// SFS_LINT_FIXTURE_PATH: src/graph/fixture_allow_unknown.cpp
// Fixture: SFS_LINT_ALLOW naming a rule that does not exist is rejected
// (allow-unknown-rule) and suppresses nothing.
#include <stdexcept>

void fixture() {
  // SFS_LINT_ALLOW(no-such-rule): typo'd rule name
  throw std::runtime_error("not actually suppressed");
}
