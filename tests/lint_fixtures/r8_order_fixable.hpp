// SFS_LINT_FIXTURE_PATH: src/search/fixture_order_fixable.hpp
// Fixture: a pure ordering violation — every include points down the
// DAG, only the sort is wrong, so sfs_lint --fix must restore order and
// the result must lint clean (asserted by --self-test).
#pragma once

#include "rng/random.hpp"
#include "graph/graph.hpp"
#include "base/check.hpp"
