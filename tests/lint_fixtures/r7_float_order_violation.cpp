// SFS_LINT_FIXTURE_PATH: src/sim/fixture_float.cpp
// Fixture: unordered floating-point accumulation in an emitter TU.
// std::reduce leaves the FP reduction order unspecified, and
// std::accumulate over an unordered container sums in hash order —
// either one makes the emitted BENCH_JSON bytes implementation-defined.
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/report.hpp"

double add_kv(double acc, const std::pair<const std::string, double>& kv) {
  return acc + kv.second;
}

double fixture(sfs::sim::ResultsEmitter& emitter) {
  std::unordered_map<std::string, double> weights;
  weights["bfs"] = 1.0;
  const std::vector<double> costs{1.0, 2.0, 3.0};
  const double a = std::reduce(costs.begin(), costs.end(), 0.0);
  const double b = std::accumulate(weights.begin(), weights.end(), 0.0, add_kv);
  emitter.emit_object("{\"total\":" + std::to_string(a + b) + "}");
  return a + b;
}
