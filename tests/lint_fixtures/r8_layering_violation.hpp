// SFS_LINT_FIXTURE_PATH: src/graph/fixture_layering.hpp
// Fixture: a graph/ header reaching UP the layer DAG into sim/ (layering
// violation — graph is layer 2, sim is layer 6), plus an unsorted
// quoted-include run (base sorts before rng; --fix restores the order,
// but the upward include needs a real design fix).
#pragma once

#include "rng/random.hpp"
#include "base/check.hpp"
#include "sim/parallel.hpp"
