// SFS_LINT_FIXTURE_PATH: src/rng/fixture_engine.cpp
// Fixture: src/rng/ implements the RNG layer, so rng-sources does not
// apply there (a reference engine for parity tests is legitimate).
#include <random>

unsigned fixture() {
  std::mt19937 reference(99);
  return reference();
}
