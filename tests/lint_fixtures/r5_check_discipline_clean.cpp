// SFS_LINT_FIXTURE_PATH: src/graph/fixture_checks_clean.cpp
// Fixture: the sanctioned forms — SFS_REQUIRE for preconditions,
// SFS_CHECK for invariants. The word throw in comments/strings is inert.
#include <string>

#include "base/check.hpp"

void fixture(int n) {
  SFS_REQUIRE(n >= 0, "n must be non-negative");
  // SFS_REQUIRE will throw std::invalid_argument on violation.
  const std::string decoy = "throw assert(";
  SFS_CHECK(decoy.size() > 0, "invariant");
}
