// SFS_LINT_FIXTURE_PATH: src/sim/fixture_rng_clean.cpp
// Fixture: disciplined randomness plus every comment/string decoy.
// Mentioning std::mt19937, rand(), or std::random_device in a comment
// must NOT fire — rules run on comment- and literal-stripped text.
#include <chrono>
#include <string>

#include "rng/random.hpp"

double fixture() {
  sfs::rng::Rng rng(sfs::rng::derive_seed(17, 0));
  const std::string decoy = "std::mt19937 rand() time(nullptr)";
  /* std::random_device in a block comment is also fine */
  const auto t0 = std::chrono::steady_clock::now();  // timing, not entropy
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() +
         static_cast<double>(rng.next_u64() % 3) + decoy.size();
}
