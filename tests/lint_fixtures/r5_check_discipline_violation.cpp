// SFS_LINT_FIXTURE_PATH: src/graph/fixture_checks.cpp
// Fixture: raw throw and release-compiled-out assert in src/ fire
// check-discipline; static_assert is compile-time and does not.
#include <cassert>
#include <stdexcept>

void fixture(int n) {
  static_assert(sizeof(int) >= 4, "compile-time checks are fine");
  assert(n >= 0);
  if (n == 0) {
    throw std::invalid_argument("use SFS_REQUIRE instead");
  }
}
