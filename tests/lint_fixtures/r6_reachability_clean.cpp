// SFS_LINT_FIXTURE_PATH: bench/experiments/fixture_r6_clean.cpp
// Fixture: the same shape as the violation twin, but every root -> draw
// path traverses a sanctioned derivation — the run-fn derives the
// helper's seed via ctx.stream_seed.  The second helper also draws
// without a sanction but is unreachable from any registered run-fn, so
// it must stay silent (the rule is about experiment paths, not every
// Rng in the tree).
#include "rng/random.hpp"
#include "sim/experiment.hpp"

using sfs::rng::Rng;

double helper_cost(std::uint64_t seed) {
  Rng rng(seed);
  return rng.unit_double();
}

double unreachable_probe(std::uint64_t seed) {
  Rng rng(seed);
  return rng.unit_double();
}

int run_fixture(sfs::sim::ExperimentContext& ctx) {
  double acc = 0.0;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    acc += helper_cost(ctx.stream_seed("cost", rep));
  }
  return acc > 0.0 ? 0 : 1;
}

const sfs::sim::ExperimentRegistrar reg_fixture({
    .name = "fixture_r6_clean",
    .run = run_fixture,
});
