// SFS_LINT_FIXTURE_PATH: src/graph/fixture_allow_good.cpp
// Fixture: a reasoned SFS_LINT_ALLOW suppresses exactly its rule on the
// annotated line (trailing) or the line below (standalone).
#include <stdexcept>

void fixture(bool tail) {
  // SFS_LINT_ALLOW(check-discipline): fixture demonstrating the standalone-annotation form
  if (tail) throw std::runtime_error("suppressed by the line above");
  throw std::runtime_error("suppressed trailing");  // SFS_LINT_ALLOW(check-discipline): fixture demonstrating the trailing form
}
