// SFS_LINT_FIXTURE_PATH: src/sim/fixture_emit.cpp
// Fixture: this TU touches the emitter surface, so iterating an
// unordered container fires unordered-emission (hash order would leak
// into committed BENCH_JSON artifacts).
#include <string>
#include <unordered_map>

#include "sim/report.hpp"

void fixture(sfs::sim::ResultsEmitter& emitter) {
  std::unordered_map<std::string, double> by_policy;
  by_policy["bfs"] = 1.0;
  for (const auto& [name, cost] : by_policy) {
    emitter.emit_object("{\"policy\":\"" + name + "\"}");
    (void)cost;
  }
  for (auto it = by_policy.begin(); it != by_policy.end(); ++it) {
    (void)it;
  }
}
