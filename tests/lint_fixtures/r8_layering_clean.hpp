// SFS_LINT_FIXTURE_PATH: src/search/fixture_layering_clean.hpp
// Fixture: a search/ header including only from layers at or below its
// own (base 0, graph 2, rng 1, search 5), in sorted order — exactly the
// shape the layering rule wants.
#pragma once

#include "base/check.hpp"
#include "graph/graph.hpp"
#include "rng/random.hpp"
#include "search/policy.hpp"
