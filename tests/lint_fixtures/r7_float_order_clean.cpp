// SFS_LINT_FIXTURE_PATH: src/sim/fixture_float_clean.cpp
// Fixture: the disciplined version of the float-order twin — a left
// fold (std::accumulate) over ordered ranges only.  Identical math,
// byte-stable artifacts.
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "sim/report.hpp"

double fixture(sfs::sim::ResultsEmitter& emitter) {
  std::map<std::string, double> weights;
  weights["bfs"] = 1.0;
  const std::vector<double> costs{1.0, 2.0, 3.0};
  const double a = std::accumulate(costs.begin(), costs.end(), 0.0);
  const double b = std::accumulate(
      weights.begin(), weights.end(), 0.0,
      [](double acc, const auto& kv) { return acc + kv.second; });
  emitter.emit_object("{\"total\":" + std::to_string(a + b) + "}");
  return a + b;
}
