// SFS_LINT_FIXTURE_PATH: src/graph/fixture_assert_fixable.cpp
// Fixture: a release-compiled-out assert that --fix must mechanically
// rewrite into SFS_CHECK (inserting the base/check.hpp include), after
// which the file lints clean (asserted by --self-test).
#include <cassert>
#include <cstddef>

int fixture(int n) {
  assert(n >= 0);
  return n + static_cast<int>(sizeof(std::size_t));
}
