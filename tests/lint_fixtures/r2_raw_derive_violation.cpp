// SFS_LINT_FIXTURE_PATH: bench/experiments/fixture_sweep.cpp
// Fixture: raw derive_stream_seed outside src/rng/ fires raw-derive —
// the call bypasses SFS_RNG_AUDIT collision coverage.
#include "rng/random.hpp"

std::uint64_t fixture(std::uint64_t seed, std::uint64_t rep) {
  return sfs::rng::derive_stream_seed(seed, 0x9e37, rep);
}
