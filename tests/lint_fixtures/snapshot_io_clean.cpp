// SFS_LINT_FIXTURE_PATH: src/graph/fixture_snapshot_io_clean.cpp
// Fixture: disciplined mmap/IO error handling, the pattern
// graph/snapshot.cpp uses. Contract violations go through SFS_REQUIRE;
// environmental I/O failures (open/stat/mmap) may throw
// std::runtime_error only under a reasoned SFS_LINT_ALLOW, and
// mentioning `throw` in a comment or string must not fire.
#include <stdexcept>
#include <string>

#include "base/check.hpp"

int fixture(int fd, const std::string& path) {
  SFS_REQUIRE(!path.empty(), "snapshot path must be non-empty");
  SFS_CHECK(fd >= -1, "file descriptor out of range");
  const std::string decoy = "throw std::runtime_error(\"decoy\")";
  /* a `throw` in a block comment is also fine */
  if (fd < 0) {
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot open snapshot: " + path);
  }
  return fd + static_cast<int>(decoy.size());
}
