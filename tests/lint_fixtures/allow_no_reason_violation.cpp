// SFS_LINT_FIXTURE_PATH: src/graph/fixture_allow_bad.cpp
// Fixture: SFS_LINT_ALLOW without a reason is rejected (allow-no-reason)
// and suppresses nothing — the underlying violation still fires.
#include <stdexcept>

void fixture() {
  // SFS_LINT_ALLOW(check-discipline)
  throw std::runtime_error("not actually suppressed");
}
