// SFS_LINT_FIXTURE_PATH: src/sim/fixture_emit_clean.cpp
// Fixture: an emitter TU may *use* an unordered container for lookups
// (find/count/operator[]); only iteration leaks hash order. Emission
// walks a sorted std::map instead.
#include <map>
#include <string>
#include <unordered_map>

#include "sim/report.hpp"

void fixture(sfs::sim::ResultsEmitter& emitter) {
  std::unordered_map<std::string, double> cache;
  cache["bfs"] = 1.0;
  if (cache.find("bfs") != cache.end() && cache.count("dfs") == 0) {
    std::map<std::string, double> ordered(cache.find("bfs"), cache.end());
  }
  std::map<std::string, double> by_policy;
  by_policy["bfs"] = cache["bfs"];
  for (const auto& [name, cost] : by_policy) {
    emitter.emit_object("{\"policy\":\"" + name + "\"}");
    (void)cost;
  }
}
