// SFS_LINT_FIXTURE_PATH: src/sim/fixture_rng.cpp
// Fixture: every class of forbidden entropy source fires rng-sources.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int fixture() {
  std::mt19937 gen(42);
  std::mt19937_64 gen64{7};
  std::random_device rd;
  std::default_random_engine eng;
  int a = std::rand();
  srand(7);
  int b = rand();
  std::uint64_t t = time(nullptr);
  std::uint64_t seed = std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<int>(gen() + gen64() + rd() + eng() + a + b + t + seed);
}
