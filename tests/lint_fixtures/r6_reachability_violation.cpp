// SFS_LINT_FIXTURE_PATH: bench/experiments/fixture_r6.cpp
// Fixture: the registered run-fn hands its helper a home-brewed seed; the
// helper constructs an Rng with no audited_stream_seed / StreamPlan /
// stream_seed anywhere on the root -> draw path, so rng-reachability
// fires at the construction (cross-TU call-graph rule, single-TU here).
#include "rng/random.hpp"
#include "sim/experiment.hpp"

using sfs::rng::Rng;

double helper_cost(std::uint64_t seed) {
  Rng rng(seed);
  return rng.unit_double();
}

int run_fixture(sfs::sim::ExperimentContext& ctx) {
  double acc = 0.0;
  for (std::uint64_t rep = 0; rep < 4; ++rep) {
    acc += helper_cost(rep * 2654435761ULL);
  }
  (void)ctx;
  return acc > 0.0 ? 0 : 1;
}

const sfs::sim::ExperimentRegistrar reg_fixture({
    .name = "fixture_r6",
    .run = run_fixture,
});
