// SFS_LINT_FIXTURE_PATH: tests/test_sweep_compat.cpp
// Fixture: the pinned compat-surface files may call the legacy API —
// that is where its bit-identity is verified.
#include "sim/sweep.hpp"

void fixture() {
  auto cost = sfs::sim::measure_weak_portfolio(nullptr, {}, 0, 0, {});
  (void)cost;
}
