// SFS_LINT_FIXTURE_PATH: bench/experiments/fixture_sweep_clean.cpp
// Fixture: the sanctioned routes — audited_stream_seed and a versioned
// StreamPlan. A derive_stream_seed mention in this comment is not a call.
#include "rng/stream_audit.hpp"
#include "rng/stream_plan.hpp"

std::uint64_t fixture(std::uint64_t seed, std::uint64_t rep) {
  const sfs::rng::StreamPlan plan(seed, 0x9e37,
                                  sfs::rng::StreamPlanVersion::kCounter);
  return sfs::rng::audited_stream_seed(seed, 0x1234, rep) ^
         plan.stream_seed(rep);
}
