// SFS_LINT_FIXTURE_PATH: src/graph/fixture_snapshot_io.cpp
// Fixture: the failure modes R1/R5 must catch in mmap/IO code — a raw
// throw without a reasoned ALLOW (the "quick hack" version of a mapping
// failure) and ad-hoc entropy for a temp-file suffix.
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>

int fixture(int fd, const std::string& path) {
  std::random_device entropy;
  const unsigned suffix = entropy() ^ static_cast<unsigned>(rand());
  if (fd < 0) throw std::runtime_error("mmap failed: " + path);
  return fd + static_cast<int>(suffix % 7);
}
