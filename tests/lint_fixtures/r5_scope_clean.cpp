// SFS_LINT_FIXTURE_PATH: tests/fixture_gtest.cpp
// Fixture: check-discipline is scoped to src/ — tests may throw freely
// (EXPECT_THROW scaffolding, forced failure paths).
#include <stdexcept>

void fixture() {
  throw std::runtime_error("fine outside src/");
}
