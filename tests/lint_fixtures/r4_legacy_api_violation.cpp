// SFS_LINT_FIXTURE_PATH: bench/experiments/fixture_portfolio.cpp
// Fixture: call-expression use of the legacy compat surface fires
// legacy-api outside the three pinned files.
#include "sim/sweep.hpp"

void fixture() {
  // A comment mentioning measure_weak_portfolio does not fire.
  const char* decoy = "measure_strong_portfolio(";
  (void)decoy;
  auto cost = sfs::sim::measure_weak_portfolio(nullptr, {}, 0, 0, {});
  (void)cost;
}
