// SFS_LINT_FIXTURE_PATH: src/graph/fixture_dedup.cpp
// Fixture: iterating an unordered container is fine in a TU that never
// touches the emitter surface — internal dedup order cannot reach a
// committed artifact.
#include <cstdint>
#include <unordered_set>

std::uint64_t fixture() {
  std::unordered_set<std::uint64_t> seen{1, 2, 3};
  std::uint64_t sum = 0;
  for (const auto v : seen) sum += v;
  return sum;
}
