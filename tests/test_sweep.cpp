// Tests for portfolio search-cost measurement.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "gen/mori.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::sim::measure_strong_portfolio;
using sfs::sim::measure_weak_portfolio;
using sfs::sim::newest_to_paper_id;
using sfs::sim::oldest_to_newest;
using sfs::sim::random_to_newest;

sfs::sim::GraphFactory mori_factory(std::size_t n, double p) {
  return [n, p](sfs::rng::Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
  };
}

TEST(MeasureWeakPortfolio, AllPoliciesSucceedOnTrees) {
  const auto cost = measure_weak_portfolio(
      mori_factory(200, 0.5), oldest_to_newest(), 8, 1,
      sfs::search::RunBudget{.max_raw_requests = 500000});
  ASSERT_EQ(cost.policies.size(), 10u);
  for (const auto& p : cost.policies) {
    EXPECT_DOUBLE_EQ(p.found_fraction, 1.0) << p.name;
    EXPECT_EQ(p.requests.count, 8u);
    EXPECT_GT(p.requests.mean, 0.0);
    EXPECT_GE(p.raw_requests.mean, p.requests.mean);
  }
}

TEST(MeasureWeakPortfolio, BestIsLowestMeanAmongComplete) {
  const auto cost = measure_weak_portfolio(
      mori_factory(150, 0.5), oldest_to_newest(), 6, 2,
      sfs::search::RunBudget{.max_raw_requests = 500000});
  const auto& best = cost.best_policy();
  for (const auto& p : cost.policies) {
    if (p.found_fraction >= 1.0) {
      EXPECT_LE(best.requests.mean, p.requests.mean) << p.name;
    }
  }
}

TEST(MeasureWeakPortfolio, DeterministicForSeed) {
  const auto a = measure_weak_portfolio(
      mori_factory(100, 0.5), oldest_to_newest(), 4, 3,
      sfs::search::RunBudget{.max_raw_requests = 500000});
  const auto b = measure_weak_portfolio(
      mori_factory(100, 0.5), oldest_to_newest(), 4, 3,
      sfs::search::RunBudget{.max_raw_requests = 500000});
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.policies[i].requests.mean,
                     b.policies[i].requests.mean);
  }
}

TEST(MeasureStrongPortfolio, AllPoliciesSucceed) {
  const auto cost = measure_strong_portfolio(
      mori_factory(200, 0.3), oldest_to_newest(), 6, 4);
  ASSERT_EQ(cost.policies.size(), 5u);
  for (const auto& p : cost.policies) {
    EXPECT_DOUBLE_EQ(p.found_fraction, 1.0) << p.name;
    // Strong requests bounded by vertex count.
    EXPECT_LE(p.requests.max, 200.0);
  }
}

TEST(Selectors, OldestToNewest) {
  sfs::rng::Rng rng(5);
  const Graph g = sfs::gen::mori_tree(50, sfs::gen::MoriParams{0.5}, rng);
  sfs::rng::Rng sel_rng(6);
  const auto [s, t] = oldest_to_newest()(g, sel_rng);
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(t, 49u);
}

TEST(Selectors, RandomToNewestAvoidsTarget) {
  sfs::rng::Rng rng(7);
  const Graph g = sfs::gen::mori_tree(20, sfs::gen::MoriParams{0.5}, rng);
  for (std::uint64_t i = 0; i < 50; ++i) {
    sfs::rng::Rng sel_rng(i);
    const auto [s, t] = random_to_newest()(g, sel_rng);
    EXPECT_EQ(t, 19u);
    EXPECT_NE(s, t);
    EXPECT_LT(s, 20u);
  }
}

TEST(Selectors, NewestToPaperId) {
  sfs::rng::Rng rng(8);
  const Graph g = sfs::gen::mori_tree(30, sfs::gen::MoriParams{0.5}, rng);
  sfs::rng::Rng sel_rng(9);
  const auto [s, t] = newest_to_paper_id(1)(g, sel_rng);
  EXPECT_EQ(s, 29u);
  EXPECT_EQ(t, 0u);  // paper id 1 = internal 0
  EXPECT_THROW((void)newest_to_paper_id(31)(g, sel_rng),
               std::invalid_argument);
}

TEST(MeasureWeakPortfolio, SearchingRootIsCheaperThanNewest) {
  // The asymmetry at the heart of the paper: old vertices are easy to find
  // (high degree, age gradient), the newest is hard.
  const auto to_root = measure_weak_portfolio(
      mori_factory(400, 0.5), newest_to_paper_id(1), 6, 10,
      sfs::search::RunBudget{.max_raw_requests = 500000});
  const auto to_newest = measure_weak_portfolio(
      mori_factory(400, 0.5), oldest_to_newest(), 6, 10,
      sfs::search::RunBudget{.max_raw_requests = 500000});
  EXPECT_LT(to_root.best_policy().requests.mean,
            to_newest.best_policy().requests.mean);
}

}  // namespace
