// Tests for portfolio search-cost measurement (the v2 RunPlan API; the v1
// compat wrappers are covered by test_sweep_compat.cpp).
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/mori.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::search::KnowledgeModel;
using sfs::sim::measure_portfolio;
using sfs::sim::newest_to_paper_id;
using sfs::sim::oldest_to_newest;
using sfs::sim::random_to_newest;
using sfs::sim::RunPlan;

sfs::sim::GraphFactory mori_factory(std::size_t n, double p) {
  return [n, p](sfs::rng::Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
  };
}

RunPlan weak_plan(std::size_t n, double p, std::size_t reps,
                  std::uint64_t seed) {
  RunPlan plan;
  plan.factory = mori_factory(n, p);
  plan.endpoints = oldest_to_newest();
  plan.reps = reps;
  plan.seed = seed;
  plan.budget.max_raw_requests = 500000;
  return plan;
}

TEST(MeasurePortfolio, AllWeakPoliciesSucceedOnTrees) {
  const auto cost = measure_portfolio(weak_plan(200, 0.5, 8, 1));
  ASSERT_EQ(cost.policies.size(), 10u);
  for (const auto& p : cost.policies) {
    EXPECT_DOUBLE_EQ(p.found_fraction, 1.0) << p.name;
    EXPECT_EQ(p.requests.count, 8u);
    EXPECT_GT(p.requests.mean, 0.0);
    EXPECT_GE(p.raw_requests.mean, p.requests.mean);
  }
}

TEST(MeasurePortfolio, BestIsLowestMeanAmongComplete) {
  const auto cost = measure_portfolio(weak_plan(150, 0.5, 6, 2));
  const auto& best = cost.best_policy();
  for (const auto& p : cost.policies) {
    if (p.found_fraction >= 1.0) {
      EXPECT_LE(best.requests.mean, p.requests.mean) << p.name;
    }
  }
}

TEST(MeasurePortfolio, DeterministicForSeed) {
  const auto a = measure_portfolio(weak_plan(100, 0.5, 4, 3));
  const auto b = measure_portfolio(weak_plan(100, 0.5, 4, 3));
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.policies[i].requests.mean,
                     b.policies[i].requests.mean);
  }
}

TEST(MeasurePortfolio, CounterStreamPlanIsDeterministicAndDistinct) {
  // The kCounter plan is a different (but equally deterministic) universe:
  // bit-identical across thread counts and repeat runs, decorrelated from
  // the kLegacy default at the same seed.
  auto plan = weak_plan(150, 0.5, 6, 4);
  plan.stream_plan = sfs::rng::StreamPlanVersion::kCounter;
  const auto seq = measure_portfolio(plan);
  plan.threads = 4;
  const auto par = measure_portfolio(plan);
  ASSERT_EQ(seq.policies.size(), par.policies.size());
  for (std::size_t i = 0; i < seq.policies.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq.policies[i].requests.mean,
                     par.policies[i].requests.mean);
    EXPECT_DOUBLE_EQ(seq.policies[i].raw_requests.mean,
                     par.policies[i].raw_requests.mean);
  }
  const auto legacy = measure_portfolio(weak_plan(150, 0.5, 6, 4));
  bool any_different = false;
  for (std::size_t i = 0; i < seq.policies.size(); ++i) {
    any_different |= seq.policies[i].raw_requests.mean !=
                     legacy.policies[i].raw_requests.mean;
  }
  EXPECT_TRUE(any_different);  // different plan, different randomness
}

TEST(MeasurePortfolio, AllStrongPoliciesSucceed) {
  RunPlan plan;
  plan.model = KnowledgeModel::kStrong;
  plan.factory = mori_factory(200, 0.3);
  plan.endpoints = oldest_to_newest();
  plan.reps = 6;
  plan.seed = 4;
  const auto cost = measure_portfolio(plan);
  ASSERT_EQ(cost.policies.size(), 5u);
  for (const auto& p : cost.policies) {
    EXPECT_DOUBLE_EQ(p.found_fraction, 1.0) << p.name;
    // Strong requests bounded by vertex count.
    EXPECT_LE(p.requests.max, 200.0);
  }
}

// ------------------------------------------------- plan validation

TEST(MeasurePortfolio, PolicyFilterSelectsNamedPolicies) {
  auto plan = weak_plan(100, 0.5, 3, 5);
  plan.policies = {"bfs", "random-walk"};
  const auto cost = measure_portfolio(plan);
  ASSERT_EQ(cost.policies.size(), 2u);
  EXPECT_EQ(cost.policies[0].name, "bfs");
  EXPECT_EQ(cost.policies[1].name, "random-walk");
}

TEST(MeasurePortfolio, UnknownPolicyIsCheckedError) {
  auto plan = weak_plan(100, 0.5, 3, 5);
  plan.policies = {"bfs", "no-such-policy"};
  EXPECT_THROW((void)measure_portfolio(plan), std::invalid_argument);
}

TEST(MeasurePortfolio, WrongModelPolicyIsCheckedError) {
  auto plan = weak_plan(100, 0.5, 3, 5);
  plan.policies = {"bfs-strong"};  // strong policy on a weak plan
  EXPECT_THROW((void)measure_portfolio(plan), std::invalid_argument);
}

TEST(MeasurePortfolio, DuplicatePolicyIsCheckedError) {
  auto plan = weak_plan(100, 0.5, 3, 5);
  plan.policies = {"bfs", "bfs"};
  EXPECT_THROW((void)measure_portfolio(plan), std::invalid_argument);
}

TEST(MeasurePortfolio, MissingEndpointsIsCheckedError) {
  auto plan = weak_plan(100, 0.5, 3, 5);
  plan.endpoints = nullptr;
  EXPECT_THROW((void)measure_portfolio(plan), std::invalid_argument);
}

TEST(MeasurePortfolio, BothOrNeitherFactoryIsCheckedError) {
  auto plan = weak_plan(100, 0.5, 3, 5);
  plan.scratch_factory = [](sfs::rng::Rng& rng, sfs::gen::GenScratch&,
                            Graph& out) {
    out = sfs::gen::mori_tree(50, sfs::gen::MoriParams{0.5}, rng);
  };
  EXPECT_THROW((void)measure_portfolio(plan), std::invalid_argument);
  plan.factory = nullptr;
  plan.scratch_factory = nullptr;
  EXPECT_THROW((void)measure_portfolio(plan), std::invalid_argument);
}

TEST(PortfolioCost, BestPolicyOnEmptyPortfolioIsCheckedError) {
  // A default-constructed result has no policies; v1 threw a bare
  // std::out_of_range from vector::at(0).
  const sfs::sim::PortfolioCost empty;
  try {
    (void)empty.best_policy();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty portfolio"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------- selectors

TEST(Selectors, OldestToNewest) {
  sfs::rng::Rng rng(5);
  const Graph g = sfs::gen::mori_tree(50, sfs::gen::MoriParams{0.5}, rng);
  sfs::rng::Rng sel_rng(6);
  const auto [s, t] = oldest_to_newest()(g, sel_rng);
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(t, 49u);
}

TEST(Selectors, RandomToNewestAvoidsTarget) {
  sfs::rng::Rng rng(7);
  const Graph g = sfs::gen::mori_tree(20, sfs::gen::MoriParams{0.5}, rng);
  for (std::uint64_t i = 0; i < 50; ++i) {
    sfs::rng::Rng sel_rng(i);
    const auto [s, t] = random_to_newest()(g, sel_rng);
    EXPECT_EQ(t, 19u);
    EXPECT_NE(s, t);
    EXPECT_LT(s, 20u);
  }
}

TEST(Selectors, NewestToPaperId) {
  sfs::rng::Rng rng(8);
  const Graph g = sfs::gen::mori_tree(30, sfs::gen::MoriParams{0.5}, rng);
  sfs::rng::Rng sel_rng(9);
  const auto [s, t] = newest_to_paper_id(1)(g, sel_rng);
  EXPECT_EQ(s, 29u);
  EXPECT_EQ(t, 0u);  // paper id 1 = internal 0
  EXPECT_THROW((void)newest_to_paper_id(31)(g, sel_rng),
               std::invalid_argument);
}

TEST(MeasurePortfolio, SearchingRootIsCheaperThanNewest) {
  // The asymmetry at the heart of the paper: old vertices are easy to find
  // (high degree, age gradient), the newest is hard.
  auto to_root_plan = weak_plan(400, 0.5, 6, 10);
  to_root_plan.endpoints = newest_to_paper_id(1);
  const auto to_root = measure_portfolio(to_root_plan);
  const auto to_newest = measure_portfolio(weak_plan(400, 0.5, 6, 10));
  EXPECT_LT(to_root.best_policy().requests.mean,
            to_newest.best_policy().requests.mean);
}

}  // namespace
