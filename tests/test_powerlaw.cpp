// Tests for the discrete power-law tail estimator and samplers.
#include "stats/powerlaw.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using sfs::rng::Rng;
using sfs::stats::DiscretePowerLawSampler;
using sfs::stats::fit_power_law_auto;
using sfs::stats::fit_power_law_tail;
using sfs::stats::hurwitz_zeta;
using sfs::stats::power_law_ks;
using sfs::stats::sample_power_law_approx;

std::vector<std::size_t> synthetic(double alpha, std::size_t xmin,
                                   std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const DiscretePowerLawSampler sampler(alpha, xmin);
  std::vector<std::size_t> data;
  data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) data.push_back(sampler.sample(rng));
  return data;
}

TEST(HurwitzZeta, ReferenceValues) {
  EXPECT_NEAR(hurwitz_zeta(2.0, 1.0), 1.6449340668482264, 1e-9);  // pi^2/6
  EXPECT_NEAR(hurwitz_zeta(2.5, 1.0), 1.3414872572509171, 1e-9);
  EXPECT_NEAR(hurwitz_zeta(3.0, 1.0), 1.2020569031595943, 1e-9);
  // Shift identity: zeta(s, q+1) = zeta(s, q) - q^{-s}.
  EXPECT_NEAR(hurwitz_zeta(2.5, 4.0), hurwitz_zeta(2.5, 3.0) -
                                          std::pow(3.0, -2.5),
              1e-10);
}

TEST(HurwitzZeta, Preconditions) {
  EXPECT_THROW((void)hurwitz_zeta(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)hurwitz_zeta(2.0, 0.0), std::invalid_argument);
}

class PowerLawRecovery : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecovery, MleRecoversAlpha) {
  const double alpha = GetParam();
  const auto data = synthetic(alpha, 1, 50000, 42);
  const auto fit = fit_power_law_tail(data, 1);
  EXPECT_NEAR(fit.alpha, alpha, 0.06) << "alpha=" << alpha;
  EXPECT_EQ(fit.xmin, 1u);
  EXPECT_EQ(fit.tail_count, data.size());
  EXPECT_GT(fit.alpha_stderr, 0.0);
  EXPECT_LT(fit.alpha_stderr, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, PowerLawRecovery,
                         ::testing::Values(1.8, 2.1, 2.5, 3.0, 3.5));

TEST(PowerLawFit, EstimateWithinThreeStderr) {
  const double alpha = 2.5;
  const auto data = synthetic(alpha, 1, 30000, 6);
  const auto fit = fit_power_law_tail(data, 1);
  EXPECT_NEAR(fit.alpha, alpha, 4.0 * fit.alpha_stderr);
}

TEST(PowerLawFit, KsSmallForTrueModel) {
  const auto data = synthetic(2.5, 1, 20000, 7);
  const auto fit = fit_power_law_tail(data, 1);
  EXPECT_LT(fit.ks_distance, 0.02);
}

TEST(PowerLawFit, KsLargeForWrongAlpha) {
  const auto data = synthetic(2.5, 1, 20000, 8);
  EXPECT_GT(power_law_ks(data, 1, 4.5), 0.15);
}

TEST(PowerLawFit, XminRespected) {
  const auto data = synthetic(2.3, 5, 30000, 9);
  const auto fit = fit_power_law_tail(data, 5);
  EXPECT_NEAR(fit.alpha, 2.3, 0.08);
}

TEST(PowerLawFit, AutoXminFindsTail) {
  // Mixture: a non-power-law bulk below 8 plus a clean power-law tail.
  Rng rng(10);
  std::vector<std::size_t> data;
  for (int i = 0; i < 8000; ++i)
    data.push_back(1 + static_cast<std::size_t>(rng.uniform_index(7)));
  const auto tail = synthetic(2.4, 8, 12000, 11);
  data.insert(data.end(), tail.begin(), tail.end());
  const auto fit = fit_power_law_auto(data);
  EXPECT_GE(fit.xmin, 5u);
  EXPECT_NEAR(fit.alpha, 2.4, 0.15);
  EXPECT_LT(fit.ks_distance, 0.05);
}

TEST(PowerLawFit, DegenerateSampleHitsCeiling) {
  // All observations at xmin: the likelihood increases with alpha without
  // bound, so the fit saturates at the search ceiling.
  const std::vector<std::size_t> degenerate{2, 2, 2, 2};
  const auto fit = fit_power_law_tail(degenerate, 2);
  EXPECT_GT(fit.alpha, 20.0);
}

TEST(PowerLawFit, Preconditions) {
  const std::vector<std::size_t> tiny{3};
  EXPECT_THROW((void)fit_power_law_tail(tiny, 1), std::invalid_argument);
  const std::vector<std::size_t> ok{1, 2, 3};
  EXPECT_THROW((void)fit_power_law_tail(ok, 0), std::invalid_argument);
}

TEST(DiscreteSampler, RespectsXmin) {
  Rng rng(12);
  const DiscretePowerLawSampler sampler(2.5, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(sampler.sample(rng), 3u);
  }
}

TEST(DiscreteSampler, PmfMatchesZetaLaw) {
  Rng rng(13);
  const double alpha = 2.2;
  const DiscretePowerLawSampler sampler(alpha, 1);
  constexpr int kDraws = 200000;
  std::size_t ones = 0;
  std::size_t twos = 0;
  for (int i = 0; i < kDraws; ++i) {
    const auto x = sampler.sample(rng);
    if (x == 1) ++ones;
    if (x == 2) ++twos;
  }
  const double z = hurwitz_zeta(alpha, 1.0);
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 1.0 / z, 0.005);
  EXPECT_NEAR(static_cast<double>(twos) / kDraws,
              std::pow(2.0, -alpha) / z, 0.005);
}

TEST(DiscreteSampler, TailOutcomesBeyondCutoff) {
  Rng rng(14);
  const DiscretePowerLawSampler sampler(1.5, 1, 64);
  bool saw_tail = false;
  for (int i = 0; i < 50000; ++i) {
    if (sampler.sample(rng) >= 64) {
      saw_tail = true;
      break;
    }
  }
  EXPECT_TRUE(saw_tail);
}

TEST(DiscreteSampler, Preconditions) {
  EXPECT_THROW(DiscretePowerLawSampler(1.0, 1), std::invalid_argument);
  EXPECT_THROW(DiscretePowerLawSampler(2.0, 0), std::invalid_argument);
}

TEST(ApproxSampler, RespectsXminAndHeavyTail) {
  Rng rng(15);
  std::size_t big_small_alpha = 0;
  std::size_t big_large_alpha = 0;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_GE(sample_power_law_approx(2.5, 3, rng), 3u);
    if (sample_power_law_approx(1.8, 1, rng) >= 100) ++big_small_alpha;
    if (sample_power_law_approx(3.5, 1, rng) >= 100) ++big_large_alpha;
  }
  EXPECT_GT(big_small_alpha, 10 * (big_large_alpha + 1));
}

TEST(ApproxSampler, Preconditions) {
  Rng rng(16);
  EXPECT_THROW((void)sample_power_law_approx(1.0, 1, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sample_power_law_approx(2.0, 0, rng),
               std::invalid_argument);
}

}  // namespace
