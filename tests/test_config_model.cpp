// Tests for degree sequences and the Molloy–Reed configuration model.
#include "gen/config_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/degree_sequence.hpp"
#include "graph/degree.hpp"
#include "rng/zipf.hpp"

namespace {

using sfs::gen::ConfigModelOptions;
using sfs::gen::configuration_model;
using sfs::gen::power_law_configuration_graph;
using sfs::gen::power_law_degree_sequence;
using sfs::gen::PowerLawSequenceParams;
using sfs::gen::stub_count;
using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

TEST(PowerLawSequence, EvenStubTotal) {
  Rng rng(1);
  for (int rep = 0; rep < 20; ++rep) {
    const auto seq =
        power_law_degree_sequence(501, PowerLawSequenceParams{2.3, 1, 0}, rng);
    EXPECT_EQ(stub_count(seq) % 2, 0u);
  }
}

TEST(PowerLawSequence, RespectsBounds) {
  Rng rng(2);
  const PowerLawSequenceParams params{2.5, 2, 40};
  const auto seq = power_law_degree_sequence(1000, params, rng);
  for (const auto d : seq) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 41u);  // parity repair may add 1 to one vertex
  }
}

TEST(PowerLawSequence, NaturalCutoffApplied) {
  Rng rng(3);
  const auto seq =
      power_law_degree_sequence(10000, PowerLawSequenceParams{2.5, 1, 0}, rng);
  const auto cutoff = sfs::rng::natural_cutoff(10000, 2.5);
  for (const auto d : seq) EXPECT_LE(d, cutoff + 1);
}

TEST(PowerLawSequence, MeanTracksDistribution) {
  Rng rng(4);
  const sfs::rng::BoundedZipf dist(1, 100, 2.3);
  const auto seq =
      power_law_degree_sequence(50000, PowerLawSequenceParams{2.3, 1, 100},
                                rng);
  double mean = 0.0;
  for (const auto d : seq) mean += d;
  mean /= static_cast<double>(seq.size());
  EXPECT_NEAR(mean, dist.mean(), 0.05 * dist.mean());
}

TEST(PowerLawSequence, Preconditions) {
  Rng rng(5);
  EXPECT_THROW((void)power_law_degree_sequence(
                   1, PowerLawSequenceParams{2.3, 1, 0}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)power_law_degree_sequence(
                   100, PowerLawSequenceParams{0.9, 1, 0}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)power_law_degree_sequence(
                   100, PowerLawSequenceParams{2.3, 5, 4}, rng),
               std::invalid_argument);
}

TEST(ConfigurationModel, RealizesDegreesExactly) {
  const std::vector<std::uint32_t> degrees{3, 2, 2, 1, 1, 1};  // sum 10
  Rng rng(6);
  const Graph g = configuration_model(degrees, ConfigModelOptions{false}, rng);
  EXPECT_EQ(g.num_vertices(), degrees.size());
  EXPECT_EQ(g.num_edges(), 5u);
  for (VertexId v = 0; v < degrees.size(); ++v) {
    EXPECT_EQ(g.degree(v), degrees[v]) << "vertex " << v;
  }
}

TEST(ConfigurationModel, RejectsOddStubTotal) {
  const std::vector<std::uint32_t> degrees{1, 1, 1};
  Rng rng(7);
  EXPECT_THROW(
      (void)configuration_model(degrees, ConfigModelOptions{false}, rng),
      std::invalid_argument);
}

TEST(ConfigurationModel, ErasedVariantIsSimple) {
  Rng rng(8);
  const auto degrees = power_law_degree_sequence(
      2000, PowerLawSequenceParams{2.2, 1, 0}, rng);
  const Graph g = configuration_model(degrees, ConfigModelOptions{true}, rng);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_FALSE(e.is_loop());
    const auto key = std::minmax(e.tail, e.head);
    EXPECT_TRUE(seen.insert(key).second) << "parallel edge";
  }
}

TEST(ConfigurationModel, ErasedDegreesNeverExceedPrescribed) {
  Rng rng(9);
  const auto degrees = power_law_degree_sequence(
      500, PowerLawSequenceParams{2.5, 1, 0}, rng);
  const Graph g = configuration_model(degrees, ConfigModelOptions{true}, rng);
  for (VertexId v = 0; v < degrees.size(); ++v) {
    EXPECT_LE(g.degree(v), degrees[v]);
  }
}

TEST(ConfigurationModel, ZeroDegreeVerticesStayIsolated) {
  const std::vector<std::uint32_t> degrees{2, 0, 2};
  Rng rng(10);
  const Graph g = configuration_model(degrees, ConfigModelOptions{false}, rng);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(PowerLawConfigurationGraph, EndToEnd) {
  Rng rng(11);
  const Graph g = power_law_configuration_graph(
      3000, PowerLawSequenceParams{2.3, 1, 0}, ConfigModelOptions{false},
      rng);
  EXPECT_EQ(g.num_vertices(), 3000u);
  EXPECT_GT(g.num_edges(), 1500u);
  // Heavy tail present.
  EXPECT_GT(sfs::graph::max_degree(g, sfs::graph::DegreeKind::kUndirected),
            20u);
}

TEST(ConfigurationModel, DeterministicForSeed) {
  const std::vector<std::uint32_t> degrees{2, 2, 2, 2};
  Rng a(12);
  Rng b(12);
  const Graph g1 = configuration_model(degrees, ConfigModelOptions{false}, a);
  const Graph g2 = configuration_model(degrees, ConfigModelOptions{false}, b);
  for (sfs::graph::EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).tail, g2.edge(e).tail);
    EXPECT_EQ(g1.edge(e).head, g2.edge(e).head);
  }
}

}  // namespace
