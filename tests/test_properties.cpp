// Cross-model property tests: invariants that must hold for every
// (generator, search policy) combination, swept with TEST_P.
#include <gtest/gtest.h>

#include <tuple>

#include "gen/barabasi_albert.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "search/runner.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

enum class Model { kMoriHalf, kMoriHigh, kMergedMori, kCooperFrieze, kBa };

Graph make_model(Model model, std::size_t n, Rng& rng) {
  switch (model) {
    case Model::kMoriHalf:
      return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
    case Model::kMoriHigh:
      return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.9}, rng);
    case Model::kMergedMori:
      return sfs::gen::merged_mori_graph(n, 3, sfs::gen::MoriParams{0.5},
                                         rng);
    case Model::kCooperFrieze: {
      sfs::gen::CooperFriezeParams params;
      return sfs::gen::cooper_frieze(n, params, rng).graph;
    }
    case Model::kBa:
      return sfs::gen::barabasi_albert(
          n, sfs::gen::BarabasiAlbertParams{2, true}, rng);
  }
  throw std::logic_error("unknown model");
}

std::string model_name(Model m) {
  switch (m) {
    case Model::kMoriHalf: return "mori_p05";
    case Model::kMoriHigh: return "mori_p09";
    case Model::kMergedMori: return "merged_mori";
    case Model::kCooperFrieze: return "cooper_frieze";
    case Model::kBa: return "barabasi_albert";
  }
  return "?";
}

using Combo = std::tuple<Model, std::size_t>;  // model x policy index

class ModelPolicyProperty : public ::testing::TestWithParam<Combo> {};

TEST_P(ModelPolicyProperty, SearchInvariants) {
  const auto [model, policy_idx] = GetParam();
  Rng graph_rng(0xBEEF);
  const Graph g = make_model(model, 250, graph_rng);
  ASSERT_TRUE(sfs::graph::is_connected(g)) << model_name(model);

  auto portfolio = sfs::search::weak_portfolio();
  auto& policy = *portfolio.at(policy_idx);
  Rng rng(0xF00D);
  const auto target = static_cast<VertexId>(g.num_vertices() - 1);
  const auto r = sfs::search::run_weak(
      g, 0, target, policy, rng,
      sfs::search::RunBudget{.max_raw_requests = 2000000});

  // 1. On a connected graph with a generous raw budget, the target is
  //    found (walk policies rely on the budget being ample at n=250).
  EXPECT_TRUE(r.found) << model_name(model) << "/" << policy.name();
  // 2. Charged requests never exceed the edge count.
  EXPECT_LE(r.requests, g.num_edges());
  // 3. Raw requests dominate charged ones.
  EXPECT_GE(r.raw_requests, r.requests);
  // 4. The reported path has at least 1 edge (start != target) and at most
  //    n - 1 edges.
  EXPECT_GE(r.path_length, 1u);
  EXPECT_LT(r.path_length, g.num_vertices());
  // 5. The path is no shorter than the true distance.
  EXPECT_GE(r.path_length, sfs::graph::distance(g, 0, target));
}

constexpr Model kModels[] = {Model::kMoriHalf, Model::kMoriHigh,
                             Model::kMergedMori, Model::kCooperFrieze,
                             Model::kBa};

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelPolicyProperty,
    ::testing::Combine(::testing::ValuesIn(kModels),
                       ::testing::Range<std::size_t>(0, 10)),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      return model_name(std::get<0>(param_info.param)) + "_policy" +
             std::to_string(std::get<1>(param_info.param));
    });

class ModelStructureProperty : public ::testing::TestWithParam<Model> {};

TEST_P(ModelStructureProperty, EvolvingGraphBasics) {
  Rng rng(0xCAFE);
  const Graph g = make_model(GetParam(), 600, rng);
  EXPECT_EQ(g.num_vertices(), 600u);
  EXPECT_TRUE(sfs::graph::is_connected(g));
  // Handshake.
  std::size_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
  // Small world: diameter far below n.
  EXPECT_LT(sfs::graph::pseudo_diameter(g), 60u);
}

TEST_P(ModelStructureProperty, DeterministicAcrossRuns) {
  Rng a(0xD1CE);
  Rng b(0xD1CE);
  const Graph g1 = make_model(GetParam(), 150, a);
  const Graph g2 = make_model(GetParam(), 150, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (sfs::graph::EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).tail, g2.edge(e).tail);
    EXPECT_EQ(g1.edge(e).head, g2.edge(e).head);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ModelStructureProperty,
                         ::testing::ValuesIn(kModels),
                         [](const ::testing::TestParamInfo<Model>& param_info) {
                           return model_name(param_info.param);
                         });

}  // namespace
