// Tests for table formatting and CSV emission.
#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/csv.hpp"

namespace {

using sfs::sim::csv_escape;
using sfs::sim::format_double;
using sfs::sim::Table;

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Table, PrintAlignsColumns) {
  Table t("demo", {"n", "cost"});
  t.row().integer(100).num(12.5, 1);
  t.row().integer(100000).num(3.0, 1);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("100000"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  // Rule line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumRows) {
  Table t("x", {"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RowOverflowRejected) {
  Table t("x", {"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_THROW(t.cell("3"), std::invalid_argument);
}

TEST(Table, CellWithoutRowRejected) {
  Table t("x", {"a"});
  EXPECT_THROW(t.cell("1"), std::invalid_argument);
}

TEST(Table, IncompleteRowDetectedOnNextRow) {
  Table t("x", {"a", "b"});
  t.row().cell("1");
  EXPECT_THROW(t.row(), std::logic_error);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table("x", {}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t("t", {"a", "b"});
  t.row().cell("1").cell("with,comma");
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,\"with,comma\"\n");
}

TEST(CsvEscape, QuotingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(ParseCsvRow, RoundTripsEscapedRows) {
  // parse_csv_row must invert write_csv_row field-for-field.
  const std::vector<std::string> cases[] = {
      {"a", "b", "c"},
      {"plain", "a,b", "say \"hi\"", ""},
      {"", "", ""},
      {"1", "1634", "2", "4.5500000000000007", "end"},
  };
  std::vector<std::string> fields;
  for (const auto& row : cases) {
    std::ostringstream os;
    sfs::sim::write_csv_row(os, row);
    std::string line = os.str();
    ASSERT_FALSE(line.empty());
    line.pop_back();  // strip '\n'
    ASSERT_TRUE(sfs::sim::parse_csv_row(line, fields)) << line;
    EXPECT_EQ(fields, row);
  }
}

TEST(ParseCsvRow, BasicShapes) {
  std::vector<std::string> fields;
  ASSERT_TRUE(sfs::sim::parse_csv_row("", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{""}));
  ASSERT_TRUE(sfs::sim::parse_csv_row("a,,b", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "", "b"}));
  ASSERT_TRUE(sfs::sim::parse_csv_row("a,b,", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", ""}));
  ASSERT_TRUE(sfs::sim::parse_csv_row("\"x,y\",z", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"x,y", "z"}));
}

TEST(ParseCsvRow, RejectsMalformedRows) {
  // Torn or corrupt lines — what an interrupted checkpoint append leaves —
  // must be detectable, not silently misparsed.
  std::vector<std::string> fields;
  EXPECT_FALSE(sfs::sim::parse_csv_row("\"unterminated", fields));
  EXPECT_FALSE(sfs::sim::parse_csv_row("\"a\"garbage,b", fields));
  EXPECT_FALSE(sfs::sim::parse_csv_row("bare\"quote", fields));
}

}  // namespace
