// Tests for the strong-model search policies.
#include "search/strong_algorithms.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "search/runner.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::search::run_strong;
using sfs::search::SearchResult;
using sfs::search::strong_portfolio;

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

class StrongPortfolio : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::unique_ptr<sfs::search::StrongSearcher> make() {
    auto portfolio = strong_portfolio();
    return std::move(portfolio.at(GetParam()));
  }
};

TEST_P(StrongPortfolio, FindsTargetOnPath) {
  auto searcher = make();
  Rng rng(1);
  const Graph g = path_graph(10);
  const SearchResult r = run_strong(g, 0, 9, *searcher, rng);
  EXPECT_TRUE(r.found) << searcher->name();
  // Strong requests on a path: must request at least 8 vertices to see 9.
  EXPECT_GE(r.requests, 8u);
  EXPECT_LE(r.requests, g.num_vertices());
}

TEST_P(StrongPortfolio, FindsNewestInMoriTree) {
  auto searcher = make();
  Rng graph_rng(2);
  const Graph g =
      sfs::gen::mori_tree(300, sfs::gen::MoriParams{0.4}, graph_rng);
  Rng rng(3);
  const SearchResult r = run_strong(g, 0, 299, *searcher, rng);
  EXPECT_TRUE(r.found) << searcher->name();
  EXPECT_LE(r.requests, g.num_vertices());
}

TEST_P(StrongPortfolio, GivesUpOnDisconnectedTarget) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  auto searcher = make();
  Rng rng(4);
  const SearchResult r = run_strong(b.build(), 0, 3, *searcher, rng);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.gave_up);
  EXPECT_LE(r.requests, 2u);  // only 0 and 1 requestable
}

TEST_P(StrongPortfolio, DeterministicForSeed) {
  Rng graph_rng(5);
  const Graph g =
      sfs::gen::mori_tree(100, sfs::gen::MoriParams{0.5}, graph_rng);
  auto s1 = make();
  auto s2 = make();
  Rng r1(6);
  Rng r2(6);
  const SearchResult a = run_strong(g, 0, 99, *s1, r1);
  const SearchResult b = run_strong(g, 0, 99, *s2, r2);
  EXPECT_EQ(a.requests, b.requests);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, StrongPortfolio,
                         ::testing::Range<std::size_t>(0, 5));

TEST(StrongPortfolioMeta, NamesUnique) {
  auto portfolio = strong_portfolio();
  std::set<std::string> names;
  for (const auto& s : portfolio) names.insert(s->name());
  EXPECT_EQ(names.size(), portfolio.size());
}

TEST(DegreeGreedyStrong, RequestsHubFirst) {
  // Star with a pendant: from a leaf, the hub (visible, degree 6) must be
  // requested before any other leaf.
  GraphBuilder b(8);
  for (VertexId v = 1; v <= 5; ++v) b.add_edge(v, 0);
  b.add_edge(6, 0);
  b.add_edge(7, 6);
  const Graph g = b.build();
  auto greedy = sfs::search::make_degree_greedy_strong();
  Rng rng(7);
  const SearchResult r = run_strong(g, 1, 7, *greedy, rng);
  EXPECT_TRUE(r.found);
  // Request 1 (self: reveals hub), request hub (reveals all leaves + 6),
  // request 6 (reveals 7). Degree-greedy goes 1 -> 0 -> 6: 3 requests.
  EXPECT_EQ(r.requests, 3u);
}

TEST(BfsStrong, ExpandsInDiscoveryOrder) {
  const Graph g = path_graph(6);
  sfs::search::BfsStrong bfs;
  Rng rng(8);
  const SearchResult r = run_strong(g, 0, 5, bfs, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.requests, 5u);  // 0,1,2,3,4
}

TEST(MinIdStrong, FindsRootFast) {
  Rng graph_rng(9);
  const Graph g =
      sfs::gen::mori_tree(400, sfs::gen::MoriParams{0.5}, graph_rng);
  auto minid = sfs::search::make_min_id_strong();
  Rng rng(10);
  const SearchResult r = run_strong(g, 399, 0, *minid, rng);
  EXPECT_TRUE(r.found);
  // Following the age gradient: about depth-many requests.
  EXPECT_LT(r.requests, 50u);
}

TEST(MaxIdStrong, StillTerminates) {
  Rng graph_rng(11);
  const Graph g =
      sfs::gen::mori_tree(200, sfs::gen::MoriParams{0.5}, graph_rng);
  auto maxid = sfs::search::make_max_id_strong();
  Rng rng(12);
  const SearchResult r = run_strong(g, 0, 199, *maxid, rng);
  EXPECT_TRUE(r.found);
}

TEST(RandomStrong, FindsTargetEventually) {
  Rng graph_rng(13);
  const Graph g =
      sfs::gen::mori_tree(150, sfs::gen::MoriParams{0.5}, graph_rng);
  sfs::search::RandomStrong random;
  Rng rng(14);
  const SearchResult r = run_strong(g, 0, 149, random, rng);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.requests, g.num_vertices());
}

}  // namespace
