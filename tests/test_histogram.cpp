// Tests for integer and logarithmic histograms.
#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using sfs::stats::IntHistogram;
using sfs::stats::log_binned;

TEST(IntHistogram, BasicCounts) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(5, 4);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(5), 4u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.count(99), 0u);
  EXPECT_EQ(h.max_value(), 5u);
}

TEST(IntHistogram, PmfAndCcdf) {
  IntHistogram h;
  h.add(1, 2);
  h.add(2, 1);
  h.add(4, 1);
  EXPECT_DOUBLE_EQ(h.pmf(1), 0.5);
  EXPECT_DOUBLE_EQ(h.pmf(3), 0.0);
  EXPECT_DOUBLE_EQ(h.ccdf(1), 1.0);
  EXPECT_DOUBLE_EQ(h.ccdf(2), 0.5);
  EXPECT_DOUBLE_EQ(h.ccdf(3), 0.25);
  EXPECT_DOUBLE_EQ(h.ccdf(5), 0.0);
}

TEST(IntHistogram, EmptyIsSafe) {
  IntHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_DOUBLE_EQ(h.pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(h.ccdf(1), 0.0);
}

TEST(LogBinned, CoversAllValues) {
  std::vector<std::size_t> values;
  for (std::size_t v = 1; v <= 100; ++v) values.push_back(v);
  const auto bins = log_binned(values, 2.0);
  std::size_t total = 0;
  for (const auto& b : bins) total += b.count;
  EXPECT_EQ(total, values.size());
  // Bin edges double: 1,2,4,8,...
  EXPECT_EQ(bins[0].lo, 1u);
  EXPECT_EQ(bins[0].hi, 2u);
  EXPECT_EQ(bins[1].lo, 2u);
  EXPECT_EQ(bins[1].hi, 4u);
}

TEST(LogBinned, DensityNormalization) {
  // Uniform values over [1, 64): densities should be roughly equal.
  std::vector<std::size_t> values;
  for (std::size_t v = 1; v < 64; ++v) values.push_back(v);
  const auto bins = log_binned(values, 2.0);
  for (const auto& b : bins) {
    if (b.count > 0) {
      EXPECT_NEAR(b.density, 1.0 / 63.0, 0.002);
    }
  }
}

TEST(LogBinned, RejectsZeroValues) {
  const std::vector<std::size_t> values{0, 1};
  EXPECT_THROW((void)log_binned(values), std::invalid_argument);
}

TEST(LogBinned, RejectsBadBase) {
  const std::vector<std::size_t> values{1, 2};
  EXPECT_THROW((void)log_binned(values, 1.0), std::invalid_argument);
}

TEST(LogBinned, EmptyInputGivesNoBins) {
  EXPECT_TRUE(log_binned({}).empty());
}

TEST(LogBinned, GeometricCenterWithinBin) {
  std::vector<std::size_t> values{1, 3, 9, 27, 81};
  const auto bins = log_binned(values, 3.0);
  for (const auto& b : bins) {
    EXPECT_GE(b.center, static_cast<double>(b.lo) - 1e-9);
    EXPECT_LE(b.center, static_cast<double>(b.hi));
  }
}

}  // namespace
