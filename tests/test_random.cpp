// Tests for the RNG substrate: determinism, ranges, and coarse
// distributional sanity.
#include "rng/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using sfs::rng::derive_seed;
using sfs::rng::mix64;
using sfs::rng::Rng;
using sfs::rng::Xoshiro256;

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, ReseedResets) {
  Xoshiro256 a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro, JumpChangesState) {
  Xoshiro256 a(3);
  Xoshiro256 b(3);
  b.jump();
  EXPECT_NE(a(), b());
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

TEST(Mix64, StatelessAndNontrivial) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
  EXPECT_NE(mix64(0), 0u);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexOneIsZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(kBuckets)];
  // Each bucket expects 10000; allow ±5% (many sigma).
  for (const int c : counts) {
    EXPECT_GT(c, 9500);
    EXPECT_LT(c, 10500);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRealInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRealMeanNearHalf) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanOne) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential();
  EXPECT_NEAR(sum / kDraws, 1.0, 0.02);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(41);
  const double p = 0.25;
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    sum += static_cast<double>(rng.geometric(p));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / kDraws, 3.0, 0.1);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(59);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto x : sample) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(61);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(67);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6),
               std::invalid_argument);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(71);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(1);  // same tag, later parent state
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.u64() == childB.u64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, DeriveSeedSpreadsReps) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t r = 0; r < 1000; ++r) seeds.insert(derive_seed(9, r));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, DeriveSeedDependsOnExperiment) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Rng, PickReturnsElement) {
  Rng rng(73);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(std::span<const int>(items));
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
