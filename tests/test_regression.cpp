// Tests for line fitting and power-law (log-log) fitting.
#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/random.hpp"

namespace {

using sfs::stats::fit_line;
using sfs::stats::fit_power_law;

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f.slope_stderr, 0.0, 1e-9);
  EXPECT_EQ(f.count, 4u);
  EXPECT_NEAR(f.at(10.0), 21.0, 1e-9);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  sfs::rng::Rng rng(1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    xs.push_back(x);
    ys.push_back(4.0 - 1.5 * x + rng.uniform(-0.5, 0.5));
  }
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, -1.5, 0.01);
  EXPECT_NEAR(f.intercept, 4.0, 0.1);
  EXPECT_GT(f.r_squared, 0.99);
  EXPECT_GT(f.slope_stderr, 0.0);
  EXPECT_LT(f.slope_stderr, 0.01);
}

TEST(FitLine, FlatDataHasZeroSlope) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
}

TEST(FitLine, Preconditions) {
  const std::vector<double> one{1.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)fit_line(one, one), std::invalid_argument);
  const std::vector<double> mismatched{1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit_line(mismatched, ys), std::invalid_argument);
}

TEST(FitLine, DegenerateXReturnsFlaggedNoFit) {
  // All x equal: the slope is undefined. This must NOT throw — a rounding-
  // collapsed size grid would otherwise abort a multi-hour sweep — and
  // must NOT look like a real fit either.
  const std::vector<double> same{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const auto f = fit_line(same, ys);
  EXPECT_TRUE(f.degenerate);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.count, 3u);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);  // mean y: at() still predicts sanely
}

TEST(FitLine, OkContract) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_TRUE(fit_line(xs, ys).ok());
  EXPECT_FALSE(sfs::stats::LinearFit{}.ok());  // default-constructed: no fit
}

TEST(FitPowerLaw, ExactPowerLaw) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.5));
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-6);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitPowerLaw, NegativeExponent) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(std::pow(x, -1.2));
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, -1.2, 1e-9);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> bad{0.0, 1.0};
  EXPECT_THROW((void)fit_power_law(xs, bad), std::invalid_argument);
  EXPECT_THROW((void)fit_power_law(bad, xs), std::invalid_argument);
}

TEST(FitLineWeighted, UniformWeightsMatchOls) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 5.0, 8.0};
  const std::vector<double> ys{2.1, 3.9, 6.2, 9.8, 16.3};
  const std::vector<double> ws(xs.size(), 7.0);  // any common scale
  const auto ols = fit_line(xs, ys);
  const auto wls = sfs::stats::fit_line_weighted(xs, ys, ws);
  EXPECT_NEAR(wls.slope, ols.slope, 1e-12);
  EXPECT_NEAR(wls.intercept, ols.intercept, 1e-12);
  EXPECT_NEAR(wls.r_squared, ols.r_squared, 1e-12);
  EXPECT_NEAR(wls.slope_stderr, ols.slope_stderr, 1e-12);
  EXPECT_EQ(wls.count, 5u);
}

TEST(FitLineWeighted, DownweightsOutlier) {
  // y = 2x except one wild point; with the outlier's weight ~0 the fit
  // recovers the clean slope, with equal weights it does not.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0, 100.0};
  const std::vector<double> ws{1.0, 1.0, 1.0, 1.0, 1e-9};
  const auto wls = sfs::stats::fit_line_weighted(xs, ys, ws);
  EXPECT_NEAR(wls.slope, 2.0, 1e-4);
  const auto ols = fit_line(xs, ys);
  EXPECT_GT(ols.slope, 10.0);
}

TEST(FitLineWeighted, ZeroWeightPointsAreExcluded) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 999.0};
  const std::vector<double> ws{1.0, 1.0, 0.0};
  const auto f = sfs::stats::fit_line_weighted(xs, ys, ws);
  EXPECT_TRUE(f.ok());
  EXPECT_EQ(f.count, 2u);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(FitLineWeighted, DegenerateCases) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  // Only one positive-weight point: no line through one point.
  const std::vector<double> one_w{0.0, 5.0, 0.0};
  const auto one = sfs::stats::fit_line_weighted(xs, ys, one_w);
  EXPECT_TRUE(one.degenerate);
  EXPECT_FALSE(one.ok());
  EXPECT_EQ(one.count, 1u);
  // Positive-weight xs all equal.
  const std::vector<double> same{2.0, 2.0, 2.0};
  const std::vector<double> unit_w{1.0, 1.0, 1.0};
  const auto collapsed = sfs::stats::fit_line_weighted(same, ys, unit_w);
  EXPECT_TRUE(collapsed.degenerate);
  // Invalid weights throw.
  const std::vector<double> neg_w{1.0, -1.0, 1.0};
  const std::vector<double> zero_w{0.0, 0.0, 0.0};
  const std::vector<double> short_w{1.0, 1.0};
  EXPECT_THROW((void)sfs::stats::fit_line_weighted(xs, ys, neg_w),
               std::invalid_argument);
  EXPECT_THROW((void)sfs::stats::fit_line_weighted(xs, ys, zero_w),
               std::invalid_argument);
  EXPECT_THROW((void)sfs::stats::fit_line_weighted(xs, ys, short_w),
               std::invalid_argument);
}

TEST(FitPowerLawWeighted, RecoversExponentWithHeteroscedasticNoise) {
  // Exact power law with one badly corrupted point that carries ~no
  // weight: the weighted exponent is clean.
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> ws;
  for (const double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(2.0 * std::pow(x, 0.7));
    ws.push_back(1.0);
  }
  xs.push_back(100000.0);
  ys.push_back(1.0);  // wildly off the law
  ws.push_back(1e-12);
  const auto f = sfs::stats::fit_power_law_weighted(xs, ys, ws);
  EXPECT_NEAR(f.slope, 0.7, 1e-6);
}

}  // namespace
