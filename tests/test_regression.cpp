// Tests for line fitting and power-law (log-log) fitting.
#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/random.hpp"

namespace {

using sfs::stats::fit_line;
using sfs::stats::fit_power_law;

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f.slope_stderr, 0.0, 1e-9);
  EXPECT_EQ(f.count, 4u);
  EXPECT_NEAR(f.at(10.0), 21.0, 1e-9);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  sfs::rng::Rng rng(1);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i) / 10.0;
    xs.push_back(x);
    ys.push_back(4.0 - 1.5 * x + rng.uniform(-0.5, 0.5));
  }
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, -1.5, 0.01);
  EXPECT_NEAR(f.intercept, 4.0, 0.1);
  EXPECT_GT(f.r_squared, 0.99);
  EXPECT_GT(f.slope_stderr, 0.0);
  EXPECT_LT(f.slope_stderr, 0.01);
}

TEST(FitLine, FlatDataHasZeroSlope) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  const auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 5.0, 1e-12);
}

TEST(FitLine, Preconditions) {
  const std::vector<double> one{1.0};
  const std::vector<double> same{2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW((void)fit_line(one, one), std::invalid_argument);
  EXPECT_THROW((void)fit_line(same, ys), std::invalid_argument);
  const std::vector<double> mismatched{1.0, 2.0, 3.0};
  EXPECT_THROW((void)fit_line(mismatched, ys), std::invalid_argument);
}

TEST(FitPowerLaw, ExactPowerLaw) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double x : {10.0, 100.0, 1000.0, 10000.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.5));
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-6);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitPowerLaw, NegativeExponent) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    xs.push_back(x);
    ys.push_back(std::pow(x, -1.2));
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, -1.2, 1e-9);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> bad{0.0, 1.0};
  EXPECT_THROW((void)fit_power_law(xs, bad), std::invalid_argument);
  EXPECT_THROW((void)fit_power_law(bad, xs), std::invalid_argument);
}

}  // namespace
