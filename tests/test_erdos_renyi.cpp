// Tests for the Erdős–Rényi baselines.
#include "gen/erdos_renyi.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"

namespace {

using sfs::gen::erdos_renyi_gnm;
using sfs::gen::erdos_renyi_gnp;
using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

TEST(Gnm, ExactEdgeCount) {
  Rng rng(1);
  const Graph g = erdos_renyi_gnm(50, 100, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 100u);
}

TEST(Gnm, SimpleGraph) {
  Rng rng(2);
  const Graph g = erdos_renyi_gnm(30, 200, rng);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_FALSE(e.is_loop());
    EXPECT_TRUE(seen.insert(std::minmax(e.tail, e.head)).second);
  }
}

TEST(Gnm, FullGraphPossible) {
  Rng rng(3);
  const Graph g = erdos_renyi_gnm(6, 15, rng);
  EXPECT_EQ(g.num_edges(), 15u);
}

TEST(Gnm, RejectsTooManyEdges) {
  Rng rng(4);
  EXPECT_THROW((void)erdos_renyi_gnm(4, 7, rng), std::invalid_argument);
}

TEST(Gnp, EdgeCountNearExpectation) {
  Rng rng(5);
  const std::size_t n = 400;
  const double p = 0.05;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.85 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.15 * expected);
}

TEST(Gnp, SimpleGraph) {
  Rng rng(6);
  const Graph g = erdos_renyi_gnp(100, 0.1, rng);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_FALSE(e.is_loop());
    EXPECT_LT(e.head, e.tail);  // Batagelj–Brandes order: v < u
    EXPECT_TRUE(seen.insert(std::minmax(e.tail, e.head)).second);
  }
}

TEST(Gnp, ZeroProbabilityEmpty) {
  Rng rng(7);
  EXPECT_EQ(erdos_renyi_gnp(50, 0.0, rng).num_edges(), 0u);
}

TEST(Gnp, FullProbabilityComplete) {
  Rng rng(8);
  const Graph g = erdos_renyi_gnp(10, 1.0, rng);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(Gnp, DenseRegimeConnected) {
  Rng rng(9);
  // p well above the log(n)/n connectivity threshold.
  const Graph g = erdos_renyi_gnp(200, 0.1, rng);
  EXPECT_TRUE(sfs::graph::is_connected(g));
}

TEST(Gnp, Preconditions) {
  Rng rng(10);
  EXPECT_THROW((void)erdos_renyi_gnp(10, 1.5, rng), std::invalid_argument);
  EXPECT_THROW((void)erdos_renyi_gnp(10, -0.1, rng), std::invalid_argument);
}

}  // namespace
