// Registry-wide smoke: every registered experiment (except the
// google-benchmark microbenches, which opt out via spec.smoke = false and
// are exercised by the CI sfs_bench --quick loop instead) runs to
// completion under the tiny --quick budget with the RNG stream audit
// enabled. Honors SFS_THREADS, so the CI matrix exercises the quick paths
// at 1 and 4 workers.
#include <gtest/gtest.h>

#include <sstream>

#include "rng/stream_audit.hpp"
#include "sim/experiment.hpp"

namespace {

TEST(ExperimentSmoke, EveryRegisteredExperimentRunsQuick) {
  // Audit every seed derivation the quick runs perform: two distinct
  // (seed, stream, rep) triples colliding on one derived seed is the
  // correlated-stream bug class the harnesses guard against.
  sfs::rng::StreamAudit::instance().set_enabled(true);

  const auto& registry = sfs::sim::ExperimentRegistry::instance();
  ASSERT_GE(registry.size(), 17u);
  std::size_t ran = 0;
  for (const auto* spec : registry.all()) {
    if (!spec->smoke) continue;
    std::ostringstream console;
    sfs::sim::ResultsEmitter emitter(console);
    sfs::sim::ExperimentContext ctx{spec, {}, &emitter};
    ctx.options.quick = true;
    int code = -1;
    ASSERT_NO_THROW(code = spec->run(ctx)) << "experiment " << spec->name;
    EXPECT_EQ(code, 0) << "experiment " << spec->name
                       << " failed under --quick; output:\n"
                       << console.str();
    EXPECT_FALSE(console.str().empty()) << spec->name;
    ++ran;
  }
  EXPECT_GE(ran, 17u);
}

}  // namespace
