// Tests for the Kleinberg small-world grid.
#include "gen/kleinberg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"

namespace {

using sfs::gen::KleinbergGrid;
using sfs::gen::KleinbergParams;
using sfs::graph::VertexId;
using sfs::rng::Rng;

TEST(KleinbergGrid, CountsMatch) {
  Rng rng(1);
  const KleinbergGrid grid(8, KleinbergParams{2.0, 1}, rng);
  EXPECT_EQ(grid.side(), 8u);
  EXPECT_EQ(grid.num_vertices(), 64u);
  // 2 local edges emitted per vertex + q long-range per vertex.
  EXPECT_EQ(grid.graph().num_edges(), 64u * 3u);
}

TEST(KleinbergGrid, EveryVertexHasFourLocalNeighborsPlusLongRange) {
  Rng rng(2);
  const KleinbergGrid grid(6, KleinbergParams{2.0, 2}, rng);
  for (VertexId v = 0; v < grid.num_vertices(); ++v) {
    // Degree >= 4 local + 2 own long-range; incoming long-range possible.
    EXPECT_GE(grid.graph().degree(v), 6u);
  }
}

TEST(KleinbergGrid, CoordsRoundTrip) {
  Rng rng(3);
  const KleinbergGrid grid(5, KleinbergParams{2.0, 1}, rng);
  for (VertexId v = 0; v < grid.num_vertices(); ++v) {
    const auto [x, y] = grid.coords(v);
    EXPECT_EQ(grid.vertex_at(x, y), v);
  }
}

TEST(KleinbergGrid, VertexAtWraps) {
  Rng rng(4);
  const KleinbergGrid grid(5, KleinbergParams{2.0, 1}, rng);
  EXPECT_EQ(grid.vertex_at(5, 0), grid.vertex_at(0, 0));
  EXPECT_EQ(grid.vertex_at(7, 9), grid.vertex_at(2, 4));
}

TEST(KleinbergGrid, LatticeDistanceIsTorusMetric) {
  Rng rng(5);
  const KleinbergGrid grid(10, KleinbergParams{2.0, 1}, rng);
  const VertexId a = grid.vertex_at(0, 0);
  const VertexId b = grid.vertex_at(9, 0);  // wraps to distance 1
  EXPECT_EQ(grid.lattice_distance(a, b), 1u);
  const VertexId c = grid.vertex_at(5, 5);
  EXPECT_EQ(grid.lattice_distance(a, c), 10u);
  EXPECT_EQ(grid.lattice_distance(a, a), 0u);
  // Symmetry.
  EXPECT_EQ(grid.lattice_distance(a, c), grid.lattice_distance(c, a));
}

TEST(KleinbergGrid, TriangleInequalitySampled) {
  Rng rng(6);
  const KleinbergGrid grid(12, KleinbergParams{2.0, 1}, rng);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<VertexId>(rng.uniform_index(144));
    const auto b = static_cast<VertexId>(rng.uniform_index(144));
    const auto c = static_cast<VertexId>(rng.uniform_index(144));
    EXPECT_LE(grid.lattice_distance(a, c),
              grid.lattice_distance(a, b) + grid.lattice_distance(b, c));
  }
}

TEST(KleinbergGrid, Connected) {
  Rng rng(7);
  const KleinbergGrid grid(9, KleinbergParams{1.0, 1}, rng);
  EXPECT_TRUE(sfs::graph::is_connected(grid.graph()));
}

TEST(KleinbergGrid, GraphDistanceBoundedByLattice) {
  // Long-range links only shorten paths; graph distance <= lattice distance.
  Rng rng(8);
  const KleinbergGrid grid(8, KleinbergParams{2.0, 1}, rng);
  for (int i = 0; i < 30; ++i) {
    const auto a = static_cast<VertexId>(rng.uniform_index(64));
    const auto b = static_cast<VertexId>(rng.uniform_index(64));
    EXPECT_LE(sfs::graph::distance(grid.graph(), a, b),
              grid.lattice_distance(a, b));
  }
}

TEST(KleinbergGrid, HighExponentFavorsShortLinks) {
  // With r = 6 nearly all long-range contacts are at lattice distance 1-2.
  Rng rng(9);
  const KleinbergGrid grid(16, KleinbergParams{6.0, 1}, rng);
  std::size_t shorts = 0;
  std::size_t longs = 0;
  const auto& g = grid.graph();
  // Long-range edges are the last n edges (insertion order: local first).
  const std::size_t n = grid.num_vertices();
  for (std::size_t e = 2 * n; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(static_cast<sfs::graph::EdgeId>(e));
    const auto d = grid.lattice_distance(ed.tail, ed.head);
    if (d <= 2) ++shorts;
    else ++longs;
  }
  EXPECT_GT(shorts, 5 * (longs + 1));
}

TEST(KleinbergGrid, ZeroExponentIsUniform) {
  // r = 0: long-range contacts uniform; mean lattice distance should be
  // close to the mean over all offsets (~ L/2 for Manhattan on torus).
  Rng rng(10);
  const std::size_t L = 20;
  const KleinbergGrid grid(L, KleinbergParams{0.0, 1}, rng);
  const auto& g = grid.graph();
  const std::size_t n = grid.num_vertices();
  double sum = 0.0;
  std::size_t cnt = 0;
  for (std::size_t e = 2 * n; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(static_cast<sfs::graph::EdgeId>(e));
    sum += static_cast<double>(grid.lattice_distance(ed.tail, ed.head));
    ++cnt;
  }
  const double mean = sum / static_cast<double>(cnt);
  EXPECT_GT(mean, 7.0);
  EXPECT_LT(mean, 13.0);
}

TEST(KleinbergGrid, Preconditions) {
  Rng rng(11);
  EXPECT_THROW(KleinbergGrid(1, KleinbergParams{2.0, 1}, rng),
               std::invalid_argument);
  EXPECT_THROW(KleinbergGrid(4, KleinbergParams{-1.0, 1}, rng),
               std::invalid_argument);
}

}  // namespace
