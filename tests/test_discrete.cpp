// Tests for the weighted samplers.
#include "rng/discrete.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace {

using sfs::rng::AliasTable;
using sfs::rng::CdfSampler;
using sfs::rng::FenwickSampler;
using sfs::rng::RepeatArray;
using sfs::rng::Rng;

std::vector<double> empirical_freq(const std::function<std::size_t(Rng&)>& draw,
                                   std::size_t outcomes, int n, Rng& rng) {
  std::vector<double> freq(outcomes, 0.0);
  for (int i = 0; i < n; ++i) freq[draw(rng)] += 1.0;
  for (double& f : freq) f /= n;
  return freq;
}

// ------------------------------------------------------------- AliasTable

TEST(AliasTable, SingleOutcome) {
  const std::vector<double> w{3.0};
  AliasTable t{std::span<const double>(w)};
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, MatchesWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable t{std::span<const double>(w)};
  Rng rng(2);
  const auto freq = empirical_freq(
      [&](Rng& r) { return t.sample(r); }, 4, 200000, rng);
  EXPECT_NEAR(freq[0], 0.1, 0.01);
  EXPECT_NEAR(freq[1], 0.2, 0.01);
  EXPECT_NEAR(freq[2], 0.3, 0.01);
  EXPECT_NEAR(freq[3], 0.4, 0.01);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w{1.0, 0.0, 1.0};
  AliasTable t{std::span<const double>(w)};
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(t.sample(rng), 1u);
}

TEST(AliasTable, RejectsEmpty) {
  const std::vector<double> w{};
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, std::invalid_argument);
}

TEST(AliasTable, RejectsNegative) {
  const std::vector<double> w{1.0, -0.5};
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, std::invalid_argument);
}

TEST(AliasTable, RejectsAllZero) {
  const std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, std::invalid_argument);
}

TEST(AliasTable, HandlesExtremeSkew) {
  const std::vector<double> w{1e-12, 1.0};
  AliasTable t{std::span<const double>(w)};
  Rng rng(4);
  int zeros = 0;
  for (int i = 0; i < 100000; ++i) zeros += t.sample(rng) == 0 ? 1 : 0;
  EXPECT_LE(zeros, 2);
}

// ------------------------------------------------------------- CdfSampler

TEST(CdfSampler, ProbabilityAccessors) {
  const std::vector<double> w{1.0, 3.0};
  CdfSampler s{std::span<const double>(w)};
  EXPECT_DOUBLE_EQ(s.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(s.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(s.probability(1), 0.75);
  EXPECT_THROW((void)s.probability(2), std::invalid_argument);
}

TEST(CdfSampler, MatchesWeights) {
  const std::vector<double> w{2.0, 1.0, 1.0};
  CdfSampler s{std::span<const double>(w)};
  Rng rng(5);
  const auto freq = empirical_freq(
      [&](Rng& r) { return s.sample(r); }, 3, 100000, rng);
  EXPECT_NEAR(freq[0], 0.5, 0.01);
  EXPECT_NEAR(freq[1], 0.25, 0.01);
  EXPECT_NEAR(freq[2], 0.25, 0.01);
}

TEST(CdfSampler, SkipsZeroWeightOutcomes) {
  const std::vector<double> w{0.0, 1.0, 0.0};
  CdfSampler s{std::span<const double>(w)};
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.sample(rng), 1u);
}

// --------------------------------------------------------- FenwickSampler

TEST(FenwickSampler, WeightRoundTrip) {
  FenwickSampler f(5);
  f.set_weight(0, 1.5);
  f.set_weight(3, 2.5);
  EXPECT_DOUBLE_EQ(f.weight(0), 1.5);
  EXPECT_DOUBLE_EQ(f.weight(1), 0.0);
  EXPECT_DOUBLE_EQ(f.weight(3), 2.5);
  EXPECT_NEAR(f.total_weight(), 4.0, 1e-12);
}

TEST(FenwickSampler, AddAccumulates) {
  FenwickSampler f(3);
  f.add(1, 1.0);
  f.add(1, 2.0);
  EXPECT_DOUBLE_EQ(f.weight(1), 3.0);
}

TEST(FenwickSampler, SampleMatchesWeights) {
  FenwickSampler f(4);
  f.set_weight(0, 1.0);
  f.set_weight(1, 2.0);
  f.set_weight(2, 3.0);
  f.set_weight(3, 4.0);
  Rng rng(7);
  const auto freq = empirical_freq(
      [&](Rng& r) { return f.sample(r); }, 4, 200000, rng);
  EXPECT_NEAR(freq[0], 0.1, 0.01);
  EXPECT_NEAR(freq[1], 0.2, 0.01);
  EXPECT_NEAR(freq[2], 0.3, 0.01);
  EXPECT_NEAR(freq[3], 0.4, 0.01);
}

TEST(FenwickSampler, DynamicUpdateShiftsMass) {
  FenwickSampler f(2);
  f.set_weight(0, 1.0);
  f.set_weight(1, 1.0);
  f.set_weight(0, 0.0);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(f.sample(rng), 1u);
}

TEST(FenwickSampler, PushBackGrows) {
  FenwickSampler f;
  EXPECT_EQ(f.push_back(1.0), 0u);
  EXPECT_EQ(f.push_back(2.0), 1u);
  EXPECT_EQ(f.push_back(3.0), 2u);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(f.weight(1), 2.0);
  EXPECT_DOUBLE_EQ(f.weight(2), 3.0);
  EXPECT_NEAR(f.total_weight(), 6.0, 1e-12);
}

TEST(FenwickSampler, PushBackManyKeepsPrefixSums) {
  FenwickSampler f;
  for (int i = 1; i <= 100; ++i) f.push_back(static_cast<double>(i));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR(f.weight(i), static_cast<double>(i + 1), 1e-9);
  }
  EXPECT_NEAR(f.total_weight(), 5050.0, 1e-9);
}

TEST(FenwickSampler, PushBackThenSample) {
  FenwickSampler f;
  f.push_back(0.0);
  f.push_back(5.0);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(f.sample(rng), 1u);
}

TEST(FenwickSampler, SampleEmptyThrows) {
  FenwickSampler f(3);
  Rng rng(10);
  EXPECT_THROW((void)f.sample(rng), std::invalid_argument);
}

TEST(FenwickSampler, OutOfRangeThrows) {
  FenwickSampler f(2);
  EXPECT_THROW((void)f.weight(2), std::invalid_argument);
  EXPECT_THROW(f.add(2, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------ RepeatArray

TEST(RepeatArray, CountsUnits) {
  RepeatArray bag;
  bag.push(3);
  bag.push(3);
  bag.push(7);
  EXPECT_EQ(bag.size(), 3u);
  EXPECT_EQ(bag.count(3), 2u);
  EXPECT_EQ(bag.count(7), 1u);
  EXPECT_EQ(bag.count(5), 0u);
}

TEST(RepeatArray, SampleProportionalToUnits) {
  RepeatArray bag;
  for (int i = 0; i < 3; ++i) bag.push(0);
  bag.push(1);
  Rng rng(11);
  int zeros = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) zeros += bag.sample(rng) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(zeros) / kDraws, 0.75, 0.01);
}

TEST(RepeatArray, SampleEmptyThrows) {
  RepeatArray bag;
  Rng rng(12);
  EXPECT_THROW((void)bag.sample(rng), std::invalid_argument);
}

// --------------------------------------------------------- BucketedSampler

using sfs::rng::BucketedSampler;

// Pearson chi-square statistic of observed draw counts against the exact
// weights; draws must be large enough that every expected cell count is
// comfortably > 5.
double chi_square(const std::vector<std::size_t>& observed,
                  const std::vector<std::uint64_t>& weights, int draws) {
  double total = 0.0;
  for (const auto w : weights) total += static_cast<double>(w);
  double stat = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0) continue;
    const double expected = draws * static_cast<double>(weights[i]) / total;
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(BucketedSampler, WeightBookkeeping) {
  BucketedSampler s(4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total_weight(), 0u);
  s.set_weight(0, 1);
  s.set_weight(1, 2);
  s.set_weight(2, 3);
  EXPECT_EQ(s.total_weight(), 6u);
  EXPECT_EQ(s.weight(1), 2u);
  s.add(1, 5);  // 2 -> 7 crosses a weight class
  EXPECT_EQ(s.weight(1), 7u);
  s.add(2, -3);  // 3 -> 0 leaves its bucket
  EXPECT_EQ(s.weight(2), 0u);
  EXPECT_EQ(s.total_weight(), 8u);
  const std::size_t id = s.push_back(10);
  EXPECT_EQ(id, 4u);
  EXPECT_EQ(s.total_weight(), 18u);
}

TEST(BucketedSampler, MatchesWeightsChiSquare) {
  // Spread weights across several power-of-two classes, including
  // same-class siblings (5, 6) whose separation relies on the in-class
  // rejection step.
  const std::vector<std::uint64_t> weights{1, 2, 3, 5, 6, 17, 40, 100};
  BucketedSampler s;
  for (const auto w : weights) (void)s.push_back(w);
  Rng rng(13);
  constexpr int kDraws = 400000;
  std::vector<std::size_t> observed(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++observed[s.sample(rng)];
  // 7 degrees of freedom; the 0.001 critical value is 24.3. Seeded, so the
  // test is deterministic — a pass is a pass forever.
  EXPECT_LT(chi_square(observed, weights, kDraws), 24.3);
}

TEST(BucketedSampler, MatchesRepeatArrayDistribution) {
  // Same integer weights in both structures, same chi-square fence: the
  // bucketed sampler realizes RepeatArray's distribution without its
  // O(total weight) memory.
  const std::vector<std::uint64_t> weights{4, 1, 9, 2, 16, 1, 31};
  BucketedSampler s;
  RepeatArray bag;
  for (std::size_t id = 0; id < weights.size(); ++id) {
    (void)s.push_back(weights[id]);
    for (std::uint64_t u = 0; u < weights[id]; ++u) {
      bag.push(static_cast<std::uint32_t>(id));
    }
  }
  constexpr int kDraws = 400000;
  Rng rng_bucket(14);
  Rng rng_bag(15);
  std::vector<std::size_t> from_bucket(weights.size(), 0);
  std::vector<std::size_t> from_bag(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    ++from_bucket[s.sample(rng_bucket)];
    ++from_bag[bag.sample(rng_bag)];
  }
  // Both empirical distributions sit inside the same exact-weight fence
  // (6 dof, 0.001 critical value 22.5).
  EXPECT_LT(chi_square(from_bucket, weights, kDraws), 22.5);
  EXPECT_LT(chi_square(from_bag, weights, kDraws), 22.5);
}

TEST(BucketedSampler, DynamicUpdateShiftsMass) {
  BucketedSampler s(2);
  s.set_weight(0, 1);
  s.set_weight(1, 1);
  Rng rng(16);
  s.set_weight(1, 63);  // 1 -> 63, several classes up
  int ones = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ones += s.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 63.0 / 64.0, 0.01);
}

TEST(BucketedSampler, ZeroWeightNeverSampled) {
  BucketedSampler s(3);
  s.set_weight(0, 7);
  s.set_weight(1, 5);
  s.set_weight(2, 9);
  s.set_weight(1, 0);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(s.sample(rng), 1u);
}

TEST(BucketedSampler, DeterministicForSameStream) {
  const std::vector<std::uint64_t> weights{3, 1, 4, 1, 5, 9, 2, 6};
  BucketedSampler a;
  BucketedSampler b;
  for (const auto w : weights) {
    (void)a.push_back(w);
    (void)b.push_back(w);
  }
  Rng ra(18);
  Rng rb(18);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.sample(ra), b.sample(rb));
}

TEST(BucketedSampler, SingleHugeWeightClass) {
  // Top bucket (k = 63) exercises the saturated in-class bound.
  BucketedSampler s(2);
  s.set_weight(0, std::uint64_t{1} << 63);
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(BucketedSampler, Validation) {
  BucketedSampler s(2);
  Rng rng(20);
  EXPECT_THROW((void)s.sample(rng), std::invalid_argument);  // total 0
  EXPECT_THROW(s.set_weight(2, 1), std::invalid_argument);
  EXPECT_THROW(s.add(0, -1), std::invalid_argument);
  EXPECT_THROW(s.resize(1), std::invalid_argument);  // shrink
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.total_weight(), 0u);
}

}  // namespace
