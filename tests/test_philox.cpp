// Tests for the counter-based Philox engine (rng/philox.hpp): seek ==
// sequential advance, keyed independence, and stream stability.
#include "rng/philox.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

namespace {

using sfs::rng::Philox4x64;

static_assert(std::uniform_random_bit_generator<Philox4x64>);

TEST(Philox, DeterministicForSameKey) {
  Philox4x64 a(42, 7);
  Philox4x64 b(42, 7);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a(), b());
}

TEST(Philox, SeekEqualsSequentialAdvance) {
  // The core counter-engine contract: seek(k) lands exactly where k
  // sequential draws land, for offsets on and off block boundaries.
  Philox4x64 reference(0x5EED, 0xBEEF);
  std::vector<std::uint64_t> draws(64);
  for (auto& d : draws) d = reference();

  for (std::uint64_t k = 0; k < draws.size(); ++k) {
    Philox4x64 seeker(0x5EED, 0xBEEF);
    seeker.seek(k);
    EXPECT_EQ(seeker.position(), k);
    // After the seek the remaining tail must match bit for bit.
    for (std::uint64_t i = k; i < draws.size(); ++i) {
      EXPECT_EQ(seeker(), draws[i]) << "seek(" << k << ") diverged at " << i;
    }
  }
}

TEST(Philox, SeekIsReusable) {
  // Seeking backwards and forwards at will: the engine is a pure function
  // of (key, position), with no history.
  Philox4x64 eng(9, 9);
  eng.seek(17);
  const std::uint64_t at17 = eng();
  eng.seek(3);
  (void)eng();
  eng.seek(17);
  EXPECT_EQ(eng(), at17);
}

TEST(Philox, PositionTracksDraws) {
  Philox4x64 eng(1, 2);
  EXPECT_EQ(eng.position(), 0u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    (void)eng();
    EXPECT_EQ(eng.position(), i);
  }
}

TEST(Philox, BlockAtMatchesOperatorAndIsConst) {
  const Philox4x64 eng(123, 456);
  const auto block0 = eng.block_at(0);
  const auto block1 = eng.block_at(1);
  Philox4x64 seq(123, 456);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seq(), block0[i]);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seq(), block1[i]);
  // block_at does not perturb engine state.
  EXPECT_EQ(eng.position(), 0u);
}

TEST(Philox, DifferentKeysDecorrelate) {
  Philox4x64 a(1, 0);
  Philox4x64 b(2, 0);
  Philox4x64 c(1, 1);
  int ab = 0;
  int ac = 0;
  for (int i = 0; i < 256; ++i) {
    const auto x = a();
    if (x == b()) ++ab;
    if (x == c()) ++ac;
  }
  EXPECT_LE(ab, 1);
  EXPECT_LE(ac, 1);
}

TEST(Philox, NearbyCountersProduceDistinctValues) {
  // Counter-based streams are used as per-index derivations; adjacent
  // indices must not collide (Philox is a bijection of the counter, so
  // equal outputs would require equal counters).
  Philox4x64 eng(0, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 4096; ++i) seen.insert(eng());
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(Philox, ZeroKeyZeroCounterIsNontrivial) {
  // The all-zero input must still encrypt to a scrambled block (guards
  // against a broken round function that fixes zero).
  const Philox4x64 eng(0, 0);
  const auto block = eng.block_at(0);
  for (const auto word : block) EXPECT_NE(word, 0u);
  EXPECT_NE(block[0], block[1]);
  EXPECT_NE(block[2], block[3]);
}

TEST(Philox, StreamStabilityGolden) {
  // Pins the exact output stream. Plan-v2 stream seeds are Philox outputs,
  // so any change to the round function, constants, or counter layout is a
  // reproducibility break and must show up as a loud test failure plus a
  // stream-plan version bump — not as silently different experiments.
  Philox4x64 eng(0x1A26E1ULL, 0x5EEDULL);
  const std::uint64_t expected[4] = {
      eng.block_at(0)[0], eng.block_at(0)[1], eng.block_at(0)[2],
      eng.block_at(0)[3]};
  // Self-consistency of the pinned path.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(eng(), expected[i]);
  // The frozen values (captured at introduction; see stream_plan.hpp).
  EXPECT_EQ(expected[0], 0x8AEF7428E459D836ULL);
  EXPECT_EQ(expected[1], 0xC1E0B030DEA98A0DULL);
  EXPECT_EQ(expected[2], 0xDFF2357C553830C0ULL);
  EXPECT_EQ(expected[3], 0xB56D8207EF9C421BULL);
}

TEST(Philox, CoarseUniformity) {
  // Coarse distributional sanity: high-bit split is near balanced.
  Philox4x64 eng(77, 88);
  int high = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (eng() >> 63) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / n, 0.5, 0.01);
}

}  // namespace
