// Tests for the Barabási–Albert generator.
#include "gen/barabasi_albert.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/degree.hpp"

namespace {

using sfs::gen::barabasi_albert;
using sfs::gen::BarabasiAlbertParams;
using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

class BaInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BaInvariants, CountsAndConnectivity) {
  const std::size_t m = GetParam();
  Rng rng(1);
  const Graph g = barabasi_albert(300, BarabasiAlbertParams{m, true}, rng);
  EXPECT_EQ(g.num_vertices(), 300u);
  // Seed loop + m edges per vertex v >= 1 (capped at v for distinctness).
  std::size_t expected = 1;
  for (std::size_t v = 1; v < 300; ++v) expected += std::min(m, v);
  EXPECT_EQ(g.num_edges(), expected);
  EXPECT_TRUE(sfs::graph::is_connected(g));
}

TEST_P(BaInvariants, DistinctTargetsPerVertex) {
  const std::size_t m = GetParam();
  Rng rng(2);
  const Graph g = barabasi_albert(200, BarabasiAlbertParams{m, true}, rng);
  // Collect each vertex's out-neighbors; they must be distinct.
  std::vector<std::set<VertexId>> targets(g.num_vertices());
  std::vector<std::size_t> out_count(g.num_vertices(), 0);
  for (const auto& e : g.edges()) {
    if (e.is_loop()) continue;  // seed
    EXPECT_TRUE(targets[e.tail].insert(e.head).second)
        << "duplicate target for vertex " << e.tail;
    ++out_count[e.tail];
  }
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(out_count[v], std::min<std::size_t>(m, v));
  }
}

INSTANTIATE_TEST_SUITE_P(MSweep, BaInvariants, ::testing::Values(1u, 2u, 4u));

TEST(BarabasiAlbert, TargetsAreOlder) {
  Rng rng(3);
  const Graph g = barabasi_albert(150, BarabasiAlbertParams{2, true}, rng);
  for (const auto& e : g.edges()) {
    EXPECT_LE(e.head, e.tail);
  }
}

TEST(BarabasiAlbert, RichGetRicher) {
  // The seed vertex should end up with far more than the mean degree.
  Rng rng(4);
  const Graph g = barabasi_albert(5000, BarabasiAlbertParams{1, true}, rng);
  const double mean =
      sfs::graph::mean_degree(g, sfs::graph::DegreeKind::kUndirected);
  EXPECT_GT(static_cast<double>(g.degree(0)), 10.0 * mean);
}

TEST(BarabasiAlbert, HeavyTailSmokeTest) {
  Rng rng(5);
  const Graph g = barabasi_albert(20000, BarabasiAlbertParams{2, true}, rng);
  const auto dmax =
      sfs::graph::max_degree(g, sfs::graph::DegreeKind::kUndirected);
  // BA max degree ~ sqrt(n * m); Poisson-like models would give O(log n).
  EXPECT_GT(dmax, 100u);
}

TEST(BarabasiAlbert, ParallelEdgesWhenAllowed) {
  Rng rng(6);
  const Graph g = barabasi_albert(500, BarabasiAlbertParams{3, false}, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(sfs::graph::is_connected(g));
}

TEST(BarabasiAlbert, Preconditions) {
  Rng rng(7);
  EXPECT_THROW((void)barabasi_albert(0, BarabasiAlbertParams{1, true}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)barabasi_albert(10, BarabasiAlbertParams{0, true}, rng),
               std::invalid_argument);
}

TEST(BarabasiAlbert, SingleVertexIsSeedLoop) {
  Rng rng(8);
  const Graph g = barabasi_albert(1, BarabasiAlbertParams{1, true}, rng);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.edge(0).is_loop());
}

}  // namespace
