// Tests for the precondition / invariant macros.
#include "base/check.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(SFS_REQUIRE(1 + 1 == 2, "arithmetic"));
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(SFS_REQUIRE(false, "boom"), std::invalid_argument);
}

TEST(Check, RequireMessageContainsExpressionAndNote) {
  try {
    SFS_REQUIRE(2 < 1, "my context note");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("my context note"), std::string::npos);
  }
}

TEST(Check, CheckThrowsLogicError) {
  EXPECT_THROW(SFS_CHECK(false, "invariant"), std::logic_error);
}

TEST(Check, CheckPassesOnTrue) {
  EXPECT_NO_THROW(SFS_CHECK(true, ""));
}

TEST(Check, SideEffectsEvaluatedExactlyOnce) {
  int calls = 0;
  auto f = [&] {
    ++calls;
    return true;
  };
  SFS_REQUIRE(f(), "once");
  EXPECT_EQ(calls, 1);
}

}  // namespace
