// sim/experiment: registry registration rules, seed derivation, CLI
// parsing and capability validation, the results emitter, and the shape
// of the globally registered experiment catalog (this test links the
// experiments object library, so the real registry is populated).
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rng/stream_audit.hpp"

namespace {

using sfs::sim::CliRequest;
using sfs::sim::ExperimentContext;
using sfs::sim::ExperimentOptions;
using sfs::sim::ExperimentRegistry;
using sfs::sim::ExperimentSpec;
using sfs::sim::experiment_seed;
using sfs::sim::experiment_stream_seed;
using sfs::sim::parse_experiment_cli;
using sfs::sim::validate_experiment_options;

ExperimentSpec make_spec(const std::string& name,
                         std::uint64_t default_seed = 0) {
  ExperimentSpec spec;
  spec.name = name;
  spec.title = "test experiment " + name;
  spec.claim = "claim";
  spec.default_seed = default_seed;
  spec.run = [](ExperimentContext&) { return 0; };
  return spec;
}

// ---------------------------------------------------------------- registry

TEST(ExperimentRegistry, AddAndFind) {
  ExperimentRegistry reg;
  reg.add(make_spec("x1"));
  ASSERT_NE(reg.find("x1"), nullptr);
  EXPECT_EQ(reg.find("x1")->name, "x1");
  EXPECT_EQ(reg.find("x2"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ExperimentRegistry, DuplicateNameRejected) {
  ExperimentRegistry reg;
  reg.add(make_spec("x1"));
  EXPECT_THROW(reg.add(make_spec("x1")), std::invalid_argument);
}

TEST(ExperimentRegistry, EmptyNameAndMissingRunRejected) {
  ExperimentRegistry reg;
  EXPECT_THROW(reg.add(make_spec("")), std::invalid_argument);
  ExperimentSpec no_run = make_spec("x1");
  no_run.run = nullptr;
  EXPECT_THROW(reg.add(no_run), std::invalid_argument);
}

TEST(ExperimentRegistry, DefaultSeedCollisionRejected) {
  ExperimentRegistry reg;
  reg.add(make_spec("x1", 42));
  EXPECT_THROW(reg.add(make_spec("x2", 42)), std::invalid_argument);
  // A pinned seed colliding with a name-derived one is caught too.
  ExperimentRegistry reg2;
  reg2.add(make_spec("x1"));
  EXPECT_THROW(reg2.add(make_spec("x2", experiment_seed("x1"))),
               std::invalid_argument);
}

TEST(ExperimentRegistry, CatalogOrderIsFamilyThenNumber) {
  ExperimentRegistry reg;
  for (const char* name : {"m2", "e10", "a1", "e2", "zz", "e1", "m1"}) {
    reg.add(make_spec(name));
  }
  std::vector<std::string> names;
  for (const auto* spec : reg.all()) names.push_back(spec->name);
  EXPECT_EQ(names, (std::vector<std::string>{"e1", "e2", "e10", "a1", "m1",
                                             "m2", "zz"}));
}

// ------------------------------------------------------------------- seeds

TEST(ExperimentSeeds, NameDerivedSeedsDiffer) {
  std::set<std::uint64_t> seen;
  for (const char* name : {"e1", "e2", "e3", "e10", "a1", "m4", "custom"}) {
    EXPECT_TRUE(seen.insert(experiment_seed(name)).second)
        << "seed collision for " << name;
  }
}

TEST(ExperimentSeeds, StreamSeedsDifferByStreamAndBase) {
  const std::uint64_t base = experiment_seed("e1");
  EXPECT_NE(experiment_stream_seed(base, "sweep"),
            experiment_stream_seed(base, "detail"));
  EXPECT_NE(experiment_stream_seed(base, "sweep"),
            experiment_stream_seed(base + 1, "sweep"));
  // Deterministic.
  EXPECT_EQ(experiment_stream_seed(base, "sweep"),
            experiment_stream_seed(base, "sweep"));
}

TEST(ExperimentSeeds, StreamDerivationsAreAudited) {
  auto& audit = sfs::rng::StreamAudit::instance();
  const bool was_enabled = audit.enabled();
  audit.set_enabled(true);
  const std::size_t before = audit.recorded_count();
  (void)experiment_stream_seed(experiment_seed("audit-test"),
                               "some-stream");
  EXPECT_GT(audit.recorded_count(), before)
      << "name-derived stream seeds must be visible to SFS_RNG_AUDIT";
  audit.set_enabled(was_enabled);
}

TEST(ExperimentSeeds, ContextPrefersCliSeed) {
  ExperimentSpec spec = make_spec("x1", 7);
  sfs::sim::ResultsEmitter emitter;
  ExperimentContext ctx{&spec, {}, &emitter};
  EXPECT_EQ(ctx.base_seed(), 7u);
  ctx.options.seed = 99;
  ctx.options.has_seed = true;
  EXPECT_EQ(ctx.base_seed(), 99u);
}

// --------------------------------------------------------------------- cli

TEST(ExperimentCli, HappyPathParsesEverything) {
  CliRequest req;
  std::string error;
  ASSERT_TRUE(parse_experiment_cli(
      {"--run", "e1", "--quick", "--large", "--sizes", "1024,2048,4096",
       "--reps", "3", "--seed", "0x1A26E1", "--threads", "4",
       "--checkpoint", "ck.csv", "--json", "out.jsonl"},
      req, error))
      << error;
  EXPECT_EQ(req.run_name, "e1");
  EXPECT_TRUE(req.options.quick);
  EXPECT_TRUE(req.options.large);
  EXPECT_EQ(req.options.sizes,
            (std::vector<std::size_t>{1024, 2048, 4096}));
  EXPECT_EQ(req.options.reps, 3u);
  EXPECT_TRUE(req.options.has_seed);
  EXPECT_EQ(req.options.seed, 0x1A26E1u);
  EXPECT_TRUE(req.options.has_threads);
  EXPECT_EQ(req.options.threads, 4u);
  EXPECT_EQ(req.options.checkpoint_path, "ck.csv");
  EXPECT_EQ(req.options.json_path, "out.jsonl");
}

TEST(ExperimentCli, NIsSingleElementSizes) {
  CliRequest req;
  std::string error;
  ASSERT_TRUE(parse_experiment_cli({"--run", "e6", "--n", "4096"}, req,
                                   error));
  EXPECT_EQ(req.options.sizes, (std::vector<std::size_t>{4096}));
}

TEST(ExperimentCli, UnknownFlagRejected) {
  CliRequest req;
  std::string error;
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--frobnicate"}, req,
                                    error));
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
}

TEST(ExperimentCli, TypeErrorsRejected) {
  CliRequest req;
  std::string error;
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--reps", "abc"}, req,
                                    error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--reps", "0"}, req,
                                    error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--seed", "12junk"},
                                    req, error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--sizes", "10,abc"},
                                    req, error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--sizes", "10,10"},
                                    req, error))
      << "--sizes must be strictly increasing";
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--n", "0"}, req,
                                    error));
}

TEST(ExperimentCli, MissingValueRejected) {
  CliRequest req;
  std::string error;
  EXPECT_FALSE(parse_experiment_cli({"--run"}, req, error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--checkpoint"}, req,
                                    error));
}

TEST(ExperimentCli, RepeatedValueFlagsRejected) {
  CliRequest req;
  std::string error;
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--run", "e2"}, req,
                                    error));
  EXPECT_NE(error.find("more than once"), std::string::npos);
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--seed", "1", "--seed", "2"}, req, error));
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--n", "5", "--sizes", "1,2"}, req, error));
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--reps", "2", "--reps", "3"}, req, error));
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--threads", "1", "--threads", "2"}, req, error));
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--json", "a", "--json", "b"}, req, error));
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--checkpoint", "a", "--checkpoint", "b"}, req,
      error));
  // Repeated boolean flags are idempotent and stay legal.
  EXPECT_TRUE(parse_experiment_cli({"--run", "e1", "--quick", "--quick"},
                                   req, error))
      << error;
}

TEST(ExperimentCli, EmptyPathValuesRejected) {
  CliRequest req;
  std::string error;
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "e1", "--quick", "--checkpoint", ""}, req, error))
      << "an empty checkpoint path reads back as 'flag absent'";
  EXPECT_NE(error.find("--checkpoint"), std::string::npos);
  EXPECT_FALSE(parse_experiment_cli({"--run", "e1", "--json", ""}, req,
                                    error));
}

TEST(ExperimentCli, ActionRequiredAndExclusive) {
  CliRequest req;
  std::string error;
  EXPECT_FALSE(parse_experiment_cli({}, req, error));
  EXPECT_FALSE(parse_experiment_cli({"--quick"}, req, error));
  EXPECT_FALSE(parse_experiment_cli({"--list", "--list-names"}, req,
                                    error));
  EXPECT_FALSE(parse_experiment_cli({"--list", "--run", "e1"}, req,
                                    error));
  ASSERT_TRUE(parse_experiment_cli({"--list"}, req, error));
  EXPECT_TRUE(req.list);
}

// -------------------------------------------------------------- validation

TEST(ExperimentValidation, CapabilityGating) {
  ExperimentSpec spec = make_spec("x1");
  spec.caps = sfs::sim::kCapQuick | sfs::sim::kCapSeed;
  std::string error;

  ExperimentOptions ok;
  ok.quick = true;
  EXPECT_TRUE(validate_experiment_options(spec, ok, error)) << error;

  ExperimentOptions large;
  large.large = true;
  EXPECT_FALSE(validate_experiment_options(spec, large, error));
  EXPECT_NE(error.find("--large"), std::string::npos);

  ExperimentOptions sizes;
  sizes.sizes = {1024};
  EXPECT_FALSE(validate_experiment_options(spec, sizes, error));

  ExperimentOptions reps;
  reps.reps = 3;
  EXPECT_FALSE(validate_experiment_options(spec, reps, error));

  ExperimentOptions threads;
  threads.has_threads = true;
  threads.threads = 2;
  EXPECT_FALSE(validate_experiment_options(spec, threads, error));

  ExperimentOptions ckpt;
  ckpt.checkpoint_path = "x.csv";
  EXPECT_FALSE(validate_experiment_options(spec, ckpt, error));
}

TEST(ExperimentCli, PoliciesFlag) {
  CliRequest req;
  std::string error;
  ASSERT_TRUE(parse_experiment_cli(
      {"--run", "a1", "--policies", "bfs,random-walk"}, req, error))
      << error;
  EXPECT_EQ(req.options.policies,
            (std::vector<std::string>{"bfs", "random-walk"}));
  // Malformed lists: empty value, empty token, trailing comma.
  EXPECT_FALSE(parse_experiment_cli({"--run", "a1", "--policies", ""}, req,
                                    error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "a1", "--policies", "a,,b"},
                                    req, error));
  EXPECT_FALSE(parse_experiment_cli({"--run", "a1", "--policies", "a,"},
                                    req, error));
  // Missing value and duplicate flag.
  EXPECT_FALSE(parse_experiment_cli({"--run", "a1", "--policies"}, req,
                                    error));
  EXPECT_FALSE(parse_experiment_cli(
      {"--run", "a1", "--policies", "a", "--policies", "b"}, req, error));
  EXPECT_NE(error.find("more than once"), std::string::npos);
}

TEST(ParseNameList, TokenRules) {
  std::vector<std::string> out;
  EXPECT_TRUE(sfs::sim::parse_name_list("one", out));
  EXPECT_EQ(out, (std::vector<std::string>{"one"}));
  EXPECT_TRUE(sfs::sim::parse_name_list("a,b,c", out));
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_FALSE(sfs::sim::parse_name_list("", out));
  EXPECT_FALSE(sfs::sim::parse_name_list(",", out));
  EXPECT_FALSE(sfs::sim::parse_name_list("a,,b", out));
  EXPECT_FALSE(sfs::sim::parse_name_list(",a", out));
  EXPECT_FALSE(sfs::sim::parse_name_list("a,", out));
}

TEST(ExperimentValidation, PoliciesGatedByCapability) {
  std::string error;
  ExperimentSpec plain = make_spec("x1");
  plain.caps = sfs::sim::kCapQuick;
  ExperimentOptions options;
  options.policies = {"bfs"};
  EXPECT_FALSE(validate_experiment_options(plain, options, error));
  EXPECT_NE(error.find("--policies"), std::string::npos);

  ExperimentSpec with_cap = make_spec("x2");
  with_cap.caps = sfs::sim::kCapQuick | sfs::sim::kCapPolicies;
  EXPECT_TRUE(validate_experiment_options(with_cap, options, error))
      << error;
}

TEST(ExperimentValidation, SingleSizeExperimentsRejectSizeLists) {
  ExperimentSpec spec = make_spec("x1");
  spec.caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize;
  std::string error;

  ExperimentOptions one;
  one.sizes = {4096};
  EXPECT_TRUE(validate_experiment_options(spec, one, error)) << error;

  ExperimentOptions many;
  many.sizes = {1024, 4096};
  EXPECT_FALSE(validate_experiment_options(spec, many, error))
      << "a size list must not be silently truncated to one entry";
  EXPECT_NE(error.find("single size"), std::string::npos);
}

TEST(ExperimentValidation, GbenchFlagsGatedByCapability) {
  std::string error;
  ExperimentSpec plain = make_spec("x1");
  plain.caps = sfs::sim::kCapQuick;
  ExperimentOptions opts;
  opts.gbench_flags = {"--benchmark_filter=BM_MoriTree"};
  EXPECT_FALSE(validate_experiment_options(plain, opts, error));
  EXPECT_NE(error.find("--benchmark_filter"), std::string::npos);

  ExperimentSpec gbench = make_spec("x2");
  gbench.caps = sfs::sim::kCapQuick | sfs::sim::kCapGbenchFlags;
  EXPECT_TRUE(validate_experiment_options(gbench, opts, error)) << error;
}

TEST(ExperimentCli, BenchmarkFlagsCollectedAsPassthrough) {
  CliRequest req;
  std::string error;
  ASSERT_TRUE(parse_experiment_cli(
      {"--run", "m1", "--benchmark_filter=BM_MoriTree",
       "--benchmark_repetitions=3"},
      req, error))
      << error;
  EXPECT_EQ(req.options.gbench_flags,
            (std::vector<std::string>{"--benchmark_filter=BM_MoriTree",
                                      "--benchmark_repetitions=3"}));
}

TEST(ExperimentValidation, CheckpointRequiresGridMode) {
  ExperimentSpec spec = make_spec("x1");
  spec.caps = sfs::sim::kCapQuick | sfs::sim::kCapLarge |
              sfs::sim::kCapCheckpoint;
  std::string error;

  ExperimentOptions bare;
  bare.checkpoint_path = "x.csv";
  EXPECT_FALSE(validate_experiment_options(spec, bare, error));
  EXPECT_NE(error.find("--checkpoint"), std::string::npos);

  ExperimentOptions with_large = bare;
  with_large.large = true;
  EXPECT_TRUE(validate_experiment_options(spec, with_large, error))
      << error;

  ExperimentOptions with_quick = bare;
  with_quick.quick = true;
  EXPECT_TRUE(validate_experiment_options(spec, with_quick, error))
      << error;

  // --large --quick together: the quick variant of the grid mode.
  ExperimentOptions both = with_large;
  both.quick = true;
  EXPECT_TRUE(validate_experiment_options(spec, both, error)) << error;
}

// ----------------------------------------------------------------- emitter

TEST(ResultsEmitter, ConsoleLinePrefixedAndFileMirrored) {
  const std::string path = ::testing::TempDir() + "emitter_test.jsonl";
  std::ostringstream console;
  {
    sfs::sim::ResultsEmitter emitter(console);
    emitter.open_jsonl(path);
    emitter.emit_point("bench x", 1024, 2, 686.0, 185.0, -1.0);
    emitter.emit_point("bench x", 2048, 2, 700.5, 10.0, 1.25);
  }
  const std::string expected_first =
      "{\"bench\":\"bench x\",\"n\":1024,\"reps\":2,\"mean\":686.000000,"
      "\"stderr\":185.000000,\"wall_s\":null}";
  EXPECT_EQ(console.str().substr(0, 11), "BENCH_JSON ");
  EXPECT_NE(console.str().find(expected_first), std::string::npos);
  EXPECT_NE(console.str().find("\"wall_s\":1.250000"), std::string::npos);

  std::ifstream in(path);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(line1, expected_first);  // bare JSONL, no prefix
  std::remove(path.c_str());
}

TEST(ResultsEmitter, OpenFailureThrows) {
  sfs::sim::ResultsEmitter emitter;
  EXPECT_THROW(emitter.open_jsonl("/nonexistent-dir-xyz/out.jsonl"),
               std::runtime_error);
}

// ---------------------------------------------------- the global registry

TEST(GlobalRegistry, CatalogContainsTheExperimentSuite) {
  const auto& reg = ExperimentRegistry::instance();
  // e1-e12, a1-a3, m3, m4 are always registered; m1/m2 additionally when
  // the build has google-benchmark.
  const std::vector<std::string> required{
      "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
      "e12", "a1", "a2", "a3", "m3", "m4"};
  for (const auto& name : required) {
    ASSERT_NE(reg.find(name), nullptr) << "missing experiment " << name;
  }
  EXPECT_GE(reg.size(), required.size());
  // m1 and m2 travel together.
  EXPECT_EQ(reg.find("m1") != nullptr, reg.find("m2") != nullptr);

  for (const auto* spec : reg.all()) {
    EXPECT_TRUE(static_cast<bool>(spec->run)) << spec->name;
    EXPECT_FALSE(spec->title.empty()) << spec->name;
    EXPECT_FALSE(spec->claim.empty()) << spec->name;
    EXPECT_TRUE(spec->caps & sfs::sim::kCapQuick) << spec->name;
  }
}

TEST(GlobalRegistry, LegacySeedsStayPinned) {
  const auto& reg = ExperimentRegistry::instance();
  // Bit-compatibility contract with pre-registry bench_e1/e2 grids and
  // their on-disk checkpoints (the checkpoint meta row records the seed).
  ASSERT_NE(reg.find("e1"), nullptr);
  EXPECT_EQ(reg.find("e1")->resolved_default_seed(), 0x1A26E1u);
  ASSERT_NE(reg.find("e2"), nullptr);
  EXPECT_EQ(reg.find("e2")->resolved_default_seed(), 0x1A26E2u);
}

}  // namespace
