// Tests for the search-policy registry (search/policy.hpp): registration
// rules, name resolution, and the bit-compatibility contract that the
// registry order reproduces the legacy portfolio lists.
#include "search/policy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"

namespace {

using sfs::search::KnowledgeModel;
using sfs::search::PolicyRegistry;
using sfs::search::PolicySpec;
using sfs::search::resolve_policies;

PolicySpec minimal_weak(std::string name) {
  PolicySpec spec;
  spec.name = std::move(name);
  spec.description = "test policy";
  spec.model = KnowledgeModel::kWeak;
  spec.make_weak = [] {
    return std::unique_ptr<sfs::search::WeakSearcher>(
        new sfs::search::BfsWeak);
  };
  return spec;
}

// ------------------------------------------------ registration rules

TEST(PolicyRegistry, RejectsEmptyName) {
  PolicyRegistry reg;
  EXPECT_THROW(reg.add(minimal_weak("")), std::invalid_argument);
}

TEST(PolicyRegistry, RejectsDuplicateName) {
  PolicyRegistry reg;
  reg.add(minimal_weak("p"));
  EXPECT_THROW(reg.add(minimal_weak("p")), std::invalid_argument);
}

TEST(PolicyRegistry, RejectsModelFactoryMismatch) {
  PolicyRegistry reg;
  // Weak model without a weak factory.
  PolicySpec no_factory;
  no_factory.name = "broken";
  no_factory.model = KnowledgeModel::kWeak;
  EXPECT_THROW(reg.add(no_factory), std::invalid_argument);
  // Weak model with BOTH factories set.
  PolicySpec both = minimal_weak("both");
  both.make_strong = [] {
    return std::unique_ptr<sfs::search::StrongSearcher>(
        new sfs::search::BfsStrong);
  };
  EXPECT_THROW(reg.add(both), std::invalid_argument);
  // Strong model without a strong factory.
  PolicySpec strong_no_factory;
  strong_no_factory.name = "broken-strong";
  strong_no_factory.model = KnowledgeModel::kStrong;
  EXPECT_THROW(reg.add(strong_no_factory), std::invalid_argument);
}

TEST(PolicyRegistry, FindAndOrder) {
  PolicyRegistry reg;
  reg.add(minimal_weak("a"));
  reg.add(minimal_weak("b"));
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("a"), nullptr);
  EXPECT_EQ(reg.find("a")->name, "a");
  EXPECT_EQ(reg.find("zzz"), nullptr);
  const auto all = reg.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name, "a");  // registration order
  EXPECT_EQ(all[1]->name, "b");
}

// --------------------------------------------------- global registry

TEST(GlobalPolicyRegistry, HoldsTheBuiltInPortfolios) {
  const auto& reg = PolicyRegistry::instance();
  EXPECT_EQ(reg.size(), 15u);
  EXPECT_EQ(reg.all(KnowledgeModel::kWeak).size(), 10u);
  EXPECT_EQ(reg.all(KnowledgeModel::kStrong).size(), 5u);
  for (const auto* spec : reg.all()) {
    EXPECT_FALSE(spec->description.empty()) << spec->name;
  }
}

TEST(GlobalPolicyRegistry, WeakOrderMatchesLegacyPortfolio) {
  // Bit-compatibility contract: the registry order IS the legacy
  // weak_portfolio() order (the sweep engine tags per-policy RNG streams
  // by portfolio index, so this order is pinned).
  const std::vector<std::string> legacy{
      "bfs",           "dfs",           "degree-greedy",
      "min-id-greedy", "max-id-greedy", "random-frontier",
      "frontier-walk", "no-backtrack-walk", "random-walk",
      "weak-sim(degree-greedy-strong)"};
  const auto specs =
      PolicyRegistry::instance().all(KnowledgeModel::kWeak);
  ASSERT_EQ(specs.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(specs[i]->name, legacy[i]) << "index " << i;
  }
  // And weak_portfolio() (now registry-backed) agrees.
  EXPECT_EQ(sfs::search::weak_portfolio_names(), legacy);
}

TEST(GlobalPolicyRegistry, StrongOrderMatchesLegacyPortfolio) {
  const std::vector<std::string> legacy{
      "degree-greedy-strong", "bfs-strong", "random-strong",
      "min-id-strong", "max-id-strong"};
  const auto specs =
      PolicyRegistry::instance().all(KnowledgeModel::kStrong);
  ASSERT_EQ(specs.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(specs[i]->name, legacy[i]) << "index " << i;
  }
  const auto portfolio = sfs::search::strong_portfolio();
  ASSERT_EQ(portfolio.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(portfolio[i]->name(), legacy[i]) << "index " << i;
  }
}

TEST(GlobalPolicyRegistry, FactoriesProducePoliciesNamedLikeTheirSpec) {
  for (const auto* spec : PolicyRegistry::instance().all()) {
    if (spec->model == KnowledgeModel::kWeak) {
      EXPECT_EQ(spec->make_weak()->name(), spec->name);
    } else {
      EXPECT_EQ(spec->make_strong()->name(), spec->name);
    }
  }
}

// ------------------------------------------------------- resolution

TEST(ResolvePolicies, EmptyFilterIsFullModelPortfolio) {
  const auto weak = resolve_policies(KnowledgeModel::kWeak, {});
  EXPECT_EQ(weak.size(), 10u);
  const auto strong = resolve_policies(KnowledgeModel::kStrong, {});
  EXPECT_EQ(strong.size(), 5u);
}

TEST(ResolvePolicies, NamedSubsetKeepsGivenOrder) {
  const std::vector<std::string> names{"random-walk", "bfs"};
  const auto specs = resolve_policies(KnowledgeModel::kWeak, names);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0]->name, "random-walk");
  EXPECT_EQ(specs[1]->name, "bfs");
}

TEST(ResolvePolicies, CheckedErrors) {
  const std::vector<std::string> unknown{"not-a-policy"};
  EXPECT_THROW((void)resolve_policies(KnowledgeModel::kWeak, unknown),
               std::invalid_argument);
  const std::vector<std::string> wrong_model{"bfs-strong"};
  EXPECT_THROW((void)resolve_policies(KnowledgeModel::kWeak, wrong_model),
               std::invalid_argument);
  const std::vector<std::string> duplicate{"bfs", "bfs"};
  EXPECT_THROW((void)resolve_policies(KnowledgeModel::kWeak, duplicate),
               std::invalid_argument);
}

TEST(ResolvePolicies, MakeSearchersEnforcesModel) {
  const auto strong = resolve_policies(KnowledgeModel::kStrong, {});
  EXPECT_THROW((void)sfs::search::make_weak_searchers(strong),
               std::invalid_argument);
  const auto weak = resolve_policies(KnowledgeModel::kWeak, {});
  EXPECT_THROW((void)sfs::search::make_strong_searchers(weak),
               std::invalid_argument);
  EXPECT_EQ(sfs::search::make_weak_searchers(weak).size(), weak.size());
}

}  // namespace
