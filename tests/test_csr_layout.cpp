// Tests for the degree-sorted CSR layout (graph/csr_layout.hpp and the
// GraphBuilder CsrLayout overload): permutation validity, ordering
// property, and exact round-trip back to the original graph.
#include "graph/csr_layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "rng/random.hpp"

namespace {

using sfs::graph::CsrLayout;
using sfs::graph::degree_sorted_relabel;
using sfs::graph::DegreeSortedRelabeling;
using sfs::graph::Edge;
using sfs::graph::EdgeId;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::relabel_vertices;
using sfs::graph::VertexId;

Graph mori(std::size_t n, std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
}

// Star around 2 plus a pendant chain: distinctive degree sequence.
Graph star_chain() {
  GraphBuilder b(6);
  b.add_edge(2, 0);
  b.add_edge(2, 1);
  b.add_edge(2, 3);
  b.add_edge(2, 4);
  b.add_edge(4, 5);
  return b.build();
}

TEST(CsrLayout, PermutationIsValidAndInverse) {
  const Graph g = mori(200, 31);
  const DegreeSortedRelabeling r = degree_sorted_relabel(g);
  ASSERT_EQ(r.to_new.size(), g.num_vertices());
  ASSERT_EQ(r.to_old.size(), g.num_vertices());
  std::set<VertexId> image(r.to_new.begin(), r.to_new.end());
  EXPECT_EQ(image.size(), g.num_vertices());  // a bijection
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.to_old[r.to_new[v]], v);
    EXPECT_EQ(r.to_new[r.to_old[v]], v);
  }
}

TEST(CsrLayout, NewIdsAreDegreeSorted) {
  const Graph g = mori(300, 32);
  const DegreeSortedRelabeling r = degree_sorted_relabel(g);
  // Non-increasing degree along the new id axis, ties broken by old id
  // ascending (full determinism, not just degree order).
  for (VertexId v = 0; v + 1 < r.graph.num_vertices(); ++v) {
    const auto d0 = r.graph.degree(v);
    const auto d1 = r.graph.degree(v + 1);
    EXPECT_GE(d0, d1) << "new id " << v;
    if (d0 == d1) EXPECT_LT(r.to_old[v], r.to_old[v + 1]);
  }
  // Degrees travel with the vertices.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.graph.degree(r.to_new[v]), g.degree(v));
  }
}

TEST(CsrLayout, SmallGraphExplicitOrder) {
  const DegreeSortedRelabeling r = degree_sorted_relabel(star_chain());
  // Degrees: v2 = 4, v4 = 2, the rest 1 (ties by old id: 0, 1, 3, 5).
  EXPECT_EQ(r.to_old, (std::vector<VertexId>{2, 4, 0, 1, 3, 5}));
}

TEST(CsrLayout, RoundTripReproducesOriginalExactly) {
  // Relabeling through to_new and back through to_old must reproduce the
  // original CSR bit for bit: same endpoints per edge id, same spans.
  const Graph g = mori(150, 33);
  const DegreeSortedRelabeling r = degree_sorted_relabel(g);
  const Graph back = relabel_vertices(r.graph, r.to_old);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
    const Edge& a = g.edge(static_cast<EdgeId>(ei));
    const Edge& b = back.edge(static_cast<EdgeId>(ei));
    EXPECT_EQ(a.tail, b.tail);
    EXPECT_EQ(a.head, b.head);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto ia = g.incident(v);
    const auto ib = back.incident(v);
    ASSERT_EQ(ia.size(), ib.size());
    EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()));
    const auto aa = g.adjacent(v);
    const auto ab = back.adjacent(v);
    EXPECT_TRUE(std::equal(aa.begin(), aa.end(), ab.begin()));
  }
}

TEST(CsrLayout, BuilderOverloadMatchesFreeFunction) {
  const Graph g = mori(120, 34);
  const DegreeSortedRelabeling r = degree_sorted_relabel(g);

  GraphBuilder b(g.num_vertices());
  for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
    const Edge& e = g.edge(static_cast<EdgeId>(ei));
    b.add_edge(e.tail, e.head);
  }
  Graph direct;
  std::vector<VertexId> to_new;
  b.build_into(direct, CsrLayout::kDegreeSorted, &to_new);
  EXPECT_EQ(to_new, r.to_new);
  ASSERT_EQ(direct.num_edges(), r.graph.num_edges());
  for (std::size_t ei = 0; ei < direct.num_edges(); ++ei) {
    const Edge& a = direct.edge(static_cast<EdgeId>(ei));
    const Edge& c = r.graph.edge(static_cast<EdgeId>(ei));
    EXPECT_EQ(a.tail, c.tail);
    EXPECT_EQ(a.head, c.head);
  }
}

TEST(CsrLayout, InsertionOrderLayoutIsIdentity) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Graph g;
  std::vector<VertexId> to_new;
  b.build_into(g, CsrLayout::kInsertionOrder, &to_new);
  EXPECT_EQ(to_new, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(g.edge(0).tail, 0u);
  EXPECT_EQ(g.edge(1).head, 2u);
}

TEST(CsrLayout, RelabelValidatesPermutationSize) {
  const Graph g = star_chain();
  const std::vector<VertexId> wrong(3, 0);
  EXPECT_THROW((void)relabel_vertices(g, wrong), std::invalid_argument);
}

}  // namespace
