// Tests for the departure-tolerant runner layer: failed probes absorbed
// by the RetryBudget, policy restarts, abandonment, and the empty-mask ==
// static bit-identity invariant that makes churn-rate-0 exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "search/local_view.hpp"
#include "search/policy.hpp"
#include "search/runner.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::search::LivenessView;
using sfs::search::PolicyRegistry;
using sfs::search::RetryBudget;
using sfs::search::RunBudget;
using sfs::search::SearchResult;
using sfs::search::SearchWorkspace;

struct Masks {
  std::vector<std::uint8_t> v;
  std::vector<std::uint8_t> e;
  explicit Masks(const Graph& g)
      : v(g.num_vertices(), 1u), e(g.num_edges(), 1u) {}
  [[nodiscard]] LivenessView view() const { return {v, e}; }
};

void expect_identical(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.raw_requests, b.raw_requests);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.path_length, b.path_length);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.abandoned, b.abandoned);
}

TEST(TolerantRunner, EmptyMaskIsBitIdenticalToStaticRun) {
  // The churn-rate-0 invariant at the runner level: with no mask the
  // failure branch is unreachable and consumes no randomness, so the
  // tolerant loop must reproduce the static loop bit for bit — including
  // for randomized policies, the hardest case.
  sfs::rng::Rng gen_rng(77);
  const Graph g =
      sfs::gen::merged_mori_graph(250, 2, sfs::gen::MoriParams{0.5}, gen_rng);
  RunBudget budget;
  budget.max_raw_requests = 15000;
  SearchWorkspace ws;
  const auto& registry = PolicyRegistry::instance();

  for (const char* name : {"random-walk", "bfs", "degree-greedy"}) {
    auto s1 = registry.find(name)->make_weak();
    auto s2 = registry.find(name)->make_weak();
    sfs::rng::Rng r1(0xBEEF), r2(0xBEEF);
    const SearchResult fixed =
        run_weak(g, 3, 200, *s1, r1, budget, ws);
    const SearchResult tolerant = run_weak_tolerant(
        g, LivenessView{}, 3, 200, *s2, r2, budget, RetryBudget{}, ws);
    expect_identical(fixed, tolerant);
    EXPECT_EQ(tolerant.failed_requests, 0u);
  }
  for (const char* name : {"random-strong", "degree-greedy-strong"}) {
    auto s1 = registry.find(name)->make_strong();
    auto s2 = registry.find(name)->make_strong();
    sfs::rng::Rng r1(0xF00D), r2(0xF00D);
    const SearchResult fixed =
        run_strong(g, 3, 200, *s1, r1, budget, ws);
    const SearchResult tolerant = run_strong_tolerant(
        g, LivenessView{}, 3, 200, *s2, r2, budget, RetryBudget{}, ws);
    expect_identical(fixed, tolerant);
  }
}

TEST(TolerantRunner, WeakSearchRestartsPastDeadLinksAndSucceeds) {
  // Star at 0 with five dead spokes probed (in slot order, by bfs) before
  // the one live edge to the target. With a streak budget of 2 the run
  // must restart twice — and still succeed, because failed probes mark
  // their edges explored, so each restart resumes past them.
  GraphBuilder b(7);
  for (VertexId v = 1; v <= 5; ++v) b.add_edge(0, v);  // edges 0..4: dead
  b.add_edge(0, 6);                                    // edge 5: live
  const Graph g = b.build();
  Masks m(g);
  for (std::size_t e = 0; e < 5; ++e) m.e[e] = 0;

  auto searcher = PolicyRegistry::instance().find("bfs")->make_weak();
  sfs::rng::Rng rng(1);
  SearchWorkspace ws;
  RetryBudget retry;
  retry.max_consecutive_failures = 2;
  retry.max_restarts = 5;
  const SearchResult r = run_weak_tolerant(g, m.view(), 0, 6, *searcher, rng,
                                           RunBudget{}, retry, ws);
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.abandoned);
  EXPECT_EQ(r.failed_requests, 5u);  // every dead spoke probed exactly once
  EXPECT_EQ(r.restarts, 1u);        // streak 3 hit once (3rd + 4th reset it)
  EXPECT_EQ(r.requests, 1u);        // only the live probe was charged
  EXPECT_EQ(r.path_length, 1u);
}

TEST(TolerantRunner, AbandonsWhenRetryBudgetRunsDry) {
  GraphBuilder b(7);
  for (VertexId v = 1; v <= 5; ++v) b.add_edge(0, v);
  b.add_edge(0, 6);
  const Graph g = b.build();
  Masks m(g);
  for (std::size_t e = 0; e < 5; ++e) m.e[e] = 0;

  auto searcher = PolicyRegistry::instance().find("bfs")->make_weak();
  sfs::rng::Rng rng(1);
  SearchWorkspace ws;
  RetryBudget retry;
  retry.max_consecutive_failures = 2;
  retry.max_restarts = 0;  // no second chances
  const SearchResult r = run_weak_tolerant(g, m.view(), 0, 6, *searcher, rng,
                                           RunBudget{}, retry, ws);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.abandoned);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_EQ(r.failed_requests, 3u);  // stopped at the third straight failure
  EXPECT_EQ(r.requests, 0u);
}

TEST(TolerantRunner, StrongSearchSpendsProbesDiscoveringDepartures) {
  // Stale routing tables: opening 0 lists departed neighbors 1 and 2, and
  // the searcher only learns they are gone by spending a (failed, free)
  // probe on each before reaching the target through 3.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  const Graph g = b.build();
  Masks m(g);
  m.v[1] = 0;
  m.v[2] = 0;

  auto searcher = PolicyRegistry::instance().find("bfs-strong")->make_strong();
  sfs::rng::Rng rng(2);
  SearchWorkspace ws;
  const SearchResult r = run_strong_tolerant(g, m.view(), 0, 4, *searcher, rng,
                                             RunBudget{}, RetryBudget{}, ws);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.failed_requests, 2u);
  EXPECT_EQ(r.restarts, 0u);  // default streak budget absorbs both
  EXPECT_FALSE(r.abandoned);
  EXPECT_EQ(r.path_length, 2u);  // 0 -> 3 -> 4
}

TEST(TolerantRunner, StrongSearchAbandonsUnreachableTarget) {
  // Every neighbor of the start departed; the target is alive but
  // unreachable, so the retry budget is the only thing that stops us.
  GraphBuilder b(6);
  for (VertexId v = 1; v <= 4; ++v) b.add_edge(0, v);
  const Graph g = b.build();  // vertex 5 isolated and alive
  Masks m(g);
  for (VertexId v = 1; v <= 4; ++v) m.v[v] = 0;

  auto searcher = PolicyRegistry::instance().find("bfs-strong")->make_strong();
  sfs::rng::Rng rng(3);
  SearchWorkspace ws;
  RetryBudget retry;
  retry.max_consecutive_failures = 2;
  retry.max_restarts = 0;
  const SearchResult r = run_strong_tolerant(g, m.view(), 0, 5, *searcher, rng,
                                             RunBudget{}, retry, ws);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.abandoned);
  EXPECT_EQ(r.failed_requests, 3u);
  EXPECT_EQ(r.requests, 1u);  // only the open of the live start was charged
}

}  // namespace
