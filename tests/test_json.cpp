// sim/json: escape/unescape round-trips, number formatting, and the
// object writer — the serialization layer under every BENCH_JSON line.
#include "sim/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace {

using sfs::sim::json_escape;
using sfs::sim::json_num;
using sfs::sim::json_unescape;
using sfs::sim::JsonObjectWriter;

std::string roundtrip(const std::string& s) {
  std::string out;
  EXPECT_TRUE(json_unescape(json_escape(s), out)) << "input: " << s;
  return out;
}

TEST(JsonEscape, PlainStringsPassThrough) {
  EXPECT_EQ(json_escape("bench e1"), "bench e1");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

TEST(JsonEscape, ControlCharactersBecomeUnicodeEscapes) {
  EXPECT_EQ(json_escape(std::string("a\nb")), "a\\u000ab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, Utf8PassesThrough) {
  const std::string moori = "M\xc3\xb3ri";  // "Móri"
  EXPECT_EQ(json_escape(moori), moori);
}

TEST(JsonRoundTrip, EveryEscapeClass) {
  EXPECT_EQ(roundtrip("plain"), "plain");
  EXPECT_EQ(roundtrip("quote \" backslash \\ slash /"),
            "quote \" backslash \\ slash /");
  EXPECT_EQ(roundtrip(std::string("tab\tnewline\ncr\r")),
            std::string("tab\tnewline\ncr\r"));
  EXPECT_EQ(roundtrip(std::string(1, '\x00') + "x"),
            std::string(1, '\x00') + "x");
  EXPECT_EQ(roundtrip("M\xc3\xb3ri p=0.5"), "M\xc3\xb3ri p=0.5");
}

TEST(JsonUnescape, NamedEscapes) {
  std::string out;
  ASSERT_TRUE(json_unescape("\\b\\f\\n\\r\\t\\/\\\\\\\"", out));
  EXPECT_EQ(out, "\b\f\n\r\t/\\\"");
}

TEST(JsonUnescape, UnicodeEscapeDecodesToUtf8) {
  std::string out;
  ASSERT_TRUE(json_unescape("\\u00e9", out));  // é
  EXPECT_EQ(out, "\xc3\xa9");
  ASSERT_TRUE(json_unescape("\\u20ac", out));  // €
  EXPECT_EQ(out, "\xe2\x82\xac");
}

TEST(JsonUnescape, SurrogatePairDecodes) {
  std::string out;
  ASSERT_TRUE(json_unescape("\\ud83d\\ude00", out));  // 😀 U+1F600
  EXPECT_EQ(out, "\xf0\x9f\x98\x80");
}

TEST(JsonUnescape, MalformedInputsRejected) {
  std::string out;
  EXPECT_FALSE(json_unescape("trailing\\", out));
  EXPECT_FALSE(json_unescape("\\q", out));
  EXPECT_FALSE(json_unescape("\\u12", out));      // truncated hex
  EXPECT_FALSE(json_unescape("\\u12zz", out));    // bad hex digit
  EXPECT_FALSE(json_unescape("\\ud800x", out));   // unpaired high surrogate
  EXPECT_FALSE(json_unescape("\\udc00", out));    // lone low surrogate
  EXPECT_FALSE(json_unescape("\\ud83d\\u0041", out));  // bad pair
}

TEST(JsonNum, FixedSixDecimals) {
  EXPECT_EQ(json_num(1.5), "1.500000");
  EXPECT_EQ(json_num(0.0), "0.000000");
  EXPECT_EQ(json_num(-2.25), "-2.250000");
}

TEST(JsonNum, NonFiniteSerializesAsNull) {
  EXPECT_EQ(json_num(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_num(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_num(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonObjectWriter, BuildsFieldsInInsertionOrder) {
  JsonObjectWriter w;
  w.str_field("bench", "e1")
      .int_field("n", 4096)
      .num_field("mean", 686.0)
      .bool_field("quick", true)
      .null_field("wall_s")
      .raw_field("extra", "[1,2]");
  EXPECT_EQ(w.str(),
            "{\"bench\":\"e1\",\"n\":4096,\"mean\":686.000000,"
            "\"quick\":true,\"wall_s\":null,\"extra\":[1,2]}");
}

TEST(JsonObjectWriter, EmptyObject) {
  EXPECT_EQ(JsonObjectWriter{}.str(), "{}");
}

TEST(JsonObjectWriter, KeysAndValuesAreEscaped) {
  JsonObjectWriter w;
  w.str_field("a\"b", "c\\d");
  EXPECT_EQ(w.str(), "{\"a\\\"b\":\"c\\\\d\"}");
}

}  // namespace
