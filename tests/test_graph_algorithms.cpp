// Tests for BFS, connectivity, distance estimation and clustering.
#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace {

using sfs::graph::bfs;
using sfs::graph::connected_components;
using sfs::graph::distance;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::induced_subgraph;
using sfs::graph::is_connected;
using sfs::graph::is_tree;
using sfs::graph::kNoVertex;
using sfs::graph::kUnreachable;
using sfs::graph::largest_component;
using sfs::graph::pseudo_diameter;
using sfs::graph::sample_clustering;
using sfs::graph::sample_distances;
using sfs::graph::shortest_path;
using sfs::graph::VertexId;

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v)
    b.add_edge(v, static_cast<VertexId>((v + 1) % n));
  return b.build();
}

Graph star_graph(std::size_t leaves) {
  GraphBuilder b(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) b.add_edge(v, 0);
  return b.build();
}

Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

TEST(Bfs, PathDistances) {
  const Graph g = path_graph(5);
  const auto r = bfs(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(r.distance[v], v);
  EXPECT_EQ(r.max_distance, 4u);
  EXPECT_EQ(r.farthest, 4u);
}

TEST(Bfs, ParentsFormTree) {
  const Graph g = cycle_graph(6);
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.parent[0], kNoVertex);
  for (VertexId v = 1; v < 6; ++v) {
    ASSERT_NE(r.parent[v], kNoVertex);
    EXPECT_EQ(r.distance[v], r.distance[r.parent[v]] + 1);
  }
}

TEST(Bfs, UnreachableMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.distance[1], 1u);
  EXPECT_EQ(r.distance[2], kUnreachable);
  EXPECT_EQ(r.distance[3], kUnreachable);
}

TEST(Bfs, CycleDistancesWrap) {
  const Graph g = cycle_graph(8);
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.distance[4], 4u);
  EXPECT_EQ(r.distance[5], 3u);
  EXPECT_EQ(r.distance[7], 1u);
}

TEST(Distance, MatchesBfs) {
  const Graph g = cycle_graph(10);
  EXPECT_EQ(distance(g, 0, 5), 5u);
  EXPECT_EQ(distance(g, 2, 2), 0u);
}

TEST(ShortestPath, ValidPath) {
  const Graph g = cycle_graph(7);
  const auto path = shortest_path(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(ShortestPath, EmptyWhenUnreachable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(Components, CountsAndLabels) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[0]);
  const auto sizes = c.sizes();
  EXPECT_EQ(sizes[c.label[0]], 3u);
  EXPECT_EQ(sizes[c.label[3]], 2u);
  EXPECT_EQ(sizes[c.label[5]], 1u);
  EXPECT_EQ(c.largest(), c.label[0]);
}

TEST(Components, SelfLoopsDoNotDisconnect) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(is_connected(g));
}

TEST(IsConnected, SingletonAndEmpty) {
  EXPECT_TRUE(is_connected(GraphBuilder(1).build()));
  EXPECT_TRUE(is_connected(GraphBuilder(0).build()));
  EXPECT_FALSE(is_connected(GraphBuilder(2).build()));
}

TEST(InducedSubgraph, KeepsInternalEdges) {
  const Graph g = complete_graph(5);
  const auto sub = induced_subgraph(g, {0, 2, 4});
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // triangle among kept vertices
  EXPECT_EQ(sub.to_old.size(), 3u);
  EXPECT_EQ(sub.to_new[0], 0u);
  EXPECT_EQ(sub.to_new[2], 1u);
  EXPECT_EQ(sub.to_new[4], 2u);
  EXPECT_EQ(sub.to_new[1], kNoVertex);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const Graph g = complete_graph(3);
  EXPECT_THROW((void)induced_subgraph(g, {0, 0}), std::invalid_argument);
}

TEST(LargestComponent, PicksBiggest) {
  GraphBuilder b(7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_TRUE(is_connected(sub.graph));
}

TEST(IsTree, PositiveAndNegative) {
  EXPECT_TRUE(is_tree(path_graph(5)));
  EXPECT_TRUE(is_tree(star_graph(6)));
  EXPECT_FALSE(is_tree(cycle_graph(4)));
  GraphBuilder b(2);
  b.add_edge(0, 0);  // loop, n-1 edges but not a tree
  EXPECT_FALSE(is_tree(b.build()));
  EXPECT_FALSE(is_tree(GraphBuilder(2).build()));  // disconnected
}

TEST(PseudoDiameter, ExactOnPath) {
  EXPECT_EQ(pseudo_diameter(path_graph(9), 4), 8u);
}

TEST(PseudoDiameter, StarIsTwo) {
  EXPECT_EQ(pseudo_diameter(star_graph(10), 3), 2u);
}

TEST(SampleDistances, CompleteGraphAllOnes) {
  const Graph g = complete_graph(6);
  sfs::rng::Rng rng(1);
  const auto st = sample_distances(g, 10, rng);
  EXPECT_DOUBLE_EQ(st.mean_distance, 1.0);
  EXPECT_DOUBLE_EQ(st.mean_eccentricity, 1.0);
  EXPECT_EQ(st.max_observed, 1u);
}

TEST(SampleDistances, PathMeanReasonable) {
  const Graph g = path_graph(11);
  sfs::rng::Rng rng(2);
  const auto st = sample_distances(g, 50, rng);
  EXPECT_GT(st.mean_distance, 2.0);
  EXPECT_LT(st.mean_distance, 7.0);
  EXPECT_GE(st.max_observed, 5u);
  EXPECT_LE(st.max_observed, 10u);
}

TEST(SampleClustering, TriangleIsOne) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  sfs::rng::Rng rng(3);
  EXPECT_DOUBLE_EQ(sample_clustering(b.build(), 200, rng), 1.0);
}

TEST(SampleClustering, StarIsZero) {
  sfs::rng::Rng rng(4);
  EXPECT_DOUBLE_EQ(sample_clustering(star_graph(8), 200, rng), 0.0);
}

TEST(SampleClustering, CompleteGraphIsOne) {
  sfs::rng::Rng rng(5);
  EXPECT_DOUBLE_EQ(sample_clustering(complete_graph(6), 200, rng), 1.0);
}

TEST(SampleClustering, NoWedgesGivesZero) {
  sfs::rng::Rng rng(6);
  EXPECT_DOUBLE_EQ(sample_clustering(path_graph(2), 100, rng), 0.0);
}

}  // namespace
