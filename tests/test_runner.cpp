// Tests for the search runner: budgets, give-up, result consistency.
#include "search/runner.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "search/weak_algorithms.hpp"
#include "search/strong_algorithms.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::search::run_strong;
using sfs::search::run_weak;
using sfs::search::RunBudget;
using sfs::search::SearchResult;

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

TEST(Runner, WeakBudgetStopsSearch) {
  const Graph g = path_graph(50);
  sfs::search::BfsWeak bfs;
  Rng rng(1);
  const SearchResult r =
      run_weak(g, 0, 49, bfs, rng, RunBudget{.max_requests = 10});
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_FALSE(r.gave_up);
  EXPECT_EQ(r.requests, 10u);
  EXPECT_EQ(r.path_length, 0u);
}

TEST(Runner, RawBudgetStopsRandomWalk) {
  const Graph g = path_graph(100);
  sfs::search::RandomWalkWeak walk;
  Rng rng(2);
  const SearchResult r =
      run_weak(g, 0, 99, walk, rng, RunBudget{.max_raw_requests = 50});
  EXPECT_TRUE(r.budget_exhausted || r.found);
  EXPECT_LE(r.raw_requests, 50u);
}

TEST(Runner, StrongBudgetStopsSearch) {
  const Graph g = path_graph(50);
  sfs::search::BfsStrong bfs;
  Rng rng(3);
  const SearchResult r =
      run_strong(g, 0, 49, bfs, rng, RunBudget{.max_requests = 5});
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.requests, 5u);
}

TEST(Runner, GaveUpOnUnreachableTarget) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  // 3, 4 disconnected
  b.add_edge(3, 4);
  sfs::search::BfsWeak bfs;
  Rng rng(4);
  const SearchResult r = run_weak(b.build(), 0, 4, bfs, rng);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.gave_up);
  EXPECT_FALSE(r.budget_exhausted);
  EXPECT_EQ(r.requests, 2u);
}

TEST(Runner, PathLengthAtMostRequests) {
  const Graph g = path_graph(20);
  sfs::search::DfsWeak dfs;
  Rng rng(5);
  const SearchResult r = run_weak(g, 0, 19, dfs, rng);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.path_length, r.requests);
}

TEST(Runner, ZeroBudgetReturnsImmediately) {
  const Graph g = path_graph(5);
  sfs::search::BfsWeak bfs;
  Rng rng(6);
  const SearchResult r =
      run_weak(g, 0, 4, bfs, rng, RunBudget{.max_requests = 0});
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.requests, 0u);
}

TEST(Runner, StartEqualsTargetNeedsNoRequests) {
  const Graph g = path_graph(5);
  sfs::search::RandomWalkWeak walk;
  Rng rng(7);
  const SearchResult r = run_weak(g, 3, 3, walk, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.raw_requests, 0u);
}

TEST(Runner, RawAtLeastCharged) {
  const Graph g = path_graph(30);
  sfs::search::RandomWalkWeak walk;
  Rng rng(8);
  const SearchResult r =
      run_weak(g, 0, 29, walk, rng, RunBudget{.max_raw_requests = 100000});
  EXPECT_GE(r.raw_requests, r.requests);
}

}  // namespace
