// Tests for the weak-model search policies.
#include "search/weak_algorithms.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "search/runner.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::search::run_weak;
using sfs::search::RunBudget;
using sfs::search::SearchResult;
using sfs::search::weak_portfolio;
using sfs::search::weak_portfolio_names;

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph star_with_tail() {
  // Star centered at 0 with leaves 1..4, plus a tail 4 - 5 - 6.
  GraphBuilder b(7);
  for (VertexId v = 1; v <= 4; ++v) b.add_edge(v, 0);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  return b.build();
}

// Every portfolio policy must find the target on a connected graph.
class WeakPortfolio : public ::testing::TestWithParam<std::size_t> {
 protected:
  std::unique_ptr<sfs::search::WeakSearcher> make() {
    auto portfolio = weak_portfolio();
    return std::move(portfolio.at(GetParam()));
  }
};

TEST_P(WeakPortfolio, FindsTargetOnPath) {
  auto searcher = make();
  Rng rng(1);
  const Graph g = path_graph(12);
  const SearchResult r = run_weak(g, 0, 11, *searcher, rng);
  EXPECT_TRUE(r.found) << searcher->name();
  EXPECT_GE(r.requests, 11u);  // must traverse the whole path
  EXPECT_EQ(r.path_length, 11u);
}

TEST_P(WeakPortfolio, FindsTargetOnStarWithTail) {
  auto searcher = make();
  Rng rng(2);
  const Graph g = star_with_tail();
  const SearchResult r = run_weak(g, 1, 6, *searcher, rng);
  EXPECT_TRUE(r.found) << searcher->name();
  EXPECT_GT(r.requests, 0u);
}

TEST_P(WeakPortfolio, FindsNewestVertexInMoriTree) {
  auto searcher = make();
  Rng graph_rng(3);
  const Graph g =
      sfs::gen::mori_tree(300, sfs::gen::MoriParams{0.5}, graph_rng);
  Rng rng(4);
  const SearchResult r = run_weak(g, 0, 299, *searcher, rng,
                                  RunBudget{.max_raw_requests = 2000000});
  EXPECT_TRUE(r.found) << searcher->name();
  // Charged requests can never exceed the edge count.
  EXPECT_LE(r.requests, g.num_edges());
}

TEST_P(WeakPortfolio, ImmediateSuccessWhenStartIsTarget) {
  auto searcher = make();
  Rng rng(5);
  const Graph g = path_graph(5);
  const SearchResult r = run_weak(g, 2, 2, *searcher, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.path_length, 0u);
}

TEST_P(WeakPortfolio, DeterministicForSeed) {
  const Graph g = star_with_tail();
  auto s1 = make();
  auto s2 = make();
  Rng r1(6);
  Rng r2(6);
  const SearchResult a = run_weak(g, 1, 6, *s1, r1);
  const SearchResult b = run_weak(g, 1, 6, *s2, r2);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.raw_requests, b.raw_requests);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, WeakPortfolio,
                         ::testing::Range<std::size_t>(0, 10));

TEST(WeakPortfolioMeta, NamesAreUniqueAndNonEmpty) {
  const auto names = weak_portfolio_names();
  EXPECT_EQ(names.size(), 10u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

TEST(BfsWeak, ChargesEveryEdgeAtMostOnce) {
  sfs::search::BfsWeak bfs;
  Rng rng(7);
  const Graph g = star_with_tail();
  const SearchResult r = run_weak(g, 0, 6, bfs, rng);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.requests, g.num_edges());
  EXPECT_EQ(r.requests, r.raw_requests);  // BFS never repeats a request
}

TEST(BfsWeak, ExploresInBreadthOrder) {
  // On the star, BFS from the center reveals all leaves before walking the
  // tail: finding leaf 3 takes at most deg(center) requests.
  sfs::search::BfsWeak bfs;
  Rng rng(8);
  const Graph g = star_with_tail();
  const SearchResult r = run_weak(g, 0, 3, bfs, rng);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.requests, 4u);
}

TEST(DfsWeak, FollowsOneBranchDeep) {
  sfs::search::DfsWeak dfs;
  Rng rng(9);
  const Graph g = path_graph(20);
  const SearchResult r = run_weak(g, 0, 19, dfs, rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.requests, 19u);
}

TEST(DegreeGreedyWeak, PrefersHighDegreeVertex) {
  // Two-hub graph: hub A (0, degree 6) and hub B (7, degree 3); start
  // bridges both. Degree-greedy must exhaust hub A before hub B.
  GraphBuilder b(11);
  for (VertexId v = 1; v <= 5; ++v) b.add_edge(v, 0);   // hub A leaves
  b.add_edge(6, 0);                                     // start -> hub A
  b.add_edge(6, 7);                                     // start -> hub B
  b.add_edge(8, 7);
  b.add_edge(9, 7);                                     // hub B leaves
  b.add_edge(10, 9);                                    // target behind B
  const Graph g = b.build();
  auto greedy = sfs::search::make_degree_greedy_weak();
  Rng rng(10);
  const SearchResult r = run_weak(g, 6, 10, *greedy, rng);
  EXPECT_TRUE(r.found);
  // It must have explored hub A's 6 edges plus hub B's 3 plus the tail:
  // cost reflects the detour through the high-degree hub.
  EXPECT_GE(r.requests, 9u);
}

TEST(MinIdGreedy, ClimbsTowardOldVertices) {
  Rng graph_rng(11);
  const Graph g =
      sfs::gen::mori_tree(500, sfs::gen::MoriParams{0.5}, graph_rng);
  auto minid = sfs::search::make_min_id_greedy_weak();
  Rng rng(12);
  // Searching for the ROOT from the newest vertex should be very fast:
  // min-id greedy follows the age gradient.
  const SearchResult r = run_weak(g, 499, 0, *minid, rng);
  EXPECT_TRUE(r.found);
  EXPECT_LT(r.requests, 100u);
}

TEST(RandomWalkWeak, EventuallyFindsOnSmallGraph) {
  sfs::search::RandomWalkWeak walk;
  Rng rng(13);
  const Graph g = path_graph(6);
  const SearchResult r =
      run_weak(g, 0, 5, walk, rng, RunBudget{.max_raw_requests = 100000});
  EXPECT_TRUE(r.found);
  EXPECT_GE(r.raw_requests, r.requests);
}

TEST(NoBacktrackWalk, NeverImmediatelyReturnsOnDegreeTwo) {
  // On a cycle, a no-backtrack walk is a deterministic direction sweep, so
  // it reaches the antipode in exactly n/2 or wraps in n-1 steps.
  GraphBuilder b(10);
  for (VertexId v = 0; v < 10; ++v)
    b.add_edge(v, static_cast<VertexId>((v + 1) % 10));
  sfs::search::NoBacktrackWalkWeak walk;
  Rng rng(14);
  const SearchResult r = run_weak(b.build(), 0, 5, walk, rng);
  EXPECT_TRUE(r.found);
  EXPECT_LE(r.raw_requests, 9u);
}

TEST(RandomFrontierWeak, CoversDisconnectedComponentGracefully) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  sfs::search::RandomFrontierWeak frontier;
  Rng rng(15);
  const SearchResult r = run_weak(b.build(), 0, 3, frontier, rng);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.gave_up);
  EXPECT_EQ(r.requests, 1u);  // only edge 0-1 reachable
}

}  // namespace
