// Tests for bootstrap confidence intervals.
#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/summary.hpp"

namespace {

using sfs::rng::Rng;
using sfs::stats::bootstrap_ci;
using sfs::stats::bootstrap_mean_ci;

TEST(Bootstrap, MeanCiBracketsSampleMean) {
  Rng data_rng(1);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(data_rng.uniform(0.0, 10.0));
  Rng rng(2);
  const auto ci = bootstrap_mean_ci(data, 2000, 0.05, rng);
  const double mean = sfs::stats::summarize(data).mean;
  EXPECT_DOUBLE_EQ(ci.point, mean);
  EXPECT_LE(ci.lo, mean);
  EXPECT_GE(ci.hi, mean);
  EXPECT_LT(ci.hi - ci.lo, 2.0);
  EXPECT_GT(ci.hi - ci.lo, 0.1);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> data(50, 3.0);
  Rng rng(3);
  const auto ci = bootstrap_mean_ci(data, 500, 0.05, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, CustomStatistic) {
  std::vector<double> data;
  for (int i = 1; i <= 101; ++i) data.push_back(static_cast<double>(i));
  Rng rng(4);
  const auto ci = bootstrap_ci(
      data,
      [](std::span<const double> xs) { return sfs::stats::median(xs); },
      1000, 0.1, rng);
  EXPECT_DOUBLE_EQ(ci.point, 51.0);
  EXPECT_GT(ci.lo, 35.0);
  EXPECT_LT(ci.hi, 67.0);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  std::vector<double> data{1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0};
  Rng a(5);
  Rng b(5);
  const auto ca = bootstrap_mean_ci(data, 200, 0.05, a);
  const auto cb = bootstrap_mean_ci(data, 200, 0.05, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(Bootstrap, Preconditions) {
  Rng rng(6);
  const std::vector<double> data{1.0, 2.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}, 100, 0.05, rng),
               std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(data, 1, 0.05, rng),
               std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(data, 100, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
