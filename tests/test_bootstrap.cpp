// Tests for bootstrap confidence intervals.
#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "stats/summary.hpp"

namespace {

using sfs::rng::Rng;
using sfs::stats::bootstrap_ci;
using sfs::stats::bootstrap_mean_ci;

TEST(Bootstrap, MeanCiBracketsSampleMean) {
  Rng data_rng(1);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) data.push_back(data_rng.uniform(0.0, 10.0));
  Rng rng(2);
  const auto ci = bootstrap_mean_ci(data, 2000, 0.05, rng);
  const double mean = sfs::stats::summarize(data).mean;
  EXPECT_DOUBLE_EQ(ci.point, mean);
  EXPECT_LE(ci.lo, mean);
  EXPECT_GE(ci.hi, mean);
  EXPECT_LT(ci.hi - ci.lo, 2.0);
  EXPECT_GT(ci.hi - ci.lo, 0.1);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> data(50, 3.0);
  Rng rng(3);
  const auto ci = bootstrap_mean_ci(data, 500, 0.05, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, CustomStatistic) {
  std::vector<double> data;
  for (int i = 1; i <= 101; ++i) data.push_back(static_cast<double>(i));
  Rng rng(4);
  const auto ci = bootstrap_ci(
      data,
      [](std::span<const double> xs) { return sfs::stats::median(xs); },
      1000, 0.1, rng);
  EXPECT_DOUBLE_EQ(ci.point, 51.0);
  EXPECT_GT(ci.lo, 35.0);
  EXPECT_LT(ci.hi, 67.0);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  std::vector<double> data{1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0};
  Rng a(5);
  Rng b(5);
  const auto ca = bootstrap_mean_ci(data, 200, 0.05, a);
  const auto cb = bootstrap_mean_ci(data, 200, 0.05, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(Bootstrap, Preconditions) {
  Rng rng(6);
  const std::vector<double> data{1.0, 2.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}, 100, 0.05, rng),
               std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(data, 1, 0.05, rng),
               std::invalid_argument);
  EXPECT_THROW((void)bootstrap_mean_ci(data, 100, 0.0, rng),
               std::invalid_argument);
}

TEST(BootstrapGrouped, ResamplesWithinGroupsOnly) {
  // Two well-separated groups; a difference-of-means statistic. Group-wise
  // resampling keeps every resampled value inside its own group, so the
  // statistic can never cross zero (pooled resampling could).
  const std::vector<std::vector<double>> groups{
      {10.0, 11.0, 9.5, 10.5, 10.2}, {1.0, 1.2, 0.8, 1.1, 0.9}};
  Rng rng(3);
  const auto ci = sfs::stats::bootstrap_grouped_ci(
      groups,
      [](std::span<const std::vector<double>> gs) {
        const double m0 = sfs::stats::summarize(gs[0]).mean;
        const double m1 = sfs::stats::summarize(gs[1]).mean;
        return m0 - m1;
      },
      300, 0.05, rng);
  EXPECT_EQ(ci.replicates, 300u);
  EXPECT_NEAR(ci.point, 9.0, 0.5);
  EXPECT_GT(ci.lo, 7.0);
  EXPECT_LT(ci.hi, 11.0);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(BootstrapGrouped, NonFiniteReplicatesAreDropped) {
  const std::vector<std::vector<double>> groups{{1.0, 2.0}, {3.0, 4.0}};
  Rng rng(4);
  int calls = 0;
  const auto ci = sfs::stats::bootstrap_grouped_ci(
      groups,
      [&calls](std::span<const std::vector<double>> gs) {
        // The first call scores the original sample; every second
        // resample is "unfittable".
        ++calls;
        if (calls % 2 == 0) return std::numeric_limits<double>::quiet_NaN();
        return sfs::stats::summarize(gs[0]).mean;
      },
      100, 0.1, rng);
  EXPECT_GT(ci.replicates, 0u);
  EXPECT_LT(ci.replicates, 100u);
}

TEST(BootstrapGrouped, AllNonFiniteCollapsesToPoint) {
  const std::vector<std::vector<double>> groups{{1.0, 2.0}};
  Rng rng(5);
  bool first = true;
  const auto ci = sfs::stats::bootstrap_grouped_ci(
      groups,
      [&first](std::span<const std::vector<double>>) {
        if (first) {
          first = false;
          return 7.0;  // the point statistic on the original sample
        }
        return std::numeric_limits<double>::quiet_NaN();
      },
      50, 0.05, rng);
  EXPECT_EQ(ci.replicates, 0u);
  EXPECT_EQ(ci.point, 7.0);
  EXPECT_EQ(ci.lo, 7.0);
  EXPECT_EQ(ci.hi, 7.0);
}

TEST(BootstrapGrouped, Preconditions) {
  Rng rng(6);
  const auto stat = [](std::span<const std::vector<double>>) { return 0.0; };
  const std::vector<std::vector<double>> empty_set{};
  const std::vector<std::vector<double>> empty_group{{1.0}, {}};
  const std::vector<std::vector<double>> ok{{1.0}};
  EXPECT_THROW((void)sfs::stats::bootstrap_grouped_ci(empty_set, stat, 10,
                                                      0.05, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sfs::stats::bootstrap_grouped_ci(empty_group, stat, 10,
                                                      0.05, rng),
               std::invalid_argument);
  EXPECT_THROW((void)sfs::stats::bootstrap_grouped_ci(ok, stat, 1, 0.05, rng),
               std::invalid_argument);
}

}  // namespace
