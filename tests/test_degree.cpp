// Tests for degree statistics.
#include "graph/degree.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace {

using sfs::graph::degree_ccdf;
using sfs::graph::degree_histogram;
using sfs::graph::degree_of;
using sfs::graph::degree_sequence;
using sfs::graph::DegreeKind;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::max_degree;
using sfs::graph::mean_degree;

Graph fixture() {
  // 0 -> 1, 0 -> 1, 2 -> 0, 3 isolated, 1 -> 1 (loop)
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  b.add_edge(2, 0);
  b.add_edge(1, 1);
  return b.build();
}

TEST(DegreeOf, AllKinds) {
  const Graph g = fixture();
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kUndirected), 3u);
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kIn), 1u);
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kOut), 2u);
  EXPECT_EQ(degree_of(g, 0, DegreeKind::kTotal), 3u);
  EXPECT_EQ(degree_of(g, 1, DegreeKind::kUndirected), 4u);  // loop counts 2
  EXPECT_EQ(degree_of(g, 1, DegreeKind::kIn), 3u);
  EXPECT_EQ(degree_of(g, 1, DegreeKind::kOut), 1u);
  EXPECT_EQ(degree_of(g, 3, DegreeKind::kUndirected), 0u);
}

TEST(DegreeSequence, MatchesPerVertex) {
  const Graph g = fixture();
  const auto seq = degree_sequence(g, DegreeKind::kUndirected);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0], 3u);
  EXPECT_EQ(seq[1], 4u);
  EXPECT_EQ(seq[2], 1u);
  EXPECT_EQ(seq[3], 0u);
}

TEST(DegreeHistogram, CountsMatch) {
  const Graph g = fixture();
  const auto hist = degree_histogram(g, DegreeKind::kUndirected);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(DegreeCcdf, MonotoneDecreasingAndNormalized) {
  const Graph g = fixture();
  const auto ccdf = degree_ccdf(g, DegreeKind::kUndirected);
  ASSERT_FALSE(ccdf.empty());
  // First observed degree >= 1 is 1; P(D >= 1) = 3/4 (vertex 3 has deg 0).
  EXPECT_EQ(ccdf.front().first, 1u);
  EXPECT_DOUBLE_EQ(ccdf.front().second, 0.75);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LT(ccdf[i - 1].first, ccdf[i].first);
    EXPECT_GE(ccdf[i - 1].second, ccdf[i].second);
  }
  EXPECT_DOUBLE_EQ(ccdf.back().second, 0.25);  // only vertex 1 has deg >= 4
}

TEST(MaxDegree, PerKind) {
  const Graph g = fixture();
  EXPECT_EQ(max_degree(g, DegreeKind::kUndirected), 4u);
  EXPECT_EQ(max_degree(g, DegreeKind::kIn), 3u);
  EXPECT_EQ(max_degree(g, DegreeKind::kOut), 2u);
}

TEST(MeanDegree, HandshakeConsistency) {
  const Graph g = fixture();
  EXPECT_DOUBLE_EQ(mean_degree(g, DegreeKind::kUndirected),
                   2.0 * static_cast<double>(g.num_edges()) /
                       static_cast<double>(g.num_vertices()));
  EXPECT_DOUBLE_EQ(mean_degree(g, DegreeKind::kIn),
                   static_cast<double>(g.num_edges()) /
                       static_cast<double>(g.num_vertices()));
}

TEST(MeanDegree, EmptyGraphIsZero) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_DOUBLE_EQ(mean_degree(g, DegreeKind::kUndirected), 0.0);
}

}  // namespace
