// Tests for the closed-form theory predictions.
#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

namespace th = sfs::core::theory;

TEST(Theory, WeakLowerBoundExponentIsHalf) {
  EXPECT_DOUBLE_EQ(th::weak_lower_bound_exponent(), 0.5);
}

TEST(Theory, StrongLowerBoundExponent) {
  EXPECT_DOUBLE_EQ(th::strong_lower_bound_exponent(0.1), 0.4);
  EXPECT_DOUBLE_EQ(th::strong_lower_bound_exponent(0.25), 0.25);
  EXPECT_DOUBLE_EQ(th::strong_lower_bound_exponent(0.5), 0.0);
  EXPECT_DOUBLE_EQ(th::strong_lower_bound_exponent(0.9), 0.0);  // clamped
  EXPECT_THROW((void)th::strong_lower_bound_exponent(0.0),
               std::invalid_argument);
}

TEST(Theory, MoriMaxDegreeExponentIsP) {
  EXPECT_DOUBLE_EQ(th::mori_max_degree_exponent(0.3), 0.3);
  EXPECT_DOUBLE_EQ(th::mori_max_degree_exponent(1.0), 1.0);
  EXPECT_THROW((void)th::mori_max_degree_exponent(1.1),
               std::invalid_argument);
}

TEST(Theory, MoriDegreeDistributionExponent) {
  // p = 1/2 recovers the Barabási–Albert tree exponent 3.
  EXPECT_DOUBLE_EQ(th::mori_degree_distribution_exponent(0.5), 3.0);
  EXPECT_DOUBLE_EQ(th::mori_degree_distribution_exponent(1.0), 2.0);
  EXPECT_NEAR(th::mori_degree_distribution_exponent(0.25), 5.0, 1e-12);
}

TEST(Theory, AdamicExponents) {
  // Paper-quoted forms: greedy n^{2(1-2/k)}, walk n^{3(1-2/k)}.
  EXPECT_NEAR(th::adamic_greedy_exponent(2.3), 2.0 * (1.0 - 2.0 / 2.3),
              1e-12);
  EXPECT_NEAR(th::adamic_random_walk_exponent(2.3),
              3.0 * (1.0 - 2.0 / 2.3), 1e-12);
  // The walk exponent always dominates the greedy exponent for k > 2.
  for (const double k : {2.1, 2.3, 2.5, 2.7, 2.9}) {
    EXPECT_GT(th::adamic_random_walk_exponent(k),
              th::adamic_greedy_exponent(k));
  }
  EXPECT_THROW((void)th::adamic_greedy_exponent(2.0), std::invalid_argument);
}

TEST(Theory, Lemma3Bound) {
  EXPECT_DOUBLE_EQ(th::lemma3_bound(1.0), 1.0);
  EXPECT_NEAR(th::lemma3_bound(0.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(th::lemma3_bound(0.5), std::exp(-0.5), 1e-12);
  // Monotone increasing in p.
  EXPECT_LT(th::lemma3_bound(0.2), th::lemma3_bound(0.8));
}

TEST(Theory, Lemma3WindowEnd) {
  EXPECT_EQ(th::lemma3_window_end(2), 3u);     // 2 + floor(sqrt(1))
  EXPECT_EQ(th::lemma3_window_end(5), 7u);     // 5 + floor(sqrt(4))
  EXPECT_EQ(th::lemma3_window_end(101), 111u); // 101 + floor(sqrt(100))
  EXPECT_EQ(th::lemma3_window_end(10001), 10101u);
  EXPECT_THROW((void)th::lemma3_window_end(1), std::invalid_argument);
}

TEST(Theory, Lemma3WindowScalesAsSqrt) {
  for (const std::size_t a : {100u, 400u, 1600u, 6400u}) {
    const double window =
        static_cast<double>(th::lemma3_window_end(a) - a);
    EXPECT_NEAR(window, std::sqrt(static_cast<double>(a)), 2.0);
  }
}

TEST(Theory, Lemma1Bound) {
  EXPECT_DOUBLE_EQ(th::lemma1_bound(100, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(th::lemma1_bound(0, 1.0), 0.0);
  EXPECT_THROW((void)th::lemma1_bound(10, 1.5), std::invalid_argument);
}

TEST(Theory, KleinbergNavigability) {
  EXPECT_TRUE(th::kleinberg_navigable(2.0, 2));
  EXPECT_FALSE(th::kleinberg_navigable(1.5, 2));
  EXPECT_TRUE(th::kleinberg_navigable(3.0, 3));
}

TEST(Theory, KleinbergRoutingExponent) {
  EXPECT_DOUBLE_EQ(th::kleinberg_routing_exponent(2.0), 0.0);
  EXPECT_NEAR(th::kleinberg_routing_exponent(0.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(th::kleinberg_routing_exponent(3.0), 0.5, 1e-12);
  // Continuous and positive away from 2.
  EXPECT_GT(th::kleinberg_routing_exponent(1.0), 0.0);
  EXPECT_GT(th::kleinberg_routing_exponent(2.5), 0.0);
}

}  // namespace
