// Tests for greedy geographic routing on the Kleinberg grid.
#include "search/kleinberg_routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hpp"

namespace {

using sfs::gen::KleinbergGrid;
using sfs::gen::KleinbergParams;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::search::greedy_route;

TEST(GreedyRoute, DeliversOnPureLatticeInExactDistance) {
  // q = 0 would be ideal, but the generator requires q >= 0; use r huge so
  // long-range links are lattice-adjacent and cannot mislead greedy.
  Rng rng(1);
  const KleinbergGrid grid(12, KleinbergParams{50.0, 1}, rng);
  const VertexId s = grid.vertex_at(0, 0);
  const VertexId t = grid.vertex_at(5, 3);
  const auto r = greedy_route(grid, s, t);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.steps, grid.lattice_distance(s, t));
}

TEST(GreedyRoute, TrivialRoute) {
  Rng rng(2);
  const KleinbergGrid grid(6, KleinbergParams{2.0, 1}, rng);
  const auto r = greedy_route(grid, 7, 7);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.steps, 0u);
}

TEST(GreedyRoute, AlwaysDeliversOnTorus) {
  Rng rng(3);
  const KleinbergGrid grid(16, KleinbergParams{2.0, 1}, rng);
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<VertexId>(rng.uniform_index(256));
    const auto t = static_cast<VertexId>(rng.uniform_index(256));
    const auto r = greedy_route(grid, s, t);
    EXPECT_TRUE(r.delivered);
    EXPECT_LE(r.steps, 2u * 16u);  // never worse than the lattice diameter
  }
}

TEST(GreedyRoute, StepsNeverExceedLatticeDistance) {
  // Greedy strictly decreases lattice distance each hop.
  Rng rng(4);
  const KleinbergGrid grid(14, KleinbergParams{2.0, 2}, rng);
  for (int i = 0; i < 50; ++i) {
    const auto s = static_cast<VertexId>(rng.uniform_index(196));
    const auto t = static_cast<VertexId>(rng.uniform_index(196));
    const auto r = greedy_route(grid, s, t);
    EXPECT_LE(r.steps, grid.lattice_distance(s, t));
  }
}

TEST(GreedyRoute, MaxStepsTruncates) {
  Rng rng(5);
  const KleinbergGrid grid(20, KleinbergParams{50.0, 1}, rng);
  const VertexId s = grid.vertex_at(0, 0);
  const VertexId t = grid.vertex_at(10, 10);
  const auto r = greedy_route(grid, s, t, 3);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.steps, 3u);
}

TEST(GreedyRoute, NavigableDichotomyInGrowthRates) {
  // The Kleinberg dichotomy shows in how route length *grows* with the
  // grid: polylog at r = 2, polynomial away from it. At laptop sizes the
  // absolute means of r = 0 and r = 2 are close, but the growth factor
  // from L = 16 to L = 160 separates cleanly (and r = 4, effectively
  // local-only, is far worse on both counts).
  auto mean_steps = [&](double r_exp, std::size_t L) {
    Rng rng(101);
    const KleinbergGrid grid(L, KleinbergParams{r_exp, 1}, rng);
    sfs::stats::Accumulator acc;
    for (int i = 0; i < 400; ++i) {
      const auto s =
          static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
      const auto t =
          static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
      acc.add(static_cast<double>(greedy_route(grid, s, t).steps));
    }
    return acc.mean();
  };
  const double g0 = mean_steps(0.0, 160) / mean_steps(0.0, 16);
  const double g2 = mean_steps(2.0, 160) / mean_steps(2.0, 16);
  const double g4 = mean_steps(4.0, 160) / mean_steps(4.0, 16);
  EXPECT_LT(g2, g0);
  EXPECT_LT(g0, g4);
  // And in absolute terms at the larger size, r = 2 wins outright.
  EXPECT_LT(mean_steps(2.0, 160), mean_steps(0.0, 160));
  EXPECT_LT(mean_steps(2.0, 160), mean_steps(4.0, 160));
}

TEST(GreedyRoute, RangeChecks) {
  Rng rng(9);
  const KleinbergGrid grid(5, KleinbergParams{2.0, 1}, rng);
  EXPECT_THROW((void)greedy_route(grid, 0, 25), std::invalid_argument);
  EXPECT_THROW((void)greedy_route(grid, 30, 0), std::invalid_argument);
}

}  // namespace
