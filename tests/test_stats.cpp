// Tests for summary statistics.
#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using sfs::stats::Accumulator;
using sfs::stats::median;
using sfs::stats::quantile;
using sfs::stats::summarize;

TEST(Summary, KnownValues) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stderr_mean, s.stddev / std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * s.stderr_mean, 1e-12);
}

TEST(Summary, EmptyInput) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Summary, SingleValue) {
  const std::vector<double> xs{3.5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Summary, ConstantSampleHasZeroVariance) {
  const std::vector<double> xs{2.0, 2.0, 2.0, 2.0};
  const auto s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Accumulator, MatchesBatchSummary) {
  const std::vector<double> xs{1.0, -2.0, 3.5, 0.0, 8.25, -1.5};
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  const auto a = acc.summary();
  const auto b = summarize(xs);
  EXPECT_EQ(a.count, b.count);
  EXPECT_NEAR(a.mean, b.mean, 1e-12);
  EXPECT_NEAR(a.variance, b.variance, 1e-12);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(Quantile, SortedInterpolation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, Preconditions) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, 1.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

}  // namespace
