// Tests for the Cooper–Frieze evolving graph model.
#include "gen/cooper_frieze.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/degree.hpp"

namespace {

using sfs::gen::cooper_frieze;
using sfs::gen::cooper_frieze_steps;
using sfs::gen::CooperFriezeParams;
using sfs::gen::CooperFriezeProcess;
using sfs::gen::Preference;
using sfs::graph::VertexId;
using sfs::rng::Rng;

CooperFriezeParams defaults() { return CooperFriezeParams{}; }

TEST(CooperFriezeParams, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(defaults().validate());
}

TEST(CooperFriezeParams, RejectsAlphaExtremes) {
  auto p = defaults();
  p.alpha = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.alpha = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CooperFriezeParams, RejectsBadProbabilities) {
  auto p = defaults();
  p.beta = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = defaults();
  p.gamma = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CooperFriezeParams, RejectsBadCountDistributions) {
  auto p = defaults();
  p.q = {};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = defaults();
  p.p = {0.0, 0.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = defaults();
  p.q = {1.0, -1.0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CooperFrieze, ReachesRequestedVertexCount) {
  Rng rng(1);
  const auto out = cooper_frieze(300, defaults(), rng);
  EXPECT_EQ(out.graph.num_vertices(), 300u);
  EXPECT_EQ(out.birth_order.size(), 300u);
  EXPECT_GE(out.steps, 299u);  // at least one step per added vertex
}

TEST(CooperFrieze, ConnectedByConstruction) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto out = cooper_frieze(200, defaults(), rng);
    EXPECT_TRUE(sfs::graph::is_connected(out.graph)) << "seed " << seed;
  }
}

TEST(CooperFrieze, StepCountRoughlyVerticesOverAlpha) {
  auto params = defaults();
  params.alpha = 0.25;
  Rng rng(2);
  const auto out = cooper_frieze(500, params, rng);
  const double expected = 500.0 / 0.25;
  EXPECT_GT(static_cast<double>(out.steps), 0.7 * expected);
  EXPECT_LT(static_cast<double>(out.steps), 1.3 * expected);
}

TEST(CooperFrieze, EdgeCountMatchesStepsForUnitDistributions) {
  // With p = q = {1}, every step adds exactly one edge (plus the seed loop).
  Rng rng(3);
  const auto out = cooper_frieze(100, defaults(), rng);
  EXPECT_EQ(out.graph.num_edges(), out.steps + 1);
}

TEST(CooperFrieze, MultiEdgeDistributions) {
  auto params = defaults();
  params.q = {0.0, 0.0, 1.0};  // NEW vertices emit exactly 3 edges
  params.p = {0.0, 1.0};       // OLD steps emit exactly 2 edges
  Rng rng(4);
  const auto out = cooper_frieze(100, params, rng);
  // Every NEW step adds 3 edges; at least 99 NEW steps happened.
  EXPECT_GE(out.graph.num_edges(), 99u * 3u);
  // New vertices have out-degree 3.
  std::size_t outdeg3 = 0;
  for (VertexId v = 1; v < out.graph.num_vertices(); ++v) {
    if (out.graph.out_degree(v) >= 3) ++outdeg3;
  }
  EXPECT_EQ(outdeg3, 99u);
}

TEST(CooperFrieze, SeedLoopPresent) {
  Rng rng(5);
  const auto out = cooper_frieze(50, defaults(), rng);
  EXPECT_TRUE(out.graph.edge(0).is_loop());
  EXPECT_EQ(out.graph.edge(0).tail, 0u);
}

TEST(CooperFriezeSteps, RunsExactStepCount) {
  Rng rng(6);
  const auto out = cooper_frieze_steps(400, defaults(), rng);
  EXPECT_EQ(out.steps, 400u);
  EXPECT_GE(out.graph.num_vertices(), 1u);
  EXPECT_LE(out.graph.num_vertices(), 401u);
}

TEST(CooperFriezeProcess, LastHeadsTracksEmittedEdges) {
  Rng rng(7);
  CooperFriezeProcess proc(defaults());
  const std::size_t edges_before = proc.graph().num_edges();
  (void)proc.step(rng);
  EXPECT_EQ(proc.graph().num_edges(), edges_before + proc.last_heads().size());
}

TEST(CooperFriezeProcess, LastTailIsNewVertexOnNewSteps) {
  Rng rng(8);
  CooperFriezeProcess proc(defaults());
  for (int i = 0; i < 50; ++i) {
    const std::size_t before = proc.num_vertices();
    const bool was_new = proc.step(rng);
    if (was_new) {
      EXPECT_EQ(proc.num_vertices(), before + 1);
      EXPECT_EQ(proc.last_tail(), static_cast<VertexId>(before));
    } else {
      EXPECT_EQ(proc.num_vertices(), before);
      EXPECT_LT(proc.last_tail(), static_cast<VertexId>(before));
    }
  }
}

TEST(CooperFriezeProcess, HeadsAreExistingVertices) {
  Rng rng(9);
  CooperFriezeProcess proc(defaults());
  for (int i = 0; i < 200; ++i) {
    (void)proc.step(rng);
    for (const VertexId h : proc.last_heads()) {
      EXPECT_LT(h, proc.num_vertices());
    }
  }
}

TEST(CooperFrieze, NewVertexNeverSelfLoopsImmediately) {
  // NEW terminals are drawn among pre-existing vertices only.
  Rng rng(10);
  const auto out = cooper_frieze(300, defaults(), rng);
  for (const auto& e : out.graph.edges()) {
    if (e.is_loop()) {
      // Only the seed loop is possible from NEW steps; OLD steps may create
      // loops via preferential re-selection of the tail.
      continue;
    }
  }
  SUCCEED();
}

class CfPreference : public ::testing::TestWithParam<Preference> {};

TEST_P(CfPreference, HighAlphaGrowsFast) {
  auto params = defaults();
  params.alpha = 0.9;
  params.preference = GetParam();
  Rng rng(11);
  const auto out = cooper_frieze(400, params, rng);
  EXPECT_EQ(out.graph.num_vertices(), 400u);
  EXPECT_TRUE(sfs::graph::is_connected(out.graph));
}

TEST_P(CfPreference, PurePreferentialSkewsDegrees) {
  // beta = gamma = 0 (always preferential): expect a heavy hub; beta =
  // gamma = 1 (always uniform): much flatter.
  auto pref = defaults();
  pref.beta = 0.0;
  pref.gamma = 0.0;
  pref.preference = GetParam();
  auto unif = defaults();
  unif.beta = 1.0;
  unif.gamma = 1.0;
  unif.preference = GetParam();
  Rng r1(12);
  Rng r2(12);
  const auto skewed = cooper_frieze(2000, pref, r1);
  const auto flat = cooper_frieze(2000, unif, r2);
  const auto dmax_skewed = sfs::graph::max_degree(
      skewed.graph, sfs::graph::DegreeKind::kUndirected);
  const auto dmax_flat =
      sfs::graph::max_degree(flat.graph, sfs::graph::DegreeKind::kUndirected);
  EXPECT_GT(dmax_skewed, 2 * dmax_flat);
}

INSTANTIATE_TEST_SUITE_P(Preferences, CfPreference,
                         ::testing::Values(Preference::kInDegree,
                                           Preference::kTotalDegree));

TEST(CooperFrieze, DeterministicForSeed) {
  Rng a(13);
  Rng b(13);
  const auto g1 = cooper_frieze(150, defaults(), a);
  const auto g2 = cooper_frieze(150, defaults(), b);
  ASSERT_EQ(g1.graph.num_edges(), g2.graph.num_edges());
  for (sfs::graph::EdgeId e = 0; e < g1.graph.num_edges(); ++e) {
    EXPECT_EQ(g1.graph.edge(e).tail, g2.graph.edge(e).tail);
    EXPECT_EQ(g1.graph.edge(e).head, g2.graph.edge(e).head);
  }
}

}  // namespace
