// Tests for the RNG stream-derivation audit (rng/stream_audit.hpp).
#include "rng/stream_audit.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "gen/mori.hpp"
#include "rng/random.hpp"
#include "sim/scaling.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::rng::audited_stream_seed;
using sfs::rng::StreamAudit;
using sfs::rng::StreamTriple;

// The audit is process-global; each test starts it from a clean slate and
// leaves it disabled so other tests (and the harness call sites they
// exercise) are unaffected.
class StreamAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StreamAudit::instance().reset();
    StreamAudit::instance().set_enabled(true);
  }
  void TearDown() override {
    StreamAudit::instance().set_enabled(false);
    StreamAudit::instance().reset();
  }
};

TEST_F(StreamAuditTest, RecordsDistinctDerivations) {
  const std::uint64_t a = audited_stream_seed(1, 0, 0);
  const std::uint64_t b = audited_stream_seed(1, 0, 1);
  const std::uint64_t c = audited_stream_seed(2, 7, 0);
  // SFS_LINT_ALLOW(raw-derive): asserts audited_stream_seed delegates to the raw derivation
  EXPECT_EQ(a, sfs::rng::derive_stream_seed(1, 0, 0));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(StreamAudit::instance().recorded_count(), 3u);
}

TEST_F(StreamAuditTest, SameTripleIsIdempotent) {
  // Checkpoint-resumed sweeps re-derive completed cells' seeds; replaying
  // the identical mapping must not trip the collision check.
  (void)audited_stream_seed(5, 3, 2);
  (void)audited_stream_seed(5, 3, 2);
  (void)audited_stream_seed(5, 3, 2);
  EXPECT_EQ(StreamAudit::instance().recorded_count(), 1u);
}

TEST_F(StreamAuditTest, CollisionFailsFast) {
  StreamAudit& audit = StreamAudit::instance();
  audit.record(StreamTriple{1, 2, 3}, 42);
  // Same derived seed from a different triple: exactly the bug class the
  // audit exists to catch.
  EXPECT_THROW(audit.record(StreamTriple{9, 9, 9}, 42), std::logic_error);
  // The same mapping again stays fine.
  audit.record(StreamTriple{1, 2, 3}, 42);
}

TEST_F(StreamAuditTest, DisabledWrapperRecordsNothing) {
  StreamAudit::instance().set_enabled(false);
  (void)audited_stream_seed(1, 0, 0);
  EXPECT_EQ(StreamAudit::instance().recorded_count(), 0u);
}

TEST_F(StreamAuditTest, DumpEmitsSortedCsv) {
  StreamAudit& audit = StreamAudit::instance();
  audit.record(StreamTriple{1, 2, 3}, 500);
  audit.record(StreamTriple{4, 5, 6}, 100);
  std::ostringstream os;
  audit.dump(os);
  EXPECT_EQ(os.str(),
            "seed,stream,rep,derived_seed\n"
            "4,5,6,100\n"
            "1,2,3,500\n");
}

TEST_F(StreamAuditTest, ScalingSweepAuditsCleanly) {
  // A real sweep under the audit: every (size, rep) cell derivation is
  // recorded, and the tempered per-size tags produce no collisions.
  const auto series = sfs::sim::measure_scaling(
      {16, 32, 64}, 4, 0xA0D17,
      [](std::size_t n, std::uint64_t) { return static_cast<double>(n); });
  ASSERT_TRUE(series.has_fit());
  EXPECT_EQ(StreamAudit::instance().recorded_count(), 3u * 4u);
}

TEST_F(StreamAuditTest, PortfolioSweepAuditsCleanly) {
  using sfs::graph::Graph;
  using sfs::rng::Rng;
  const std::size_t reps = 3;
  const auto cost = sfs::sim::measure_portfolio({
      .factory =
          [](Rng& rng) {
            return sfs::gen::merged_mori_graph(64, 1,
                                               sfs::gen::MoriParams{0.5}, rng);
          },
      .endpoints = sfs::sim::oldest_to_newest(),
      .reps = reps,
      .seed = 0x577E,
  });
  ASSERT_FALSE(cost.policies.empty());
  // Streams per replication: graph + endpoints + one per policy.
  EXPECT_EQ(StreamAudit::instance().recorded_count(),
            reps * (2 + cost.policies.size()));
}

TEST_F(StreamAuditTest, NestedHarnessesShareOneCleanAuditTable) {
  // A scaling sweep whose measure runs a portfolio inside — the composed
  // stream plan of both harnesses must stay collision-free.
  using sfs::rng::Rng;
  const auto series = sfs::sim::measure_scaling(
      {32, 64}, 2, 0xE1,
      [](std::size_t n, std::uint64_t seed) {
        const auto cost = sfs::sim::measure_portfolio({
            .factory =
                [n](Rng& rng) {
                  return sfs::gen::merged_mori_graph(
                      n, 1, sfs::gen::MoriParams{0.5}, rng);
                },
            .endpoints = sfs::sim::oldest_to_newest(),
            .seed = seed,
        });
        return cost.best_policy().requests.mean;
      });
  ASSERT_TRUE(series.has_fit());
  EXPECT_GT(StreamAudit::instance().recorded_count(), 4u);
}

}  // namespace
