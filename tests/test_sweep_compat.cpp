// Bit-identity contract of the v1 compat wrappers and the paired design of
// the portfolio engine.
//
// This is the ONLY file (outside src/sim/sweep.*) that may still call the
// legacy 4-overload measure_*_portfolio surface: it exists to prove the
// wrappers reproduce the pre-redesign outputs exactly. CI greps for other
// callers (the api-guard job).
//
// The golden numbers below were captured by running the pre-redesign
// sweep.cpp (PR 4 tree) with the exact configuration in golden_*_cost():
// merged Mori graph n=200 m=2 p=0.5, reps=6, seed 0xD0C5EED. Exact
// double equality is intentional — the redesign promises bit-identity,
// not approximate agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "base/sync.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::search::KnowledgeModel;
using sfs::sim::measure_portfolio;
using sfs::sim::PortfolioCost;
using sfs::sim::RunPlan;

constexpr std::uint64_t kGoldenSeed = 0xD0C5EEDULL;

sfs::sim::GraphFactory golden_factory() {
  return [](Rng& rng) {
    return sfs::gen::merged_mori_graph(200, 2, sfs::gen::MoriParams{0.5},
                                       rng);
  };
}

PortfolioCost golden_weak_cost() {
  return sfs::sim::measure_weak_portfolio(
      golden_factory(), sfs::sim::oldest_to_newest(), 6, kGoldenSeed,
      sfs::search::RunBudget{.max_raw_requests = 8000});
}

PortfolioCost golden_strong_cost() {
  return sfs::sim::measure_strong_portfolio(
      golden_factory(), sfs::sim::random_to_newest(), 6, kGoldenSeed,
      sfs::search::RunBudget{}, /*threads=*/1);
}

struct Golden {
  const char* name;
  double mean_requests;
  double mean_raw;
  double median;
  double p90;
  double found_fraction;
};

void expect_matches_golden(const PortfolioCost& cost,
                           const std::vector<Golden>& golden,
                           std::size_t expected_best) {
  ASSERT_EQ(cost.policies.size(), golden.size());
  EXPECT_EQ(cost.best, expected_best);
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const auto& p = cost.policies[i];
    const auto& g = golden[i];
    EXPECT_EQ(p.name, g.name) << "index " << i;
    // Exact: the bit-identity contract, not a tolerance check.
    EXPECT_EQ(p.requests.mean, g.mean_requests) << p.name;
    EXPECT_EQ(p.raw_requests.mean, g.mean_raw) << p.name;
    EXPECT_EQ(p.median_requests, g.median) << p.name;
    EXPECT_EQ(p.p90_requests, g.p90) << p.name;
    EXPECT_EQ(p.found_fraction, g.found_fraction) << p.name;
  }
}

TEST(SweepCompat, WeakWrapperReproducesPreRedesignGolden) {
  const std::vector<Golden> golden{
      {"bfs", 153.33333333333331, 153.33333333333331, 175.5, 226.5, 1},
      {"dfs", 354.5, 354.5, 361.5, 378, 1},
      {"degree-greedy", 167.83333333333334, 167.83333333333334, 171.5, 282,
       1},
      {"min-id-greedy", 180.5, 180.5, 156, 327.5, 1},
      {"max-id-greedy", 118.66666666666666, 118.66666666666666, 98, 185, 1},
      {"random-frontier", 299.16666666666669, 299.16666666666669, 315.5,
       375, 1},
      {"frontier-walk", 344.33333333333337, 460.66666666666669, 360.5,
       388.5, 1},
      {"no-backtrack-walk", 216.83333333333334, 356.16666666666669, 204,
       298.5, 1},
      {"random-walk", 220.83333333333334, 636.66666666666674, 264.5, 336.5,
       1},
      {"weak-sim(degree-greedy-strong)", 170.5, 170.5, 171.5, 282, 1},
  };
  expect_matches_golden(golden_weak_cost(), golden, /*expected_best=*/4);
}

TEST(SweepCompat, StrongWrapperReproducesPreRedesignGolden) {
  const std::vector<Golden> golden{
      {"degree-greedy-strong", 13.833333333333332, 13.833333333333332, 9.5,
       29.5, 1},
      {"bfs-strong", 23.666666666666668, 23.666666666666668, 18.5, 47.5, 1},
      {"random-strong", 51, 51, 14, 134, 1},
      {"min-id-strong", 25.166666666666668, 25.166666666666668, 12, 61, 1},
      {"max-id-strong", 49.5, 49.5, 49.5, 85.5, 1},
  };
  expect_matches_golden(golden_strong_cost(), golden, /*expected_best=*/0);
}

void expect_identical(const PortfolioCost& a, const PortfolioCost& b) {
  ASSERT_EQ(a.policies.size(), b.policies.size());
  EXPECT_EQ(a.best, b.best);
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    EXPECT_EQ(a.policies[i].name, b.policies[i].name);
    EXPECT_EQ(a.policies[i].requests.mean, b.policies[i].requests.mean);
    EXPECT_EQ(a.policies[i].raw_requests.mean,
              b.policies[i].raw_requests.mean);
    EXPECT_EQ(a.policies[i].median_requests, b.policies[i].median_requests);
    EXPECT_EQ(a.policies[i].p90_requests, b.policies[i].p90_requests);
    EXPECT_EQ(a.policies[i].found_fraction, b.policies[i].found_fraction);
  }
}

TEST(SweepCompat, WrapperEqualsEquivalentRunPlan) {
  RunPlan plan;
  plan.factory = golden_factory();
  plan.endpoints = sfs::sim::oldest_to_newest();
  plan.reps = 6;
  plan.seed = kGoldenSeed;
  plan.budget.max_raw_requests = 8000;
  expect_identical(golden_weak_cost(), measure_portfolio(plan));

  RunPlan strong_plan;
  strong_plan.model = KnowledgeModel::kStrong;
  strong_plan.factory = golden_factory();
  strong_plan.endpoints = sfs::sim::random_to_newest();
  strong_plan.reps = 6;
  strong_plan.seed = kGoldenSeed;
  expect_identical(golden_strong_cost(), measure_portfolio(strong_plan));
}

// ------------------------------------------------ paired-design contract

TEST(SweepPairedDesign, EveryPolicySeesTheIdenticalGraphSequence) {
  // The paired-comparison regression: one graph per replication, shared by
  // ALL policies. The factory must run exactly `reps` times (NOT
  // reps x policies), and the graph RNG sequence must not depend on which
  // policies are selected.
  sfs::base::Mutex mu;
  std::vector<std::uint64_t> first_draws;
  std::atomic<std::size_t> calls{0};
  const auto recording_factory = [&](Rng& rng) {
    calls.fetch_add(1);
    Graph g = sfs::gen::mori_tree(60, sfs::gen::MoriParams{0.5}, rng);
    const sfs::base::MutexLock lock(mu);
    first_draws.push_back(rng.u64());
    return g;
  };

  RunPlan plan;
  plan.factory = recording_factory;
  plan.endpoints = sfs::sim::oldest_to_newest();
  plan.reps = 5;
  plan.seed = 77;
  plan.budget.max_raw_requests = 100000;

  const auto full = measure_portfolio(plan);
  EXPECT_EQ(calls.load(), 5u);  // one graph per replication, not per policy
  auto full_draws = first_draws;
  std::sort(full_draws.begin(), full_draws.end());

  calls = 0;
  first_draws.clear();
  plan.policies = {"bfs", "dfs"};  // prefix of the registered portfolio
  const auto subset = measure_portfolio(plan);
  EXPECT_EQ(calls.load(), 5u);
  auto subset_draws = first_draws;
  std::sort(subset_draws.begin(), subset_draws.end());

  // Same graph seeds regardless of the policy filter (sorted: the
  // replication order is deterministic here, but sorting keeps the check
  // valid for any thread count).
  EXPECT_EQ(full_draws, subset_draws);

  // And the shared graphs make the comparison paired: a prefix selection
  // keeps each policy's portfolio index, hence its exact RNG stream, so
  // bfs/dfs results are bit-identical to their full-portfolio entries.
  ASSERT_EQ(subset.policies.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(subset.policies[i].name, full.policies[i].name);
    EXPECT_EQ(subset.policies[i].requests.mean,
              full.policies[i].requests.mean);
    EXPECT_EQ(subset.policies[i].raw_requests.mean,
              full.policies[i].raw_requests.mean);
    EXPECT_EQ(subset.policies[i].median_requests,
              full.policies[i].median_requests);
  }
}

}  // namespace
