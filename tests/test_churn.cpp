// Tests for sim::ChurnSchedule: deterministic fault injection + repair
// over a graph::Overlay, and the null-schedule exact-no-op contract the
// churn-rate-0 acceptance check depends on.
#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "gen/mori.hpp"
#include "graph/overlay.hpp"
#include "rng/random.hpp"

namespace {

using sfs::graph::EdgeId;
using sfs::graph::Graph;
using sfs::graph::Overlay;
using sfs::graph::VertexId;
using sfs::sim::ChurnParams;
using sfs::sim::ChurnSchedule;
using sfs::sim::ChurnStepStats;

Graph mori(std::size_t n, std::uint64_t seed) {
  sfs::rng::Rng rng(seed);
  return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
}

TEST(ChurnSchedule, ValidatesParams) {
  EXPECT_THROW(ChurnSchedule(ChurnParams{.rate = -0.1}, 1),
               std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(ChurnParams{.rate = 1.5}, 1),
               std::invalid_argument);
  EXPECT_THROW(ChurnSchedule(ChurnParams{.edge_failure_rate = 2.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      ChurnSchedule(ChurnParams{.rate = 0.1, .replace = true, .join_edges = 0},
                    1),
      std::invalid_argument);
  EXPECT_THROW(
      ChurnSchedule(ChurnParams{.rate = 0.1, .compact_threshold = -1.0}, 1),
      std::invalid_argument);
  EXPECT_NO_THROW(ChurnSchedule(ChurnParams{}, 1));
}

TEST(ChurnSchedule, NullScheduleIsAnExactNoOp) {
  Overlay overlay(mori(100, 2));
  const std::uint64_t epoch = overlay.epoch();
  ChurnSchedule schedule(ChurnParams{}, 123);
  EXPECT_TRUE(schedule.is_null());
  for (std::uint64_t step = 0; step < 5; ++step) {
    const ChurnStepStats stats = schedule.apply_step(overlay, step);
    EXPECT_EQ(stats.departures, 0u);
    EXPECT_EQ(stats.joins, 0u);
    EXPECT_EQ(stats.edge_failures, 0u);
    EXPECT_FALSE(stats.compacted);
  }
  EXPECT_EQ(overlay.epoch(), epoch);  // never even bumped
  EXPECT_EQ(overlay.num_alive(), 100u);
}

TEST(ChurnSchedule, InjectLeavesFaultsShowing) {
  // The two-phase contract: inject() tombstones and fails links but never
  // joins or compacts — query traffic run between inject and repair races
  // the broken overlay.
  Overlay overlay(mori(200, 3));
  ChurnSchedule schedule(
      ChurnParams{.rate = 0.1, .replace = true, .edge_failure_rate = 0.05}, 7);
  ChurnStepStats stats = schedule.inject(overlay, 0);
  EXPECT_GT(stats.departures, 0u);
  EXPECT_GT(stats.edge_failures, 0u);
  EXPECT_EQ(stats.joins, 0u);
  EXPECT_FALSE(stats.compacted);
  EXPECT_EQ(overlay.staged_joins(), 0u);
  EXPECT_EQ(overlay.compactions(), 0u);
  EXPECT_EQ(overlay.num_alive(), 200u - stats.departures);
  // Tombstones and dead links are visible through the masks here.
  std::size_t dead_vertices = 0;
  for (const std::uint8_t a : overlay.vertex_alive_mask()) {
    dead_vertices += a == 0 ? 1u : 0u;
  }
  EXPECT_EQ(dead_vertices, stats.departures);

  // repair() replaces every departure and commits the joins.
  schedule.repair(overlay, 0, stats);
  EXPECT_EQ(stats.joins, stats.departures);
  EXPECT_TRUE(stats.compacted);  // staged joins force the compaction
  EXPECT_EQ(overlay.staged_joins(), 0u);
  EXPECT_EQ(overlay.num_alive(), 200u);  // stationary population
}

TEST(ChurnSchedule, ApplyStepEqualsInjectPlusRepair) {
  Overlay a(mori(150, 4));
  Overlay b(mori(150, 4));
  ChurnParams params{.rate = 0.08, .replace = true, .edge_failure_rate = 0.02};
  ChurnSchedule schedule(params, 99);

  const ChurnStepStats one = schedule.apply_step(a, 5);
  ChurnStepStats two = schedule.inject(b, 5);
  schedule.repair(b, 5, two);

  EXPECT_EQ(one.departures, two.departures);
  EXPECT_EQ(one.joins, two.joins);
  EXPECT_EQ(one.edge_failures, two.edge_failures);
  EXPECT_EQ(one.compacted, two.compacted);
  EXPECT_EQ(a.epoch(), b.epoch());
  ASSERT_EQ(a.snapshot().num_edges(), b.snapshot().num_edges());
  for (EdgeId e = 0; e < a.snapshot().num_edges(); ++e) {
    EXPECT_EQ(a.snapshot().edge(e).tail, b.snapshot().edge(e).tail) << e;
    EXPECT_EQ(a.snapshot().edge(e).head, b.snapshot().edge(e).head) << e;
  }
}

TEST(ChurnSchedule, StepEventsArePureFunctionsOfSeedAndStep) {
  // Same seed, same overlay state, same step index: identical mutations.
  Overlay a(mori(150, 8));
  Overlay b(mori(150, 8));
  ChurnParams params{.rate = 0.05, .replace = true, .edge_failure_rate = 0.03};
  ChurnSchedule sched_a(params, 31);
  ChurnSchedule sched_b(params, 31);
  for (std::uint64_t step = 0; step < 4; ++step) {
    (void)sched_a.apply_step(a, step);
    (void)sched_b.apply_step(b, step);
  }
  EXPECT_EQ(a.num_alive(), b.num_alive());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.snapshot().num_edges(), b.snapshot().num_edges());
  for (EdgeId e = 0; e < a.snapshot().num_edges(); ++e) {
    EXPECT_EQ(a.snapshot().edge(e).tail, b.snapshot().edge(e).tail) << e;
  }
  // A different seed steers the process elsewhere.
  Overlay c(mori(150, 8));
  ChurnSchedule sched_c(params, 32);
  ChurnStepStats drift;
  for (std::uint64_t step = 0; step < 4; ++step) {
    const ChurnStepStats s = sched_c.apply_step(c, step);
    drift.departures += s.departures;
  }
  // (Not asserted equal/unequal per step — only that the process ran.)
  EXPECT_GT(drift.departures, 0u);
}

TEST(ChurnSchedule, PopulationFloorHoldsUnderTotalChurn) {
  Overlay overlay(mori(50, 6));
  // rate = 1 without replacement: everyone tries to leave every step.
  ChurnSchedule schedule(ChurnParams{.rate = 1.0, .replace = false}, 17);
  for (std::uint64_t step = 0; step < 3; ++step) {
    (void)schedule.apply_step(overlay, step);
  }
  EXPECT_EQ(overlay.num_alive(), 2u);  // never below the floor of 2
}

TEST(ChurnSchedule, InjectAndRepairStreamsAreDistinct) {
  EXPECT_NE(sfs::sim::churn_stream_tag(), sfs::sim::churn_repair_stream_tag());
}

}  // namespace
