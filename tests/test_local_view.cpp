// Tests for LocalView: information gating, request accounting, discovery
// paths — the paper's two knowledge models made executable.
#include "search/local_view.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::kNoVertex;
using sfs::graph::VertexId;
using sfs::search::KnowledgeModel;
using sfs::search::LocalView;

// Path 0 - 1 - 2 - 3 (edges 0,1,2).
Graph path4() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(LocalViewWeak, StartIsKnownTargetIsNot) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_TRUE(view.is_known(0));
  EXPECT_FALSE(view.is_known(1));
  EXPECT_FALSE(view.target_found());
  EXPECT_EQ(view.requests(), 0u);
  ASSERT_EQ(view.known_vertices().size(), 1u);
  EXPECT_EQ(view.known_vertices()[0], 0u);
}

TEST(LocalViewWeak, TrivialSearchWhenStartIsTarget) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 2, 2);
  EXPECT_TRUE(view.target_found());
  EXPECT_EQ(view.discovery_path().size(), 1u);
}

TEST(LocalViewWeak, RequestRevealsFarEndpoint) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  const VertexId v = view.request_edge(0, 0);
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(view.is_known(1));
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_EQ(view.degree(1), 2u);  // degree of revealed vertex now visible
}

TEST(LocalViewWeak, UnknownVertexAccessRejected) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_THROW((void)view.degree(1), std::invalid_argument);
  EXPECT_THROW((void)view.incident(2), std::invalid_argument);
  EXPECT_THROW((void)view.request_edge(1, 1), std::invalid_argument);
  EXPECT_THROW((void)view.first_unexplored(3), std::invalid_argument);
}

TEST(LocalViewWeak, EdgeMustBeIncident) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_THROW((void)view.request_edge(0, 2), std::invalid_argument);
}

TEST(LocalViewWeak, RepeatRequestsAreFree) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  (void)view.request_edge(0, 0);
  (void)view.request_edge(0, 0);
  (void)view.request_edge(1, 0);  // same edge from the other side
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_EQ(view.raw_requests(), 3u);
}

TEST(LocalViewWeak, FarEndpointOnlyAfterExploration) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_FALSE(view.far_endpoint(0, 0).has_value());
  (void)view.request_edge(0, 0);
  ASSERT_TRUE(view.far_endpoint(0, 0).has_value());
  EXPECT_EQ(*view.far_endpoint(0, 0), 1u);
  EXPECT_EQ(*view.far_endpoint(0, 1), 0u);
}

TEST(LocalViewWeak, FirstUnexploredAdvances) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kWeak, 0, 2);
  ASSERT_TRUE(view.first_unexplored(0).has_value());
  EXPECT_EQ(*view.first_unexplored(0), 0u);
  (void)view.request_edge(0, 0);
  EXPECT_EQ(*view.first_unexplored(0), 1u);
  (void)view.request_edge(0, 1);
  EXPECT_FALSE(view.first_unexplored(0).has_value());
  EXPECT_FALSE(view.has_unexplored(0));
}

TEST(LocalViewWeak, TargetFoundOnReveal) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 2);
  (void)view.request_edge(0, 0);
  EXPECT_FALSE(view.target_found());
  (void)view.request_edge(1, 1);
  EXPECT_TRUE(view.target_found());
}

TEST(LocalViewWeak, DiscoveryPathIsGraphPath) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  (void)view.request_edge(0, 0);
  (void)view.request_edge(1, 1);
  (void)view.request_edge(2, 2);
  ASSERT_TRUE(view.target_found());
  const auto path = view.discovery_path();
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(LocalViewWeak, DiscoveryPathEmptyBeforeFound) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_TRUE(view.discovery_path().empty());
}

TEST(LocalViewWeak, StrongRequestRejected) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_THROW((void)view.request_vertex(0), std::invalid_argument);
}

TEST(LocalViewWeak, SelfLoopReveal) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kWeak, 0, 1);
  EXPECT_EQ(view.request_edge(0, 0), 0u);  // loop reveals itself
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_FALSE(view.target_found());
}

TEST(LocalViewWeak, DiscovererTracksFirstReveal) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kWeak, 0, 2);
  (void)view.request_edge(0, 0);  // reveal 1 via 0
  (void)view.request_edge(1, 2);  // reveal 2 via 1
  EXPECT_EQ(view.discoverer(1), 0u);
  EXPECT_EQ(view.discoverer(2), 1u);
  EXPECT_EQ(view.discoverer(0), kNoVertex);
  // Revealing 2 again via the direct edge must not change its discoverer.
  (void)view.request_edge(0, 1);
  EXPECT_EQ(view.discoverer(2), 1u);
}

// ----------------------------------------------------------------- strong

TEST(LocalViewStrong, RequestOpensAllEdges) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 1, 3);
  const auto neighbors = view.request_vertex(1);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_TRUE(view.is_known(0));
  EXPECT_TRUE(view.is_known(2));
  EXPECT_EQ(view.requests(), 1u);
}

TEST(LocalViewStrong, ChainToTarget) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  (void)view.request_vertex(0);
  EXPECT_FALSE(view.target_found());
  (void)view.request_vertex(1);
  EXPECT_FALSE(view.target_found());
  (void)view.request_vertex(2);
  EXPECT_TRUE(view.target_found());
  EXPECT_EQ(view.requests(), 3u);
}

TEST(LocalViewStrong, UnknownVertexNotRequestable) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  EXPECT_THROW((void)view.request_vertex(2), std::invalid_argument);
}

TEST(LocalViewStrong, RepeatRequestsFree) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  (void)view.request_vertex(0);
  (void)view.request_vertex(0);
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_EQ(view.raw_requests(), 2u);
  EXPECT_TRUE(view.vertex_requested(0));
  EXPECT_FALSE(view.vertex_requested(1));
}

TEST(LocalViewStrong, WeakRequestRejected) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  EXPECT_THROW((void)view.request_edge(0, 0), std::invalid_argument);
}

TEST(LocalViewStrong, DiscoveryPathValid) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  (void)view.request_vertex(0);
  (void)view.request_vertex(1);
  (void)view.request_vertex(2);
  const auto path = view.discovery_path();
  ASSERT_EQ(path.size(), 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(LocalViewStrong, NeighborsIncludeMultiplicity) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kStrong, 0, 1);
  const auto neighbors = view.request_vertex(0);
  EXPECT_EQ(neighbors.size(), 2u);
}

TEST(LocalView, NumVerticesExposed) {
  const Graph g = path4();
  const LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_EQ(view.num_vertices(), 4u);
}

TEST(LocalView, EndpointRangeChecked) {
  const Graph g = path4();
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 4, 0),
               std::invalid_argument);
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 0, 7),
               std::invalid_argument);
}

}  // namespace
