// Tests for LocalView: information gating, request accounting, discovery
// paths — the paper's two knowledge models made executable.
#include "search/local_view.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/builder.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::kNoVertex;
using sfs::graph::VertexId;
using sfs::search::KnowledgeModel;
using sfs::search::LivenessView;
using sfs::search::LocalView;
using sfs::search::SearchWorkspace;

// Path 0 - 1 - 2 - 3 (edges 0,1,2).
Graph path4() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  return b.build();
}

TEST(LocalViewWeak, StartIsKnownTargetIsNot) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_TRUE(view.is_known(0));
  EXPECT_FALSE(view.is_known(1));
  EXPECT_FALSE(view.target_found());
  EXPECT_EQ(view.requests(), 0u);
  ASSERT_EQ(view.known_vertices().size(), 1u);
  EXPECT_EQ(view.known_vertices()[0], 0u);
}

TEST(LocalViewWeak, TrivialSearchWhenStartIsTarget) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 2, 2);
  EXPECT_TRUE(view.target_found());
  EXPECT_EQ(view.discovery_path().size(), 1u);
}

TEST(LocalViewWeak, RequestRevealsFarEndpoint) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  const VertexId v = view.request_edge(0, 0);
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(view.is_known(1));
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_EQ(view.degree(1), 2u);  // degree of revealed vertex now visible
}

TEST(LocalViewWeak, UnknownVertexAccessRejected) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_THROW((void)view.degree(1), std::invalid_argument);
  EXPECT_THROW((void)view.incident(2), std::invalid_argument);
  EXPECT_THROW((void)view.request_edge(1, 1), std::invalid_argument);
  EXPECT_THROW((void)view.first_unexplored(3), std::invalid_argument);
}

TEST(LocalViewWeak, EdgeMustBeIncident) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_THROW((void)view.request_edge(0, 2), std::invalid_argument);
}

TEST(LocalViewWeak, RepeatRequestsAreFree) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  (void)view.request_edge(0, 0);
  (void)view.request_edge(0, 0);
  (void)view.request_edge(1, 0);  // same edge from the other side
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_EQ(view.raw_requests(), 3u);
}

TEST(LocalViewWeak, FarEndpointOnlyAfterExploration) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_FALSE(view.far_endpoint(0, 0).has_value());
  (void)view.request_edge(0, 0);
  ASSERT_TRUE(view.far_endpoint(0, 0).has_value());
  EXPECT_EQ(*view.far_endpoint(0, 0), 1u);
  EXPECT_EQ(*view.far_endpoint(0, 1), 0u);
}

TEST(LocalViewWeak, FirstUnexploredAdvances) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kWeak, 0, 2);
  ASSERT_TRUE(view.first_unexplored(0).has_value());
  EXPECT_EQ(*view.first_unexplored(0), 0u);
  (void)view.request_edge(0, 0);
  EXPECT_EQ(*view.first_unexplored(0), 1u);
  (void)view.request_edge(0, 1);
  EXPECT_FALSE(view.first_unexplored(0).has_value());
  EXPECT_FALSE(view.has_unexplored(0));
}

TEST(LocalViewWeak, TargetFoundOnReveal) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 2);
  (void)view.request_edge(0, 0);
  EXPECT_FALSE(view.target_found());
  (void)view.request_edge(1, 1);
  EXPECT_TRUE(view.target_found());
}

TEST(LocalViewWeak, DiscoveryPathIsGraphPath) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  (void)view.request_edge(0, 0);
  (void)view.request_edge(1, 1);
  (void)view.request_edge(2, 2);
  ASSERT_TRUE(view.target_found());
  const auto path = view.discovery_path();
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(LocalViewWeak, DiscoveryPathEmptyBeforeFound) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_TRUE(view.discovery_path().empty());
}

TEST(LocalViewWeak, StrongRequestRejected) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_THROW((void)view.request_vertex(0), std::invalid_argument);
}

TEST(LocalViewWeak, SelfLoopReveal) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kWeak, 0, 1);
  EXPECT_EQ(view.request_edge(0, 0), 0u);  // loop reveals itself
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_FALSE(view.target_found());
}

TEST(LocalViewWeak, DiscovererTracksFirstReveal) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kWeak, 0, 2);
  (void)view.request_edge(0, 0);  // reveal 1 via 0
  (void)view.request_edge(1, 2);  // reveal 2 via 1
  EXPECT_EQ(view.discoverer(1), 0u);
  EXPECT_EQ(view.discoverer(2), 1u);
  EXPECT_EQ(view.discoverer(0), kNoVertex);
  // Revealing 2 again via the direct edge must not change its discoverer.
  (void)view.request_edge(0, 1);
  EXPECT_EQ(view.discoverer(2), 1u);
}

// ----------------------------------------------------------------- strong

TEST(LocalViewStrong, RequestOpensAllEdges) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 1, 3);
  const auto neighbors = view.request_vertex(1);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_TRUE(view.is_known(0));
  EXPECT_TRUE(view.is_known(2));
  EXPECT_EQ(view.requests(), 1u);
}

TEST(LocalViewStrong, ChainToTarget) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  (void)view.request_vertex(0);
  EXPECT_FALSE(view.target_found());
  (void)view.request_vertex(1);
  EXPECT_FALSE(view.target_found());
  (void)view.request_vertex(2);
  EXPECT_TRUE(view.target_found());
  EXPECT_EQ(view.requests(), 3u);
}

TEST(LocalViewStrong, UnknownVertexNotRequestable) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  EXPECT_THROW((void)view.request_vertex(2), std::invalid_argument);
}

TEST(LocalViewStrong, RepeatRequestsFree) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  (void)view.request_vertex(0);
  (void)view.request_vertex(0);
  EXPECT_EQ(view.requests(), 1u);
  EXPECT_EQ(view.raw_requests(), 2u);
  EXPECT_TRUE(view.vertex_requested(0));
  EXPECT_FALSE(view.vertex_requested(1));
}

TEST(LocalViewStrong, WeakRequestRejected) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  EXPECT_THROW((void)view.request_edge(0, 0), std::invalid_argument);
}

TEST(LocalViewStrong, DiscoveryPathValid) {
  const Graph g = path4();
  LocalView view(g, KnowledgeModel::kStrong, 0, 3);
  (void)view.request_vertex(0);
  (void)view.request_vertex(1);
  (void)view.request_vertex(2);
  const auto path = view.discovery_path();
  ASSERT_EQ(path.size(), 4u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(LocalViewStrong, NeighborsIncludeMultiplicity) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  LocalView view(g, KnowledgeModel::kStrong, 0, 1);
  const auto neighbors = view.request_vertex(0);
  EXPECT_EQ(neighbors.size(), 2u);
}

TEST(LocalView, NumVerticesExposed) {
  const Graph g = path4();
  const LocalView view(g, KnowledgeModel::kWeak, 0, 3);
  EXPECT_EQ(view.num_vertices(), 4u);
}

TEST(LocalView, EndpointRangeChecked) {
  const Graph g = path4();
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 4, 0),
               std::invalid_argument);
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 0, 7),
               std::invalid_argument);
}

// ------------------------------------------------------- epoch wraparound

// Regression test for the stamp-wraparound guard in begin_run: after
// ~2^32 runs the epoch counter wraps, and stamps written by ancient runs
// would alias the fresh epoch unless the arrays are re-zeroed. Simulated
// via SearchWorkspace::debug_fast_forward_epoch instead of 2^32 real runs.
TEST(SearchWorkspaceEpoch, WrapRezeroesStaleStamps) {
  const Graph g = path4();
  SearchWorkspace ws;
  {
    // Run at epoch 1: reveal vertex 1 so known/explored stamps hold 1.
    LocalView view(g, KnowledgeModel::kWeak, 0, 3, ws);
    ASSERT_EQ(ws.debug_epoch(), 1u);
    (void)view.request_edge(0, 0);
    ASSERT_TRUE(view.is_known(1));
  }
  ws.debug_fast_forward_epoch(std::numeric_limits<std::uint32_t>::max());
  // The next run wraps the counter back to epoch 1 — the exact value the
  // stale stamps still hold. Without the re-zeroing guard, vertex 1 and
  // edge 0 would leak into this run as spuriously known/explored.
  LocalView view(g, KnowledgeModel::kWeak, 0, 3, ws);
  EXPECT_EQ(ws.debug_epoch(), 1u);
  EXPECT_FALSE(view.is_known(1));
  EXPECT_FALSE(view.edge_explored(0));
  ASSERT_EQ(view.known_vertices().size(), 1u);
  EXPECT_EQ(view.known_vertices()[0], 0u);
  // And the post-wrap run behaves like any other.
  EXPECT_EQ(view.request_edge(0, 0), 1u);
  EXPECT_TRUE(view.is_known(1));
  EXPECT_EQ(view.requests(), 1u);
}

TEST(SearchWorkspaceEpoch, SurvivesRunsStraddlingTheWrap) {
  const Graph g = path4();
  SearchWorkspace ws;
  ws.debug_fast_forward_epoch(std::numeric_limits<std::uint32_t>::max() - 1);
  for (int run = 0; run < 4; ++run) {
    LocalView view(g, KnowledgeModel::kStrong, 0, 3, ws);
    EXPECT_FALSE(view.is_known(1)) << "run " << run;
    (void)view.request_vertex(0);
    EXPECT_TRUE(view.is_known(1)) << "run " << run;
    EXPECT_EQ(view.requests(), 1u) << "run " << run;
  }
}

TEST(SearchWorkspaceEpoch, FastForwardIsForwardOnly) {
  SearchWorkspace ws;
  ws.debug_fast_forward_epoch(100u);
  EXPECT_EQ(ws.debug_epoch(), 100u);
  EXPECT_THROW(ws.debug_fast_forward_epoch(99u), std::invalid_argument);
}

// ------------------------------------------------------- liveness masks

// path4 masks: all alive unless flipped.
struct Masks {
  std::vector<std::uint8_t> v;
  std::vector<std::uint8_t> e;
  explicit Masks(const Graph& g)
      : v(g.num_vertices(), 1u), e(g.num_edges(), 1u) {}
  [[nodiscard]] LivenessView view() const { return {v, e}; }
};

TEST(LocalViewLiveness, EmptyMaskMatchesStaticBehavior) {
  const Graph g = path4();
  LocalView masked(g, KnowledgeModel::kWeak, 0, 3, LivenessView{});
  EXPECT_EQ(masked.request_edge(0, 0), 1u);
  EXPECT_EQ(masked.failed_requests(), 0u);
}

TEST(LocalViewLiveness, WeakProbeOfDeadEdgeFails) {
  const Graph g = path4();
  Masks m(g);
  m.e[0] = 0;  // link 0-1 failed
  LocalView view(g, KnowledgeModel::kWeak, 0, 3, m.view());
  EXPECT_EQ(view.request_edge(0, 0), kNoVertex);
  EXPECT_FALSE(view.is_known(1));
  EXPECT_EQ(view.failed_requests(), 1u);
  EXPECT_EQ(view.raw_requests(), 1u);
  EXPECT_EQ(view.requests(), 0u);  // failures are never charged
  // The dead link is marked explored so policies stop offering it...
  EXPECT_TRUE(view.edge_explored(0));
  EXPECT_FALSE(view.has_unexplored(0));
  // ...and re-probing it stays a failure, not a cached success.
  EXPECT_EQ(view.request_edge(0, 0), kNoVertex);
  EXPECT_EQ(view.failed_requests(), 2u);
  EXPECT_EQ(view.requests(), 0u);
}

TEST(LocalViewLiveness, WeakProbeOfDepartedEndpointFails) {
  const Graph g = path4();
  Masks m(g);
  m.v[1] = 0;  // peer 1 departed; edge 0 itself still "up"
  LocalView view(g, KnowledgeModel::kWeak, 0, 2, m.view());
  EXPECT_EQ(view.request_edge(0, 0), kNoVertex);
  EXPECT_FALSE(view.is_known(1));
  EXPECT_EQ(view.failed_requests(), 1u);
  EXPECT_TRUE(view.edge_explored(0));
}

TEST(LocalViewLiveness, StrongRequestOfDepartedVertexFails) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  const Graph g = b.build();
  Masks m(g);
  m.v[1] = 0;
  LocalView view(g, KnowledgeModel::kStrong, 0, 3, m.view());
  // Opening 0 over live edges still lists departed neighbor 1: routing
  // tables are stale, identities leak before liveness does.
  (void)view.request_vertex(0);
  ASSERT_TRUE(view.is_known(1));
  const auto dead = view.request_vertex(1);
  EXPECT_TRUE(dead.empty());
  EXPECT_EQ(view.failed_requests(), 1u);
  EXPECT_EQ(view.requests(), 1u);  // only the live open was charged
  EXPECT_FALSE(view.is_known(3));
  // The failed vertex is marked requested so policies skip it.
  EXPECT_TRUE(view.vertex_requested(1));
}

TEST(LocalViewLiveness, StrongOpenSkipsDeadEdgeSlots) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  Masks m(g);
  m.e[1] = 0;  // link 0-2 failed; vertex 2 alive but unreachable via it
  LocalView view(g, KnowledgeModel::kStrong, 0, 2, m.view());
  (void)view.request_vertex(0);
  EXPECT_TRUE(view.is_known(1));
  EXPECT_FALSE(view.is_known(2));  // endpoint behind a dead link invisible
  EXPECT_FALSE(view.target_found());
}

TEST(LocalViewLiveness, CtorRejectsDeadEndpointsAndBadMaskSizes) {
  const Graph g = path4();
  Masks m(g);
  m.v[0] = 0;
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 0, 3, m.view()),
               std::invalid_argument);
  m.v[0] = 1;
  m.v[3] = 0;
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 0, 3, m.view()),
               std::invalid_argument);
  const std::vector<std::uint8_t> short_mask(2, 1u);
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 0, 3,
                         LivenessView{short_mask, {}}),
               std::invalid_argument);
  EXPECT_THROW(LocalView(g, KnowledgeModel::kWeak, 0, 3,
                         LivenessView{{}, short_mask}),
               std::invalid_argument);
}

}  // namespace
