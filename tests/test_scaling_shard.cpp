// Tests for sharded scaling sweeps: k shard processes writing k
// checkpoints, folded by merge_checkpoints + an unsharded replay, must be
// bit-identical to one process computing the whole grid — at any thread
// count per shard.
#include "sim/scaling.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rng/random.hpp"

namespace {

using sfs::sim::measure_scaling;
using sfs::sim::measure_scaling_shard;
using sfs::sim::merge_checkpoints;
using sfs::sim::ScalingOptions;
using sfs::sim::ScalingSeries;

// Bit-exact equality of two series, including every raw replication value
// and the derived fits (same contract as the checkpoint-resume tests).
void expect_bit_identical(const ScalingSeries& a, const ScalingSeries& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].n, b.points[i].n);
    ASSERT_EQ(a.points[i].raw.size(), b.points[i].raw.size());
    for (std::size_t r = 0; r < a.points[i].raw.size(); ++r) {
      EXPECT_EQ(a.points[i].raw[r], b.points[i].raw[r]);
    }
    EXPECT_EQ(a.points[i].summary.mean, b.points[i].summary.mean);
    EXPECT_EQ(a.points[i].summary.variance, b.points[i].summary.variance);
  }
  EXPECT_EQ(a.fit.slope, b.fit.slope);
  EXPECT_EQ(a.fit.intercept, b.fit.intercept);
  EXPECT_EQ(a.weighted_fit.slope, b.weighted_fit.slope);
  EXPECT_EQ(a.weighted_fit.intercept, b.weighted_fit.intercept);
  EXPECT_EQ(a.slope_ci.point, b.slope_ci.point);
  EXPECT_EQ(a.slope_ci.lo, b.slope_ci.lo);
  EXPECT_EQ(a.slope_ci.hi, b.slope_ci.hi);
  EXPECT_EQ(a.excluded, b.excluded);
}

std::string temp_path(const char* name) {
  const std::string path = ::testing::TempDir() + "sfs_shard_" + name + ".csv";
  std::remove(path.c_str());
  return path;
}

// Deterministic, thread-safe stand-in for a real measurement: depends on
// both n and the derived cell seed, so a shard computing the wrong cell
// or reusing the wrong seed changes the folded bits.
double synthetic_measure(std::size_t n, std::uint64_t seed) {
  const double jitter =
      static_cast<double>(sfs::rng::mix64(seed) >> 11) * 0x1.0p-53;
  return static_cast<double>(n) * (1.0 + 0.25 * jitter);
}

const std::vector<std::size_t> kSizes = {100, 200, 400, 800};
constexpr std::size_t kReps = 3;
constexpr std::uint64_t kSeed = 0x5AAD5EED;

ScalingOptions base_options() {
  ScalingOptions options;
  options.threads = 1;
  options.bootstrap_replicates = 50;
  return options;
}

// Runs shard i/k into its own checkpoint with the given thread count;
// returns the checkpoint path.
std::string run_shard(const char* tag, std::size_t index, std::size_t count,
                      std::size_t threads, std::atomic<std::size_t>* calls,
                      std::uint64_t seed = kSeed) {
  std::ostringstream name;
  name << tag << "_" << index << "of" << count;
  const std::string path = temp_path(name.str().c_str());
  ScalingOptions options = base_options();
  options.threads = threads;
  options.checkpoint_path = path;
  const std::size_t measured = measure_scaling_shard(
      kSizes, kReps, seed,
      [&](std::size_t n, std::uint64_t s) {
        if (calls != nullptr) calls->fetch_add(1);
        return synthetic_measure(n, s);
      },
      options, index, count);
  EXPECT_GT(measured, 0u);
  return path;
}

// Folds a merged checkpoint into a series without recomputing any cell:
// the replay must find every cell already present.
ScalingSeries fold_merged(const std::string& merged) {
  ScalingOptions options = base_options();
  options.checkpoint_path = merged;
  std::atomic<std::size_t> recomputed{0};
  const auto series = measure_scaling(
      kSizes, kReps, kSeed,
      [&](std::size_t n, std::uint64_t s) {
        recomputed.fetch_add(1);
        return synthetic_measure(n, s);
      },
      options);
  EXPECT_EQ(recomputed.load(), 0u)
      << "folding a merged checkpoint must replay, not recompute";
  return series;
}

TEST(ScalingShard, TwoShardsMergedFoldBitIdenticalToSingleProcess) {
  const auto direct =
      measure_scaling(kSizes, kReps, kSeed, synthetic_measure, base_options());

  std::atomic<std::size_t> calls{0};
  const std::string s0 = run_shard("two", 0, 2, /*threads=*/1, &calls);
  const std::string s1 = run_shard("two", 1, 2, /*threads=*/1, &calls);
  EXPECT_EQ(calls.load(), kSizes.size() * kReps);

  const std::string merged = temp_path("two_merged");
  EXPECT_EQ(merge_checkpoints({s0, s1}, merged), kSizes.size() * kReps);
  expect_bit_identical(direct, fold_merged(merged));
}

TEST(ScalingShard, ThreeShardsWithThreadedWorkersStayBitIdentical) {
  const auto direct =
      measure_scaling(kSizes, kReps, kSeed, synthetic_measure, base_options());

  // Uneven split (12 cells over 3 shards of 4) with a 4-worker pool per
  // shard: completion order inside each shard is nondeterministic, the
  // folded bits must not be.
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < 3; ++i) {
    paths.push_back(run_shard("three", i, 3, /*threads=*/4, nullptr));
  }
  const std::string merged = temp_path("three_merged");
  EXPECT_EQ(merge_checkpoints(paths, merged), kSizes.size() * kReps);
  expect_bit_identical(direct, fold_merged(merged));

  // Merge order must not matter either.
  const std::string merged_rev = temp_path("three_merged_rev");
  EXPECT_EQ(merge_checkpoints({paths[2], paths[0], paths[1]}, merged_rev),
            kSizes.size() * kReps);
  expect_bit_identical(direct, fold_merged(merged_rev));
}

TEST(ScalingShard, ScratchOverloadMatchesPlainOverload) {
  const auto direct =
      measure_scaling(kSizes, kReps, kSeed, synthetic_measure, base_options());

  const std::string s0 = temp_path("scratch_0of2");
  const std::string s1 = temp_path("scratch_1of2");
  for (std::size_t i = 0; i < 2; ++i) {
    ScalingOptions options = base_options();
    options.checkpoint_path = i == 0 ? s0 : s1;
    const std::size_t measured = measure_scaling_shard(
        kSizes, kReps, kSeed,
        [](std::size_t n, std::uint64_t s, sfs::gen::GenScratch&) {
          return synthetic_measure(n, s);
        },
        options, i, 2);
    EXPECT_EQ(measured, kSizes.size() * kReps / 2);
  }
  const std::string merged = temp_path("scratch_merged");
  EXPECT_EQ(merge_checkpoints({s0, s1}, merged), kSizes.size() * kReps);
  expect_bit_identical(direct, fold_merged(merged));
}

TEST(ScalingShard, ShardResumeSkipsCompletedCells) {
  std::atomic<std::size_t> calls{0};
  const std::string path = run_shard("resume", 0, 2, /*threads=*/1, &calls);
  const std::size_t first = calls.load();
  EXPECT_GT(first, 0u);

  // Rerunning the same shard against its checkpoint measures nothing new.
  ScalingOptions options = base_options();
  options.checkpoint_path = path;
  const std::size_t measured = measure_scaling_shard(
      kSizes, kReps, kSeed,
      [&](std::size_t n, std::uint64_t s) {
        calls.fetch_add(1);
        return synthetic_measure(n, s);
      },
      options, 0, 2);
  EXPECT_EQ(measured, 0u);
  EXPECT_EQ(calls.load(), first);
}

TEST(ScalingShard, RejectsBadShardArguments) {
  ScalingOptions with_ckpt = base_options();
  with_ckpt.checkpoint_path = temp_path("args");
  // Checkpoint path is mandatory: it is the shard's only output.
  EXPECT_THROW(measure_scaling_shard(kSizes, kReps, kSeed, synthetic_measure,
                                     base_options(), 0, 2),
               std::invalid_argument);
  // shard_index must be < shard_count, and shard_count nonzero.
  EXPECT_THROW(measure_scaling_shard(kSizes, kReps, kSeed, synthetic_measure,
                                     with_ckpt, 2, 2),
               std::invalid_argument);
  EXPECT_THROW(measure_scaling_shard(kSizes, kReps, kSeed, synthetic_measure,
                                     with_ckpt, 0, 0),
               std::invalid_argument);
}

TEST(ScalingShard, MergeRejectsMismatchedGrids) {
  std::vector<std::string> paths;
  paths.push_back(run_shard("meta", 0, 2, 1, nullptr));
  // Same shard layout, different base seed: the meta rows disagree.
  paths.push_back(run_shard("meta_other", 1, 2, 1, nullptr, kSeed ^ 1));
  const std::string merged = temp_path("meta_merged");
  EXPECT_THROW(merge_checkpoints(paths, merged), std::invalid_argument);
}

TEST(ScalingShard, MergeRejectsConflictingCellValues) {
  const std::string a = run_shard("conflict", 0, 1, 1, nullptr);

  // Forge a second checkpoint that disagrees on one completed cell.
  std::ifstream in(a);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_GT(lines.size(), 3u);
  std::string& row = lines[2];  // first data row: idx,n,rep,value,end
  const auto comma = row.find(',', row.find(',', row.find(',') + 1) + 1);
  ASSERT_NE(comma, std::string::npos);
  row.insert(comma + 1, "9");  // prepend a digit to the value field

  const std::string b = temp_path("conflict_forged");
  std::ofstream out(b, std::ios::binary);
  for (const auto& l : lines) out << l << '\n';
  out.close();

  const std::string merged = temp_path("conflict_merged");
  EXPECT_THROW(merge_checkpoints({a, b}, merged), std::invalid_argument);
}

TEST(ScalingShard, MergeRequiresInputs) {
  EXPECT_THROW(merge_checkpoints({}, temp_path("empty_merged")),
               std::invalid_argument);
  EXPECT_THROW(
      merge_checkpoints({::testing::TempDir() + "sfs_shard_does_not_exist.csv"},
                        temp_path("missing_merged")),
      std::invalid_argument);
}

}  // namespace
