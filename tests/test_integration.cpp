// Cross-module integration tests: miniature versions of the paper's
// experiments wired end-to-end (generator -> search -> stats -> theory).
#include <gtest/gtest.h>

#include <cmath>

#include "core/lower_bound.hpp"
#include "core/theory.hpp"
#include "gen/barabasi_albert.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "graph/degree.hpp"
#include "graph/io.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/scaling.hpp"
#include "sim/sweep.hpp"
#include "stats/powerlaw.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

// V2 plan API: the whole measurement in one value (docs/SEARCH.md).
sfs::sim::RunPlan weak_plan(sfs::sim::GraphFactory factory,
                            sfs::sim::EndpointSelector endpoints,
                            std::size_t reps, std::uint64_t seed,
                            std::size_t max_raw) {
  sfs::sim::RunPlan plan;
  plan.factory = std::move(factory);
  plan.endpoints = std::move(endpoints);
  plan.reps = reps;
  plan.seed = seed;
  plan.budget.max_raw_requests = max_raw;
  return plan;
}

// E1 in miniature: weak-model cost of finding the newest Móri vertex grows
// polynomially (log-log slope clearly positive, consistent with 1/2).
TEST(Integration, WeakSearchCostGrowsPolynomially) {
  const auto series = sfs::sim::measure_scaling(
      {256, 512, 1024, 2048}, 6, 101,
      [](std::size_t n, std::uint64_t seed) {
        const auto cost = sfs::sim::measure_portfolio(weak_plan(
            [n](Rng& rng) {
              return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
            },
            sfs::sim::oldest_to_newest(), 1, seed, 5000000));
        return cost.best_policy().requests.mean;
      });
  EXPECT_GT(series.fit.slope, 0.25);
  EXPECT_LT(series.fit.slope, 1.1);
}

// Contrast: the diameter is logarithmic while search cost is polynomial.
TEST(Integration, DiameterLogarithmicWhileSearchPolynomial) {
  Rng rng(5);
  const Graph small =
      sfs::gen::mori_tree(1024, sfs::gen::MoriParams{0.5}, rng);
  const Graph large =
      sfs::gen::mori_tree(16384, sfs::gen::MoriParams{0.5}, rng);
  const auto d_small = sfs::graph::pseudo_diameter(small);
  const auto d_large = sfs::graph::pseudo_diameter(large);
  // 16x more vertices, diameter grows far sublinearly (log-like): at most
  // ~3x on trees of this shape.
  EXPECT_LT(d_large, 3 * d_small + 5);
}

// E6 in miniature: Móri degree distribution is heavy-tailed with exponent
// near 1 + 1/p.
TEST(Integration, MoriDegreeExponentMatchesTheory) {
  Rng rng(7);
  const double p = 0.5;
  const Graph g = sfs::gen::mori_tree(60000, sfs::gen::MoriParams{p}, rng);
  const auto degrees =
      sfs::graph::degree_sequence(g, sfs::graph::DegreeKind::kIn);
  std::vector<std::size_t> positive;
  for (const auto d : degrees) {
    if (d >= 1) positive.push_back(d);
  }
  // Finite-size effect: the fitted exponent approaches the asymptotic
  // 1 + 1/p = 3 from below as the tail threshold grows (the small-degree
  // bulk is not yet a pure power law at n = 6e4).
  const auto deep_tail = sfs::stats::fit_power_law_tail(positive, 10);
  const auto shallow = sfs::stats::fit_power_law_tail(positive, 3);
  const double predicted =
      sfs::core::theory::mori_degree_distribution_exponent(p);
  EXPECT_NEAR(deep_tail.alpha, predicted, 0.5);
  EXPECT_GT(deep_tail.alpha, shallow.alpha);  // converging upward
  EXPECT_LT(deep_tail.alpha, predicted + 0.2);
}

// E5 in miniature: Móri max degree grows roughly like t^p.
TEST(Integration, MoriMaxDegreeExponent) {
  const double p = 0.75;
  const auto series = sfs::sim::measure_scaling(
      {2000, 4000, 8000, 16000, 32000}, 4, 11,
      [p](std::size_t n, std::uint64_t seed) {
        Rng rng(seed);
        const Graph g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
        return static_cast<double>(
            sfs::graph::max_degree(g, sfs::graph::DegreeKind::kIn));
      });
  EXPECT_NEAR(series.fit.slope, p, 0.2);
}

// E10 in miniature: the measured best-policy cost respects the estimated
// Lemma-1 bound.
TEST(Integration, MeasuredCostRespectsLowerBound) {
  const std::size_t n = 1024;
  const auto bound = sfs::core::mori_lower_bound(0.5, n, 2000, 13);
  const auto cost = sfs::sim::measure_portfolio(weak_plan(
      [n](Rng& rng) {
        return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
      },
      sfs::sim::oldest_to_newest(), 10, 17, 5000000));
  // The bound is for expected cost; compare against the portfolio best with
  // slack for replication noise.
  EXPECT_GT(cost.best_policy().requests.mean, 0.5 * bound.bound);
}

// Serialization round-trip composes with search: identical results.
TEST(Integration, SerializedGraphSearchesIdentically) {
  Rng rng(19);
  const Graph g = sfs::gen::merged_mori_graph(
      300, 2, sfs::gen::MoriParams{0.6}, rng);
  const Graph h = sfs::graph::from_string(sfs::graph::to_string(g));
  sfs::search::BfsWeak bfs1;
  sfs::search::BfsWeak bfs2;
  Rng r1(23);
  Rng r2(23);
  const auto a = sfs::search::run_weak(g, 0, 299, bfs1, r1);
  const auto b = sfs::search::run_weak(h, 0, 299, bfs2, r2);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.path_length, b.path_length);
  EXPECT_TRUE(a.found);
}

// Cooper-Frieze graphs behave like Móri for searching: newest vertex is
// expensive relative to the oldest.
TEST(Integration, CooperFriezeNewestHarderThanOldest) {
  sfs::gen::CooperFriezeParams params;
  auto factory = [&params](Rng& rng) {
    return sfs::gen::cooper_frieze(500, params, rng).graph;
  };
  const auto to_newest = sfs::sim::measure_portfolio(
      weak_plan(factory, sfs::sim::oldest_to_newest(), 6, 29, 5000000));
  const auto to_oldest = sfs::sim::measure_portfolio(
      weak_plan(factory, sfs::sim::newest_to_paper_id(1), 6, 29, 5000000));
  EXPECT_LT(to_oldest.best_policy().requests.mean,
            to_newest.best_policy().requests.mean);
}

// BA graphs (total-degree preferential) have max degree ~ sqrt(n) — the
// regime where the paper notes its strong-model bound goes trivial.
TEST(Integration, BaMaxDegreeNearSqrt) {
  const auto series = sfs::sim::measure_scaling(
      {4000, 8000, 16000, 32000}, 4, 31,
      [](std::size_t n, std::uint64_t seed) {
        Rng rng(seed);
        const Graph g = sfs::gen::barabasi_albert(
            n, sfs::gen::BarabasiAlbertParams{1, true}, rng);
        return static_cast<double>(sfs::graph::max_degree(
            g, sfs::graph::DegreeKind::kUndirected));
      });
  EXPECT_NEAR(series.fit.slope, 0.5, 0.2);
}

}  // namespace
