// Tests for the Móri tree and merged Móri graph — structural invariants,
// degenerate parameter values, and the exact attachment law.
#include "gen/mori.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/degree.hpp"

namespace {

using sfs::gen::fathers;
using sfs::gen::merge_consecutive;
using sfs::gen::merged_mori_graph;
using sfs::gen::mori_tree;
using sfs::gen::MoriParams;
using sfs::gen::MoriProcess;
using sfs::graph::Graph;
using sfs::graph::kNoVertex;
using sfs::graph::VertexId;
using sfs::rng::Rng;

class MoriInvariants : public ::testing::TestWithParam<double> {};

TEST_P(MoriInvariants, IsRecursiveTree) {
  Rng rng(11);
  const Graph g = mori_tree(500, MoriParams{GetParam()}, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_EQ(g.num_edges(), 499u);
  EXPECT_TRUE(sfs::graph::is_tree(g));
  // Every non-root vertex has exactly one out-edge, to an older vertex.
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.out_degree(v), 1u);
  }
  EXPECT_EQ(g.out_degree(0), 0u);
  for (const auto& e : g.edges()) EXPECT_LT(e.head, e.tail);
}

TEST_P(MoriInvariants, FathersAccessorConsistent) {
  Rng rng(13);
  const Graph g = mori_tree(200, MoriParams{GetParam()}, rng);
  const auto f = fathers(g);
  EXPECT_EQ(f[0], kNoVertex);
  for (VertexId v = 1; v < 200; ++v) {
    EXPECT_LT(f[v], v);
    EXPECT_TRUE(g.has_edge(v, f[v]));
  }
}

TEST_P(MoriInvariants, DeterministicForSeed) {
  Rng a(17);
  Rng b(17);
  const Graph g1 = mori_tree(100, MoriParams{GetParam()}, a);
  const Graph g2 = mori_tree(100, MoriParams{GetParam()}, b);
  for (sfs::graph::EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).head, g2.edge(e).head);
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, MoriInvariants,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

TEST(Mori, PEqualsOneIsStar) {
  // With pure indegree preference only vertex 1 (internal 0) ever has
  // positive weight, so every vertex attaches to the root.
  Rng rng(19);
  const Graph g = mori_tree(300, MoriParams{1.0}, rng);
  for (VertexId v = 1; v < 300; ++v) {
    EXPECT_EQ(fathers(g)[v], 0u);
  }
  EXPECT_EQ(g.degree(0), 299u);
}

TEST(Mori, PZeroIsUniformRecursiveTree) {
  // Under p = 0 the father of vertex t is uniform over [0, t-1): check the
  // father of vertex 3 (internal id 2, choosing among 2 vertices).
  int chose_root = 0;
  constexpr int kReps = 20000;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(sfs::rng::derive_seed(23, static_cast<std::uint64_t>(rep)));
    MoriProcess proc((MoriParams{0.0}));
    (void)proc.step(rng);
    if (proc.all_fathers()[2] == 0u) ++chose_root;
  }
  EXPECT_NEAR(static_cast<double>(chose_root) / kReps, 0.5, 0.01);
}

class MoriAttachmentLaw : public ::testing::TestWithParam<double> {};

TEST_P(MoriAttachmentLaw, VertexThreeExactLaw) {
  // At t = 3: weights are 1 for vertex 1 and (1-p) for vertex 2, so
  // P(N_3 = 1) = 1 / (2 - p) exactly.
  const double p = GetParam();
  int chose_one = 0;
  constexpr int kReps = 40000;
  for (int rep = 0; rep < kReps; ++rep) {
    Rng rng(sfs::rng::derive_seed(29, static_cast<std::uint64_t>(rep)));
    MoriProcess proc((MoriParams{p}));
    (void)proc.step(rng);
    if (proc.all_fathers()[2] == 0u) ++chose_one;
  }
  EXPECT_NEAR(static_cast<double>(chose_one) / kReps, 1.0 / (2.0 - p), 0.01)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(PSweep, MoriAttachmentLaw,
                         ::testing::Values(0.2, 0.5, 0.8));

TEST(MoriProcess, StartsAtTimeTwo) {
  MoriProcess proc((MoriParams{0.5}));
  EXPECT_EQ(proc.size(), 2u);
  EXPECT_EQ(proc.all_fathers()[0], kNoVertex);
  EXPECT_EQ(proc.all_fathers()[1], 0u);
  EXPECT_EQ(proc.in_degree(0), 1u);
  EXPECT_EQ(proc.in_degree(1), 0u);
}

TEST(MoriProcess, StepReturnsFather) {
  Rng rng(31);
  MoriProcess proc((MoriParams{0.5}));
  const VertexId f = proc.step(rng);
  EXPECT_LT(f, 2u);
  EXPECT_EQ(proc.all_fathers()[2], f);
  EXPECT_EQ(proc.size(), 3u);
}

TEST(MoriProcess, InDegreesSumToEdges) {
  Rng rng(37);
  MoriProcess proc((MoriParams{0.6}));
  proc.grow_to(150, rng);
  std::size_t total = 0;
  for (VertexId v = 0; v < 150; ++v) total += proc.in_degree(v);
  EXPECT_EQ(total, 149u);
}

TEST(MoriProcess, GraphMatchesProcess) {
  Rng rng(41);
  MoriProcess proc((MoriParams{0.3}));
  proc.grow_to(60, rng);
  const Graph g = proc.graph();
  for (VertexId v = 0; v < 60; ++v) {
    EXPECT_EQ(g.in_degree(v), proc.in_degree(v));
  }
}

TEST(Mori, MaxDegreeGrowsWithP) {
  // Coarse check of Móri's t^p law: larger p -> markedly larger max degree.
  Rng rng(43);
  const Graph low = mori_tree(4000, MoriParams{0.2}, rng);
  const Graph high = mori_tree(4000, MoriParams{0.9}, rng);
  const auto dmax_low =
      sfs::graph::max_degree(low, sfs::graph::DegreeKind::kUndirected);
  const auto dmax_high =
      sfs::graph::max_degree(high, sfs::graph::DegreeKind::kUndirected);
  EXPECT_GT(dmax_high, 3 * dmax_low);
}

TEST(MergeConsecutive, ContractsGroups) {
  // Tree: 1-0, 2-0, 3-1 (internal ids), merge m=2: groups {0,1}, {2,3}.
  sfs::graph::GraphBuilder b(4);
  b.add_edge(1, 0);
  b.add_edge(2, 0);
  b.add_edge(3, 1);
  const Graph merged = merge_consecutive(b.build(), 2);
  EXPECT_EQ(merged.num_vertices(), 2u);
  EXPECT_EQ(merged.num_edges(), 3u);
  // Edge 1->0 becomes a self-loop at merged vertex 0.
  EXPECT_TRUE(merged.edge(0).is_loop());
  EXPECT_EQ(merged.edge(1).tail, 1u);
  EXPECT_EQ(merged.edge(1).head, 0u);
}

TEST(MergeConsecutive, RejectsIndivisible) {
  sfs::graph::GraphBuilder b(3);
  EXPECT_THROW((void)merge_consecutive(b.build(), 2), std::invalid_argument);
}

TEST(MergeConsecutive, IdentityForMOne) {
  Rng rng(47);
  const Graph g = mori_tree(50, MoriParams{0.5}, rng);
  const Graph m = merge_consecutive(g, 1);
  EXPECT_EQ(m.num_vertices(), g.num_vertices());
  EXPECT_EQ(m.num_edges(), g.num_edges());
}

class MergedMori : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergedMori, CountsAndConnectivity) {
  const std::size_t m = GetParam();
  Rng rng(53);
  const Graph g = merged_mori_graph(200, m, MoriParams{0.5}, rng);
  EXPECT_EQ(g.num_vertices(), 200u);
  EXPECT_EQ(g.num_edges(), 200 * m - 1);
  EXPECT_TRUE(sfs::graph::is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(MSweep, MergedMori, ::testing::Values(1u, 2u, 3u, 5u));

TEST(MergedMori, DegreeIsAtLeastM) {
  // Each merged vertex absorbs m tree vertices, each with >= 1 incident
  // edge, so merged degree >= m (except possibly reduced by nothing: loops
  // still count twice).
  Rng rng(59);
  const std::size_t m = 4;
  const Graph g = merged_mori_graph(100, m, MoriParams{0.5}, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), m) << "vertex " << v;
  }
}

TEST(Mori, Preconditions) {
  Rng rng(61);
  EXPECT_THROW((void)mori_tree(1, MoriParams{0.5}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)mori_tree(10, MoriParams{1.5}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)merged_mori_graph(0, 2, MoriParams{0.5}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)merged_mori_graph(1, 1, MoriParams{0.5}, rng),
               std::invalid_argument);
}

TEST(Fathers, RejectsNonRecursiveTrees) {
  sfs::graph::GraphBuilder b(3);
  b.add_edge(0, 1);  // edge toward a younger vertex
  b.add_edge(2, 1);
  EXPECT_THROW((void)fathers(b.build()), std::invalid_argument);

  sfs::graph::GraphBuilder c(3);
  c.add_edge(1, 0);
  c.add_edge(1, 0);  // vertex 1 has two out-edges; vertex 2 none
  EXPECT_THROW((void)fathers(c.build()), std::invalid_argument);
}

}  // namespace
