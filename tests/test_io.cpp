// Tests for edge-list serialization.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"

namespace {

using sfs::graph::from_string;
using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::read_edge_list;
using sfs::graph::to_string;

Graph sample() {
  GraphBuilder b(4);
  b.add_edge(1, 0);
  b.add_edge(2, 0);
  b.add_edge(3, 1);
  b.add_edge(3, 3);  // loop survives round-trip
  return b.build();
}

TEST(Io, RoundTripPreservesEverything) {
  const Graph g = sample();
  const Graph h = from_string(to_string(g));
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (sfs::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).tail, g.edge(e).tail);
    EXPECT_EQ(h.edge(e).head, g.edge(e).head);
  }
}

TEST(Io, FormatIsStable) {
  const std::string text = to_string(sample());
  EXPECT_EQ(text,
            "sfsearch-graph v1\n"
            "4 4\n"
            "1 0\n"
            "2 0\n"
            "3 1\n"
            "3 3\n");
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# leading comment\n"
      "sfsearch-graph v1\n"
      "\n"
      "2 1   # header trailing comment\n"
      "  0 1  \n";
  const Graph g = from_string(text);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Io, RejectsBadMagic) {
  EXPECT_THROW((void)from_string("bogus v9\n1 0\n"), std::invalid_argument);
}

TEST(Io, RejectsTruncatedEdgeList) {
  EXPECT_THROW((void)from_string("sfsearch-graph v1\n2 2\n0 1\n"),
               std::invalid_argument);
}

TEST(Io, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW((void)from_string("sfsearch-graph v1\n2 1\n0 2\n"),
               std::invalid_argument);
}

TEST(Io, RejectsMalformedHeader) {
  EXPECT_THROW((void)from_string("sfsearch-graph v1\nnot numbers\n"),
               std::invalid_argument);
}

TEST(Io, RejectsEmptyInput) {
  EXPECT_THROW((void)from_string(""), std::invalid_argument);
}

TEST(Io, EmptyGraphRoundTrips) {
  const Graph g = GraphBuilder(0).build();
  const Graph h = from_string(to_string(g));
  EXPECT_EQ(h.num_vertices(), 0u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(Io, FileSaveLoad) {
  const Graph g = sample();
  const std::string path = testing::TempDir() + "/sfs_io_test.graph";
  sfs::graph::save(path, g);
  const Graph h = sfs::graph::load(path);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
}

TEST(Io, LoadMissingFileThrows) {
  EXPECT_THROW((void)sfs::graph::load("/nonexistent/dir/x.graph"),
               std::runtime_error);
}

}  // namespace
