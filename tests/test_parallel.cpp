// Tests for the deterministic parallel replication engine and the
// zero-allocation search workspace: parallel results must be bit-identical
// to sequential, and workspace-reusing runs must match fresh-LocalView
// runs request-for-request.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/scaling.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::search::KnowledgeModel;
using sfs::search::LocalView;
using sfs::search::SearchResult;
using sfs::search::SearchWorkspace;
using sfs::sim::measure_portfolio;
using sfs::sim::oldest_to_newest;
using sfs::sim::PortfolioCost;
using sfs::sim::RunPlan;

sfs::sim::GraphFactory mori_factory(std::size_t n, double p) {
  return [n, p](sfs::rng::Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
  };
}

// V2 plan API (docs/SEARCH.md): one value per measurement.
RunPlan mori_plan(KnowledgeModel model, std::size_t n, double p,
                  std::size_t reps, std::uint64_t seed,
                  std::size_t max_raw, std::size_t threads) {
  RunPlan plan;
  plan.model = model;
  plan.factory = mori_factory(n, p);
  plan.endpoints = oldest_to_newest();
  plan.reps = reps;
  plan.seed = seed;
  plan.budget.max_raw_requests = max_raw;
  plan.threads = threads;
  return plan;
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, CoversEveryTaskExactlyOnce) {
  sfs::sim::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t task, std::size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[task].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  sfs::sim::ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);  // safe: no threads with 1 worker
  });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, PropagatesTaskException) {
  sfs::sim::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t task, std::size_t) {
                          if (task == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool must stay usable after a failed job.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  sfs::sim::ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(16);
  pool.parallel_for(4, [&](std::size_t outer, std::size_t) {
    pool.parallel_for(4, [&](std::size_t inner, std::size_t worker) {
      EXPECT_EQ(worker, 0u);  // nested tasks run inline on one thread
      inner_hits[outer * 4 + inner].fetch_add(1);
    });
  });
  for (const auto& h : inner_hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  sfs::sim::ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(
        100, [&](std::size_t task, std::size_t) {
          sum.fetch_add(static_cast<int>(task));
        });
    EXPECT_EQ(sum.load(), 4950);
  }
}

// --------------------------------------------- parallel == sequential

void expect_identical(const PortfolioCost& a, const PortfolioCost& b) {
  ASSERT_EQ(a.policies.size(), b.policies.size());
  EXPECT_EQ(a.best, b.best);
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    const auto& pa = a.policies[i];
    const auto& pb = b.policies[i];
    EXPECT_EQ(pa.name, pb.name);
    // Bit-identical, not approximately equal: the fold order is fixed.
    EXPECT_EQ(pa.requests.mean, pb.requests.mean) << pa.name;
    EXPECT_EQ(pa.requests.stddev, pb.requests.stddev) << pa.name;
    EXPECT_EQ(pa.requests.min, pb.requests.min) << pa.name;
    EXPECT_EQ(pa.requests.max, pb.requests.max) << pa.name;
    EXPECT_EQ(pa.raw_requests.mean, pb.raw_requests.mean) << pa.name;
    EXPECT_EQ(pa.raw_requests.stddev, pb.raw_requests.stddev) << pa.name;
    EXPECT_EQ(pa.median_requests, pb.median_requests) << pa.name;
    EXPECT_EQ(pa.p90_requests, pb.p90_requests) << pa.name;
    EXPECT_EQ(pa.found_fraction, pb.found_fraction) << pa.name;
  }
}

TEST(ParallelPortfolio, WeakBitIdenticalToSequential) {
  const auto seq = measure_portfolio(
      mori_plan(KnowledgeModel::kWeak, 150, 0.5, 6, 42, 500000, 1));
  const auto par = measure_portfolio(
      mori_plan(KnowledgeModel::kWeak, 150, 0.5, 6, 42, 500000, 4));
  expect_identical(seq, par);
}

TEST(ParallelPortfolio, StrongBitIdenticalToSequential) {
  auto plan = mori_plan(KnowledgeModel::kStrong, 150, 0.4, 6, 7,
                        std::numeric_limits<std::size_t>::max(), 1);
  const auto seq = measure_portfolio(plan);
  plan.threads = 3;
  const auto par = measure_portfolio(plan);
  expect_identical(seq, par);
}

TEST(ParallelPortfolio, MedianAndP90AreOrdered) {
  const auto cost = measure_portfolio(
      mori_plan(KnowledgeModel::kWeak, 120, 0.5, 9, 5, 500000, 1));
  for (const auto& p : cost.policies) {
    EXPECT_LE(p.requests.min, p.median_requests) << p.name;
    EXPECT_LE(p.median_requests, p.p90_requests) << p.name;
    EXPECT_LE(p.p90_requests, p.requests.max) << p.name;
  }
}

TEST(ParallelScaling, BitIdenticalToSequential) {
  const std::vector<std::size_t> sizes{30, 60, 120};
  const auto measure = [](std::size_t n, std::uint64_t seed) {
    sfs::rng::Rng rng(seed);
    const Graph g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
    sfs::search::BfsWeak bfs;
    sfs::rng::Rng search_rng(seed ^ 1);
    return static_cast<double>(
        sfs::search::run_weak(g, 0, static_cast<VertexId>(n - 1), bfs,
                              search_rng)
            .requests);
  };
  const auto seq =
      sfs::sim::measure_scaling(sizes, 5, 99, measure, /*threads=*/1);
  const auto par =
      sfs::sim::measure_scaling(sizes, 5, 99, measure, /*threads=*/4);
  ASSERT_EQ(seq.points.size(), par.points.size());
  for (std::size_t i = 0; i < seq.points.size(); ++i) {
    EXPECT_EQ(seq.points[i].raw, par.points[i].raw);
    EXPECT_EQ(seq.points[i].summary.mean, par.points[i].summary.mean);
  }
  EXPECT_EQ(seq.fit.slope, par.fit.slope);
}

// --------------------------------------- workspace reuse == fresh view

void expect_same_result(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.raw_requests, b.raw_requests);
  EXPECT_EQ(a.path_length, b.path_length);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  EXPECT_EQ(a.gave_up, b.gave_up);
}

TEST(SearchWorkspace, WeakReuseMatchesFreshRunForRun) {
  SearchWorkspace ws;
  // Sequence of graphs of varying size, including shrinking ones: the
  // workspace must give identical results to a fresh view every time.
  for (const std::size_t n : {200, 50, 400, 400, 30}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      sfs::rng::Rng g_rng(seed);
      const Graph g =
          sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, g_rng);
      const auto portfolio = sfs::search::weak_portfolio();
      for (std::size_t i = 0; i < portfolio.size(); ++i) {
        const auto budget =
            sfs::search::RunBudget{.max_raw_requests = 100000};
        sfs::rng::Rng r1(seed ^ (i + 17));
        sfs::rng::Rng r2(seed ^ (i + 17));
        const auto fresh_portfolio = sfs::search::weak_portfolio();
        const SearchResult fresh = sfs::search::run_weak(
            g, 0, static_cast<VertexId>(n - 1), *fresh_portfolio[i], r1,
            budget);
        const SearchResult reused = sfs::search::run_weak(
            g, 0, static_cast<VertexId>(n - 1), *portfolio[i], r2, budget,
            ws);
        expect_same_result(fresh, reused);
      }
    }
  }
}

TEST(SearchWorkspace, StrongReuseMatchesFresh) {
  SearchWorkspace ws;
  for (const std::size_t n : {150, 60, 300}) {
    sfs::rng::Rng g_rng(n);
    const Graph g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.4}, g_rng);
    const auto portfolio = sfs::search::strong_portfolio();
    for (std::size_t i = 0; i < portfolio.size(); ++i) {
      sfs::rng::Rng r1(i + 3);
      sfs::rng::Rng r2(i + 3);
      const auto fresh_portfolio = sfs::search::strong_portfolio();
      const SearchResult fresh = sfs::search::run_strong(
          g, 0, static_cast<VertexId>(n - 1), *fresh_portfolio[i], r1);
      const SearchResult reused = sfs::search::run_strong(
          g, 0, static_cast<VertexId>(n - 1), *portfolio[i], r2, {}, ws);
      expect_same_result(fresh, reused);
    }
  }
}

TEST(SearchWorkspace, EpochResetClearsKnowledge) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = b.build();
  SearchWorkspace ws;
  {
    LocalView view(g, KnowledgeModel::kWeak, 0, 3, ws);
    (void)view.request_edge(0, 0);
    (void)view.request_edge(1, 1);
  }
  // Same workspace, new run: nothing from the previous run may leak.
  LocalView view(g, KnowledgeModel::kWeak, 0, 3, ws);
  EXPECT_TRUE(view.is_known(0));
  EXPECT_FALSE(view.is_known(1));
  EXPECT_FALSE(view.edge_explored(0));
  EXPECT_EQ(view.requests(), 0u);
  EXPECT_EQ(view.known_vertices().size(), 1u);

  LocalView second(g, KnowledgeModel::kStrong, 1, 3, ws);
  EXPECT_TRUE(second.is_known(1));
  EXPECT_FALSE(second.is_known(0));
  EXPECT_FALSE(second.vertex_requested(1));
}

TEST(SearchWorkspace, PortfolioMeasurementMatchesAcrossThreadCounts) {
  // End-to-end: 1, 2 and 5 threads over a non-trivial replication count.
  const auto t1 = measure_portfolio(
      mori_plan(KnowledgeModel::kWeak, 100, 0.6, 10, 11, 200000, 1));
  const auto t2 = measure_portfolio(
      mori_plan(KnowledgeModel::kWeak, 100, 0.6, 10, 11, 200000, 2));
  const auto t5 = measure_portfolio(
      mori_plan(KnowledgeModel::kWeak, 100, 0.6, 10, 11, 200000, 5));
  expect_identical(t1, t2);
  expect_identical(t1, t5);
}

// ------------------------------------------------- seed derivation

TEST(DeriveStreamSeed, StreamZeroMatchesDeriveSeed) {
  // The graph stream must reproduce the historical per-rep seeds, or every
  // recorded experiment table would silently change.
  for (std::uint64_t rep = 0; rep < 20; ++rep) {
    // SFS_LINT_ALLOW(raw-derive): this test pins the raw derivation chain itself
    EXPECT_EQ(sfs::rng::derive_stream_seed(123, 0, rep),
              sfs::rng::derive_seed(123, rep));
    // SFS_LINT_ALLOW(raw-derive): this test pins the raw derivation chain itself
    EXPECT_EQ(sfs::rng::derive_stream_seed(123, 0xabcdef, rep),
              sfs::rng::derive_seed(123 ^ 0xabcdef, rep));
  }
}

TEST(DeriveStreamSeed, StreamsAreDistinct) {
  // SFS_LINT_ALLOW(raw-derive): this test pins the raw derivation chain itself
  EXPECT_NE(sfs::rng::derive_stream_seed(5, 1, 0),
            // SFS_LINT_ALLOW(raw-derive): this test pins the raw derivation chain itself
            sfs::rng::derive_stream_seed(5, 2, 0));
  // SFS_LINT_ALLOW(raw-derive): this test pins the raw derivation chain itself
  EXPECT_NE(sfs::rng::derive_stream_seed(5, 1, 0),
            // SFS_LINT_ALLOW(raw-derive): this test pins the raw derivation chain itself
            sfs::rng::derive_stream_seed(5, 1, 1));
}

// ---------------------------------------------------- graph fast path

TEST(GraphAdjacent, AlignedWithIncidence) {
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 2);  // self-loop
  b.add_edge(0, 1);  // parallel edge
  b.add_edge(4, 0);
  const Graph g = b.build();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto inc = g.incident(v);
    const auto adj = g.adjacent(v);
    ASSERT_EQ(inc.size(), adj.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      EXPECT_EQ(adj[i], g.other_endpoint(inc[i], v))
          << "vertex " << v << " slot " << i;
    }
  }
  // Self-loop contributes the vertex itself twice.
  const auto loop_adj = g.adjacent(2);
  EXPECT_EQ(std::count(loop_adj.begin(), loop_adj.end(), 2u), 2);
}

}  // namespace
