// Tests for the strong-to-weak simulation (the reduction in Theorem 1's
// strong-model proof).
#include "search/simulate.hpp"

#include <gtest/gtest.h>

#include "gen/mori.hpp"
#include "graph/builder.hpp"
#include "graph/degree.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::GraphBuilder;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::search::run_strong;
using sfs::search::run_weak;
using sfs::search::SearchResult;
using sfs::search::StrongViaWeak;

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

TEST(StrongViaWeak, FindsTargetOnPath) {
  StrongViaWeak sim(sfs::search::make_degree_greedy_strong());
  Rng rng(1);
  const Graph g = path_graph(10);
  const SearchResult r = run_weak(g, 0, 9, sim, rng);
  EXPECT_TRUE(r.found);
}

TEST(StrongViaWeak, NameReflectsInnerPolicy) {
  StrongViaWeak sim(sfs::search::make_degree_greedy_strong());
  EXPECT_EQ(sim.name(), "weak-sim(degree-greedy-strong)");
}

TEST(StrongViaWeak, RejectsNullInner) {
  EXPECT_THROW(StrongViaWeak(nullptr), std::invalid_argument);
}

class SimulationFidelity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationFidelity, SlowdownBoundedByMaxDegree) {
  // The paper's argument: weak requests <= strong requests * max degree.
  Rng graph_rng(GetParam());
  const Graph g =
      sfs::gen::mori_tree(400, sfs::gen::MoriParams{0.4}, graph_rng);
  const auto dmax =
      sfs::graph::max_degree(g, sfs::graph::DegreeKind::kUndirected);

  StrongViaWeak sim(sfs::search::make_degree_greedy_strong());
  Rng weak_rng(GetParam() + 1000);
  const SearchResult weak = run_weak(g, 0, 399, sim, weak_rng);
  ASSERT_TRUE(weak.found);
  EXPECT_LE(weak.requests, sim.strong_requests() * dmax);
}

TEST_P(SimulationFidelity, SameStrongRequestCountAsNativeRun) {
  // Running the same deterministic inner policy natively in the strong
  // model and through the simulation must issue the same number of strong
  // requests before finding the target (the simulation answers requests
  // with exactly the information the strong model would provide).
  Rng graph_rng(GetParam());
  const Graph g =
      sfs::gen::mori_tree(300, sfs::gen::MoriParams{0.5}, graph_rng);

  auto native = sfs::search::make_degree_greedy_strong();
  Rng strong_rng(7);
  const SearchResult strong = run_strong(g, 0, 299, *native, strong_rng);
  ASSERT_TRUE(strong.found);

  StrongViaWeak sim(sfs::search::make_degree_greedy_strong());
  Rng weak_rng(7);
  const SearchResult weak = run_weak(g, 0, 299, sim, weak_rng);
  ASSERT_TRUE(weak.found);

  // The simulated run may stop up to one strong request "early": the weak
  // layer reveals the target mid-way through opening a vertex.
  EXPECT_LE(sim.strong_requests(), strong.requests + 1);
  EXPECT_GE(sim.strong_requests() + 1, strong.requests);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationFidelity,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(StrongViaWeak, ChargesEachEdgeOnce) {
  StrongViaWeak sim(std::make_unique<sfs::search::BfsStrong>());
  Rng rng(2);
  const Graph g = path_graph(20);
  const SearchResult r = run_weak(g, 0, 19, sim, rng);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.requests, g.num_edges());
}

TEST(StrongViaWeak, GivesUpWhenInnerExhausted) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  StrongViaWeak sim(std::make_unique<sfs::search::BfsStrong>());
  Rng rng(3);
  const SearchResult r = run_weak(b.build(), 0, 3, sim, rng);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.gave_up);
}

TEST(MakeSimulatedDegreeGreedy, FactoryWorksEndToEnd) {
  auto sim = sfs::search::make_simulated_degree_greedy();
  Rng graph_rng(4);
  const Graph g =
      sfs::gen::mori_tree(200, sfs::gen::MoriParams{0.5}, graph_rng);
  Rng rng(5);
  const SearchResult r = run_weak(g, 0, 199, *sim, rng);
  EXPECT_TRUE(r.found);
}

}  // namespace
