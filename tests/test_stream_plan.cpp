// Tests for the versioned stream-plan derivations (rng/stream_plan.hpp).
#include "rng/stream_plan.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "rng/random.hpp"
#include "rng/stream_audit.hpp"

namespace {

using sfs::rng::Philox4x64;
using sfs::rng::StreamAudit;
using sfs::rng::StreamPlan;
using sfs::rng::StreamPlanVersion;
using sfs::rng::stream_plan_number;

TEST(StreamPlan, VersionNumbersAreStable) {
  // These integers are stamped into BENCH_JSON artifacts; they are frozen.
  EXPECT_EQ(stream_plan_number(StreamPlanVersion::kLegacy), 1u);
  EXPECT_EQ(stream_plan_number(StreamPlanVersion::kCounter), 2u);
}

TEST(StreamPlan, LegacyMatchesDeriveStreamSeedExactly) {
  // v1 is frozen: it must reproduce the historical mix chain bit for bit,
  // including the load-bearing untempered stream 0 (graph stream).
  for (const std::uint64_t seed : {0ULL, 1ULL, 0x1A26E1ULL}) {
    const std::uint64_t tags[] = {0ULL, sfs::rng::mix64(0xabcdefULL),
                                  sfs::rng::mix64(0x10e57ULL)};
    for (const std::uint64_t tag : tags) {
      const StreamPlan plan(seed, tag, StreamPlanVersion::kLegacy);
      for (std::uint64_t index = 0; index < 16; ++index) {
        EXPECT_EQ(plan.stream_seed(index),
                  // SFS_LINT_ALLOW(raw-derive): pins kLegacy plan == frozen raw derivation chain
                  sfs::rng::derive_stream_seed(seed, tag, index));
      }
    }
  }
}

TEST(StreamPlan, CounterMatchesPhiloxBlockWord) {
  // v2's contract: stream seed `index` is word 0 of the Philox block at
  // counter `index` under key (seed, tag) — seekable by construction.
  const std::uint64_t seed = 0xFEEDULL;
  const std::uint64_t tag = 0x10ULL;
  const StreamPlan plan(seed, tag, StreamPlanVersion::kCounter);
  const Philox4x64 cipher(seed, tag);
  for (std::uint64_t index : {0ULL, 1ULL, 2ULL, 1000ULL, 123456789ULL}) {
    EXPECT_EQ(plan.stream_seed(index), cipher.block_at(index)[0]);
  }
}

TEST(StreamPlan, CounterSeedsAreOrderIndependent) {
  // No hidden sequential state: deriving index 10^6 first and index 0
  // second gives the same values as the other order or a fresh plan.
  const StreamPlan a(7, 9, StreamPlanVersion::kCounter);
  const std::uint64_t high = a.stream_seed(1000000);
  const std::uint64_t low = a.stream_seed(0);
  const StreamPlan b(7, 9, StreamPlanVersion::kCounter);
  EXPECT_EQ(b.stream_seed(0), low);
  EXPECT_EQ(b.stream_seed(1000000), high);
}

TEST(StreamPlan, VersionsAndStreamsDecorrelate) {
  // Distinct (version, seed, tag, index) combinations should essentially
  // never collide; any systematic overlap would correlate streams the
  // statistics assume independent.
  std::set<std::uint64_t> seen;
  std::size_t derivations = 0;
  for (const auto version :
       {StreamPlanVersion::kLegacy, StreamPlanVersion::kCounter}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      for (std::uint64_t tag = 0; tag < 4; ++tag) {
        const StreamPlan plan(seed, sfs::rng::mix64(tag), version);
        for (std::uint64_t index = 0; index < 32; ++index) {
          seen.insert(plan.stream_seed(index));
          ++derivations;
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), derivations);
}

TEST(StreamPlan, CounterEngineRequiresCounterVersion) {
  const StreamPlan legacy(1, 2, StreamPlanVersion::kLegacy);
  EXPECT_THROW((void)legacy.counter_engine(), std::invalid_argument);
  const StreamPlan counter(1, 2, StreamPlanVersion::kCounter);
  Philox4x64 eng = counter.counter_engine();
  eng.seek(5);
  EXPECT_EQ(eng.position(), 5u);
}

TEST(StreamPlan, BothVersionsRecordInTheAudit) {
  StreamAudit& audit = StreamAudit::instance();
  audit.reset();
  audit.set_enabled(true);
  const StreamPlan v1(11, 22, StreamPlanVersion::kLegacy);
  const StreamPlan v2(11, 23, StreamPlanVersion::kCounter);
  (void)v1.stream_seed(0);
  (void)v1.stream_seed(1);
  (void)v2.stream_seed(0);
  (void)v2.stream_seed(1);
  EXPECT_EQ(audit.recorded_count(), 4u);
  // Replaying the same derivations is idempotent, exactly like v1 always
  // was through audited_stream_seed.
  (void)v1.stream_seed(0);
  (void)v2.stream_seed(0);
  EXPECT_EQ(audit.recorded_count(), 4u);
  audit.set_enabled(false);
  audit.reset();
}

}  // namespace
