// E10 — The proof machinery end-to-end (Lemmas 1+2+3): the window
// [[n, n + sqrt(n)]] of ~sqrt(n) vertices is equivalent conditional on
// E_{a,b}, so expected search cost >= |V| * P(E) / 2. This bench computes
// the estimated bound, the closed-form floor |V| e^{-(1-p)} / 2, and the
// measured best-portfolio weak cost — the measurement must dominate the
// bound.
//
// Also validates Lemma 2 empirically: per-position conditional feature
// means across the window agree (exchangeability).
#include <iostream>

#include "core/lower_bound.hpp"
#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;

}  // namespace

int main() {
  std::cout << "E10: Lemma 1 bound |V| P(E)/2 vs measured best weak-model "
               "cost (Mori, target = vertex n).\n\n";
  const double p = 0.5;
  sfs::sim::Table t("E10: bound vs measurement, Mori p=0.5",
                    {"n", "|V|", "P(E) est", "bound |V|P/2",
                     "theory floor", "measured best", "measured/bound"});
  for (const std::size_t n : {1024u, 4096u, 16384u}) {
    const auto bound = sfs::core::mori_lower_bound(p, n, 3000, 0xE10);
    const auto cost = sfs::sim::measure_weak_portfolio(
        [n, p](Rng& rng) {
          return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
        },
        sfs::sim::oldest_to_newest(), 8, 0x10E,
        sfs::search::RunBudget{.max_raw_requests = 40 * n}, /*threads=*/0);
    const double measured = cost.best_policy().requests.mean;
    t.row()
        .integer(n)
        .integer(bound.window_size)
        .num(bound.event.probability, 4)
        .num(bound.bound, 1)
        .num(bound.theory_floor, 1)
        .num(measured, 1)
        .num(measured / bound.bound, 2);
  }
  t.print(std::cout);

  std::cout << "\nLemma 2 exchangeability check (conditional on E_{a,b}, "
               "window positions are interchangeable):\n";
  const std::size_t a = 128;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);
  const auto st = sfs::core::window_feature_stats(p, a, b, 400, 6000, 0x2E);
  sfs::sim::Table w("E10: per-position conditional means, window (" +
                        std::to_string(a) + ", " + std::to_string(b) + "]",
                    {"paper vertex", "mean final indegree", "P(leaf)"});
  for (std::size_t i = 0; i < st.mean_final_indegree.size(); ++i) {
    w.row()
        .integer(a + 1 + i)
        .num(st.mean_final_indegree[i], 3)
        .num(st.leaf_probability[i], 3);
  }
  w.print(std::cout);
  std::cout << "accepted " << st.accepted << "/" << st.attempted
            << " trees (acceptance ~ P(E)); columns should be flat.\n";

  std::cout << "\nCooper-Frieze analogue (untouched-window event):\n";
  sfs::gen::CooperFriezeParams params;
  sfs::sim::Table c("E10: CF window event", {"n", "|V|", "P(E) est", "bound"});
  for (const std::size_t n : {1024u, 4096u}) {
    const auto est = sfs::core::cooper_frieze_lower_bound(params, n, 2000,
                                                          0xCE10);
    c.row()
        .integer(n)
        .integer(est.window_size)
        .num(est.event.probability, 4)
        .num(est.bound, 2);
  }
  c.print(std::cout);
  return 0;
}
