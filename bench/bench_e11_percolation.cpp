// E11 — Sarshar et al. (2004): percolation search makes unstructured
// power-law P2P lookup scalable — replicate content along short random
// walks, implant the query likewise, then broadcast with bond-percolation
// probability q_e. Success turns on once q_e crosses the (very low)
// percolation threshold of the power-law core, at sublinear traffic.
//
// Regenerates: success rate and message cost across q_e and replication
// length on a power-law configuration graph.
#include <iostream>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "search/percolation.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

}  // namespace

int main() {
  std::cout << "Sarshar et al. 2004: percolation search on a power-law "
               "configuration graph (k = 2.3, largest component).\n\n";
  Rng graph_rng(0xE11);
  const Graph full = sfs::gen::power_law_configuration_graph(
      20000, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
      sfs::gen::ConfigModelOptions{false}, graph_rng);
  const Graph g = sfs::graph::largest_component(full).graph;
  std::cout << "graph: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges\n\n";

  constexpr std::size_t kLookups = 150;
  for (const std::size_t walk : {0u, 20u, 100u}) {
    sfs::sim::Table t(
        "E11: replication walk length " + std::to_string(walk),
        {"q_e", "success rate", "mean messages", "messages / edges",
         "mean vertices reached"});
    for (const double qe : {0.02, 0.05, 0.1, 0.2, 0.4, 0.7}) {
      std::size_t hits = 0;
      sfs::stats::Accumulator messages;
      sfs::stats::Accumulator reached;
      for (std::uint64_t rep = 0; rep < kLookups; ++rep) {
        Rng rng(sfs::rng::derive_seed(0x11E, rep));
        const auto owner =
            static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
        const auto requester =
            static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
        const auto r = sfs::search::percolation_search(
            g, owner, requester,
            sfs::search::PercolationParams{walk, 10, qe}, rng);
        if (r.found) ++hits;
        messages.add(static_cast<double>(r.messages));
        reached.add(static_cast<double>(r.vertices_reached));
      }
      t.row()
          .num(qe, 2)
          .num(static_cast<double>(hits) / kLookups, 2)
          .num(messages.mean(), 0)
          .num(messages.mean() / static_cast<double>(g.num_edges()), 3)
          .num(reached.mean(), 0);
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: with replication (walk >= 20), success "
               "approaches 1 well below q_e = 1 while messages stay a "
               "fraction of the edge count; without replication the same "
               "q_e fails far more often.\n";
  return 0;
}
