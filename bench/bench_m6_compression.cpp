// Thin compatibility wrapper: delegates to the experiment registry
// (equivalent to `sfs_bench --run m6_compression ...`). The experiment
// itself lives in bench/experiments/; this binary exists so every
// experiment family keeps a standalone entry point. All flags go through
// the shared parser — unknown or unsupported flags exit 2 with usage.
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  return sfs::sim::experiment_main_for("m6_compression", argc, argv);
}
