// M3 — parallel replication engine: sequential vs parallel portfolio
// throughput, and a bit-identity audit of the deterministic fan-out.
//
// For each n, runs the full weak portfolio (10 policies) over `reps`
// freshly generated merged Mori graphs twice: once with threads=1 (the
// sequential engine) and once with the default worker count. Reports
// throughput in units of "graphs+searches per second" (each replication
// builds 1 graph and runs 10 searches) and the parallel speedup, then
// verifies the two PortfolioCost results are bit-identical — the per-rep
// seed derivation plus ordered fold make the parallel path a pure
// performance transform.
//
// Expected: speedup approaching the core count on multi-core hosts (the
// acceptance bar is >= 3x at n=100k on >= 4 cores); exactly 1x on a
// single-core host, still bit-identical.
#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "gen/mori.hpp"
#include "sim/parallel.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::sim::PortfolioCost;

bool bit_identical(const PortfolioCost& a, const PortfolioCost& b) {
  if (a.best != b.best || a.policies.size() != b.policies.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    const auto& pa = a.policies[i];
    const auto& pb = b.policies[i];
    if (pa.name != pb.name || pa.found_fraction != pb.found_fraction ||
        pa.median_requests != pb.median_requests ||
        pa.p90_requests != pb.p90_requests ||
        pa.requests.mean != pb.requests.mean ||
        pa.requests.stddev != pb.requests.stddev ||
        pa.requests.min != pb.requests.min ||
        pa.requests.max != pb.requests.max ||
        pa.raw_requests.mean != pb.raw_requests.mean ||
        pa.raw_requests.stddev != pb.raw_requests.stddev) {
      return false;
    }
  }
  return true;
}

struct Measurement {
  PortfolioCost cost;
  double wall_s = 0.0;
  double throughput = 0.0;  // graphs+searches per second
};

Measurement run_once(std::size_t n, std::size_t reps, std::size_t threads) {
  const std::size_t m = 2;
  const double p = 0.5;
  sfs::bench::WallTimer timer;
  Measurement out;
  out.cost = sfs::sim::measure_weak_portfolio(
      [n, m, p](Rng& rng) {
        return sfs::gen::merged_mori_graph(n, m, sfs::gen::MoriParams{p}, rng);
      },
      sfs::sim::oldest_to_newest(), reps, /*seed=*/0x43,
      sfs::search::RunBudget{.max_raw_requests = 40 * n}, threads);
  out.wall_s = timer.seconds();
  const std::size_t policies = out.cost.policies.size();
  out.throughput =
      static_cast<double>(reps * (1 + policies)) / out.wall_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes{10000, 30000, 100000};
  std::size_t reps = 8;
  if (argc > 1 && std::strcmp(argv[1], "--quick") == 0) {
    sizes = {2000, 5000};
    reps = 4;
  }
  const std::size_t workers = sfs::sim::default_worker_count();
  std::cout << "M3: parallel replication engine, weak portfolio on merged "
               "Mori graphs (m=2, p=0.5), "
            << reps << " reps, " << workers << " worker(s) available\n\n";

  sfs::sim::Table t("sequential vs parallel portfolio measurement",
                    {"n", "seq wall s", "par wall s", "seq thru", "par thru",
                     "speedup", "identical"});
  bool all_identical = true;
  for (const std::size_t n : sizes) {
    const Measurement seq = run_once(n, reps, /*threads=*/1);
    const Measurement par = run_once(n, reps, /*threads=*/0);
    const bool same = bit_identical(seq.cost, par.cost);
    all_identical = all_identical && same;
    const double speedup = seq.wall_s / par.wall_s;
    t.row()
        .integer(n)
        .num(seq.wall_s, 3)
        .num(par.wall_s, 3)
        .num(seq.throughput, 1)
        .num(par.throughput, 1)
        .num(speedup, 2)
        .cell(same ? "yes" : "NO");
    sfs::bench::emit_json_line("m3_parallel_sweep_seq", n, reps,
                               seq.throughput, 0.0, seq.wall_s);
    sfs::bench::emit_json_line("m3_parallel_sweep_par", n, reps,
                               par.throughput, 0.0, par.wall_s);
  }
  t.print(std::cout);
  std::cout << "\nbit-identical across thread counts: "
            << (all_identical ? "PASS" : "FAIL") << '\n';
  return all_identical ? 0 : 1;
}
