// E4 — Lemma 3: with b = a + floor(sqrt(a-1)), the probability that every
// vertex in the window (a, b] attaches below a satisfies
// P(E_{a,b}) >= e^{-(1-p)}.
//
// Regenerates: Monte-Carlo P(E_{a,b}) across p and a, against the bound.
#include <iostream>

#include "core/equivalence.hpp"
#include "core/theory.hpp"
#include "sim/table.hpp"

int main() {
  std::cout << "Lemma 3: P(E_{a,b}) >= e^{-(1-p)} for b = a + "
               "floor(sqrt(a-1)).\n\n";
  const std::size_t reps = 4000;
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    sfs::sim::Table t(
        "E4: P(E_{a,b}) for Mori p=" + sfs::sim::format_double(p, 2),
        {"a", "b", "window", "P(E) est", "stderr", "bound e^{-(1-p)}",
         "est >= bound?"});
    const double bound = sfs::core::theory::lemma3_bound(p);
    for (const std::size_t a : {64u, 256u, 1024u, 4096u}) {
      const std::size_t b = sfs::core::theory::lemma3_window_end(a);
      const auto est = sfs::core::estimate_event_probability(
          p, a, b, reps, 0xE4 + a);
      t.row()
          .integer(a)
          .integer(b)
          .integer(b - a)
          .num(est.probability, 4)
          .num(est.stderr_est, 4)
          .num(bound, 4)
          .cell(est.probability + 3 * est.stderr_est >= bound ? "yes"
                                                              : "NO");
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
