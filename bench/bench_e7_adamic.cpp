// E7 — Adamic et al. (2001): in pure random power-law graphs with pmf
// exponent k in (2, 3), the high-degree greedy strategy reaches a target
// in O(n^{2(1-2/k)}) steps while a pure random walk needs O(n^{3(1-2/k)}).
//
// Regenerates: configuration-model sweep over k and n, degree-greedy
// (strong model, as Adamic et al. assume neighbor degrees are visible) vs
// random walk (raw steps), fitted exponents vs both predictions.
#include <iostream>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/scaling.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;

Graph make_lcc(std::size_t n, double k, Rng& rng) {
  const Graph g = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{k, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  return sfs::graph::largest_component(g).graph;
}

std::pair<VertexId, VertexId> random_pair(const Graph& g, Rng& rng) {
  const auto s = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
  VertexId t;
  do {
    t = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
  } while (t == s);
  return {s, t};
}

double greedy_cost(std::size_t n, double k, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = make_lcc(n, k, rng);
  const auto [s, t] = random_pair(g, rng);
  auto greedy = sfs::search::make_degree_greedy_strong();
  const auto r = sfs::search::run_strong(g, s, t, *greedy, rng);
  return static_cast<double>(r.requests);
}

double walk_cost(std::size_t n, double k, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = make_lcc(n, k, rng);
  const auto [s, t] = random_pair(g, rng);
  sfs::search::RandomWalkWeak walk;
  const auto r = sfs::search::run_weak(
      g, s, t, walk, rng,
      sfs::search::RunBudget{.max_raw_requests = 400 * n});
  return static_cast<double>(r.raw_requests);
}

}  // namespace

int main() {
  std::cout << "Adamic et al. 2001, power-law configuration graphs "
               "(largest component):\n  degree-greedy O(n^{2(1-2/k)})  vs  "
               "random walk O(n^{3(1-2/k)}).\nCosts: greedy = strong-model "
               "requests (visited vertices); walk = raw steps.\n\n";
  const std::vector<std::size_t> sizes{2000, 4000, 8000, 16000, 32000};
  const std::size_t reps = 8;

  for (const double k : {2.1, 2.3, 2.5, 2.7}) {
    const auto greedy = sfs::sim::measure_scaling(
        sizes, reps, 0xE7,
        [k](std::size_t n, std::uint64_t seed) {
          return std::max(1.0, greedy_cost(n, k, seed));
        },
        /*threads=*/0);
    sfs::bench::print_scaling(
        "E7: degree-greedy steps, k=" + sfs::sim::format_double(k, 1),
        greedy, "greedy steps", sfs::core::theory::adamic_greedy_exponent(k),
        "2(1-2/k)");

    const auto walk = sfs::sim::measure_scaling(
        sizes, reps, 0x7E7,
        [k](std::size_t n, std::uint64_t seed) {
          return std::max(1.0, walk_cost(n, k, seed));
        },
        /*threads=*/0);
    sfs::bench::print_scaling(
        "E7: random-walk steps, k=" + sfs::sim::format_double(k, 1), walk,
        "walk steps", sfs::core::theory::adamic_random_walk_exponent(k),
        "3(1-2/k)");

    std::cout << "who wins at n=" << sizes.back() << ": greedy "
              << sfs::sim::format_double(greedy.points.back().summary.mean,
                                         0)
              << " vs walk "
              << sfs::sim::format_double(walk.points.back().summary.mean, 0)
              << "  (greedy should win, gap growing with n)\n\n";
  }
  return 0;
}
