// A1 — policy ablation: which weak-model policy wins where?
//
// The lower-bound experiments report only the portfolio minimum; this
// ablation shows the full picture: per-policy cost across models and
// target choices. It makes the paper's two structural facts visible —
// (a) NO policy escapes sqrt(n) when the target is the newest vertex,
// (b) policy choice matters enormously when the target is old (min-id and
//     degree-greedy exploit the age gradient; blind policies cannot).
#include <iostream>

#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;

void ablate(const std::string& title, const sfs::sim::GraphFactory& factory,
            const sfs::sim::EndpointSelector& endpoints, std::size_t n) {
  const auto cost = sfs::sim::measure_weak_portfolio(
      factory, endpoints, 8, 0xA1,
      sfs::search::RunBudget{.max_raw_requests = 40 * n}, /*threads=*/0);
  sfs::sim::Table t(title, {"policy", "mean requests", "median", "p90",
                            "found frac"});
  for (const auto& pol : cost.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.median_requests, 1)
        .num(pol.p90_requests, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(std::cout);
  std::cout << "winner: " << cost.best_policy().name << "\n\n";
}

}  // namespace

int main() {
  std::cout << "A1: per-policy ablation across models and targets "
               "(n = 8192, 8 replications).\n\n";
  const std::size_t n = 8192;

  const auto mori = [n](Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  };
  const auto merged = [n](Rng& rng) {
    return sfs::gen::merged_mori_graph(n, 3, sfs::gen::MoriParams{0.5}, rng);
  };
  const auto cf = [n](Rng& rng) {
    sfs::gen::CooperFriezeParams params;
    return sfs::gen::cooper_frieze(n, params, rng).graph;
  };

  ablate("A1: Mori tree, target = NEWEST vertex", mori,
         sfs::sim::oldest_to_newest(), n);
  ablate("A1: Mori tree, target = ROOT (oldest)", mori,
         sfs::sim::newest_to_paper_id(1), n);
  ablate("A1: merged Mori m=3, target = NEWEST", merged,
         sfs::sim::oldest_to_newest(), n);
  ablate("A1: Cooper-Frieze, target = NEWEST", cf,
         sfs::sim::oldest_to_newest(), n);

  std::cout << "Expected shape: for NEWEST targets every policy pays "
               "thousands of requests (no winner escapes the bound); for "
               "the ROOT target the age-gradient policies pay a handful.\n";
  return 0;
}
