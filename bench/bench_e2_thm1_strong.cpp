// E2 — Theorem 1, strong model: for Móri p < 1/2, every strong-model
// algorithm needs Omega(n^{1/2 - p - eps}) expected requests to find vertex
// n; the bound degrades with p because the maximum degree Theta(t^p) caps
// how much a single strong request can reveal.
//
// Regenerates: per-p sweep of n with the strong portfolio; fitted exponent
// of the portfolio-best cost against the theory floor 1/2 - p.
//
// Modes (same shape as bench_e1):
//   (default)            the conservative seed-size sweep over all p
//   --large              geometric grid to n = 2,097,152 at p=0.25 with a
//                        bootstrap CI on the exponent, scratch-reusing
//                        generation and the shared pool
//   --large --quick      small smoke version of the same code path (CI)
//   --checkpoint <path>  stream/resume cells through <path> (large mode)
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;

void run_p(double p) {
  const std::vector<std::size_t> sizes{2048, 4096, 8192, 16384, 32768};
  const std::size_t reps = 5;

  const auto series = sfs::sim::measure_scaling(
      sizes, reps, 0xE2,
      [&](std::size_t n, std::uint64_t seed) {
        const auto cost = sfs::sim::measure_strong_portfolio(
            [n, p](Rng& rng) {
              return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
            },
            sfs::sim::oldest_to_newest(), 1, seed);
        return cost.best_policy().requests.mean;
      },
      /*threads=*/0);
  sfs::bench::print_scaling(
      "E2: strong-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2),
      series, "best requests",
      sfs::core::theory::strong_lower_bound_exponent(p),
      "Omega exponent 1/2-p");

  const auto big = sfs::sim::measure_strong_portfolio(
      [&](Rng& rng) {
        return sfs::gen::mori_tree(sizes.back(), sfs::gen::MoriParams{p},
                                   rng);
      },
      sfs::sim::oldest_to_newest(), reps, 0x2E2,
      sfs::search::RunBudget{}, /*threads=*/0);
  sfs::sim::Table t("E2 detail: per-policy cost at n=" +
                        std::to_string(sizes.back()) + " (p=" +
                        sfs::sim::format_double(p, 2) + ")",
                    {"policy", "mean requests", "stderr", "found frac"});
  for (const auto& pol : big.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.requests.stderr_mean, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(std::cout);
  std::cout << '\n';
}

// Large-n mode (ROADMAP "push the Theorem 1 sweeps past n = 10^6"): one
// p in the non-trivial regime p < 1/2, geometric grid to >= 2e6 vertices,
// bootstrap CI on the exponent, per-worker generator scratch, optional
// checkpoint/resume.
int run_large(const sfs::bench::LargeModeArgs& args) {
  const double p = 0.25;
  const auto plan = sfs::bench::plan_large_run(args);

  sfs::bench::WallTimer timer;
  const std::function<double(std::size_t, std::uint64_t,
                             sfs::gen::GenScratch&)>
      measure = [&](std::size_t n, std::uint64_t seed,
                    sfs::gen::GenScratch& scratch) {
        const auto cost = sfs::sim::measure_strong_portfolio(
            sfs::sim::ScratchGraphFactory(
                [&scratch, n, p](Rng& rng, sfs::gen::GenScratch&,
                                 Graph& out) {
                  // Sequential inner portfolio: reuse the sweep-level
                  // per-worker scratch across the whole grid.
                  sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng,
                                      scratch, out);
                }),
            sfs::sim::oldest_to_newest(), 1, seed, sfs::search::RunBudget{},
            /*threads=*/1);
        return cost.best_policy().requests.mean;
      };
  const auto series = sfs::sim::measure_scaling(plan.sizes, plan.reps,
                                                0x1A26E2, measure,
                                                plan.options);
  return sfs::bench::report_large_run(
      "E2 large: strong-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2) + (args.quick ? " (quick)" : ""),
      plan, series, "best requests",
      sfs::core::theory::strong_lower_bound_exponent(p),
      "Omega exponent 1/2-p", timer.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  sfs::bench::LargeModeArgs args;
  if (!sfs::bench::parse_large_mode_args(argc, argv, args)) return 2;

  std::cout << "Theorem 1 (strong model): expected requests = "
               "Omega(n^{1/2-p-eps}) for p < 1/2.\n"
               "Note the weakening as p grows: one strong request on a hub "
               "of degree ~t^p reveals t^p vertices at once.\n\n";
  if (args.large) return run_large(args);
  for (const double p : {0.1, 0.25, 0.4}) run_p(p);
  // Control: at p >= 1/2 the bound is trivial (exponent 0); the measured
  // cost may still grow, but the theorem no longer promises anything.
  run_p(0.75);
  return 0;
}
