// E12 — Why "vertex n"? The age/degree correlation of evolving graphs
// makes OLD vertices easy to find (they are hubs, reachable by climbing
// the degree/age gradient) while the NEWEST vertex hides among ~sqrt(n)
// statistically equivalent leaves. This bench quantifies the asymmetry the
// theorems build on.
//
// Regenerates: best weak-model cost by target age, Móri and Cooper–Frieze.
#include <iostream>

#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;

void report(const std::string& model, const sfs::sim::GraphFactory& factory,
            std::size_t n) {
  sfs::sim::Table t("E12: cost by target age, " + model,
                    {"target (paper id)", "best policy", "best mean cost",
                     "degree-greedy cost", "bfs cost"});
  for (const std::size_t target :
       {std::size_t{1}, n / 4, n / 2, 3 * n / 4, n}) {
    // Fixed start: paper vertex 2 (old but not a target row), so rows are
    // comparable.
    const sfs::sim::EndpointSelector from_two =
        [target](const sfs::graph::Graph&, Rng&) {
          return std::pair<sfs::graph::VertexId, sfs::graph::VertexId>{
              1, static_cast<sfs::graph::VertexId>(target - 1)};
        };
    const auto cost = sfs::sim::measure_weak_portfolio(
        factory, from_two, 8, 0xE12,
        sfs::search::RunBudget{.max_raw_requests = 40 * n}, /*threads=*/0);
    double greedy = 0.0;
    double bfs = 0.0;
    for (const auto& pol : cost.policies) {
      if (pol.name == "degree-greedy") greedy = pol.requests.mean;
      if (pol.name == "bfs") bfs = pol.requests.mean;
    }
    t.row()
        .integer(target)
        .cell(cost.best_policy().name)
        .num(cost.best_policy().requests.mean, 1)
        .num(greedy, 1)
        .num(bfs, 1);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "E12: searching OLD vertices is easy, searching the NEWEST "
               "is Omega(sqrt(n)) — the asymmetry behind targeting vertex "
               "n. Start vertex: the newest (paper id n).\n\n";
  const std::size_t n = 8192;
  report("Mori p=0.5", [n](Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  }, n);
  report("Cooper-Frieze balanced", [n](Rng& rng) {
    sfs::gen::CooperFriezeParams params;
    return sfs::gen::cooper_frieze(n, params, rng).graph;
  }, n);
  return 0;
}
