// A3 — the strong-to-weak reduction, measured: Theorem 1's strong-model
// proof multiplies the weak bound by 1/max-degree. This ablation runs the
// same strong policy natively and through the StrongViaWeak simulation and
// reports the observed slowdown factor against the max-degree ceiling.
#include <iostream>

#include "gen/mori.hpp"
#include "graph/degree.hpp"
#include "search/runner.hpp"
#include "search/simulate.hpp"
#include "search/strong_algorithms.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::graph::VertexId;
using sfs::rng::Rng;

}  // namespace

int main() {
  std::cout << "A3: strong-to-weak simulation overhead vs the max-degree "
               "ceiling (Mori trees, degree-greedy inner policy).\n\n";
  sfs::sim::Table t("A3: slowdown of simulating strong requests weakly",
                    {"p", "n", "max deg", "strong reqs", "weak reqs",
                     "slowdown", "ceiling (max deg)"});
  for (const double p : {0.2, 0.4, 0.6}) {
    for (const std::size_t n : {4096u, 16384u}) {
      sfs::stats::Accumulator strong_reqs;
      sfs::stats::Accumulator weak_reqs;
      sfs::stats::Accumulator dmax_acc;
      for (std::uint64_t rep = 0; rep < 5; ++rep) {
        Rng graph_rng(sfs::rng::derive_seed(0xA3, rep));
        const auto g =
            sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, graph_rng);
        dmax_acc.add(static_cast<double>(sfs::graph::max_degree(
            g, sfs::graph::DegreeKind::kUndirected)));

        sfs::search::StrongViaWeak sim(
            sfs::search::make_degree_greedy_strong());
        Rng rng(sfs::rng::derive_seed(0x3A, rep));
        const auto r = sfs::search::run_weak(
            g, 0, static_cast<VertexId>(n - 1), sim, rng);
        weak_reqs.add(static_cast<double>(r.requests));
        strong_reqs.add(static_cast<double>(sim.strong_requests()));
      }
      t.row()
          .num(p, 1)
          .integer(n)
          .num(dmax_acc.mean(), 0)
          .num(strong_reqs.mean(), 0)
          .num(weak_reqs.mean(), 0)
          .num(weak_reqs.mean() / strong_reqs.mean(), 2)
          .num(dmax_acc.mean(), 0);
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: slowdown well below the ceiling (the "
               "reduction is pessimistic), and the ceiling itself grows "
               "like n^p — exactly why the strong bound weakens as p "
               "grows.\n";
  return 0;
}
