// Shared helpers for the experiment benches: scaling-table printing with
// fitted exponents next to theory predictions, wall-clock timing, and
// machine-readable JSON result lines (one object per line, prefixed
// "BENCH_JSON ", so perf trajectories can be grepped out of bench logs and
// tracked across commits).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "sim/scaling.hpp"
#include "sim/table.hpp"

namespace sfs::bench {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return sim::format_double(v, 6);
}

}  // namespace detail

/// Emits one machine-readable result line:
///   BENCH_JSON {"bench":...,"n":...,"reps":...,"mean":...,"stderr":...,
///               "wall_s":...}
/// Pass a negative `wall_seconds` when wall time was not measured (emitted
/// as null).
inline void emit_json_line(const std::string& name, std::size_t n,
                           std::size_t reps, double mean, double stderr_mean,
                           double wall_seconds,
                           std::ostream& out = std::cout) {
  out << "BENCH_JSON {\"bench\":\"" << detail::json_escape(name)
      << "\",\"n\":" << n << ",\"reps\":" << reps
      << ",\"mean\":" << detail::json_num(mean)
      << ",\"stderr\":" << detail::json_num(stderr_mean) << ",\"wall_s\":"
      << (wall_seconds < 0.0 ? std::string("null")
                             : detail::json_num(wall_seconds))
      << "}\n";
}

/// Prints a ScalingSeries as a table with a fitted-slope footer comparing
/// against a theoretical exponent, plus one BENCH_JSON line per sweep
/// point (wall time unmeasured at this granularity).
inline void print_scaling(const std::string& title,
                          const sim::ScalingSeries& series,
                          const std::string& quantity, double theory_slope,
                          const std::string& theory_label) {
  sim::Table t(title, {"n", quantity, "stderr", "min", "max"});
  for (const auto& pt : series.points) {
    t.row()
        .integer(pt.n)
        .num(pt.summary.mean, 2)
        .num(pt.summary.stderr_mean, 2)
        .num(pt.summary.min, 1)
        .num(pt.summary.max, 1);
  }
  t.print(std::cout);
  std::cout << "fitted exponent: " << sim::format_double(series.fit.slope, 3)
            << " +/- " << sim::format_double(series.fit.slope_stderr, 3)
            << "  (R^2 " << sim::format_double(series.fit.r_squared, 3)
            << ")   theory " << theory_label << ": "
            << sim::format_double(theory_slope, 3) << "\n\n";
  for (const auto& pt : series.points) {
    emit_json_line(title, pt.n, pt.summary.count, pt.summary.mean,
                   pt.summary.stderr_mean, /*wall_seconds=*/-1.0);
  }
}

}  // namespace sfs::bench
