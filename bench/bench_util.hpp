// Shared helpers for the experiment benches: scaling-table printing with
// fitted exponents next to theory predictions.
#pragma once

#include <iostream>
#include <string>

#include "sim/scaling.hpp"
#include "sim/table.hpp"

namespace sfs::bench {

/// Prints a ScalingSeries as a table with a fitted-slope footer comparing
/// against a theoretical exponent.
inline void print_scaling(const std::string& title,
                          const sim::ScalingSeries& series,
                          const std::string& quantity, double theory_slope,
                          const std::string& theory_label) {
  sim::Table t(title, {"n", quantity, "stderr", "min", "max"});
  for (const auto& pt : series.points) {
    t.row()
        .integer(pt.n)
        .num(pt.summary.mean, 2)
        .num(pt.summary.stderr_mean, 2)
        .num(pt.summary.min, 1)
        .num(pt.summary.max, 1);
  }
  t.print(std::cout);
  std::cout << "fitted exponent: " << sim::format_double(series.fit.slope, 3)
            << " +/- " << sim::format_double(series.fit.slope_stderr, 3)
            << "  (R^2 " << sim::format_double(series.fit.r_squared, 3)
            << ")   theory " << theory_label << ": "
            << sim::format_double(theory_slope, 3) << "\n\n";
}

}  // namespace sfs::bench
