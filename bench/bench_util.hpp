// Shared helpers for the experiment benches: scaling-table printing with
// fitted exponents next to theory predictions, wall-clock timing, and
// machine-readable JSON result lines (one object per line, prefixed
// "BENCH_JSON ", so perf trajectories can be grepped out of bench logs and
// tracked across commits).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/scaling.hpp"
#include "sim/table.hpp"

namespace sfs::bench {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return sim::format_double(v, 6);
}

}  // namespace detail

/// Emits one machine-readable result line:
///   BENCH_JSON {"bench":...,"n":...,"reps":...,"mean":...,"stderr":...,
///               "wall_s":...}
/// Pass a negative `wall_seconds` when wall time was not measured (emitted
/// as null).
inline void emit_json_line(const std::string& name, std::size_t n,
                           std::size_t reps, double mean, double stderr_mean,
                           double wall_seconds,
                           std::ostream& out = std::cout) {
  out << "BENCH_JSON {\"bench\":\"" << detail::json_escape(name)
      << "\",\"n\":" << n << ",\"reps\":" << reps
      << ",\"mean\":" << detail::json_num(mean)
      << ",\"stderr\":" << detail::json_num(stderr_mean) << ",\"wall_s\":"
      << (wall_seconds < 0.0 ? std::string("null")
                             : detail::json_num(wall_seconds))
      << "}\n";
}

/// Emits the fitted-exponent companion line to the per-point records:
///   BENCH_JSON {"bench":...,"kind":"fit","slope":...,"slope_stderr":...,
///               "r2":...,"wslope":...,"wslope_stderr":...,"ci_lo":...,
///               "ci_hi":...,"ci_reps":...,"points":...,"excluded":...}
/// The CI fields are null when no bootstrap CI was computed, and the
/// whole slope block is null when the series has no usable fit.
inline void emit_fit_json_line(const std::string& name,
                               const sim::ScalingSeries& series,
                               std::ostream& out = std::cout) {
  const bool has_ci = series.slope_ci.replicates > 0;
  out << "BENCH_JSON {\"bench\":\"" << detail::json_escape(name)
      << "\",\"kind\":\"fit\"";
  if (series.has_fit()) {
    out << ",\"slope\":" << detail::json_num(series.fit.slope)
        << ",\"slope_stderr\":" << detail::json_num(series.fit.slope_stderr)
        << ",\"r2\":" << detail::json_num(series.fit.r_squared)
        << ",\"wslope\":" << detail::json_num(series.weighted_fit.slope)
        << ",\"wslope_stderr\":"
        << detail::json_num(series.weighted_fit.slope_stderr);
  } else {
    out << ",\"slope\":null,\"slope_stderr\":null,\"r2\":null,"
           "\"wslope\":null,\"wslope_stderr\":null";
  }
  out << ",\"ci_lo\":"
      << (has_ci ? detail::json_num(series.slope_ci.lo) : std::string("null"))
      << ",\"ci_hi\":"
      << (has_ci ? detail::json_num(series.slope_ci.hi) : std::string("null"))
      << ",\"ci_reps\":" << series.slope_ci.replicates
      << ",\"points\":" << series.points.size()
      << ",\"excluded\":" << series.excluded.size() << "}\n";
}

/// Prints a ScalingSeries as a table with a fitted-slope footer comparing
/// against a theoretical exponent, plus one BENCH_JSON line per sweep
/// point (wall time unmeasured at this granularity) and one "fit" line.
/// Honors the no-fit contract: a series where has_fit() is false reports
/// "no usable fit" instead of quoting the meaningless default slope, and
/// points excluded from the fit are always listed.
inline void print_scaling(const std::string& title,
                          const sim::ScalingSeries& series,
                          const std::string& quantity, double theory_slope,
                          const std::string& theory_label) {
  sim::Table t(title, {"n", quantity, "stderr", "min", "max"});
  for (const auto& pt : series.points) {
    t.row()
        .integer(pt.n)
        .num(pt.summary.mean, 2)
        .num(pt.summary.stderr_mean, 2)
        .num(pt.summary.min, 1)
        .num(pt.summary.max, 1);
  }
  t.print(std::cout);
  if (series.has_fit()) {
    std::cout << "fitted exponent: " << sim::format_double(series.fit.slope, 3)
              << " +/- " << sim::format_double(series.fit.slope_stderr, 3);
    if (series.slope_ci.replicates > 0) {
      std::cout << "  [boot " << sim::format_double(series.slope_ci.lo, 3)
                << ", " << sim::format_double(series.slope_ci.hi, 3) << "]";
    }
    std::cout << "  (R^2 " << sim::format_double(series.fit.r_squared, 3)
              << ", weighted " << sim::format_double(series.weighted_fit.slope, 3)
              << " +/- "
              << sim::format_double(series.weighted_fit.slope_stderr, 3)
              << ")   theory " << theory_label << ": "
              << sim::format_double(theory_slope, 3) << "\n";
  } else {
    std::cout << "no usable fit (" << (series.points.size() -
                                       series.excluded.size())
              << " fittable points)   theory " << theory_label << ": "
              << sim::format_double(theory_slope, 3) << "\n";
  }
  if (!series.excluded.empty()) {
    std::cout << "excluded from fit (non-positive mean):";
    for (const std::size_t n : series.excluded) std::cout << " n=" << n;
    std::cout << "\n";
  }
  std::cout << "\n";
  for (const auto& pt : series.points) {
    emit_json_line(title, pt.n, pt.summary.count, pt.summary.mean,
                   pt.summary.stderr_mean, /*wall_seconds=*/-1.0);
  }
  emit_fit_json_line(title, series);
}

/// Command-line shape shared by the large-n scaling benches (e1/e2):
///   [--large [--quick] [--checkpoint <path>]]
struct LargeModeArgs {
  bool large = false;
  bool quick = false;
  std::string checkpoint_path;
};

/// Parses the shared flags; returns false (after printing usage) on an
/// unknown argument.
inline bool parse_large_mode_args(int argc, char** argv, LargeModeArgs& out) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) {
      out.large = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      out.quick = true;
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      out.checkpoint_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--large [--quick] [--checkpoint <path>]]\n";
      return false;
    }
  }
  // --quick/--checkpoint only affect large mode; silently ignoring them
  // without --large would e.g. run a long sweep with no checkpointing the
  // user explicitly asked for.
  if (!out.large && (out.quick || !out.checkpoint_path.empty())) {
    std::cerr << "usage: " << argv[0]
              << " [--large [--quick] [--checkpoint <path>]]\n"
              << "(--quick/--checkpoint require --large)\n";
    return false;
  }
  return true;
}

/// The shared grid/options plan of a --large run: geometric grid to
/// n = 2,097,152 (>= 2e6) with 3 reps and a 400-replicate bootstrap CI —
/// or a small smoke grid through the same code path under --quick —
/// fanned out on the shared pool, with optional checkpoint/resume.
struct LargeRunPlan {
  std::vector<std::size_t> sizes;
  std::size_t reps = 0;
  sim::ScalingOptions options;
};

inline LargeRunPlan plan_large_run(const LargeModeArgs& args) {
  LargeRunPlan plan;
  plan.sizes = args.quick ? sim::geometric_sizes(4096, 16384, 3)
                          : sim::geometric_sizes(65536, 2097152, 6);
  plan.reps = args.quick ? 2 : 3;
  plan.options.threads = 0;  // shared pool; measure lambdas must be
                             // thread-safe
  plan.options.checkpoint_path = args.checkpoint_path;
  plan.options.bootstrap_replicates = args.quick ? 100 : 400;
  return plan;
}

/// Prints a finished --large series plus the grid/wall footer, then
/// enforces the large-mode result contract: a usable exponent fit
/// (has_fit()) with a computed bootstrap CI. Returns the process exit
/// code — the contract failing is exit 1, so CI catches a sweep that
/// silently degraded into a non-measurement.
inline int report_large_run(const std::string& title,
                            const LargeRunPlan& plan,
                            const sim::ScalingSeries& series,
                            const std::string& quantity, double theory_slope,
                            const std::string& theory_label,
                            double wall_seconds) {
  print_scaling(title, series, quantity, theory_slope, theory_label);
  std::cout << "grid " << plan.sizes.front() << " .. " << plan.sizes.back()
            << " (" << plan.sizes.size() << " sizes x " << plan.reps
            << " reps), wall " << sim::format_double(wall_seconds, 1)
            << " s\n";
  if (!series.has_fit()) {
    std::cerr << title << ": no usable exponent fit ("
              << series.excluded.size() << " of " << series.points.size()
              << " points excluded)\n";
    return 1;
  }
  if (series.slope_ci.replicates == 0) {
    std::cerr << title << ": bootstrap CI could not be computed\n";
    return 1;
  }
  return 0;
}

}  // namespace sfs::bench
