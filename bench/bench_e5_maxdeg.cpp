// Thin compatibility wrapper: delegates to the experiment registry
// (equivalent to `sfs_bench --run e5 ...`). The experiment itself lives
// in bench/experiments/; this binary exists so existing scripts and
// muscle memory keep working. All flags go through the shared parser —
// unknown or unsupported flags exit 2 with usage.
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  return sfs::sim::experiment_main_for("e5", argc, argv);
}
