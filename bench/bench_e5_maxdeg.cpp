// E5 — Móri (2005): the maximum degree of the Móri tree G_t grows like
// t^p. This is the lever of Theorem 1's strong-model half: a strong
// request can be simulated by at most max-degree weak requests.
//
// Regenerates: max indegree vs t, fitted exponent against p.
#include <iostream>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "graph/degree.hpp"
#include "sim/scaling.hpp"

int main() {
  std::cout << "Mori 2005: max degree of G_t is Theta(t^p).\n\n";
  const std::vector<std::size_t> sizes{4096, 8192, 16384, 32768, 65536,
                                       131072};
  for (const double p : {0.25, 0.5, 0.75, 1.0}) {
    const auto series = sfs::sim::measure_scaling(
        sizes, 5, 0xE5,
        [p](std::size_t n, std::uint64_t seed) {
          sfs::rng::Rng rng(seed);
          const auto g =
              sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
          return static_cast<double>(
              sfs::graph::max_degree(g, sfs::graph::DegreeKind::kIn));
        },
        /*threads=*/0);
    sfs::bench::print_scaling(
        "E5: max indegree of Mori tree, p=" + sfs::sim::format_double(p, 2),
        series, "max degree",
        sfs::core::theory::mori_max_degree_exponent(p), "t^p exponent");
  }
  return 0;
}
