// E3 — Theorem 2: in every Cooper–Frieze model with 0 < alpha < 1, any
// weak-model algorithm needs expected Omega(n^{1/2}) requests to find the
// newest vertex.
//
// Regenerates: sweep of n for several (alpha, beta, gamma, delta, p, q)
// presets; fitted exponent of the portfolio-best weak cost.
#include <iostream>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "gen/cooper_frieze.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::gen::CooperFriezeParams;
using sfs::rng::Rng;

struct Preset {
  std::string name;
  CooperFriezeParams params;
};

std::vector<Preset> presets() {
  std::vector<Preset> out;
  {
    CooperFriezeParams p;
    p.alpha = 0.5;
    out.push_back({"balanced (alpha=0.5, unit edges)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.25;
    out.push_back({"old-heavy (alpha=0.25)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.75;
    out.push_back({"new-heavy (alpha=0.75)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.5;
    p.beta = 0.2;
    p.gamma = 0.2;
    p.delta = 0.2;
    out.push_back({"mostly preferential (beta=gamma=delta=0.2)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.5;
    p.q = {0.5, 0.3, 0.2};  // NEW emits 1-3 edges
    p.p = {0.7, 0.3};       // OLD emits 1-2 edges
    out.push_back({"multi-edge (E[q]=1.7, E[p]=1.3)", p});
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "Theorem 2: Omega(sqrt(n)) weak-model requests in all "
               "Cooper-Frieze models with 0 < alpha < 1.\n\n";
  const std::vector<std::size_t> sizes{1024, 2048, 4096, 8192};
  const std::size_t reps = 5;

  for (const auto& preset : presets()) {
    const auto series = sfs::sim::measure_scaling(
        sizes, reps, 0xE3,
        [&](std::size_t n, std::uint64_t seed) {
          const auto cost = sfs::sim::measure_weak_portfolio(
              [&, n](Rng& rng) {
                return sfs::gen::cooper_frieze(n, preset.params, rng).graph;
              },
              sfs::sim::oldest_to_newest(), 1, seed,
              sfs::search::RunBudget{.max_raw_requests = 40 * n});
          return cost.best_policy().requests.mean;
        },
        /*threads=*/0);
    sfs::bench::print_scaling("E3: weak-model requests, Cooper-Frieze " +
                                  preset.name,
                              series, "best requests",
                              sfs::core::theory::weak_lower_bound_exponent(),
                              "Omega exponent");
  }
  return 0;
}
