// E1 — Theorem 1, weak model: every weak-model search algorithm needs an
// expected Omega(n^{1/2}) requests to find vertex n in the merged Móri
// graph G^{(m)}, for all m >= 1 and 0 < p <= 1.
//
// Regenerates: per-(p, m) sweep of n with the full weak portfolio; reports
// each policy's mean cost at the largest n, the portfolio-best cost per n,
// and the fitted scaling exponent of the best cost (theory: >= 0.5, since
// even the best algorithm is lower-bounded).
#include <iostream>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;

void run_config(double p, std::size_t m) {
  const std::vector<std::size_t> sizes{1024, 2048, 4096, 8192, 16384};
  const std::size_t reps = 5;

  auto portfolio_best = [&](std::size_t n, std::uint64_t seed) {
    const auto cost = sfs::sim::measure_weak_portfolio(
        [n, m, p](Rng& rng) {
          return sfs::gen::merged_mori_graph(n, m, sfs::gen::MoriParams{p},
                                             rng);
        },
        sfs::sim::oldest_to_newest(), 1, seed,
        sfs::search::RunBudget{.max_raw_requests = 40 * n});
    return cost;
  };

  // Scaling of the portfolio-best cost.
  const auto series = sfs::sim::measure_scaling(
      sizes, reps, 0xE1,
      [&](std::size_t n, std::uint64_t seed) {
        return portfolio_best(n, seed).best_policy().requests.mean;
      },
      /*threads=*/0);
  sfs::bench::print_scaling(
      "E1: weak-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2) + " m=" + std::to_string(m),
      series, "best requests",
      sfs::core::theory::weak_lower_bound_exponent(), "Omega exponent");

  // Per-policy breakdown at the largest size.
  const auto big = sfs::sim::measure_weak_portfolio(
      [&](Rng& rng) {
        return sfs::gen::merged_mori_graph(sizes.back(), m,
                                           sfs::gen::MoriParams{p}, rng);
      },
      sfs::sim::oldest_to_newest(), reps, 0x1E1,
      sfs::search::RunBudget{.max_raw_requests = 40 * sizes.back()},
      /*threads=*/0);
  sfs::sim::Table t(
      "E1 detail: per-policy cost at n=" + std::to_string(sizes.back()) +
          " (p=" + sfs::sim::format_double(p, 2) + ", m=" +
          std::to_string(m) + ")",
      {"policy", "mean requests", "stderr", "found frac"});
  for (const auto& pol : big.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.requests.stderr_mean, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Theorem 1 (weak model): expected requests = Omega(sqrt(n)) "
               "for ALL weak-model algorithms.\n"
               "Empirical stand-in for 'all algorithms': min over an "
               "8-policy portfolio.\n\n";
  for (const double p : {0.25, 0.5, 0.75, 1.0}) run_config(p, 1);
  run_config(0.5, 2);
  run_config(0.5, 4);
  return 0;
}
