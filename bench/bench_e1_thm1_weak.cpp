// E1 — Theorem 1, weak model: every weak-model search algorithm needs an
// expected Omega(n^{1/2}) requests to find vertex n in the merged Móri
// graph G^{(m)}, for all m >= 1 and 0 < p <= 1.
//
// Regenerates: per-(p, m) sweep of n with the full weak portfolio; reports
// each policy's mean cost at the largest n, the portfolio-best cost per n,
// and the fitted scaling exponent of the best cost (theory: >= 0.5, since
// even the best algorithm is lower-bounded).
//
// Modes:
//   (default)            the conservative seed-size sweep over all (p, m)
//   --large              geometric grid to n = 2,097,152 (>= 2e6) at
//                        p=0.5, m=1 with bootstrap CI on the exponent,
//                        scratch-reusing generation and the shared pool
//   --large --quick      small smoke version of the same code path (CI)
//   --checkpoint <path>  stream (n, rep, value) cells to <path> and
//                        resume from it (large mode); interrupt with ^C
//                        and rerun to continue where it stopped
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;

void run_config(double p, std::size_t m) {
  const std::vector<std::size_t> sizes{1024, 2048, 4096, 8192, 16384};
  const std::size_t reps = 5;

  auto portfolio_best = [&](std::size_t n, std::uint64_t seed) {
    const auto cost = sfs::sim::measure_weak_portfolio(
        [n, m, p](Rng& rng) {
          return sfs::gen::merged_mori_graph(n, m, sfs::gen::MoriParams{p},
                                             rng);
        },
        sfs::sim::oldest_to_newest(), 1, seed,
        sfs::search::RunBudget{.max_raw_requests = 40 * n});
    return cost;
  };

  // Scaling of the portfolio-best cost.
  const auto series = sfs::sim::measure_scaling(
      sizes, reps, 0xE1,
      [&](std::size_t n, std::uint64_t seed) {
        return portfolio_best(n, seed).best_policy().requests.mean;
      },
      /*threads=*/0);
  sfs::bench::print_scaling(
      "E1: weak-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2) + " m=" + std::to_string(m),
      series, "best requests",
      sfs::core::theory::weak_lower_bound_exponent(), "Omega exponent");

  // Per-policy breakdown at the largest size.
  const auto big = sfs::sim::measure_weak_portfolio(
      [&](Rng& rng) {
        return sfs::gen::merged_mori_graph(sizes.back(), m,
                                           sfs::gen::MoriParams{p}, rng);
      },
      sfs::sim::oldest_to_newest(), reps, 0x1E1,
      sfs::search::RunBudget{.max_raw_requests = 40 * sizes.back()},
      /*threads=*/0);
  sfs::sim::Table t(
      "E1 detail: per-policy cost at n=" + std::to_string(sizes.back()) +
          " (p=" + sfs::sim::format_double(p, 2) + ", m=" +
          std::to_string(m) + ")",
      {"policy", "mean requests", "stderr", "found frac"});
  for (const auto& pol : big.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.requests.stderr_mean, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(std::cout);
  std::cout << '\n';
}

// Large-n mode: the ROADMAP "push the Theorem 1 sweeps past n = 10^6"
// study. One (p, m) configuration, geometric grid to >= 2e6 vertices,
// bootstrap CI on the fitted exponent, per-worker generator scratch, and
// optional checkpoint/resume for multi-hour grids.
int run_large(const sfs::bench::LargeModeArgs& args) {
  const double p = 0.5;
  const std::size_t m = 1;
  const auto plan = sfs::bench::plan_large_run(args);

  sfs::bench::WallTimer timer;
  const std::function<double(std::size_t, std::uint64_t,
                             sfs::gen::GenScratch&)>
      measure = [&](std::size_t n, std::uint64_t seed,
                    sfs::gen::GenScratch& scratch) {
        const auto cost = sfs::sim::measure_weak_portfolio(
            sfs::sim::ScratchGraphFactory(
                [&scratch, n, m, p](Rng& rng, sfs::gen::GenScratch&,
                                    Graph& out) {
                  // The inner portfolio runs sequentially inside this
                  // cell, so reusing the sweep-level per-worker scratch
                  // (instead of the portfolio's own, fresh per cell)
                  // keeps generator buffers warm across the whole grid.
                  sfs::gen::merged_mori_graph(n, m, sfs::gen::MoriParams{p},
                                              rng, scratch, out);
                }),
            sfs::sim::oldest_to_newest(), 1, seed,
            sfs::search::RunBudget{.max_raw_requests = 40 * n},
            /*threads=*/1);
        return cost.best_policy().requests.mean;
      };
  const auto series = sfs::sim::measure_scaling(plan.sizes, plan.reps,
                                                0x1A26E1, measure,
                                                plan.options);
  return sfs::bench::report_large_run(
      "E1 large: weak-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2) + " m=" + std::to_string(m) +
          (args.quick ? " (quick)" : ""),
      plan, series, "best requests",
      sfs::core::theory::weak_lower_bound_exponent(), "Omega exponent",
      timer.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  sfs::bench::LargeModeArgs args;
  if (!sfs::bench::parse_large_mode_args(argc, argv, args)) return 2;

  std::cout << "Theorem 1 (weak model): expected requests = Omega(sqrt(n)) "
               "for ALL weak-model algorithms.\n"
               "Empirical stand-in for 'all algorithms': min over an "
               "8-policy portfolio.\n\n";
  if (args.large) return run_large(args);
  for (const double p : {0.25, 0.5, 0.75, 1.0}) run_config(p, 1);
  run_config(0.5, 2);
  run_config(0.5, 4);
  return 0;
}
