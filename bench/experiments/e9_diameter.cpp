// E9 — "This is in contrast with the logarithmic diameter of such graphs":
// the same models that defeat local search have O(log n) distances, so
// short paths exist — they just cannot be found locally.
//
// Mean distance and pseudo-diameter vs n for Móri, Cooper–Frieze, merged
// Móri and BA; the diameter/log2(n) ratio should be roughly flat while
// E1's search cost grows like sqrt(n). --quick shrinks the size grid.
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

void report(ExperimentContext& ctx, const std::string& model,
            const std::vector<std::size_t>& sizes,
            const std::function<Graph(std::size_t, Rng&)>& make) {
  sfs::sim::Table t("E9: distances in " + model,
                    {"n", "mean distance", "pseudo-diameter",
                     "diam / log2(n)"});
  for (const std::size_t n : sizes) {
    Rng rng(ctx.stream_seed("graph " + model));
    const Graph g = make(n, rng);
    Rng sample_rng(ctx.stream_seed("sample " + model));
    const auto st = sfs::graph::sample_distances(g, 10, sample_rng);
    const auto diam = sfs::graph::pseudo_diameter(g);
    t.row()
        .integer(n)
        .num(st.mean_distance, 2)
        .integer(diam)
        .num(static_cast<double>(diam) / std::log2(static_cast<double>(n)),
             3);
  }
  t.print(ctx.console());
  ctx.console() << '\n';
}

int run_e9(ExperimentContext& ctx) {
  ctx.console() << "E9: logarithmic distances in the non-searchable models "
                   "(short paths exist; finding them locally costs "
                   "sqrt(n)).\n\n";
  const auto sizes = ctx.sizes_or(
      ctx.options.quick
          ? std::vector<std::size_t>{1024, 4096}
          : std::vector<std::size_t>{4096, 16384, 65536, 262144});
  report(ctx, "Mori tree p=0.5", sizes, [](std::size_t n, Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  });
  report(ctx, "merged Mori graph m=2, p=0.5", sizes,
         [](std::size_t n, Rng& rng) {
           return sfs::gen::merged_mori_graph(n, 2,
                                              sfs::gen::MoriParams{0.5},
                                              rng);
         });
  report(ctx, "Cooper-Frieze balanced", sizes, [](std::size_t n, Rng& rng) {
    sfs::gen::CooperFriezeParams params;
    return sfs::gen::cooper_frieze(n, params, rng).graph;
  });
  report(ctx, "Barabasi-Albert m=2", sizes, [](std::size_t n, Rng& rng) {
    return sfs::gen::barabasi_albert(
        n, sfs::gen::BarabasiAlbertParams{2, true}, rng);
  });
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e9({
    .name = "e9",
    .title = "Logarithmic diameter of the non-searchable models",
    .claim = "Short paths exist (diam ~ log n) in exactly the graphs where "
             "finding them locally costs sqrt(n)",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapSeed,
    .params =
        {
            {"--sizes", "size list", "4096..262144 (quick: 1024,4096)",
             "graph sizes per model"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; graph/sample streams per model"},
        },
    .run = run_e9,
});

}  // namespace
