// E5 — Móri (2005): the maximum degree of the Móri tree G_t grows like
// t^p. This is the lever of Theorem 1's strong-model half: a strong
// request can be simulated by at most max-degree weak requests.
//
// Max indegree vs t, fitted exponent against p. --quick shrinks the grid.
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "graph/degree.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace {

using sfs::sim::ExperimentContext;

int run_e5(ExperimentContext& ctx) {
  ctx.console() << "Mori 2005: max degree of G_t is Theta(t^p).\n\n";
  const auto sizes = ctx.sizes_or(
      ctx.options.quick
          ? std::vector<std::size_t>{4096, 8192, 16384}
          : std::vector<std::size_t>{4096, 8192, 16384, 32768, 65536,
                                     131072});
  const auto reps = ctx.reps_or(ctx.options.quick ? 2 : 5);
  for (const double p : {0.25, 0.5, 0.75, 1.0}) {
    const std::string tag = "p=" + sfs::sim::format_double(p, 2);
    const auto series = sfs::sim::measure_scaling(
        sizes, reps, ctx.stream_seed(tag),
        [p](std::size_t n, std::uint64_t seed) {
          sfs::rng::Rng rng(seed);
          const auto g =
              sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
          return static_cast<double>(
              sfs::graph::max_degree(g, sfs::graph::DegreeKind::kIn));
        },
        ctx.threads());
    sfs::sim::print_scaling(
        "E5: max indegree of Mori tree, " + tag, series, "max degree",
        sfs::core::theory::mori_max_degree_exponent(p), "t^p exponent",
        *ctx.emitter);
  }
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e5({
    .name = "e5",
    .title = "Mori 2005: max degree of G_t grows like t^p",
    .claim = "The hub-growth exponent behind the strong-model reduction "
             "(max-degree weak requests simulate one strong request)",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--sizes", "size list", "4096..131072 (quick: 4096..16384)",
             "tree sizes t"},
            {"--reps", "count", "5 (quick: 2)",
             "replications per sweep point"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per p"},
            {"--threads", "count", "0 (shared pool)",
             "replication fan-out worker count"},
        },
    .run = run_e5,
});

}  // namespace
