// Shared glue for the google-benchmark experiments (m1/m2): drives the
// process-global gbench registry through a synthetic argv so each
// registered experiment runs only its own BM_* cases (both experiments'
// benchmarks are compiled into the one sfs_bench driver).
//
// Lives in bench/experiments (not sim/) so the sfsearch library never
// depends on google-benchmark, which is an optional dependency.
#pragma once

#include <string>

#include "sim/experiment.hpp"

namespace sfs::bench {

/// Runs the gbench cases whose names match `filter` (a gbench filter
/// regex). Under ctx --quick, --benchmark_min_time drops to 0.05s. Every
/// per-iteration result is also forwarded to ctx.emitter as one
/// BENCH_JSON object (keys: bench, case, iterations, real_time, cpu_time,
/// time_unit, and items_per_second when the case reports it), so --json
/// captures gbench experiments like any harness-driven one.
/// Returns 0 when at least one benchmark ran, 1 otherwise.
[[nodiscard]] int run_gbench_experiment(sfs::sim::ExperimentContext& ctx,
                                        const std::string& filter);

}  // namespace sfs::bench
