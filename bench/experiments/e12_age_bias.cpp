// E12 — Why "vertex n"? The age/degree correlation of evolving graphs
// makes OLD vertices easy to find (they are hubs, reachable by climbing
// the degree/age gradient) while the NEWEST vertex hides among ~sqrt(n)
// statistically equivalent leaves. Quantifies the asymmetry the theorems
// build on: best weak-model cost by target age, Móri and Cooper–Frieze.
#include <string>
#include <utility>
#include <vector>

#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

void report(ExperimentContext& ctx, const std::string& model,
            const sfs::sim::GraphFactory& factory, std::size_t n,
            std::size_t reps) {
  sfs::sim::Table t("E12: cost by target age, " + model,
                    {"target (paper id)", "best policy", "best mean cost",
                     "degree-greedy cost", "bfs cost"});
  for (const std::size_t target :
       {std::size_t{1}, n / 4, n / 2, 3 * n / 4, n}) {
    // Fixed start: paper vertex 2 (old but not a target row), so rows are
    // comparable.
    const sfs::sim::EndpointSelector from_two =
        [target](const sfs::graph::Graph&, Rng&) {
          return std::pair<sfs::graph::VertexId, sfs::graph::VertexId>{
              1, static_cast<sfs::graph::VertexId>(target - 1)};
        };
    const auto cost = sfs::sim::measure_portfolio({
        .factory = factory,
        .endpoints = from_two,
        .reps = reps,
        .seed = ctx.stream_seed(model + " target=" + std::to_string(target)),
        .budget = {.max_raw_requests = 40 * n},
        .threads = ctx.threads(),
    });
    double greedy = 0.0;
    double bfs = 0.0;
    for (const auto& pol : cost.policies) {
      if (pol.name == "degree-greedy") greedy = pol.requests.mean;
      if (pol.name == "bfs") bfs = pol.requests.mean;
    }
    t.row()
        .integer(target)
        .cell(cost.best_policy().name)
        .num(cost.best_policy().requests.mean, 1)
        .num(greedy, 1)
        .num(bfs, 1);
  }
  t.print(ctx.console());
  ctx.console() << '\n';
}

int run_e12(ExperimentContext& ctx) {
  ctx.console() << "E12: searching OLD vertices is easy, searching the "
                   "NEWEST is Omega(sqrt(n)) — the asymmetry behind "
                   "targeting vertex n. Start vertex: the newest (paper id "
                   "n).\n\n";
  const std::size_t n = ctx.n_or(ctx.options.quick ? 2048 : 8192);
  const std::size_t reps = ctx.reps_or(ctx.options.quick ? 2 : 8);
  report(ctx, "Mori p=0.5",
         [n](Rng& rng) {
           return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
         },
         n, reps);
  report(ctx, "Cooper-Frieze balanced",
         [n](Rng& rng) {
           sfs::gen::CooperFriezeParams params;
           return sfs::gen::cooper_frieze(n, params, rng).graph;
         },
         n, reps);
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e12({
    .name = "e12",
    .title = "Age bias: old vertices are easy, the newest is sqrt(n)-hard",
    .claim = "The age/degree gradient makes hubs findable while the newest "
             "vertex hides among ~sqrt(n) equivalent leaves",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--n", "size", "8192 (quick: 2048)", "graph size"},
            {"--reps", "count", "8 (quick: 2)",
             "portfolio replications per target row"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per (model, target)"},
            {"--threads", "count", "0 (shared pool)",
             "portfolio fan-out worker count"},
        },
    .run = run_e12,
});

}  // namespace
