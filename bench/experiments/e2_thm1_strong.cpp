// E2 — Theorem 1, strong model: for Móri p < 1/2, every strong-model
// algorithm needs Omega(n^{1/2 - p - eps}) expected requests to find vertex
// n; the bound degrades with p because the maximum degree Theta(t^p) caps
// how much a single strong request can reveal.
//
// Default mode: per-p sweep of n with the strong portfolio; fitted exponent
// of the portfolio-best cost against the theory floor 1/2 - p.
//
// Grid modes (--large / --quick): geometric grid to n = 2,097,152 at
// p=0.25 with a bootstrap CI on the exponent, scratch-reusing generation
// on the shared pool, optional --checkpoint stream/resume.
#include <functional>
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

void run_p(ExperimentContext& ctx, double p,
           const std::vector<std::size_t>& sizes, std::size_t reps) {
  const std::string tag = "p=" + sfs::sim::format_double(p, 2);
  const auto series = sfs::sim::measure_scaling(
      sizes, reps, ctx.stream_seed("sweep " + tag),
      [&](std::size_t n, std::uint64_t seed) {
        const auto cost = sfs::sim::measure_portfolio({
            .model = sfs::search::KnowledgeModel::kStrong,
            .factory =
                [n, p](Rng& rng) {
                  return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
                },
            .endpoints = sfs::sim::oldest_to_newest(),
            .seed = seed,
        });
        return cost.best_policy().requests.mean;
      },
      ctx.threads());
  sfs::sim::print_scaling(
      "E2: strong-model requests to find vertex n, Mori " + tag, series,
      "best requests", sfs::core::theory::strong_lower_bound_exponent(p),
      "Omega exponent 1/2-p", *ctx.emitter);

  const auto big = sfs::sim::measure_portfolio({
      .model = sfs::search::KnowledgeModel::kStrong,
      .factory =
          [&](Rng& rng) {
            return sfs::gen::mori_tree(sizes.back(), sfs::gen::MoriParams{p},
                                       rng);
          },
      .endpoints = sfs::sim::oldest_to_newest(),
      .reps = reps,
      .seed = ctx.stream_seed("detail " + tag),
      .threads = ctx.threads(),
  });
  sfs::sim::Table t("E2 detail: per-policy cost at n=" +
                        std::to_string(sizes.back()) + " (" + tag + ")",
                    {"policy", "mean requests", "stderr", "found frac"});
  for (const auto& pol : big.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.requests.stderr_mean, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(ctx.console());
  ctx.console() << '\n';
}

// Grid mode ("push the Theorem 1 sweeps past n = 10^6"): one p in the
// non-trivial regime p < 1/2, geometric grid (smoke grid under --quick),
// bootstrap CI on the exponent, per-worker generator scratch, optional
// checkpoint/resume.
int run_grid(ExperimentContext& ctx) {
  const double p = 0.25;
  auto plan = sfs::sim::plan_large_run(
      ctx.options.quick, ctx.options.checkpoint_path, ctx.threads());
  plan.sizes = ctx.sizes_or(std::move(plan.sizes));
  plan.reps = ctx.reps_or(plan.reps);

  sfs::sim::WallTimer timer;
  const std::function<double(std::size_t, std::uint64_t,
                             sfs::gen::GenScratch&)>
      measure = [&](std::size_t n, std::uint64_t seed,
                    sfs::gen::GenScratch& scratch) {
        const auto cost = sfs::sim::measure_portfolio({
            .model = sfs::search::KnowledgeModel::kStrong,
            .scratch_factory =
                [&scratch, n, p](Rng& rng, sfs::gen::GenScratch&,
                                 Graph& out) {
                  // Sequential inner portfolio: reuse the sweep-level
                  // per-worker scratch across the whole grid.
                  sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng,
                                      scratch, out);
                },
            .endpoints = sfs::sim::oldest_to_newest(),
            .seed = seed,
        });
        return cost.best_policy().requests.mean;
      };
  // Sharded mode: compute only this process's slice of the grid into the
  // checkpoint and stop (see e1's run_grid for the merge/fold contract).
  if (ctx.options.has_shard) {
    const std::size_t measured = sfs::sim::measure_scaling_shard(
        plan.sizes, plan.reps, ctx.base_seed(), measure, plan.options,
        ctx.options.shard_index, ctx.options.shard_count);
    ctx.console() << "E2 shard " << ctx.options.shard_index << "/"
                  << ctx.options.shard_count << ": measured " << measured
                  << " cell(s) into " << plan.options.checkpoint_path
                  << " in " << sfs::sim::format_double(timer.seconds(), 1)
                  << " s\n";
    return 0;
  }
  const auto series = sfs::sim::measure_scaling(plan.sizes, plan.reps,
                                                ctx.base_seed(), measure,
                                                plan.options);
  return sfs::sim::report_large_run(
      "E2 large: strong-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2) +
          (ctx.options.quick ? " (quick)" : ""),
      plan, series, "best requests",
      sfs::core::theory::strong_lower_bound_exponent(p),
      "Omega exponent 1/2-p", timer.seconds(), *ctx.emitter);
}

int run_e2(ExperimentContext& ctx) {
  ctx.console() << "Theorem 1 (strong model): expected requests = "
                   "Omega(n^{1/2-p-eps}) for p < 1/2.\n"
                   "Note the weakening as p grows: one strong request on a "
                   "hub of degree ~t^p reveals t^p vertices at once.\n\n";
  if (ctx.options.large || ctx.options.quick) return run_grid(ctx);
  const auto sizes = ctx.sizes_or({2048, 4096, 8192, 16384, 32768});
  const auto reps = ctx.reps_or(5);
  for (const double p : {0.1, 0.25, 0.4}) run_p(ctx, p, sizes, reps);
  // Control: at p >= 1/2 the bound is trivial (exponent 0); the measured
  // cost may still grow, but the theorem no longer promises anything.
  run_p(ctx, 0.75, sizes, reps);
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e2({
    .name = "e2",
    .title = "Theorem 1 (strong): Omega(n^{1/2-p}) requests for p < 1/2",
    .claim = "Thm 1 strong half: strong-model cost floor weakens with the "
             "Mori hub exponent p",
    // Pinned for bit-compatibility with pre-registry bench_e2 grid
    // outputs and checkpoints (see e1).
    .default_seed = 0x1A26E2,
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapLarge |
            sfs::sim::kCapCheckpoint | sfs::sim::kCapSizes |
            sfs::sim::kCapReps | sfs::sim::kCapSeed | sfs::sim::kCapThreads |
            sfs::sim::kCapShard,
    .params =
        {
            {"--sizes", "size list", "2048..32768 (grid modes: geometric)",
             "n sweep of the portfolio-best cost"},
            {"--reps", "count", "5 (grid modes: 3, quick 2)",
             "replications per sweep point"},
            {"--seed", "u64 seed", "0x1A26E2 (pinned)",
             "base seed; sweep/detail streams derive from it"},
            {"--threads", "count", "0 (shared pool)",
             "replication fan-out worker count"},
            {"--shard", "i/k", "unsharded",
             "grid modes: compute shard i of k into --checkpoint; merge "
             "with sfsearch_cli merge-checkpoints"},
        },
    .run = run_e2,
});

}  // namespace
