// E10 — The proof machinery end-to-end (Lemmas 1+2+3): the window
// [[n, n + sqrt(n)]] of ~sqrt(n) vertices is equivalent conditional on
// E_{a,b}, so expected search cost >= |V| * P(E) / 2. Computes the
// estimated bound, the closed-form floor |V| e^{-(1-p)} / 2, and the
// measured best-portfolio weak cost — the measurement must dominate the
// bound.
//
// Also validates Lemma 2 empirically: per-position conditional feature
// means across the window agree (exchangeability). --quick shrinks the
// Monte-Carlo budgets.
#include <string>
#include <vector>

#include "core/lower_bound.hpp"
#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

int run_e10(ExperimentContext& ctx) {
  ctx.console() << "E10: Lemma 1 bound |V| P(E)/2 vs measured best "
                   "weak-model cost (Mori, target = vertex n).\n\n";
  const double p = 0.5;
  const bool quick = ctx.options.quick;
  const auto sizes = ctx.sizes_or(
      quick ? std::vector<std::size_t>{1024, 4096}
            : std::vector<std::size_t>{1024, 4096, 16384});
  const std::size_t bound_reps = quick ? 500 : 3000;
  const std::size_t cost_reps = ctx.reps_or(quick ? 2 : 8);
  sfs::sim::Table t("E10: bound vs measurement, Mori p=0.5",
                    {"n", "|V|", "P(E) est", "bound |V|P/2",
                     "theory floor", "measured best", "measured/bound"});
  for (const std::size_t n : sizes) {
    const auto bound = sfs::core::mori_lower_bound(
        p, n, bound_reps, ctx.stream_seed("bound n=" + std::to_string(n)));
    const auto cost = sfs::sim::measure_portfolio({
        .factory =
            [n, p](Rng& rng) {
              return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
            },
        .endpoints = sfs::sim::oldest_to_newest(),
        .reps = cost_reps,
        .seed = ctx.stream_seed("cost n=" + std::to_string(n)),
        .budget = {.max_raw_requests = 40 * n},
        .threads = ctx.threads(),
    });
    const double measured = cost.best_policy().requests.mean;
    t.row()
        .integer(n)
        .integer(bound.window_size)
        .num(bound.event.probability, 4)
        .num(bound.bound, 1)
        .num(bound.theory_floor, 1)
        .num(measured, 1)
        .num(measured / bound.bound, 2);
  }
  t.print(ctx.console());

  ctx.console() << "\nLemma 2 exchangeability check (conditional on "
                   "E_{a,b}, window positions are interchangeable):\n";
  const std::size_t a = 128;
  const std::size_t b = sfs::core::theory::lemma3_window_end(a);
  // Signature: (p, a, b, final time t, replications, seed).
  const auto st = sfs::core::window_feature_stats(
      p, a, b, 400, quick ? 600 : 6000, ctx.stream_seed("window"));
  sfs::sim::Table w("E10: per-position conditional means, window (" +
                        std::to_string(a) + ", " + std::to_string(b) + "]",
                    {"paper vertex", "mean final indegree", "P(leaf)"});
  for (std::size_t i = 0; i < st.mean_final_indegree.size(); ++i) {
    w.row()
        .integer(a + 1 + i)
        .num(st.mean_final_indegree[i], 3)
        .num(st.leaf_probability[i], 3);
  }
  w.print(ctx.console());
  ctx.console() << "accepted " << st.accepted << "/" << st.attempted
                << " trees (acceptance ~ P(E)); columns should be flat.\n";

  ctx.console() << "\nCooper-Frieze analogue (untouched-window event):\n";
  sfs::gen::CooperFriezeParams params;
  sfs::sim::Table c("E10: CF window event",
                    {"n", "|V|", "P(E) est", "bound"});
  for (const std::size_t n : std::vector<std::size_t>{1024, 4096}) {
    const auto est = sfs::core::cooper_frieze_lower_bound(
        params, n, quick ? 400 : 2000,
        ctx.stream_seed("cf n=" + std::to_string(n)));
    c.row()
        .integer(n)
        .integer(est.window_size)
        .num(est.event.probability, 4)
        .num(est.bound, 2);
  }
  c.print(ctx.console());
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e10({
    .name = "e10",
    .title = "Lemmas 1+2+3 end-to-end: bound vs measured cost",
    .claim = "The equivalent-window machinery: measured best weak cost "
             "dominates |V| P(E)/2, window positions exchangeable",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--sizes", "size list", "1024,4096,16384 (quick: 1024,4096)",
             "target sizes n for the bound-vs-cost table"},
            {"--reps", "count", "8 (quick: 2)",
             "portfolio replications per n"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; bound/cost/window streams derive from it"},
            {"--threads", "count", "0 (shared pool)",
             "portfolio fan-out worker count"},
        },
    .run = run_e10,
});

}  // namespace
