// E6 — Scale-freeness of the models (the paper's premise): the Móri tree
// has a power-law degree distribution with exponent 1 + 1/p, and
// Cooper–Frieze graphs are power-law for all mixing parameters; BA is the
// classic exponent-3 reference.
//
// MLE tail fits and a log-binned CCDF summary at n = 1e5 (--n overrides,
// --quick drops to n = 2e4).
#include <string>

#include "core/theory.hpp"
#include "gen/barabasi_albert.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "graph/degree.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "stats/powerlaw.hpp"

namespace {

using sfs::graph::Graph;
using sfs::sim::ExperimentContext;

void fit_row(sfs::sim::Table& t, const std::string& model, const Graph& g,
             sfs::graph::DegreeKind kind, double predicted) {
  const auto degrees = sfs::graph::degree_sequence(g, kind);
  std::vector<std::size_t> positive;
  for (const auto d : degrees) {
    if (d >= 1) positive.push_back(d);
  }
  const auto auto_fit = sfs::stats::fit_power_law_auto(positive);
  const auto deep = sfs::stats::fit_power_law_tail(positive, 10);
  t.row()
      .cell(model)
      .num(predicted, 3)
      .num(auto_fit.alpha, 3)
      .integer(auto_fit.xmin)
      .num(auto_fit.ks_distance, 4)
      .num(deep.alpha, 3)
      .integer(sfs::graph::max_degree(g, kind));
}

int run_e6(ExperimentContext& ctx) {
  const std::size_t n = ctx.n_or(ctx.options.quick ? 20000 : 100000);
  ctx.console() << "E6: power-law degree distributions (MLE tail fits, n = "
                << n
                << ").\nFinite-size note: fitted exponents approach "
                   "the asymptotic value from below.\n\n";
  sfs::sim::Table t("E6: degree-distribution exponents",
                    {"model", "theory alpha", "alpha (auto xmin)", "xmin",
                     "KS", "alpha (xmin=10)", "max deg"});

  for (const double p : {1.0 / 3.0, 0.5, 2.0 / 3.0}) {
    const std::string tag = "mori p=" + sfs::sim::format_double(p, 2);
    sfs::rng::Rng rng(ctx.stream_seed(tag));
    const Graph g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
    fit_row(t, "Mori p=" + sfs::sim::format_double(p, 2), g,
            sfs::graph::DegreeKind::kIn,
            sfs::core::theory::mori_degree_distribution_exponent(p));
  }
  {
    sfs::rng::Rng rng(ctx.stream_seed("cf balanced"));
    sfs::gen::CooperFriezeParams params;  // balanced defaults
    const Graph g = sfs::gen::cooper_frieze(n, params, rng).graph;
    fit_row(t, "Cooper-Frieze balanced", g, sfs::graph::DegreeKind::kIn,
            0.0);  // no closed form printed; power law expected
  }
  {
    sfs::rng::Rng rng(ctx.stream_seed("cf pref-heavy"));
    sfs::gen::CooperFriezeParams params;
    params.beta = 0.2;
    params.gamma = 0.2;
    const Graph g = sfs::gen::cooper_frieze(n, params, rng).graph;
    fit_row(t, "Cooper-Frieze pref-heavy", g, sfs::graph::DegreeKind::kIn,
            0.0);
  }
  {
    sfs::rng::Rng rng(ctx.stream_seed("ba m=2"));
    const Graph g = sfs::gen::barabasi_albert(
        n, sfs::gen::BarabasiAlbertParams{2, true}, rng);
    fit_row(t, "Barabasi-Albert m=2", g,
            sfs::graph::DegreeKind::kUndirected, 3.0);
  }
  t.print(ctx.console());

  // Log-binned CCDF of one Mori tree, the figure-style artifact.
  ctx.console() << "\nLog-binned indegree CCDF, Mori p=0.5, n=" << n
                << ":\n";
  sfs::rng::Rng rng(ctx.stream_seed("ccdf"));
  const Graph g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  sfs::sim::Table c("E6 figure: CCDF by degree", {"degree", "P(D >= d)"});
  const auto ccdf = sfs::graph::degree_ccdf(g, sfs::graph::DegreeKind::kIn);
  std::size_t next = 1;
  for (const auto& [d, prob] : ccdf) {
    if (d >= next) {
      c.row().integer(d).num(prob, 6);
      next = d * 2;
    }
  }
  c.print(ctx.console());
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e6({
    .name = "e6",
    .title = "Power-law degree distributions of the evolving models",
    .claim = "Premise: Mori exponent 1 + 1/p, Cooper-Frieze power-law for "
             "all mixings, BA exponent 3",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize | sfs::sim::kCapSeed,
    .params =
        {
            {"--n", "size", "100000 (quick: 20000)",
             "graph size for the tail fits"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per model row"},
        },
    .run = run_e6,
});

}  // namespace
