// D1 — search-cost and success-rate degradation under steady-state churn.
//
// The paper's bounds are proved on a static snapshot; every deployed P2P
// overlay serves lookups while peers join, leave and links fail. This
// experiment family measures what that costs: for each (churn rate, n)
// cell it builds one power-law overlay (graph::Overlay over the largest
// component of a configuration graph), alternates sim::ChurnSchedule
// steps with departure-tolerant QueryEngine batches for several rounds,
// and reports per policy the mean charged-request cost, lookup success
// rate, probe failures, restarts and abandonment — the degradation curves
// — plus, per churn rate, the fitted cost exponent over n: does the
// static searchability exponent survive steady-state churn?
//
// Pairing: the base graph of a given n is regenerated from a
// rate-independent stream, so every churn rate starts from the identical
// overlay, and every policy serves the identical query rounds.
//
// Contracts checked at runtime (exit 1 on violation):
//   * rate 0 is the static graph: every per-query SearchResult of the
//     overlay-bound engine must equal, bit for bit, a static-graph engine
//     run with the same seeds (the ChurnSchedule null step and the
//     all-alive masks must be unobservable);
//   * churn must not break determinism: all randomness flows through
//     audited streams, no wall-clock value is printed, so stdout is
//     bit-identical for any SFS_THREADS (CI diffs 1 vs 4 under
//     SFS_RNG_AUDIT=1).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "graph/overlay.hpp"
#include "rng/stream_audit.hpp"
#include "search/query_engine.hpp"
#include "sim/churn.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"
#include "sim/table.hpp"
#include "stats/regression.hpp"

namespace {

using sfs::graph::VertexId;
using sfs::search::Query;
using sfs::search::SearchResult;
using sfs::sim::ExperimentContext;

// Per-round stream tag of a policy session's seed (the engine then derives
// per-query streams from the round seed; see search/query_engine.hpp on
// why same-seed rounds would replay identical randomness).
const std::uint64_t kRoundStream = sfs::rng::mix64(0x0d1ULL);

struct CellAgg {
  std::size_t queries = 0;
  std::size_t found = 0;
  std::size_t abandoned = 0;
  double requests = 0.0;
  double raw_requests = 0.0;
  double failed_requests = 0.0;
  double restarts = 0.0;

  void add(const SearchResult& r) {
    ++queries;
    if (r.found) ++found;
    if (r.abandoned) ++abandoned;
    requests += static_cast<double>(r.requests);
    raw_requests += static_cast<double>(r.raw_requests);
    failed_requests += static_cast<double>(r.failed_requests);
    restarts += static_cast<double>(r.restarts);
  }
  [[nodiscard]] double mean_requests() const {
    return queries == 0 ? 0.0 : requests / static_cast<double>(queries);
  }
  [[nodiscard]] double frac(std::size_t k) const {
    return queries == 0 ? 0.0
                        : static_cast<double>(k) / static_cast<double>(queries);
  }
};

bool identical(const std::vector<SearchResult>& a,
               const std::vector<SearchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].found != b[i].found || a[i].requests != b[i].requests ||
        a[i].raw_requests != b[i].raw_requests ||
        a[i].failed_requests != b[i].failed_requests ||
        a[i].path_length != b[i].path_length ||
        a[i].budget_exhausted != b[i].budget_exhausted ||
        a[i].gave_up != b[i].gave_up || a[i].restarts != b[i].restarts ||
        a[i].abandoned != b[i].abandoned) {
      return false;
    }
  }
  return true;
}

int run_d1(ExperimentContext& ctx) {
  const bool quick = ctx.options.quick;
  const auto sizes = ctx.sizes_or(
      quick ? std::vector<std::size_t>{600, 1200}
            : std::vector<std::size_t>{2000, 4000, 8000});
  const std::size_t batch = ctx.reps_or(quick ? 60 : 200);
  const std::size_t rounds = quick ? 3 : 5;
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.02}
            : std::vector<double>{0.0, 0.005, 0.02, 0.05};
  std::vector<std::string> policies = ctx.options.policies;
  if (policies.empty()) policies = {"degree-greedy-strong", "random-walk"};

  ctx.console() << "D1: lookup degradation under steady-state churn.\n"
                << "Per (rate, n) cell: " << rounds
                << " churn steps, each followed by a batch of " << batch
                << " lookups per policy; per-step departure probability = "
                   "rate, edge-failure probability = rate/2, departures "
                   "replaced by preferential-attachment joins.\n\n";

  // agg[rate][size][policy]; peers[size] = initial live population.
  std::vector<std::vector<std::vector<CellAgg>>> agg(
      rates.size(),
      std::vector<std::vector<CellAgg>>(
          sizes.size(), std::vector<CellAgg>(policies.size())));
  std::vector<std::size_t> peers_of(sizes.size(), 0);

  sfs::sim::Table t(
      "D1: degradation per (churn rate, n, policy), " +
          std::to_string(rounds * batch) + " lookups each",
      {"rate", "n", "policy", "mean req", "found frac", "mean failed",
       "mean restarts", "abandoned", "compactions"});
  int exit_code = 0;

  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    const double rate = rates[ri];
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const std::size_t n = sizes[si];
      const std::string cell =
          " rate" + std::to_string(ri) + " n" + std::to_string(n);

      // Base graph: rate-independent stream, so every rate starts from
      // the identical overlay (paired across rates; regeneration from the
      // same seed is bit-identical).
      sfs::rng::Rng graph_rng(ctx.stream_seed("graph n" + std::to_string(n)));
      auto component = sfs::graph::largest_component(
          sfs::gen::power_law_configuration_graph(
              n, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
              sfs::gen::ConfigModelOptions{false}, graph_rng));
      const std::size_t peers = component.graph.num_vertices();
      peers_of[si] = peers;
      sfs::graph::Overlay overlay(std::move(component.graph));

      sfs::sim::ChurnParams churn_params;
      churn_params.rate = rate;
      churn_params.replace = true;
      churn_params.edge_failure_rate = rate * 0.5;
      churn_params.join_edges = 2;
      const sfs::sim::ChurnSchedule schedule(
          churn_params, ctx.stream_seed("churn" + cell));

      // One overlay-bound engine per policy; at rate 0 also a static twin
      // over the same snapshot for the exact-reproduction contract.
      std::vector<std::unique_ptr<sfs::search::QueryEngine>> engines;
      std::vector<std::unique_ptr<sfs::search::QueryEngine>> static_twins;
      std::vector<std::uint64_t> session_base(policies.size());
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        sfs::search::QueryEngineOptions options;
        options.budget.max_raw_requests = 30 * peers;
        engines.push_back(std::make_unique<sfs::search::QueryEngine>(
            overlay, policies[pi], options));
        if (rate == 0.0) {
          static_twins.push_back(std::make_unique<sfs::search::QueryEngine>(
              overlay.snapshot(), policies[pi], options));
        }
        session_base[pi] = ctx.stream_seed("session " + policies[pi] + cell);
      }

      sfs::rng::Rng query_rng(ctx.stream_seed("queries" + cell));
      std::vector<VertexId> alive;
      std::vector<Query> queries(batch);
      sfs::sim::ChurnStepStats churn_totals;
      bool rate0_identical = true;

      for (std::size_t round = 0; round < rounds; ++round) {
        // Inject faults, serve the round's lookups against the broken
        // overlay (tombstones and dead links visible — the tolerant-search
        // path), repair afterwards. Rate 0: both phases are exact no-ops.
        auto step = schedule.inject(overlay, round);

        // Round traffic between live peers, shared by every policy.
        alive.clear();
        const auto mask = overlay.vertex_alive_mask();
        for (std::size_t v = 0; v < mask.size(); ++v) {
          if (mask[v] != 0) alive.push_back(static_cast<VertexId>(v));
        }
        for (auto& q : queries) {
          q.target = alive[static_cast<std::size_t>(
              query_rng.uniform_index(alive.size()))];
          do {
            q.start = alive[static_cast<std::size_t>(
                query_rng.uniform_index(alive.size()))];
          } while (q.start == q.target);
        }

        for (std::size_t pi = 0; pi < policies.size(); ++pi) {
          const std::uint64_t round_seed = sfs::rng::audited_stream_seed(
              session_base[pi], kRoundStream, round);
          engines[pi]->set_seed(round_seed);
          const auto results = engines[pi]->run_batch(queries, ctx.threads());
          for (const auto& r : results) agg[ri][si][pi].add(r);

          if (rate == 0.0) {
            static_twins[pi]->set_seed(round_seed);
            const auto expected =
                static_twins[pi]->run_batch(queries, ctx.threads());
            if (!identical(results, expected)) rate0_identical = false;
          }
        }

        schedule.repair(overlay, round, step);
        churn_totals.departures += step.departures;
        churn_totals.joins += step.joins;
        churn_totals.edge_failures += step.edge_failures;
        if (step.compacted) churn_totals.compacted = true;
      }

      if (rate == 0.0 && !rate0_identical) {
        ctx.console() << "CONTRACT FAILURE: rate-0 overlay lookups diverged "
                         "from the static graph (n="
                      << n << ")\n";
        exit_code = 1;
      }

      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const CellAgg& a = agg[ri][si][pi];
        const double dq = static_cast<double>(a.queries);
        t.row()
            .num(rate, 3)
            .cell(std::to_string(peers))
            .cell(policies[pi])
            .num(a.mean_requests(), 1)
            .num(a.frac(a.found), 3)
            .num(a.failed_requests / dq, 2)
            .num(a.restarts / dq, 3)
            .num(a.frac(a.abandoned), 3)
            .cell(std::to_string(overlay.compactions()));

        sfs::sim::JsonObjectWriter json;
        json.str_field("bench", "d1_churn");
        json.str_field("kind", "churn_point");
        json.num_field("rate", rate);
        json.int_field("n", peers);
        json.str_field("policy", policies[pi]);
        json.str_field("model",
                       std::string(sfs::search::model_name(
                           engines[pi]->model())));
        json.int_field("rounds", rounds);
        json.int_field("queries", a.queries);
        json.num_field("mean_requests", a.mean_requests());
        json.num_field("mean_raw_requests", a.raw_requests / dq);
        json.num_field("found_frac", a.frac(a.found));
        json.num_field("mean_failed_requests", a.failed_requests / dq);
        json.num_field("mean_restarts", a.restarts / dq);
        json.num_field("abandoned_frac", a.frac(a.abandoned));
        json.int_field("departures", churn_totals.departures);
        json.int_field("joins", churn_totals.joins);
        json.int_field("edge_failures", churn_totals.edge_failures);
        json.int_field("compactions", overlay.compactions());
        json.int_field("final_alive", overlay.num_alive());
        json.bool_field("rate0_static_identical",
                        rate == 0.0 ? rate0_identical : true);
        ctx.emitter->emit_object(json.str());
      }
    }
  }
  t.print(ctx.console());

  // Does the fitted cost exponent survive churn? Per (rate, policy), fit
  // mean cost ~ c * n^b over the size grid and compare against rate 0.
  ctx.console() << "\nFitted cost exponent b (mean requests ~ c * n^b) per "
                   "churn rate:\n";
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
      std::vector<double> xs, ys;
      for (std::size_t si = 0; si < sizes.size(); ++si) {
        const double y = agg[ri][si][pi].mean_requests();
        if (y > 0.0) {
          xs.push_back(static_cast<double>(peers_of[si]));
          ys.push_back(y);
        }
      }
      sfs::stats::LinearFit fit;
      if (xs.size() >= 2) fit = sfs::stats::fit_power_law(xs, ys);
      ctx.console() << "  " << policies[pi] << " rate ";
      {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", rates[ri]);
        ctx.console() << buf;
      }
      if (fit.ok()) {
        char buf[96];
        std::snprintf(buf, sizeof buf, ": b = %.3f (stderr %.3f, R^2 %.3f)",
                      fit.slope, fit.slope_stderr, fit.r_squared);
        ctx.console() << buf << "\n";
      } else {
        ctx.console() << ": no fit (needs >= 2 sizes with positive cost)\n";
      }

      sfs::sim::JsonObjectWriter json;
      json.str_field("bench", "d1_churn");
      json.str_field("kind", "exponent_fit");
      json.num_field("rate", rates[ri]);
      json.str_field("policy", policies[pi]);
      json.bool_field("ok", fit.ok());
      json.num_field("exponent", fit.slope);
      json.num_field("stderr", fit.slope_stderr);
      json.num_field("r_squared", fit.r_squared);
      ctx.emitter->emit_object(json.str());
    }
  }
  ctx.console() << "\nRate-0 contract: overlay lookups "
                << (exit_code == 0 ? "reproduce the static graph bit for bit"
                                   : "DIVERGED from the static graph")
                << ".\n";
  return exit_code;
}

const sfs::sim::ExperimentRegistrar reg_d1({
    .name = "d1_churn",
    .title = "Churn: lookup cost/success degradation on dynamic overlays",
    .claim = "Search cost and success rate degrade smoothly with steady-state "
             "churn, and the rate-0 overlay reproduces static-graph costs "
             "exactly",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads |
            sfs::sim::kCapPolicies,
    .params =
        {
            {"--sizes", "size list", "2000,4000,8000 (quick: 600,1200)",
             "overlay sizes before largest-component extraction"},
            {"--reps", "count", "200 (quick: 60)",
             "lookups per round (per churn step)"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; graph/churn/query/session streams derive from it"},
            {"--threads", "count", "0 (shared pool)",
             "worker count for query batches (results thread-invariant)"},
            {"--policies", "name list", "degree-greedy-strong,random-walk",
             "registered policies to measure"},
        },
    .run = run_d1,
});

}  // namespace
