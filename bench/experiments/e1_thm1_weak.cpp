// E1 — Theorem 1, weak model: every weak-model search algorithm needs an
// expected Omega(n^{1/2}) requests to find vertex n in the merged Móri
// graph G^{(m)}, for all m >= 1 and 0 < p <= 1.
//
// Default mode: per-(p, m) sweep of n with the full weak portfolio; reports
// each policy's mean cost at the largest n, the portfolio-best cost per n,
// and the fitted scaling exponent of the best cost (theory: >= 0.5).
//
// Grid modes (--large, or --quick for the small smoke grid through the
// same code path): geometric grid to n = 2,097,152 (>= 2e6) at p=0.5, m=1
// with a bootstrap CI on the exponent, scratch-reusing generation on the
// shared pool, and optional --checkpoint stream/resume.
#include <functional>
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

void run_config(ExperimentContext& ctx, double p, std::size_t m,
                const std::vector<std::size_t>& sizes, std::size_t reps) {
  const std::string tag =
      "p=" + sfs::sim::format_double(p, 2) + " m=" + std::to_string(m);

  auto portfolio_best = [&](std::size_t n, std::uint64_t seed) {
    return sfs::sim::measure_portfolio({
        .factory =
            [n, m, p](Rng& rng) {
              return sfs::gen::merged_mori_graph(n, m,
                                                 sfs::gen::MoriParams{p}, rng);
            },
        .endpoints = sfs::sim::oldest_to_newest(),
        .seed = seed,
        .budget = {.max_raw_requests = 40 * n},
    });
  };

  // Scaling of the portfolio-best cost.
  const auto series = sfs::sim::measure_scaling(
      sizes, reps, ctx.stream_seed("sweep " + tag),
      [&](std::size_t n, std::uint64_t seed) {
        return portfolio_best(n, seed).best_policy().requests.mean;
      },
      ctx.threads());
  sfs::sim::print_scaling(
      "E1: weak-model requests to find vertex n, Mori " + tag, series,
      "best requests", sfs::core::theory::weak_lower_bound_exponent(),
      "Omega exponent", *ctx.emitter);

  // Per-policy breakdown at the largest size.
  const auto big = sfs::sim::measure_portfolio({
      .factory =
          [&](Rng& rng) {
            return sfs::gen::merged_mori_graph(sizes.back(), m,
                                               sfs::gen::MoriParams{p}, rng);
          },
      .endpoints = sfs::sim::oldest_to_newest(),
      .reps = reps,
      .seed = ctx.stream_seed("detail " + tag),
      .budget = {.max_raw_requests = 40 * sizes.back()},
      .threads = ctx.threads(),
  });
  sfs::sim::Table t("E1 detail: per-policy cost at n=" +
                        std::to_string(sizes.back()) + " (" + tag + ")",
                    {"policy", "mean requests", "stderr", "found frac"});
  for (const auto& pol : big.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.requests.stderr_mean, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(ctx.console());
  ctx.console() << '\n';
}

// Grid mode: the "push the Theorem 1 sweeps past n = 10^6" study. One
// (p, m) configuration, geometric grid (small smoke grid under --quick),
// bootstrap CI on the fitted exponent, per-worker generator scratch, and
// optional checkpoint/resume for multi-hour grids.
int run_grid(ExperimentContext& ctx) {
  const double p = 0.5;
  const std::size_t m = 1;
  auto plan = sfs::sim::plan_large_run(
      ctx.options.quick, ctx.options.checkpoint_path, ctx.threads());
  plan.sizes = ctx.sizes_or(std::move(plan.sizes));
  plan.reps = ctx.reps_or(plan.reps);

  sfs::sim::WallTimer timer;
  const std::function<double(std::size_t, std::uint64_t,
                             sfs::gen::GenScratch&)>
      measure = [&](std::size_t n, std::uint64_t seed,
                    sfs::gen::GenScratch& scratch) {
        const auto cost = sfs::sim::measure_portfolio({
            .scratch_factory =
                [&scratch, n, m, p](Rng& rng, sfs::gen::GenScratch&,
                                    Graph& out) {
                  // The inner portfolio runs sequentially inside this
                  // cell, so reusing the sweep-level per-worker scratch
                  // (instead of the portfolio's own, fresh per cell)
                  // keeps generator buffers warm across the whole grid.
                  sfs::gen::merged_mori_graph(n, m, sfs::gen::MoriParams{p},
                                              rng, scratch, out);
                },
            .endpoints = sfs::sim::oldest_to_newest(),
            .seed = seed,
            .budget = {.max_raw_requests = 40 * n},
        });
        return cost.best_policy().requests.mean;
      };
  // Sharded mode: compute only this process's slice of the grid into the
  // checkpoint (validated to be present) and stop — merge_checkpoints +
  // an unsharded rerun over the merged file fold the shards into a series
  // bit-identical to a single-process run.
  if (ctx.options.has_shard) {
    const std::size_t measured = sfs::sim::measure_scaling_shard(
        plan.sizes, plan.reps, ctx.base_seed(), measure, plan.options,
        ctx.options.shard_index, ctx.options.shard_count);
    ctx.console() << "E1 shard " << ctx.options.shard_index << "/"
                  << ctx.options.shard_count << ": measured " << measured
                  << " cell(s) into " << plan.options.checkpoint_path
                  << " in " << sfs::sim::format_double(timer.seconds(), 1)
                  << " s\n";
    return 0;
  }
  const auto series = sfs::sim::measure_scaling(plan.sizes, plan.reps,
                                                ctx.base_seed(), measure,
                                                plan.options);
  return sfs::sim::report_large_run(
      "E1 large: weak-model requests to find vertex n, Mori p=" +
          sfs::sim::format_double(p, 2) + " m=" + std::to_string(m) +
          (ctx.options.quick ? " (quick)" : ""),
      plan, series, "best requests",
      sfs::core::theory::weak_lower_bound_exponent(), "Omega exponent",
      timer.seconds(), *ctx.emitter);
}

int run_e1(ExperimentContext& ctx) {
  ctx.console()
      << "Theorem 1 (weak model): expected requests = Omega(sqrt(n)) "
         "for ALL weak-model algorithms.\n"
         "Empirical stand-in for 'all algorithms': min over an "
         "8-policy portfolio.\n\n";
  if (ctx.options.large || ctx.options.quick) return run_grid(ctx);
  const auto sizes = ctx.sizes_or({1024, 2048, 4096, 8192, 16384});
  const auto reps = ctx.reps_or(5);
  for (const double p : {0.25, 0.5, 0.75, 1.0}) {
    run_config(ctx, p, 1, sizes, reps);
  }
  run_config(ctx, 0.5, 2, sizes, reps);
  run_config(ctx, 0.5, 4, sizes, reps);
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e1({
    .name = "e1",
    .title = "Theorem 1 (weak): Omega(sqrt(n)) requests to find vertex n",
    .claim = "Thm 1 weak half: every weak-model algorithm pays "
             "Omega(n^{1/2}) expected requests on merged Mori graphs",
    // Pinned (not name-derived): keeps the --large/--quick grid bit-
    // compatible with pre-registry bench_e1 outputs and with on-disk
    // checkpoints, whose meta row records this seed.
    .default_seed = 0x1A26E1,
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapLarge |
            sfs::sim::kCapCheckpoint | sfs::sim::kCapSizes |
            sfs::sim::kCapReps | sfs::sim::kCapSeed | sfs::sim::kCapThreads |
            sfs::sim::kCapShard,
    .params =
        {
            {"--sizes", "size list", "1024..16384 (grid modes: geometric)",
             "n sweep of the portfolio-best cost"},
            {"--reps", "count", "5 (grid modes: 3, quick 2)",
             "replications per sweep point"},
            {"--seed", "u64 seed", "0x1A26E1 (pinned)",
             "base seed; sweep/detail streams derive from it"},
            {"--threads", "count", "0 (shared pool)",
             "replication fan-out worker count"},
            {"--shard", "i/k", "unsharded",
             "grid modes: compute shard i of k into --checkpoint; merge "
             "with sfsearch_cli merge-checkpoints"},
        },
    .run = run_e1,
});

}  // namespace
