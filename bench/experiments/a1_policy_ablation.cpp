// A1 — policy ablation: which weak-model policy wins where?
//
// The lower-bound experiments report only the portfolio minimum; this
// ablation shows the full picture: per-policy cost across models and
// target choices. It makes the paper's two structural facts visible —
// (a) NO policy escapes sqrt(n) when the target is the newest vertex,
// (b) policy choice matters enormously when the target is old (min-id and
//     degree-greedy exploit the age gradient; blind policies cannot).
#include <string>

#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

void ablate(ExperimentContext& ctx, const std::string& title,
            const sfs::sim::GraphFactory& factory,
            const sfs::sim::EndpointSelector& endpoints, std::size_t n,
            std::size_t reps) {
  const auto cost = sfs::sim::measure_portfolio({
      // --policies narrows the ablation to the named weak policies
      // (default: the full registered weak portfolio).
      .policies = ctx.options.policies,
      .factory = factory,
      .endpoints = endpoints,
      .reps = reps,
      .seed = ctx.stream_seed(title),
      .budget = {.max_raw_requests = 40 * n},
      .threads = ctx.threads(),
  });
  sfs::sim::Table t(title, {"policy", "mean requests", "median", "p90",
                            "found frac"});
  for (const auto& pol : cost.policies) {
    t.row()
        .cell(pol.name)
        .num(pol.requests.mean, 1)
        .num(pol.median_requests, 1)
        .num(pol.p90_requests, 1)
        .num(pol.found_fraction, 2);
  }
  t.print(ctx.console());
  ctx.console() << "winner: " << cost.best_policy().name << "\n\n";
}

int run_a1(ExperimentContext& ctx) {
  const std::size_t n = ctx.n_or(ctx.options.quick ? 2048 : 8192);
  const std::size_t reps = ctx.reps_or(ctx.options.quick ? 2 : 8);
  ctx.console() << "A1: per-policy ablation across models and targets (n = "
                << n << ", " << reps << " replications).\n\n";

  const auto mori = [n](Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  };
  const auto merged = [n](Rng& rng) {
    return sfs::gen::merged_mori_graph(n, 3, sfs::gen::MoriParams{0.5}, rng);
  };
  const auto cf = [n](Rng& rng) {
    sfs::gen::CooperFriezeParams params;
    return sfs::gen::cooper_frieze(n, params, rng).graph;
  };

  ablate(ctx, "A1: Mori tree, target = NEWEST vertex", mori,
         sfs::sim::oldest_to_newest(), n, reps);
  ablate(ctx, "A1: Mori tree, target = ROOT (oldest)", mori,
         sfs::sim::newest_to_paper_id(1), n, reps);
  ablate(ctx, "A1: merged Mori m=3, target = NEWEST", merged,
         sfs::sim::oldest_to_newest(), n, reps);
  ablate(ctx, "A1: Cooper-Frieze, target = NEWEST", cf,
         sfs::sim::oldest_to_newest(), n, reps);

  ctx.console() << "Expected shape: for NEWEST targets every policy pays "
                   "thousands of requests (no winner escapes the bound); "
                   "for the ROOT target the age-gradient policies pay a "
                   "handful.\n";
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_a1({
    .name = "a1",
    .title = "Policy ablation: per-policy cost across models and targets",
    .claim = "No policy escapes sqrt(n) for the newest target; policy "
             "choice dominates for old targets",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads |
            sfs::sim::kCapPolicies,
    .params =
        {
            {"--n", "size", "8192 (quick: 2048)", "graph size"},
            {"--reps", "count", "8 (quick: 2)",
             "portfolio replications per configuration"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per configuration"},
            {"--threads", "count", "0 (shared pool)",
             "portfolio fan-out worker count"},
            {"--policies", "name list", "full weak portfolio",
             "weak policies to ablate (registry names)"},
        },
    .run = run_a1,
});

}  // namespace
