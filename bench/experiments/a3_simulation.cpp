// A3 — the strong-to-weak reduction, measured: Theorem 1's strong-model
// proof multiplies the weak bound by 1/max-degree. This ablation runs the
// same strong policy natively and through the StrongViaWeak simulation and
// reports the observed slowdown factor against the max-degree ceiling.
#include <string>
#include <vector>

#include "gen/mori.hpp"
#include "graph/degree.hpp"
#include "search/runner.hpp"
#include "search/simulate.hpp"
#include "search/strong_algorithms.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

int run_a3(ExperimentContext& ctx) {
  ctx.console() << "A3: strong-to-weak simulation overhead vs the "
                   "max-degree ceiling (Mori trees, degree-greedy inner "
                   "policy).\n\n";
  const bool quick = ctx.options.quick;
  const auto sizes = ctx.sizes_or(
      quick ? std::vector<std::size_t>{1024, 4096}
            : std::vector<std::size_t>{4096, 16384});
  const std::size_t reps = ctx.reps_or(quick ? 2 : 5);
  sfs::sim::Table t("A3: slowdown of simulating strong requests weakly",
                    {"p", "n", "max deg", "strong reqs", "weak reqs",
                     "slowdown", "ceiling (max deg)"});
  for (const double p : {0.2, 0.4, 0.6}) {
    for (const std::size_t n : sizes) {
      sfs::stats::Accumulator strong_reqs;
      sfs::stats::Accumulator weak_reqs;
      sfs::stats::Accumulator dmax_acc;
      const std::string cell =
          "p=" + sfs::sim::format_double(p, 1) + " n=" + std::to_string(n);
      const std::uint64_t graph_seed = ctx.stream_seed("graph " + cell);
      const std::uint64_t search_seed = ctx.stream_seed("search " + cell);
      for (std::uint64_t rep = 0; rep < reps; ++rep) {
        Rng graph_rng(sfs::rng::derive_seed(graph_seed, rep));
        const auto g =
            sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, graph_rng);
        dmax_acc.add(static_cast<double>(sfs::graph::max_degree(
            g, sfs::graph::DegreeKind::kUndirected)));

        sfs::search::StrongViaWeak sim(
            sfs::search::make_degree_greedy_strong());
        Rng rng(sfs::rng::derive_seed(search_seed, rep));
        const auto r = sfs::search::run_weak(
            g, 0, static_cast<VertexId>(n - 1), sim, rng);
        weak_reqs.add(static_cast<double>(r.requests));
        strong_reqs.add(static_cast<double>(sim.strong_requests()));
      }
      t.row()
          .num(p, 1)
          .integer(n)
          .num(dmax_acc.mean(), 0)
          .num(strong_reqs.mean(), 0)
          .num(weak_reqs.mean(), 0)
          .num(weak_reqs.mean() / strong_reqs.mean(), 2)
          .num(dmax_acc.mean(), 0);
    }
  }
  t.print(ctx.console());
  ctx.console() << "\nExpected shape: slowdown well below the ceiling (the "
                   "reduction is pessimistic), and the ceiling itself "
                   "grows like n^p — exactly why the strong bound weakens "
                   "as p grows.\n";
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_a3({
    .name = "a3",
    .title = "Strong-to-weak reduction overhead vs max-degree ceiling",
    .claim = "Simulating strong requests weakly costs well under the "
             "max-degree factor the proof charges",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed,
    .params =
        {
            {"--sizes", "size list", "4096,16384 (quick: 1024,4096)",
             "tree sizes n"},
            {"--reps", "count", "5 (quick: 2)", "replications per cell"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; graph/search streams per cell"},
        },
    .run = run_a3,
});

}  // namespace
