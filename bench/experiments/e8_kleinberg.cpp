// E8 — Kleinberg (2000) contrast: greedy geographic routing on a 2-D
// small-world grid is polylogarithmic iff the long-range exponent r equals
// the dimension (r = 2); away from it the cost is polynomial. This is the
// navigable world the paper proves scale-free graphs are NOT.
//
// Mean greedy route length across r and L, growth factors, and the
// U-shape of cost in r at fixed L. --quick shrinks the grid and the route
// count.
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "gen/kleinberg.hpp"
#include "search/kleinberg_routing.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::gen::KleinbergGrid;
using sfs::gen::KleinbergParams;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

double mean_route(double r, std::size_t L, std::size_t routes,
                  std::uint64_t seed) {
  Rng rng(seed);
  const KleinbergGrid grid(L, KleinbergParams{r, 1}, rng);
  sfs::stats::Accumulator acc;
  for (std::size_t i = 0; i < routes; ++i) {
    const auto s =
        static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
    const auto t =
        static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
    acc.add(static_cast<double>(sfs::search::greedy_route(grid, s, t).steps));
  }
  return acc.mean();
}

int run_e8(ExperimentContext& ctx) {
  ctx.console() << "Kleinberg 2000: greedy routing cost on an LxL torus "
                   "with long-range links P(offset) ~ dist^{-r}.\nNavigable "
                   "iff r = 2 (routing exponent 0; (2-r)/3 below, "
                   "(r-2)/(r-1) above).\n\n";
  const std::vector<double> exponents{0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0};
  const auto sides = ctx.sizes_or(
      ctx.options.quick ? std::vector<std::size_t>{16, 32, 64}
                        : std::vector<std::size_t>{16, 32, 64, 128, 256});
  const std::size_t routes = ctx.reps_or(ctx.options.quick ? 100 : 400);

  std::vector<std::string> headers{"r", "theory exp"};
  for (const std::size_t L : sides)
    headers.push_back("L=" + std::to_string(L));
  headers.push_back("growth L" + std::to_string(sides.front()) + "->L" +
                    std::to_string(sides.back()));
  sfs::sim::Table t("E8: mean greedy route length", headers);
  for (const double r : exponents) {
    auto& row = t.row();
    row.num(r, 1).num(sfs::core::theory::kleinberg_routing_exponent(r), 3);
    double first = 0.0;
    double last = 0.0;
    for (const std::size_t L : sides) {
      const double m =
          mean_route(r, L, routes,
                     ctx.stream_seed("r=" + sfs::sim::format_double(r, 1) +
                                     " L=" + std::to_string(L)));
      if (L == sides.front()) first = m;
      if (L == sides.back()) last = m;
      row.num(m, 2);
    }
    row.num(last / first, 2);
  }
  t.print(ctx.console());
  ctx.console()
      << "\nExpected shape: growth minimized near r = 2 and steep away "
         "from it; r far above 2 approaches lattice-only growth. "
         "Finite-size note: at these L the empirical optimum sits slightly "
         "below 2 and drifts toward 2 as L grows — the standard "
         "finite-size effect for Kleinberg routing.\n";
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e8({
    .name = "e8",
    .title = "Kleinberg 2000 contrast: navigability only at r = 2",
    .claim = "Greedy geographic routing is polylog iff r equals the grid "
             "dimension — the navigable world scale-free graphs are not",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed,
    .params =
        {
            {"--sizes", "size list", "16,32,64,128,256 (quick: 16,32,64)",
             "torus side lengths L"},
            {"--reps", "count", "400 (quick: 100)",
             "greedy routes per (r, L) cell"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per (r, L) cell"},
        },
    .run = run_e8,
});

}  // namespace
