// M3 — parallel replication engine: sequential vs parallel portfolio
// throughput, and a bit-identity audit of the deterministic fan-out.
//
// For each n, runs the full weak portfolio (10 policies) over `reps`
// freshly generated merged Mori graphs twice: once with threads=1 (the
// sequential engine) and once with the parallel worker count (--threads,
// default the shared pool). Reports throughput in units of
// "graphs+searches per second" (each replication builds 1 graph and runs
// 10 searches) and the parallel speedup, then verifies the two
// PortfolioCost results are bit-identical — the per-rep seed derivation
// plus ordered fold make the parallel path a pure performance transform.
//
// Expected: speedup approaching the core count on multi-core hosts;
// exactly 1x on a single-core host, still bit-identical.
#include <iostream>
#include <string>
#include <vector>

#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/parallel.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;
using sfs::sim::PortfolioCost;

bool bit_identical(const PortfolioCost& a, const PortfolioCost& b) {
  if (a.best != b.best || a.policies.size() != b.policies.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    const auto& pa = a.policies[i];
    const auto& pb = b.policies[i];
    if (pa.name != pb.name || pa.found_fraction != pb.found_fraction ||
        pa.median_requests != pb.median_requests ||
        pa.p90_requests != pb.p90_requests ||
        pa.requests.mean != pb.requests.mean ||
        pa.requests.stddev != pb.requests.stddev ||
        pa.requests.min != pb.requests.min ||
        pa.requests.max != pb.requests.max ||
        pa.raw_requests.mean != pb.raw_requests.mean ||
        pa.raw_requests.stddev != pb.raw_requests.stddev) {
      return false;
    }
  }
  return true;
}

struct Measurement {
  PortfolioCost cost;
  double wall_s = 0.0;
  double throughput = 0.0;  // graphs+searches per second
};

Measurement run_once(std::size_t n, std::size_t reps, std::uint64_t seed,
                     std::size_t threads) {
  const std::size_t m = 2;
  const double p = 0.5;
  sfs::sim::WallTimer timer;
  Measurement out;
  out.cost = sfs::sim::measure_portfolio({
      .factory =
          [n, m, p](Rng& rng) {
            return sfs::gen::merged_mori_graph(n, m, sfs::gen::MoriParams{p},
                                               rng);
          },
      .endpoints = sfs::sim::oldest_to_newest(),
      .reps = reps,
      .seed = seed,
      .budget = {.max_raw_requests = 40 * n},
      .threads = threads,
  });
  out.wall_s = timer.seconds();
  const std::size_t policies = out.cost.policies.size();
  out.throughput =
      static_cast<double>(reps * (1 + policies)) / out.wall_s;
  return out;
}

int run_m3(ExperimentContext& ctx) {
  // The whole point of m3 is sequential-vs-parallel; an explicit
  // --threads 1 would compare two identical sequential runs and report
  // a vacuous PASS.
  if (ctx.options.has_threads && ctx.options.threads == 1) {
    std::cerr << "m3 compares the sequential engine against a parallel "
                 "leg; --threads 1 makes the comparison vacuous (pass 0 "
                 "for the shared pool, or >= 2)\n";
    return 2;
  }
  const auto sizes = ctx.sizes_or(
      ctx.options.quick ? std::vector<std::size_t>{2000, 5000}
                        : std::vector<std::size_t>{10000, 30000, 100000});
  const std::size_t reps = ctx.reps_or(ctx.options.quick ? 4 : 8);
  const std::size_t par_threads = ctx.threads();
  const std::size_t workers = sfs::sim::resolve_worker_count(par_threads);
  ctx.console() << "M3: parallel replication engine, weak portfolio on "
                   "merged Mori graphs (m=2, p=0.5), "
                << reps << " reps, " << workers << " worker(s)\n\n";

  sfs::sim::Table t("sequential vs parallel portfolio measurement",
                    {"n", "seq wall s", "par wall s", "seq thru",
                     "par thru", "speedup", "identical"});
  bool all_identical = true;
  for (const std::size_t n : sizes) {
    const std::uint64_t seed = ctx.stream_seed("n=" + std::to_string(n));
    const Measurement seq = run_once(n, reps, seed, /*threads=*/1);
    const Measurement par = run_once(n, reps, seed, par_threads);
    const bool same = bit_identical(seq.cost, par.cost);
    all_identical = all_identical && same;
    const double speedup = seq.wall_s / par.wall_s;
    t.row()
        .integer(n)
        .num(seq.wall_s, 3)
        .num(par.wall_s, 3)
        .num(seq.throughput, 1)
        .num(par.throughput, 1)
        .num(speedup, 2)
        .cell(same ? "yes" : "NO");
    ctx.emitter->emit_point("m3_parallel_sweep_seq", n, reps,
                            seq.throughput, 0.0, seq.wall_s);
    ctx.emitter->emit_point("m3_parallel_sweep_par", n, reps,
                            par.throughput, 0.0, par.wall_s);
  }
  t.print(ctx.console());
  ctx.console() << "\nbit-identical across thread counts: "
                << (all_identical ? "PASS" : "FAIL") << '\n';
  return all_identical ? 0 : 1;
}

const sfs::sim::ExperimentRegistrar reg_m3({
    .name = "m3",
    .title = "Parallel replication engine: speedup + bit-identity audit",
    .claim = "Machine benchmark: the deterministic fan-out is a pure "
             "performance transform (sequential == parallel bit for bit)",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--sizes", "size list", "10000,30000,100000 (quick: 2000,5000)",
             "graph sizes"},
            {"--reps", "count", "8 (quick: 4)",
             "portfolio replications per size"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per size"},
            {"--threads", "count", "0 (shared pool)",
             "worker count of the parallel leg"},
        },
    .run = run_m3,
});

}  // namespace
