// E4 — Lemma 3: with b = a + floor(sqrt(a-1)), the probability that every
// vertex in the window (a, b] attaches below a satisfies
// P(E_{a,b}) >= e^{-(1-p)}.
//
// Monte-Carlo P(E_{a,b}) across p and a, against the bound. --quick cuts
// the replication count.
#include <string>

#include "core/equivalence.hpp"
#include "core/theory.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace {

using sfs::sim::ExperimentContext;

int run_e4(ExperimentContext& ctx) {
  ctx.console() << "Lemma 3: P(E_{a,b}) >= e^{-(1-p)} for b = a + "
                   "floor(sqrt(a-1)).\n\n";
  const std::size_t reps = ctx.reps_or(ctx.options.quick ? 400 : 4000);
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    sfs::sim::Table t(
        "E4: P(E_{a,b}) for Mori p=" + sfs::sim::format_double(p, 2),
        {"a", "b", "window", "P(E) est", "stderr", "bound e^{-(1-p)}",
         "est >= bound?"});
    const double bound = sfs::core::theory::lemma3_bound(p);
    for (const std::size_t a : {64u, 256u, 1024u, 4096u}) {
      const std::size_t b = sfs::core::theory::lemma3_window_end(a);
      const auto est = sfs::core::estimate_event_probability(
          p, a, b, reps,
          ctx.stream_seed("p=" + sfs::sim::format_double(p, 2) +
                          " a=" + std::to_string(a)));
      t.row()
          .integer(a)
          .integer(b)
          .integer(b - a)
          .num(est.probability, 4)
          .num(est.stderr_est, 4)
          .num(bound, 4)
          .cell(est.probability + 3 * est.stderr_est >= bound ? "yes"
                                                              : "NO");
    }
    t.print(ctx.console());
    ctx.console() << '\n';
  }
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e4({
    .name = "e4",
    .title = "Lemma 3: window-attachment probability vs e^{-(1-p)}",
    .claim = "Lemma 3: P(E_{a,b}) >= e^{-(1-p)} for the sqrt-width window",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapReps | sfs::sim::kCapSeed,
    .params =
        {
            {"--reps", "count", "4000 (quick: 400)",
             "Monte-Carlo replications per (p, a) cell"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per (p, a) cell"},
        },
    .run = run_e4,
});

}  // namespace
