// M4 — reusable generation subsystem: fresh-allocation vs scratch-reusing
// generator throughput, with a bit-identity audit.
//
// For each of the seven generators, runs `reps` replications twice: once
// through the fresh path (every replication allocates its preference bags,
// stub lists, weight tables, dedup sets and CSR arrays from scratch) and
// once through the gen::GenScratch overloads (all buffers recycled, CSR
// arrays rebuilt in place via GraphBuilder::build_into). Reports
// graphs-per-second for both paths and the reuse speedup, then audits that
// the two paths produce bit-identical graphs for every replication — the
// scratch overloads are a pure performance transform (same pattern as
// m3's sequential-vs-parallel audit).
//
// Expected: measurable speedup on the allocation-dominated generators;
// identical output everywhere.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/degree_sequence.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/kleinberg.hpp"
#include "gen/mori.hpp"
#include "gen/scratch.hpp"
#include "rng/random.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace {

using sfs::gen::GenScratch;
using sfs::graph::Graph;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges()) {
    return false;
  }
  const auto ea = a.edges();
  const auto eb = b.edges();
  return std::equal(ea.begin(), ea.end(), eb.begin());
}

struct GenCase {
  std::string name;
  std::size_t n = 0;  // reported problem size
  // Runs one replication; the audit variant returns "bit-identical?".
  std::function<void(std::uint64_t)> fresh;
  std::function<void(std::uint64_t)> reused;
  std::function<bool(std::uint64_t)> audit;
};

struct CaseResult {
  double fresh_s = 0.0;
  double reused_s = 0.0;
  bool identical = true;
};

CaseResult run_case(const GenCase& c, std::size_t reps,
                    std::uint64_t base_seed) {
  const auto rep_seed = [base_seed](std::uint64_t rep) {
    return sfs::rng::derive_seed(base_seed, rep);
  };
  CaseResult out;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    out.identical = out.identical && c.audit(rep_seed(rep));
  }
  // Warm the scratch before timing the reused path, the way a replication
  // harness runs in steady state (the fresh path has no state to warm).
  sfs::sim::WallTimer timer;
  for (std::size_t rep = 0; rep < reps; ++rep) c.fresh(rep_seed(rep));
  out.fresh_s = timer.seconds();
  timer.reset();
  for (std::size_t rep = 0; rep < reps; ++rep) c.reused(rep_seed(rep));
  out.reused_s = timer.seconds();
  return out;
}

std::vector<GenCase> make_cases(bool quick) {
  const std::size_t n_big = quick ? 3000 : 20000;
  const std::size_t n_mid = quick ? 2000 : 10000;
  const std::size_t L = quick ? 40 : 100;
  const std::size_t n_seq = quick ? 30000 : 200000;
  std::vector<GenCase> cases;

  {
    const sfs::gen::BarabasiAlbertParams params{.m = 2};
    auto scratch = std::make_shared<GenScratch>();
    auto out = std::make_shared<Graph>();
    cases.push_back(GenCase{
        "barabasi_albert", n_big,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::barabasi_albert(n_big, params, rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          sfs::gen::barabasi_albert(n_big, params, rng, *scratch, *out);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const Graph fresh = sfs::gen::barabasi_albert(n_big, params, r1);
          sfs::gen::barabasi_albert(n_big, params, r2, *scratch, *out);
          return same_graph(fresh, *out);
        }});
  }
  {
    const sfs::gen::PowerLawSequenceParams seq{.exponent = 2.3, .d_min = 1};
    const sfs::gen::ConfigModelOptions opts{};
    auto scratch = std::make_shared<GenScratch>();
    auto out = std::make_shared<Graph>();
    cases.push_back(GenCase{
        "config_model", n_big,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::power_law_configuration_graph(n_big, seq, opts,
                                                        rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          sfs::gen::power_law_configuration_graph(n_big, seq, opts, rng,
                                                  *scratch, *out);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const Graph fresh =
              sfs::gen::power_law_configuration_graph(n_big, seq, opts, r1);
          sfs::gen::power_law_configuration_graph(n_big, seq, opts, r2,
                                                  *scratch, *out);
          return same_graph(fresh, *out);
        }});
  }
  {
    sfs::gen::CooperFriezeParams params;
    auto scratch = std::make_shared<GenScratch>();
    auto out = std::make_shared<sfs::gen::CooperFriezeGraph>();
    cases.push_back(GenCase{
        "cooper_frieze", n_mid,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::cooper_frieze(n_mid, params, rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          sfs::gen::cooper_frieze(n_mid, params, rng, *scratch, *out);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const auto fresh = sfs::gen::cooper_frieze(n_mid, params, r1);
          sfs::gen::cooper_frieze(n_mid, params, r2, *scratch, *out);
          return same_graph(fresh.graph, out->graph) &&
                 fresh.steps == out->steps;
        }});
  }
  {
    const std::size_t m = 3 * n_big;
    auto scratch = std::make_shared<GenScratch>();
    auto out = std::make_shared<Graph>();
    cases.push_back(GenCase{
        "erdos_renyi_gnm", n_big,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::erdos_renyi_gnm(n_big, m, rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          sfs::gen::erdos_renyi_gnm(n_big, m, rng, *scratch, *out);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const Graph fresh = sfs::gen::erdos_renyi_gnm(n_big, m, r1);
          sfs::gen::erdos_renyi_gnm(n_big, m, r2, *scratch, *out);
          return same_graph(fresh, *out);
        }});
  }
  {
    const sfs::gen::KleinbergParams params{.r = 2.0, .q = 1};
    auto scratch = std::make_shared<GenScratch>();
    Rng init_rng(0);
    auto grid =
        std::make_shared<sfs::gen::KleinbergGrid>(L, params, init_rng,
                                                  *scratch);
    cases.push_back(GenCase{
        "kleinberg", L * L,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::KleinbergGrid(L, params, rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          grid->rebuild(L, params, rng, *scratch);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const sfs::gen::KleinbergGrid fresh(L, params, r1);
          grid->rebuild(L, params, r2, *scratch);
          return same_graph(fresh.graph(), grid->graph());
        }});
  }
  {
    const sfs::gen::MoriParams params{0.5};
    auto scratch = std::make_shared<GenScratch>();
    auto out = std::make_shared<Graph>();
    cases.push_back(GenCase{
        "merged_mori", n_mid,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::merged_mori_graph(n_mid, 2, params, rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          sfs::gen::merged_mori_graph(n_mid, 2, params, rng, *scratch,
                                      *out);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const Graph fresh =
              sfs::gen::merged_mori_graph(n_mid, 2, params, r1);
          sfs::gen::merged_mori_graph(n_mid, 2, params, r2, *scratch, *out);
          return same_graph(fresh, *out);
        }});
  }
  {
    const sfs::gen::PowerLawSequenceParams params{.exponent = 2.3,
                                                  .d_min = 1};
    auto out = std::make_shared<std::vector<std::uint32_t>>();
    cases.push_back(GenCase{
        "degree_sequence", n_seq,
        [=](std::uint64_t s) {
          Rng rng(s);
          (void)sfs::gen::power_law_degree_sequence(n_seq, params, rng);
        },
        [=](std::uint64_t s) {
          Rng rng(s);
          sfs::gen::power_law_degree_sequence(n_seq, params, rng, *out);
        },
        [=](std::uint64_t s) {
          Rng r1(s);
          Rng r2(s);
          const auto fresh =
              sfs::gen::power_law_degree_sequence(n_seq, params, r1);
          sfs::gen::power_law_degree_sequence(n_seq, params, r2, *out);
          return fresh == *out;
        }});
  }
  return cases;
}

int run_m4(ExperimentContext& ctx) {
  const bool quick = ctx.options.quick;
  const std::size_t reps = ctx.reps_or(quick ? 10 : 40);
  ctx.console() << "M4: generator scratch reuse, fresh allocation vs "
                   "gen::GenScratch overloads, "
                << reps << " replications per generator\n\n";

  sfs::sim::Table t("fresh vs scratch-reusing generation",
                    {"generator", "n", "fresh graphs/s", "reused graphs/s",
                     "speedup", "identical"});
  bool all_identical = true;
  std::size_t faster = 0;
  const auto cases = make_cases(quick);
  for (const auto& c : cases) {
    const CaseResult r = run_case(c, reps, ctx.stream_seed(c.name));
    all_identical = all_identical && r.identical;
    const double fresh_thru = static_cast<double>(reps) / r.fresh_s;
    const double reused_thru = static_cast<double>(reps) / r.reused_s;
    const double speedup = r.fresh_s / r.reused_s;
    if (speedup > 1.0) ++faster;
    t.row()
        .cell(c.name)
        .integer(c.n)
        .num(fresh_thru, 1)
        .num(reused_thru, 1)
        .num(speedup, 2)
        .cell(r.identical ? "yes" : "NO");
    ctx.emitter->emit_point("m4_generator_reuse_fresh_" + c.name, c.n,
                            reps, fresh_thru, 0.0, r.fresh_s);
    ctx.emitter->emit_point("m4_generator_reuse_reused_" + c.name, c.n,
                            reps, reused_thru, 0.0, r.reused_s);
  }
  t.print(ctx.console());
  ctx.console() << "\nbit-identical fresh vs reused: "
                << (all_identical ? "PASS" : "FAIL") << '\n'
                << "generators faster with reuse: " << faster << "/"
                << cases.size() << '\n';
  return all_identical ? 0 : 1;
}

const sfs::sim::ExperimentRegistrar reg_m4({
    .name = "m4",
    .title = "Generator scratch reuse: speedup + bit-identity audit",
    .claim = "Machine benchmark: gen::GenScratch overloads are a pure "
             "performance transform over fresh allocation",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapReps | sfs::sim::kCapSeed,
    .params =
        {
            {"--reps", "count", "40 (quick: 10)",
             "replications per generator"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per generator"},
        },
    .run = run_m4,
});

}  // namespace
