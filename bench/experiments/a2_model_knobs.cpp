// A2 — model-knob ablation: how the generator parameters move the
// searchability needle.
//
//  * Móri p (uniform vs preferential mix): the lower bound is sqrt(n) for
//    ALL p, but constants shift — higher p concentrates degree, which
//    helps degree-seeking policies find OLD vertices yet does nothing for
//    the newest.
//  * merge factor m: denser merged graphs (more edges per vertex) change
//    the absolute cost but not the scaling.
//  * Cooper-Frieze preference mode (indegree vs total degree): the paper
//    rephrases CF to indegree; this ablation shows the choice does not
//    rescue searchability.
#include <functional>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

double best_cost(const sfs::sim::GraphFactory& factory, std::size_t n,
                 std::uint64_t seed) {
  const auto cost = sfs::sim::measure_portfolio({
      .factory = factory,
      .endpoints = sfs::sim::oldest_to_newest(),
      .seed = seed,
      .budget = {.max_raw_requests = 40 * n},
  });
  return cost.best_policy().requests.mean;
}

double fitted_exponent(
    ExperimentContext& ctx,
    const std::function<sfs::sim::GraphFactory(std::size_t)>& factory_at,
    const std::vector<std::size_t>& sizes, std::size_t reps,
    const std::string& stream) {
  const auto series = sfs::sim::measure_scaling(
      sizes, reps, ctx.stream_seed(stream),
      [&](std::size_t n, std::uint64_t s) {
        return best_cost(factory_at(n), n, s);
      },
      ctx.threads());
  // The no-fit contract: never quote the default slope 0.0 as measured.
  SFS_REQUIRE(series.has_fit(), "A2: no usable exponent fit");
  return series.fit.slope;
}

int run_a2(ExperimentContext& ctx) {
  ctx.console() << "A2: generator-knob ablation (fitted exponent of best "
                   "weak cost, newest-vertex target).\n\n";
  const auto sizes = ctx.sizes_or(
      ctx.options.quick ? std::vector<std::size_t>{512, 1024, 2048}
                        : std::vector<std::size_t>{1024, 2048, 4096, 8192});
  const auto reps = ctx.reps_or(ctx.options.quick ? 2 : 5);

  sfs::sim::Table mori("A2: Mori p sweep", {"p", "fitted exponent"});
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    mori.row().num(p, 1).num(
        fitted_exponent(
            ctx,
            [p](std::size_t n) {
              return [n, p](Rng& rng) {
                return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
              };
            },
            sizes, reps, "mori p=" + sfs::sim::format_double(p, 1)),
        3);
  }
  mori.print(ctx.console());
  ctx.console() << '\n';

  sfs::sim::Table merge("A2: merge factor sweep (p=0.5)",
                        {"m", "fitted exponent"});
  for (const std::size_t m : {1u, 2u, 4u, 8u}) {
    merge.row().integer(m).num(
        fitted_exponent(
            ctx,
            [m](std::size_t n) {
              return [n, m](Rng& rng) {
                return sfs::gen::merged_mori_graph(
                    n, m, sfs::gen::MoriParams{0.5}, rng);
              };
            },
            sizes, reps, "merge m=" + std::to_string(m)),
        3);
  }
  merge.print(ctx.console());
  ctx.console() << '\n';

  sfs::sim::Table cf("A2: Cooper-Frieze preference mode",
                     {"preference", "fitted exponent"});
  for (const auto pref : {sfs::gen::Preference::kInDegree,
                          sfs::gen::Preference::kTotalDegree}) {
    const std::string label =
        pref == sfs::gen::Preference::kInDegree ? "indegree" : "total degree";
    cf.row().cell(label).num(
        fitted_exponent(
            ctx,
            [pref](std::size_t n) {
              return [n, pref](Rng& rng) {
                sfs::gen::CooperFriezeParams params;
                params.preference = pref;
                return sfs::gen::cooper_frieze(n, params, rng).graph;
              };
            },
            sizes, reps, "cf " + label),
        3);
  }
  cf.print(ctx.console());

  ctx.console() << "\nExpected shape: every row fits an exponent "
                   "comfortably >= 0.5 — no knob makes the newest vertex "
                   "easy to find.\n";
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_a2({
    .name = "a2",
    .title = "Generator-knob ablation: fitted exponents across p, m, pref",
    .claim = "No generator knob (Mori p, merge factor, CF preference mode) "
             "pulls the newest-target exponent below 0.5",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--sizes", "size list", "1024..8192 (quick: 512..2048)",
             "n grid of each exponent fit"},
            {"--reps", "count", "5 (quick: 2)",
             "replications per sweep point"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per knob row"},
            {"--threads", "count", "0 (shared pool)",
             "replication fan-out worker count"},
        },
    .run = run_a2,
});

}  // namespace
