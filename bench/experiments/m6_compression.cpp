// M6 — out-of-core substrate audit: CompressedGraph codecs head-to-head
// plus the snapshot write→mmap→replay path.
//
// Three stages:
//
//  1. ROUND-TRIP AUDIT — every generator family (Móri tree, merged Móri,
//     Barabási–Albert, configuration model, Cooper–Frieze, Erdős–Rényi,
//     Kleinberg) is compressed under BOTH row codecs and decompressed;
//     any deviation from the original graph (edge list or adjacency) is
//     a failure (exit 1). This is the same contract tests/test_compressed
//     checks, re-asserted here at bench scale so the measured ratios
//     below are ratios of a lossless encoding.
//  2. SNAPSHOT SMOKE — the measurement graph is written to a versioned
//     snapshot, mapped back read-only, and replayed row-by-row against
//     the in-memory original (exit 1 on any divergence).
//  3. MEASUREMENT — on the preferential-attachment workhorse of the E1
//     grid (merged Móri m=1, p=0.5; quick n=65536, full n=1048576), per
//     codec: compressed footprint vs graph_memory_bytes, and sequential
//     full-graph decode throughput in million adjacency slots per second
//     through the per-worker AdjacencyDecodeBuffer. Full mode enforces
//     the substrate contract — the BEST codec's ratio >= 4.0 (exit 1) —
//     while quick mode only reports, since tiny graphs amortize the
//     per-row headers worse.
//
// BENCH_JSON: one record per codec —
//   {bench, case, n, edges, graph_bytes, compressed_bytes, ratio,
//    decode_mslots_per_s, bit_identical}
// committed as BENCH_m6.json (scripts/capture_baselines.sh, guarded by
// scripts/check_baselines.py).
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/kleinberg.hpp"
#include "gen/mori.hpp"
#include "graph/compressed.hpp"
#include "graph/snapshot.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"
#include "sim/table.hpp"

namespace {

using sfs::graph::AdjacencyDecodeBuffer;
using sfs::graph::CompressedGraph;
using sfs::graph::Graph;
using sfs::graph::RowCodec;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

constexpr RowCodec kCodecs[] = {RowCodec::kVarint, RowCodec::kEliasFano};
constexpr double kRequiredRatio = 4.0;

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges()) {
    return false;
  }
  for (sfs::graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    if (!(a.edge(e) == b.edge(e))) return false;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto adj_a = a.adjacent(v);
    const auto adj_b = b.adjacent(v);
    if (!std::equal(adj_a.begin(), adj_a.end(), adj_b.begin(), adj_b.end())) {
      return false;
    }
  }
  return true;
}

// Decoded rows must equal the uncompressed adjacency slot for slot.
bool rows_match(const sfs::graph::CompressedView& view, const Graph& g,
                AdjacencyDecodeBuffer& buffer) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto expect = g.adjacent(v);
    const auto got = sfs::graph::decode_adjacent(view, v, buffer);
    if (!std::equal(expect.begin(), expect.end(), got.begin(), got.end())) {
      return false;
    }
  }
  return true;
}

// Stage 1: compress + decompress every generator family under one codec.
int audit_round_trips(ExperimentContext& ctx, RowCodec codec) {
  struct Family {
    const char* name;
    Graph graph;
  };
  const std::size_t n = 400;
  std::vector<Family> families;
  {
    Rng rng(ctx.stream_seed("audit mori"));
    families.push_back(
        {"mori_tree", sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng)});
  }
  {
    Rng rng(ctx.stream_seed("audit merged-mori"));
    families.push_back({"merged_mori",
                        sfs::gen::merged_mori_graph(
                            n, 3, sfs::gen::MoriParams{0.6}, rng)});
  }
  {
    Rng rng(ctx.stream_seed("audit ba"));
    families.push_back(
        {"barabasi_albert",
         sfs::gen::barabasi_albert(
             n, sfs::gen::BarabasiAlbertParams{3, true}, rng)});
  }
  {
    Rng rng(ctx.stream_seed("audit config"));
    families.push_back(
        {"config_model",
         sfs::gen::power_law_configuration_graph(
             n, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
             sfs::gen::ConfigModelOptions{false}, rng)});
  }
  {
    Rng rng(ctx.stream_seed("audit cf"));
    sfs::gen::CooperFriezeParams params;
    families.push_back(
        {"cooper_frieze", sfs::gen::cooper_frieze(n, params, rng).graph});
  }
  {
    Rng rng(ctx.stream_seed("audit er"));
    families.push_back(
        {"erdos_renyi", sfs::gen::erdos_renyi_gnm(n, 3 * n, rng)});
  }
  {
    Rng rng(ctx.stream_seed("audit kleinberg"));
    const sfs::gen::KleinbergGrid grid(20, {.r = 2.0, .q = 2}, rng);
    families.push_back({"kleinberg", grid.graph()});
  }

  int exit_code = 0;
  AdjacencyDecodeBuffer buffer;
  for (const auto& family : families) {
    const auto compressed = CompressedGraph::from_graph(family.graph, codec);
    const bool ok = rows_match(compressed.view(), family.graph, buffer) &&
                    graphs_equal(family.graph, compressed.decompress());
    if (!ok) {
      ctx.console() << "AUDIT FAILURE: " << family.name << " round trip "
                    << "diverged under codec "
                    << sfs::graph::row_codec_name(codec) << "\n";
      exit_code = 1;
    }
  }
  return exit_code;
}

// Stage 2: snapshot write → mmap → replay on the measurement graph.
int snapshot_smoke(ExperimentContext& ctx, const Graph& g, RowCodec codec,
                   std::uint64_t seed) {
  const auto compressed = CompressedGraph::from_graph(g, codec);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sfs_m6_smoke_" + std::string(sfs::graph::row_codec_name(codec)) +
        ".sfsnap"))
          .string();
  sfs::graph::write_snapshot(path, compressed.view(),
                             {.generator = "merged_mori_m1", .seed = seed});
  const sfs::graph::MappedSnapshot snapshot(path);
  AdjacencyDecodeBuffer buffer;
  const bool ok = snapshot.meta().seed == seed &&
                  rows_match(snapshot.view(), g, buffer) &&
                  graphs_equal(g, sfs::graph::decompress(snapshot.view()));
  std::filesystem::remove(path);
  if (!ok) {
    ctx.console() << "AUDIT FAILURE: snapshot replay diverged under codec "
                  << sfs::graph::row_codec_name(codec) << "\n";
    return 1;
  }
  return 0;
}

int run_m6(ExperimentContext& ctx) {
  const bool quick = ctx.options.quick;
  const std::size_t n = ctx.n_or(quick ? 65536 : (1u << 20));

  ctx.console() << "M6: compressed CSR codecs + snapshot replay, merged "
                   "Mori m=1 p=0.5, n="
                << n << (quick ? " (quick)" : "") << ".\n\n";

  // Measurement graph: the E1 grid's generator at bench scale.
  const std::uint64_t graph_seed = ctx.stream_seed("measure graph");
  Rng rng(graph_seed);
  const Graph g =
      sfs::gen::merged_mori_graph(n, 1, sfs::gen::MoriParams{0.5}, rng);
  const double graph_bytes =
      static_cast<double>(sfs::graph::graph_memory_bytes(g));

  sfs::sim::Table t("M6: codec footprint and decode throughput",
                    {"codec", "compressed MiB", "graph MiB", "ratio",
                     "decode Mslots/s", "bit identical"});
  int exit_code = 0;
  double best_ratio = 0.0;
  for (const RowCodec codec : kCodecs) {
    if (audit_round_trips(ctx, codec) != 0) exit_code = 1;
    if (snapshot_smoke(ctx, g, codec, graph_seed) != 0) exit_code = 1;

    const auto compressed = CompressedGraph::from_graph(g, codec);
    const double compressed_bytes =
        static_cast<double>(compressed.memory_bytes());
    const double ratio = graph_bytes / compressed_bytes;

    // Round trip of the measurement graph itself.
    AdjacencyDecodeBuffer buffer;
    const bool bit_identical =
        rows_match(compressed.view(), g, buffer) &&
        graphs_equal(g, compressed.decompress());
    if (!bit_identical) {
      ctx.console() << "AUDIT FAILURE: measurement graph round trip "
                    << "diverged under codec "
                    << sfs::graph::row_codec_name(codec) << "\n";
      exit_code = 1;
    }

    // Sequential full-graph decode throughput: every row, every pass
    // through the one reused decode buffer (the WorkerContext contract).
    const std::size_t passes = quick ? 4 : 2;
    std::size_t slots = 0;
    sfs::sim::WallTimer timer;
    for (std::size_t pass = 0; pass < passes; ++pass) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        slots += sfs::graph::decode_adjacent(compressed.view(), v, buffer)
                     .size();
      }
    }
    const double seconds = std::max(timer.seconds(), 1e-9);
    const double mslots_per_s = static_cast<double>(slots) / seconds / 1e6;

    best_ratio = std::max(best_ratio, ratio);

    t.row()
        .cell(std::string(sfs::graph::row_codec_name(codec)))
        .num(compressed_bytes / (1024.0 * 1024.0), 2)
        .num(graph_bytes / (1024.0 * 1024.0), 2)
        .num(ratio, 2)
        .num(mslots_per_s, 1)
        .cell(bit_identical ? "yes" : "NO");

    sfs::sim::JsonObjectWriter json;
    json.str_field("bench", "m6_compression");
    json.str_field("case", std::string(sfs::graph::row_codec_name(codec)));
    json.int_field("n", g.num_vertices());
    json.int_field("edges", g.num_edges());
    json.num_field("graph_bytes", graph_bytes);
    json.num_field("compressed_bytes", compressed_bytes);
    json.num_field("ratio", ratio);
    json.num_field("decode_mslots_per_s", mslots_per_s);
    json.bool_field("bit_identical", bit_identical);
    ctx.emitter->emit_object(json.str());
  }
  t.print(ctx.console());
  // The head-to-head contract: the substrate's BEST codec must hit the
  // >= 4x reduction the large sweeps budget for. Full mode only — tiny
  // quick graphs amortize the per-row headers worse, so a small-n ratio
  // is not the substrate's ratio.
  if (!quick && best_ratio < kRequiredRatio) {
    ctx.console() << "\nCONTRACT FAILURE: best codec ratio "
                  << sfs::sim::format_double(best_ratio, 2) << " < "
                  << sfs::sim::format_double(kRequiredRatio, 1) << "\n";
    exit_code = 1;
  }
  ctx.console() << "\nAudit: all generator families round-trip losslessly "
                   "and the snapshot replay matches the in-memory graph"
                << (exit_code == 0 ? " (verified)" : " — FAILURES above")
                << ".\n";
  return exit_code;
}

const sfs::sim::ExperimentRegistrar reg_m6({
    .name = "m6_compression",
    .title = "CompressedGraph codecs: footprint, decode rate, snapshot replay",
    .claim = "The out-of-core substrate (compressed CSR + mmap snapshots) "
             "is lossless and >= 4x smaller than the pointer CSR",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize |
            sfs::sim::kCapSeed,
    .params =
        {
            {"--n", "size", "1048576 (quick: 65536)",
             "measurement graph size (merged Mori m=1, p=0.5)"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; audit/measurement streams derive from it"},
        },
    .run = run_m6,
});

}  // namespace
