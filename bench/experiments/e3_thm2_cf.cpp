// E3 — Theorem 2: in every Cooper–Frieze model with 0 < alpha < 1, any
// weak-model algorithm needs expected Omega(n^{1/2}) requests to find the
// newest vertex.
//
// Sweep of n for several (alpha, beta, gamma, delta, p, q) presets; fitted
// exponent of the portfolio-best weak cost. --quick shrinks the grid.
#include <string>
#include <vector>

#include "core/theory.hpp"
#include "gen/cooper_frieze.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "sim/sweep.hpp"

namespace {

using sfs::gen::CooperFriezeParams;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

struct Preset {
  std::string name;
  CooperFriezeParams params;
};

std::vector<Preset> presets() {
  std::vector<Preset> out;
  {
    CooperFriezeParams p;
    p.alpha = 0.5;
    out.push_back({"balanced (alpha=0.5, unit edges)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.25;
    out.push_back({"old-heavy (alpha=0.25)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.75;
    out.push_back({"new-heavy (alpha=0.75)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.5;
    p.beta = 0.2;
    p.gamma = 0.2;
    p.delta = 0.2;
    out.push_back({"mostly preferential (beta=gamma=delta=0.2)", p});
  }
  {
    CooperFriezeParams p;
    p.alpha = 0.5;
    p.q = {0.5, 0.3, 0.2};  // NEW emits 1-3 edges
    p.p = {0.7, 0.3};       // OLD emits 1-2 edges
    out.push_back({"multi-edge (E[q]=1.7, E[p]=1.3)", p});
  }
  return out;
}

int run_e3(ExperimentContext& ctx) {
  ctx.console() << "Theorem 2: Omega(sqrt(n)) weak-model requests in all "
                   "Cooper-Frieze models with 0 < alpha < 1.\n\n";
  const auto sizes =
      ctx.sizes_or(ctx.options.quick ? std::vector<std::size_t>{512, 1024,
                                                                2048}
                                     : std::vector<std::size_t>{1024, 2048,
                                                                4096, 8192});
  const auto reps = ctx.reps_or(ctx.options.quick ? 2 : 5);

  for (const auto& preset : presets()) {
    const auto series = sfs::sim::measure_scaling(
        sizes, reps, ctx.stream_seed(preset.name),
        [&](std::size_t n, std::uint64_t seed) {
          const auto cost = sfs::sim::measure_portfolio({
              .factory =
                  [&, n](Rng& rng) {
                    return sfs::gen::cooper_frieze(n, preset.params, rng)
                        .graph;
                  },
              .endpoints = sfs::sim::oldest_to_newest(),
              .seed = seed,
              .budget = {.max_raw_requests = 40 * n},
          });
          return cost.best_policy().requests.mean;
        },
        ctx.threads());
    sfs::sim::print_scaling(
        "E3: weak-model requests, Cooper-Frieze " + preset.name, series,
        "best requests", sfs::core::theory::weak_lower_bound_exponent(),
        "Omega exponent", *ctx.emitter);
  }
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e3({
    .name = "e3",
    .title = "Theorem 2: Omega(sqrt(n)) across Cooper-Frieze presets",
    .claim = "Thm 2: the weak lower bound holds for every Cooper-Frieze "
             "mixing 0 < alpha < 1",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--sizes", "size list", "1024,2048,4096,8192 (quick: 512..2048)",
             "n sweep per preset"},
            {"--reps", "count", "5 (quick: 2)",
             "replications per sweep point"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; one stream per preset"},
            {"--threads", "count", "0 (shared pool)",
             "replication fan-out worker count"},
        },
    .run = run_e3,
});

}  // namespace
