#include "gbench_support.hpp"

#include <benchmark/benchmark.h>

#include <vector>

namespace sfs::bench {

int run_gbench_experiment(sfs::sim::ExperimentContext& ctx,
                          const std::string& filter) {
  std::vector<std::string> args{"sfs_bench",
                                "--benchmark_filter=" + filter};
  if (ctx.options.quick) {
    // Keep the float spelling: every libbenchmark back to the oldest we
    // support parses it, while the "0.05s" suffix form is 1.7+ only.
    args.emplace_back("--benchmark_min_time=0.05");
  }
  // User --benchmark_* flags go last so an explicit filter/min_time
  // overrides the defaults above (gbench takes the final occurrence).
  for (const auto& flag : ctx.options.gbench_flags) args.push_back(flag);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  if (ran == 0) {
    ctx.console() << "no benchmarks matched filter " << filter << "\n";
    return 1;
  }
  return 0;
}

}  // namespace sfs::bench
