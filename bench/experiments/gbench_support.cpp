#include "gbench_support.hpp"

#include <benchmark/benchmark.h>

#include <vector>

#include "sim/json.hpp"

namespace sfs::bench {

namespace {

/// ConsoleReporter that also forwards every per-iteration run into the
/// experiment's results emitter, one BENCH_JSON object per benchmark case.
/// Before this reporter the gbench experiments (m1/m2) printed their
/// console table but emitted nothing, so `--json` produced an empty file
/// (the committed BENCH_m2.json was 0 bytes); now the gbench and
/// harness-driven experiments share the same artifact contract.
class EmitterReporter : public benchmark::ConsoleReporter {
 public:
  explicit EmitterReporter(sfs::sim::ExperimentContext& ctx)
      : ctx_(&ctx), bench_(ctx.spec->name) {}

  void ReportRuns(const std::vector<Run>& report) override {
    benchmark::ConsoleReporter::ReportRuns(report);
    for (const Run& run : report) {
      // Aggregates (mean/stddev under --benchmark_repetitions) would
      // duplicate the per-iteration rows under the same names; emit the
      // primary measurements only.
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      sfs::sim::JsonObjectWriter json;
      json.str_field("bench", bench_);
      json.str_field("case", run.benchmark_name());
      json.int_field("iterations",
                     static_cast<std::uint64_t>(run.iterations));
      json.num_field("real_time", run.GetAdjustedRealTime());
      json.num_field("cpu_time", run.GetAdjustedCPUTime());
      json.str_field("time_unit",
                     benchmark::GetTimeUnitString(run.time_unit));
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        json.num_field("items_per_second", items->second.value);
      }
      ctx_->emitter->emit_object(json.str());
    }
  }

 private:
  sfs::sim::ExperimentContext* ctx_;
  std::string bench_;
};

}  // namespace

int run_gbench_experiment(sfs::sim::ExperimentContext& ctx,
                          const std::string& filter) {
  std::vector<std::string> args{"sfs_bench",
                                "--benchmark_filter=" + filter};
  if (ctx.options.quick) {
    // Keep the float spelling: every libbenchmark back to the oldest we
    // support parses it, while the "0.05s" suffix form is 1.7+ only.
    args.emplace_back("--benchmark_min_time=0.05");
  }
  // User --benchmark_* flags go last so an explicit filter/min_time
  // overrides the defaults above (gbench takes the final occurrence).
  for (const auto& flag : ctx.options.gbench_flags) args.push_back(flag);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& arg : args) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());
  EmitterReporter reporter(ctx);
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  if (ran == 0) {
    ctx.console() << "no benchmarks matched filter " << filter << "\n";
    return 1;
  }
  return 0;
}

}  // namespace sfs::bench
