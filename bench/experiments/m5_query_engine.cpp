// M5 — batched fixed-graph lookup throughput through search::QueryEngine.
//
// The sim/ harnesses measure one query per freshly generated graph; this
// experiment measures the opposite regime — the one P2P resource-discovery
// deployments actually run (Adamic et al.; the resource-discovery systems
// in PAPERS.md): ONE long-lived power-law overlay serving a batch of many
// lookups. For each selected policy it builds a QueryEngine session over
// the same overlay and runs the identical query batch twice — sequentially
// (threads=1) and fanned out over the shared pool (threads=0) — reporting
// batch throughput (queries/sec) for both, the parallel speedup, and the
// lookup quality (found fraction, mean charged requests).
//
// Audit: the engine derives each query's RNG stream from (session seed,
// batch index) only, so the sequential and pooled runs must agree
// bit-for-bit on every per-query SearchResult; any divergence exits 1
// (the same pattern as m3's sequential-vs-parallel audit). Under
// SFS_RNG_AUDIT=1 every per-query derivation is collision-checked.
#include <algorithm>
#include <string>
#include <vector>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "search/query_engine.hpp"
#include "sim/experiment.hpp"
#include "sim/json.hpp"
#include "sim/report.hpp"
#include "sim/table.hpp"

namespace {

using sfs::graph::VertexId;
using sfs::search::Query;
using sfs::search::SearchResult;
using sfs::sim::ExperimentContext;

bool same_results(const std::vector<SearchResult>& a,
                  const std::vector<SearchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].found != b[i].found || a[i].requests != b[i].requests ||
        a[i].raw_requests != b[i].raw_requests ||
        a[i].path_length != b[i].path_length ||
        a[i].budget_exhausted != b[i].budget_exhausted ||
        a[i].gave_up != b[i].gave_up) {
      return false;
    }
  }
  return true;
}

int run_m5(ExperimentContext& ctx) {
  const std::size_t n = ctx.n_or(ctx.options.quick ? 4000 : 20000);
  const std::size_t batch = ctx.reps_or(ctx.options.quick ? 200 : 2000);
  // Default portfolio of deployable lookup strategies: the Adamic
  // high-degree search, plain ball-growing, and the blind walk baseline.
  std::vector<std::string> policies = ctx.options.policies;
  if (policies.empty()) {
    policies = {"degree-greedy-strong", "bfs-strong", "random-walk"};
  }

  ctx.console() << "M5: batched lookups on ONE fixed power-law overlay "
                   "(QueryEngine), n="
                << n << ", batch of " << batch << " queries.\n\n";

  // One overlay for the whole experiment: power-law configuration graph,
  // largest component (the p2p_lookup scenario's graph).
  sfs::rng::Rng overlay_rng(ctx.stream_seed("overlay"));
  const auto full = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
      sfs::gen::ConfigModelOptions{false}, overlay_rng);
  const auto overlay = sfs::graph::largest_component(full).graph;
  const std::size_t peers = overlay.num_vertices();
  ctx.console() << "overlay (largest component): " << peers << " peers, "
                << overlay.num_edges() << " links\n\n";

  // One query batch, shared by every policy (paired comparison).
  sfs::rng::Rng query_rng(ctx.stream_seed("queries"));
  std::vector<Query> queries(batch);
  for (auto& q : queries) {
    q.target = static_cast<VertexId>(query_rng.uniform_index(peers));
    do {
      q.start = static_cast<VertexId>(query_rng.uniform_index(peers));
    } while (q.start == q.target);
  }

  sfs::sim::Table t("M5: batch of " + std::to_string(batch) +
                        " lookups, seq vs pool",
                    {"policy", "model", "seq q/s", "pool q/s", "speedup",
                     "mean requests", "found frac"});
  int exit_code = 0;
  for (const auto& name : policies) {
    sfs::search::QueryEngineOptions options;
    options.seed = ctx.stream_seed("session " + name);
    options.budget.max_raw_requests = 50 * peers;
    sfs::search::QueryEngine engine(overlay, name, options);

    // Untimed warmup at the pooled worker count: spawns the shared pool's
    // threads (first policy) and grows the engine's per-worker sessions,
    // so the timed windows measure batch service, not one-time setup.
    // Streams depend only on the batch index, so the warmup leaves the
    // timed results bit-identical.
    const std::size_t warm = std::min<std::size_t>(8, queries.size());
    (void)engine.run_batch(std::span<const Query>(queries.data(), warm),
                           ctx.threads());

    sfs::sim::WallTimer timer;
    const auto seq = engine.run_batch(queries, /*threads=*/1);
    const double seq_s = std::max(timer.seconds(), 1e-9);
    timer.reset();
    const auto pooled = engine.run_batch(queries, ctx.threads());
    const double pool_s = std::max(timer.seconds(), 1e-9);

    if (!same_results(seq, pooled)) {
      ctx.console() << "AUDIT FAILURE: policy '" << name
                    << "': pooled batch diverged from the sequential "
                       "batch\n";
      exit_code = 1;
    }

    double requests = 0.0;
    std::size_t found = 0;
    for (const auto& r : seq) {
      requests += static_cast<double>(r.requests);
      if (r.found) ++found;
    }
    const double d_batch = static_cast<double>(batch);
    const double seq_qps = d_batch / seq_s;
    const double pool_qps = d_batch / pool_s;
    const double mean_requests = requests / d_batch;
    const double found_frac = static_cast<double>(found) / d_batch;
    t.row()
        .cell(name)
        .cell(std::string(sfs::search::model_name(engine.model())))
        .num(seq_qps, 0)
        .num(pool_qps, 0)
        .num(seq_s / pool_s, 2)
        .num(mean_requests, 1)
        .num(found_frac, 2);

    sfs::sim::JsonObjectWriter json;
    json.str_field("bench", "m5_query_engine");
    json.str_field("policy", name);
    json.str_field("model", std::string(sfs::search::model_name(engine.model())));
    json.int_field("n", peers);
    json.int_field("queries", batch);
    json.num_field("seq_qps", seq_qps);
    json.num_field("pool_qps", pool_qps);
    json.num_field("speedup", seq_s / pool_s);
    json.num_field("mean_requests", mean_requests);
    json.num_field("found_frac", found_frac);
    json.bool_field("bit_identical", same_results(seq, pooled));
    // Provenance: which stream-plan version derived the per-query streams
    // (rng/stream_plan.hpp) and the lane width of the interleaved
    // executor. Neither changes results; both change what an external
    // replayer must configure to reproduce them.
    json.int_field("stream_plan",
                   sfs::rng::stream_plan_number(options.stream_plan));
    json.int_field("interleave", options.interleave);
    ctx.emitter->emit_object(json.str());
  }
  t.print(ctx.console());
  ctx.console() << "\nAudit: per-query streams depend only on (session "
                   "seed, batch index), so seq and pool runs are "
                << (exit_code == 0 ? "bit-identical (verified)"
                                   : "DIVERGENT (failure)")
                << ".\n";
  return exit_code;
}

const sfs::sim::ExperimentRegistrar reg_m5({
    .name = "m5_query_engine",
    .title = "QueryEngine: batched lookup throughput on one fixed overlay",
    .claim = "A session-owning batch runner serves fixed-graph lookup "
             "traffic with bit-identical seq/parallel results",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize |
            sfs::sim::kCapReps | sfs::sim::kCapSeed | sfs::sim::kCapThreads |
            sfs::sim::kCapPolicies,
    .params =
        {
            {"--n", "size", "20000 (quick: 4000)",
             "overlay size before largest-component extraction"},
            {"--reps", "count", "2000 (quick: 200)",
             "queries per batch"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; overlay/query/session streams derive from it"},
            {"--threads", "count", "0 (shared pool)",
             "worker count of the pooled batch run"},
            {"--policies", "name list",
             "degree-greedy-strong,bfs-strong,random-walk",
             "registered policies to serve the batch with"},
        },
    .run = run_m5,
});

}  // namespace
