// E11 — Sarshar et al. (2004): percolation search makes unstructured
// power-law P2P lookup scalable — replicate content along short random
// walks, implant the query likewise, then broadcast with bond-percolation
// probability q_e. Success turns on once q_e crosses the (very low)
// percolation threshold of the power-law core, at sublinear traffic.
//
// Success rate and message cost across q_e and replication length on a
// power-law configuration graph. --quick shrinks the graph and lookup
// count.
#include <string>
#include <vector>

#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "search/percolation.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

int run_e11(ExperimentContext& ctx) {
  ctx.console() << "Sarshar et al. 2004: percolation search on a power-law "
                   "configuration graph (k = 2.3, largest component).\n\n";
  const bool quick = ctx.options.quick;
  const std::size_t n = ctx.n_or(quick ? 4000 : 20000);
  Rng graph_rng(ctx.stream_seed("graph"));
  const Graph full = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
      sfs::gen::ConfigModelOptions{false}, graph_rng);
  const Graph g = sfs::graph::largest_component(full).graph;
  ctx.console() << "graph: " << g.num_vertices() << " vertices, "
                << g.num_edges() << " edges\n\n";

  const std::size_t lookups = ctx.reps_or(quick ? 50 : 150);
  const std::vector<std::size_t> walks =
      quick ? std::vector<std::size_t>{0, 20}
            : std::vector<std::size_t>{0, 20, 100};
  for (const std::size_t walk : walks) {
    sfs::sim::Table t(
        "E11: replication walk length " + std::to_string(walk),
        {"q_e", "success rate", "mean messages", "messages / edges",
         "mean vertices reached"});
    for (const double qe : {0.02, 0.05, 0.1, 0.2, 0.4, 0.7}) {
      std::size_t hits = 0;
      sfs::stats::Accumulator messages;
      sfs::stats::Accumulator reached;
      const std::uint64_t cell_seed = ctx.stream_seed(
          "walk=" + std::to_string(walk) +
          " qe=" + sfs::sim::format_double(qe, 2));
      for (std::uint64_t rep = 0; rep < lookups; ++rep) {
        Rng rng(sfs::rng::derive_seed(cell_seed, rep));
        const auto owner =
            static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
        const auto requester =
            static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
        const auto r = sfs::search::percolation_search(
            g, owner, requester,
            sfs::search::PercolationParams{walk, 10, qe}, rng);
        if (r.found) ++hits;
        messages.add(static_cast<double>(r.messages));
        reached.add(static_cast<double>(r.vertices_reached));
      }
      t.row()
          .num(qe, 2)
          .num(static_cast<double>(hits) / static_cast<double>(lookups), 2)
          .num(messages.mean(), 0)
          .num(messages.mean() / static_cast<double>(g.num_edges()), 3)
          .num(reached.mean(), 0);
    }
    t.print(ctx.console());
    ctx.console() << '\n';
  }
  ctx.console() << "Expected shape: with replication (walk >= 20), success "
                   "approaches 1 well below q_e = 1 while messages stay a "
                   "fraction of the edge count; without replication the "
                   "same q_e fails far more often.\n";
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e11({
    .name = "e11",
    .title = "Sarshar 2004: percolation search on power-law P2P graphs",
    .claim = "Lookup success switches on past the percolation threshold at "
             "sublinear message cost",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSingleSize | sfs::sim::kCapReps |
            sfs::sim::kCapSeed,
    .params =
        {
            {"--n", "size", "20000 (quick: 4000)",
             "configuration-graph size before LCC extraction"},
            {"--reps", "count", "150 (quick: 50)",
             "lookups per (walk, q_e) cell"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; graph + per-cell lookup streams"},
        },
    .run = run_e11,
});

}  // namespace
