// M1 — generator throughput microbenchmarks (google-benchmark), driven
// through the experiment registry: the registered run function hands
// google-benchmark a synthetic argv with a filter matching exactly this
// experiment's benchmarks (m2's live in the same driver binary), plus a
// reduced --benchmark_min_time under --quick.
//
// Excluded from the registry smoke loop (spec.smoke = false): the gbench
// timing loop is not a tiny-budget Monte-Carlo run; CI exercises it
// through the sfs_bench --quick loop instead.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "gen/barabasi_albert.hpp"
#include "gen/config_model.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/kleinberg.hpp"
#include "gen/mori.hpp"
#include "gbench_support.hpp"

namespace {

void BM_MoriTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto g = sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MoriTree)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_MergedMori(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 2;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto g =
        sfs::gen::merged_mori_graph(n, 4, sfs::gen::MoriParams{0.5}, rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MergedMori)->Arg(1 << 12)->Arg(1 << 15);

void BM_CooperFrieze(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 3;
  sfs::gen::CooperFriezeParams params;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto g = sfs::gen::cooper_frieze(n, params, rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CooperFrieze)->Arg(1 << 12)->Arg(1 << 15);

void BM_BarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 4;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto g = sfs::gen::barabasi_albert(
        n, sfs::gen::BarabasiAlbertParams{2, true}, rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BarabasiAlbert)->Arg(1 << 12)->Arg(1 << 15);

void BM_ConfigModel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 5;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto g = sfs::gen::power_law_configuration_graph(
        n, sfs::gen::PowerLawSequenceParams{2.3, 1, 0},
        sfs::gen::ConfigModelOptions{false}, rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConfigModel)->Arg(1 << 12)->Arg(1 << 15);

void BM_KleinbergGrid(benchmark::State& state) {
  const auto L = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 6;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    sfs::gen::KleinbergGrid grid(L, sfs::gen::KleinbergParams{2.0, 1}, rng);
    benchmark::DoNotOptimize(grid);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(L * L));
}
BENCHMARK(BM_KleinbergGrid)->Arg(32)->Arg(128);

void BM_ErdosRenyiGnp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 7;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto g = sfs::gen::erdos_renyi_gnp(n, 8.0 / static_cast<double>(n), rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ErdosRenyiGnp)->Arg(1 << 12)->Arg(1 << 16);

int run_m1(sfs::sim::ExperimentContext& ctx) {
  return sfs::bench::run_gbench_experiment(
      ctx,
      "^BM_(MoriTree|MergedMori|CooperFrieze|BarabasiAlbert|ConfigModel|"
      "KleinbergGrid|ErdosRenyiGnp)/");
}

const sfs::sim::ExperimentRegistrar reg_m1({
    .name = "m1",
    .title = "Generator throughput microbenchmarks (google-benchmark)",
    .claim = "Machine benchmark: vertices/second for all seven graph "
             "generators",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapGbenchFlags,
    .smoke = false,
    .params =
        {
            {"--quick", "flag", "off",
             "reduce --benchmark_min_time to 0.05s"},
            {"--benchmark_*", "passthrough", "-",
             "forwarded verbatim to google-benchmark (last one wins)"},
        },
    .run = run_m1,
});

}  // namespace
