// M2 — search-layer throughput microbenchmarks (google-benchmark), driven
// through the experiment registry (see m1_generators.cpp for the gbench
// glue; excluded from the smoke loop for the same reason).
#include <benchmark/benchmark.h>

#include "gbench_support.hpp"
#include "gen/mori.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"

namespace {

sfs::graph::Graph test_graph(std::size_t n) {
  sfs::rng::Rng rng(42);
  return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
}

void BM_WeakBfsFullSearch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = test_graph(n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sfs::search::BfsWeak bfs;
    sfs::rng::Rng rng(seed++);
    auto r = sfs::search::run_weak(
        g, 0, static_cast<sfs::graph::VertexId>(n - 1), bfs, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_WeakBfsFullSearch)->Arg(1 << 12)->Arg(1 << 15);

// The replication-engine hot path: same search, but the O(n+m) per-run
// state lives in a reused SearchWorkspace (O(1) epoch reset), as in
// sim/sweep's per-worker loops.
void BM_WeakBfsFullSearchWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = test_graph(n);
  sfs::search::SearchWorkspace ws;
  sfs::search::BfsWeak bfs;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto r = sfs::search::run_weak(
        g, 0, static_cast<sfs::graph::VertexId>(n - 1), bfs, rng, {}, ws);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_WeakBfsFullSearchWorkspace)->Arg(1 << 12)->Arg(1 << 15);

void BM_WeakDegreeGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = test_graph(n);
  std::uint64_t seed = 2;
  for (auto _ : state) {
    auto greedy = sfs::search::make_degree_greedy_weak();
    sfs::rng::Rng rng(seed++);
    auto r = sfs::search::run_weak(
        g, 0, static_cast<sfs::graph::VertexId>(n - 1), *greedy, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_WeakDegreeGreedy)->Arg(1 << 12)->Arg(1 << 15);

void BM_RandomWalkSteps(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = test_graph(n);
  std::uint64_t seed = 3;
  constexpr std::size_t kSteps = 100000;
  for (auto _ : state) {
    sfs::search::RandomWalkWeak walk;
    sfs::rng::Rng rng(seed++);
    auto r = sfs::search::run_weak(
        g, 0, static_cast<sfs::graph::VertexId>(n - 1), walk, rng,
        sfs::search::RunBudget{.max_raw_requests = kSteps});
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_RandomWalkSteps)->Arg(1 << 14);

void BM_StrongDegreeGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = test_graph(n);
  std::uint64_t seed = 4;
  for (auto _ : state) {
    auto greedy = sfs::search::make_degree_greedy_strong();
    sfs::rng::Rng rng(seed++);
    auto r = sfs::search::run_strong(
        g, 0, static_cast<sfs::graph::VertexId>(n - 1), *greedy, rng);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StrongDegreeGreedy)->Arg(1 << 12)->Arg(1 << 15);

void BM_StrongDegreeGreedyWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = test_graph(n);
  sfs::search::SearchWorkspace ws;
  const auto greedy = sfs::search::make_degree_greedy_strong();
  std::uint64_t seed = 4;
  for (auto _ : state) {
    sfs::rng::Rng rng(seed++);
    auto r = sfs::search::run_strong(
        g, 0, static_cast<sfs::graph::VertexId>(n - 1), *greedy, rng, {},
        ws);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StrongDegreeGreedyWorkspace)->Arg(1 << 12)->Arg(1 << 15);

int run_m2(sfs::sim::ExperimentContext& ctx) {
  return sfs::bench::run_gbench_experiment(
      ctx,
      "^BM_(WeakBfsFullSearch|WeakBfsFullSearchWorkspace|WeakDegreeGreedy|"
      "RandomWalkSteps|StrongDegreeGreedy|StrongDegreeGreedyWorkspace)/");
}

const sfs::sim::ExperimentRegistrar reg_m2({
    .name = "m2",
    .title = "Search-layer throughput microbenchmarks (google-benchmark)",
    .claim = "Machine benchmark: weak/strong search hot paths, with and "
             "without workspace reuse",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapGbenchFlags,
    .smoke = false,
    .params =
        {
            {"--quick", "flag", "off",
             "reduce --benchmark_min_time to 0.05s"},
            {"--benchmark_*", "passthrough", "-",
             "forwarded verbatim to google-benchmark (last one wins)"},
        },
    .run = run_m2,
});

}  // namespace
