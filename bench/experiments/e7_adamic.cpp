// E7 — Adamic et al. (2001): in pure random power-law graphs with pmf
// exponent k in (2, 3), the high-degree greedy strategy reaches a target
// in O(n^{2(1-2/k)}) steps while a pure random walk needs O(n^{3(1-2/k)}).
//
// Configuration-model sweep over k and n, degree-greedy (strong model, as
// Adamic et al. assume neighbor degrees are visible) vs random walk (raw
// steps), fitted exponents vs both predictions. --quick shrinks the grid
// and the k set.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/theory.hpp"
#include "gen/config_model.hpp"
#include "graph/algorithms.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"
#include "sim/experiment.hpp"
#include "sim/table.hpp"

namespace {

using sfs::graph::Graph;
using sfs::graph::VertexId;
using sfs::rng::Rng;
using sfs::sim::ExperimentContext;

Graph make_lcc(std::size_t n, double k, Rng& rng) {
  const Graph g = sfs::gen::power_law_configuration_graph(
      n, sfs::gen::PowerLawSequenceParams{k, 1, 0},
      sfs::gen::ConfigModelOptions{false}, rng);
  return sfs::graph::largest_component(g).graph;
}

std::pair<VertexId, VertexId> random_pair(const Graph& g, Rng& rng) {
  const auto s = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
  VertexId t;
  do {
    t = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
  } while (t == s);
  return {s, t};
}

double greedy_cost(std::size_t n, double k, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = make_lcc(n, k, rng);
  const auto [s, t] = random_pair(g, rng);
  auto greedy = sfs::search::make_degree_greedy_strong();
  const auto r = sfs::search::run_strong(g, s, t, *greedy, rng);
  return static_cast<double>(r.requests);
}

double walk_cost(std::size_t n, double k, std::uint64_t seed) {
  Rng rng(seed);
  const Graph g = make_lcc(n, k, rng);
  const auto [s, t] = random_pair(g, rng);
  sfs::search::RandomWalkWeak walk;
  const auto r = sfs::search::run_weak(
      g, s, t, walk, rng,
      sfs::search::RunBudget{.max_raw_requests = 400 * n});
  return static_cast<double>(r.raw_requests);
}

int run_e7(ExperimentContext& ctx) {
  ctx.console() << "Adamic et al. 2001, power-law configuration graphs "
                   "(largest component):\n  degree-greedy O(n^{2(1-2/k)})  "
                   "vs  random walk O(n^{3(1-2/k)}).\nCosts: greedy = "
                   "strong-model requests (visited vertices); walk = raw "
                   "steps.\n\n";
  const auto sizes = ctx.sizes_or(
      ctx.options.quick
          ? std::vector<std::size_t>{1000, 2000, 4000}
          : std::vector<std::size_t>{2000, 4000, 8000, 16000, 32000});
  const auto reps = ctx.reps_or(ctx.options.quick ? 2 : 8);
  const std::vector<double> ks =
      ctx.options.quick ? std::vector<double>{2.3, 2.7}
                        : std::vector<double>{2.1, 2.3, 2.5, 2.7};

  for (const double k : ks) {
    const std::string tag = "k=" + sfs::sim::format_double(k, 1);
    const auto greedy = sfs::sim::measure_scaling(
        sizes, reps, ctx.stream_seed("greedy " + tag),
        [k](std::size_t n, std::uint64_t seed) {
          return std::max(1.0, greedy_cost(n, k, seed));
        },
        ctx.threads());
    sfs::sim::print_scaling(
        "E7: degree-greedy steps, " + tag, greedy, "greedy steps",
        sfs::core::theory::adamic_greedy_exponent(k), "2(1-2/k)",
        *ctx.emitter);

    const auto walk = sfs::sim::measure_scaling(
        sizes, reps, ctx.stream_seed("walk " + tag),
        [k](std::size_t n, std::uint64_t seed) {
          return std::max(1.0, walk_cost(n, k, seed));
        },
        ctx.threads());
    sfs::sim::print_scaling(
        "E7: random-walk steps, " + tag, walk, "walk steps",
        sfs::core::theory::adamic_random_walk_exponent(k), "3(1-2/k)",
        *ctx.emitter);

    ctx.console()
        << "who wins at n=" << sizes.back() << ": greedy "
        << sfs::sim::format_double(greedy.points.back().summary.mean, 0)
        << " vs walk "
        << sfs::sim::format_double(walk.points.back().summary.mean, 0)
        << "  (greedy should win, gap growing with n)\n\n";
  }
  return 0;
}

const sfs::sim::ExperimentRegistrar reg_e7({
    .name = "e7",
    .title = "Adamic 2001: degree-greedy vs random walk on power-law "
             "graphs",
    .claim = "Greedy O(n^{2(1-2/k)}) vs walk O(n^{3(1-2/k)}) on "
             "configuration-model largest components",
    .caps = sfs::sim::kCapQuick | sfs::sim::kCapSizes | sfs::sim::kCapReps |
            sfs::sim::kCapSeed | sfs::sim::kCapThreads,
    .params =
        {
            {"--sizes", "size list", "2000..32000 (quick: 1000..4000)",
             "graph sizes before LCC extraction"},
            {"--reps", "count", "8 (quick: 2)",
             "replications per sweep point"},
            {"--seed", "u64 seed", "derived from name",
             "base seed; greedy/walk streams per k"},
            {"--threads", "count", "0 (shared pool)",
             "replication fan-out worker count"},
        },
    .run = run_e7,
});

}  // namespace
