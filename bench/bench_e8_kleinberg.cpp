// E8 — Kleinberg (2000) contrast: greedy geographic routing on a 2-D
// small-world grid is polylogarithmic iff the long-range exponent r equals
// the dimension (r = 2); away from it the cost is polynomial. This is the
// navigable world the paper proves scale-free graphs are NOT.
//
// Regenerates: mean greedy route length across r and L, growth factors,
// and the U-shape of cost in r at fixed L.
#include <iostream>

#include "core/theory.hpp"
#include "gen/kleinberg.hpp"
#include "search/kleinberg_routing.hpp"
#include "sim/table.hpp"
#include "stats/summary.hpp"

namespace {

using sfs::gen::KleinbergGrid;
using sfs::gen::KleinbergParams;
using sfs::graph::VertexId;
using sfs::rng::Rng;

double mean_route(double r, std::size_t L, int routes, std::uint64_t seed) {
  Rng rng(seed);
  const KleinbergGrid grid(L, KleinbergParams{r, 1}, rng);
  sfs::stats::Accumulator acc;
  for (int i = 0; i < routes; ++i) {
    const auto s =
        static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
    const auto t =
        static_cast<VertexId>(rng.uniform_index(grid.num_vertices()));
    acc.add(static_cast<double>(sfs::search::greedy_route(grid, s, t).steps));
  }
  return acc.mean();
}

}  // namespace

int main() {
  std::cout << "Kleinberg 2000: greedy routing cost on an LxL torus with "
               "long-range links P(offset) ~ dist^{-r}.\nNavigable iff "
               "r = 2 (routing exponent 0; (2-r)/3 below, (r-2)/(r-1) "
               "above).\n\n";
  const std::vector<double> exponents{0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0};
  const std::vector<std::size_t> sides{16, 32, 64, 128, 256};
  constexpr int kRoutes = 400;

  std::vector<std::string> headers{"r", "theory exp"};
  for (const std::size_t L : sides)
    headers.push_back("L=" + std::to_string(L));
  headers.push_back("growth L16->L256");
  sfs::sim::Table t("E8: mean greedy route length", headers);
  for (const double r : exponents) {
    auto& row = t.row();
    row.num(r, 1).num(sfs::core::theory::kleinberg_routing_exponent(r), 3);
    double first = 0.0;
    double last = 0.0;
    for (const std::size_t L : sides) {
      const double m = mean_route(r, L, kRoutes, 0xE8 + L);
      if (L == sides.front()) first = m;
      if (L == sides.back()) last = m;
      row.num(m, 2);
    }
    row.num(last / first, 2);
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: growth minimized near r = 2 and steep "
               "away from it; r far above 2 approaches lattice-only growth "
               "(factor ~16 for 16x side growth). Finite-size note: at "
               "these L the empirical optimum sits slightly below 2 and "
               "drifts toward 2 as L grows — the standard finite-size "
               "effect for Kleinberg routing.\n";
  return 0;
}
