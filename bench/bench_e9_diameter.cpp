// E9 — "This is in contrast with the logarithmic diameter of such graphs":
// the same models that defeat local search have O(log n) distances, so
// short paths exist — they just cannot be found locally.
//
// Regenerates: mean distance and pseudo-diameter vs n for Móri,
// Cooper–Frieze, merged Móri and BA; the diameter/log2(n) ratio should be
// roughly flat while E1's search cost grows like sqrt(n).
#include <cmath>
#include <functional>
#include <iostream>

#include "gen/barabasi_albert.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "graph/algorithms.hpp"
#include "sim/table.hpp"

namespace {

using sfs::graph::Graph;
using sfs::rng::Rng;

void report(const std::string& model,
            const std::function<Graph(std::size_t, Rng&)>& make) {
  sfs::sim::Table t("E9: distances in " + model,
                    {"n", "mean distance", "pseudo-diameter",
                     "diam / log2(n)"});
  for (const std::size_t n : {4096u, 16384u, 65536u, 262144u}) {
    Rng rng(0xE9);
    const Graph g = make(n, rng);
    Rng sample_rng(0x9E);
    const auto st = sfs::graph::sample_distances(g, 10, sample_rng);
    const auto diam = sfs::graph::pseudo_diameter(g);
    t.row()
        .integer(n)
        .num(st.mean_distance, 2)
        .integer(diam)
        .num(static_cast<double>(diam) / std::log2(static_cast<double>(n)),
             3);
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "E9: logarithmic distances in the non-searchable models "
               "(short paths exist; finding them locally costs sqrt(n)).\n\n";
  report("Mori tree p=0.5", [](std::size_t n, Rng& rng) {
    return sfs::gen::mori_tree(n, sfs::gen::MoriParams{0.5}, rng);
  });
  report("merged Mori graph m=2, p=0.5", [](std::size_t n, Rng& rng) {
    return sfs::gen::merged_mori_graph(n, 2, sfs::gen::MoriParams{0.5}, rng);
  });
  report("Cooper-Frieze balanced", [](std::size_t n, Rng& rng) {
    sfs::gen::CooperFriezeParams params;
    return sfs::gen::cooper_frieze(n, params, rng).graph;
  });
  report("Barabasi-Albert m=2", [](std::size_t n, Rng& rng) {
    return sfs::gen::barabasi_albert(
        n, sfs::gen::BarabasiAlbertParams{2, true}, rng);
  });
  return 0;
}
