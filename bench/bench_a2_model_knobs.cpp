// A2 — model-knob ablation: how the generator parameters move the
// searchability needle.
//
//  * Móri p (uniform vs preferential mix): the lower bound is sqrt(n) for
//    ALL p, but constants shift — higher p concentrates degree, which
//    helps degree-seeking policies find OLD vertices yet does nothing for
//    the newest.
//  * merge factor m: denser merged graphs (more edges per vertex) change
//    the absolute cost but not the scaling.
//  * Cooper-Frieze preference mode (indegree vs total degree): the paper
//    rephrases CF to indegree; this ablation shows the choice does not
//    rescue searchability.
#include <iostream>

#include "base/check.hpp"
#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "sim/scaling.hpp"
#include "sim/sweep.hpp"
#include "sim/table.hpp"

namespace {

using sfs::rng::Rng;

double best_cost(const sfs::sim::GraphFactory& factory, std::size_t n,
                 std::uint64_t seed) {
  const auto cost = sfs::sim::measure_weak_portfolio(
      factory, sfs::sim::oldest_to_newest(), 1, seed,
      sfs::search::RunBudget{.max_raw_requests = 40 * n});
  return cost.best_policy().requests.mean;
}

double fitted_exponent(const std::function<sfs::sim::GraphFactory(
                           std::size_t)>& factory_at,
                       std::uint64_t seed) {
  const auto series = sfs::sim::measure_scaling(
      {1024, 2048, 4096, 8192}, 5, seed,
      [&](std::size_t n, std::uint64_t s) {
        return best_cost(factory_at(n), n, s);
      },
      /*threads=*/0);
  // The no-fit contract: never quote the default slope 0.0 as measured.
  SFS_REQUIRE(series.has_fit(), "A2: no usable exponent fit");
  return series.fit.slope;
}

}  // namespace

int main() {
  std::cout << "A2: generator-knob ablation (fitted exponent of best weak "
               "cost, newest-vertex target).\n\n";

  sfs::sim::Table mori("A2: Mori p sweep", {"p", "fitted exponent"});
  for (const double p : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    mori.row().num(p, 1).num(
        fitted_exponent(
            [p](std::size_t n) {
              return [n, p](Rng& rng) {
                return sfs::gen::mori_tree(n, sfs::gen::MoriParams{p}, rng);
              };
            },
            0xA2),
        3);
  }
  mori.print(std::cout);
  std::cout << '\n';

  sfs::sim::Table merge("A2: merge factor sweep (p=0.5)",
                        {"m", "fitted exponent"});
  for (const std::size_t m : {1u, 2u, 4u, 8u}) {
    merge.row().integer(m).num(
        fitted_exponent(
            [m](std::size_t n) {
              return [n, m](Rng& rng) {
                return sfs::gen::merged_mori_graph(
                    n, m, sfs::gen::MoriParams{0.5}, rng);
              };
            },
            0xA22),
        3);
  }
  merge.print(std::cout);
  std::cout << '\n';

  sfs::sim::Table cf("A2: Cooper-Frieze preference mode",
                     {"preference", "fitted exponent"});
  for (const auto pref : {sfs::gen::Preference::kInDegree,
                          sfs::gen::Preference::kTotalDegree}) {
    cf.row()
        .cell(pref == sfs::gen::Preference::kInDegree ? "indegree"
                                                      : "total degree")
        .num(fitted_exponent(
                 [pref](std::size_t n) {
                   return [n, pref](Rng& rng) {
                     sfs::gen::CooperFriezeParams params;
                     params.preference = pref;
                     return sfs::gen::cooper_frieze(n, params, rng).graph;
                   };
                 },
                 0xA23),
             3);
  }
  cf.print(std::cout);

  std::cout << "\nExpected shape: every row fits an exponent comfortably "
               ">= 0.5 — no knob makes the newest vertex easy to find.\n";
  return 0;
}
