// sfs_bench — the unified experiment driver. All registered experiments
// (bench/experiments/*.cpp) are compiled into this one binary:
//
//   sfs_bench --list                    catalog of experiments
//   sfs_bench --list-names              bare names (CI loops over these)
//   sfs_bench --run e1 --quick          one experiment, smoke budget
//   sfs_bench --run e1 --large --checkpoint e1.csv --json e1.jsonl
//
// See sim/experiment.hpp for the shared flag vocabulary and
// docs/EXPERIMENTS.md for the experiment catalog.
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  return sfs::sim::experiment_main(argc, argv);
}
