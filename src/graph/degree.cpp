#include "graph/degree.hpp"

#include <algorithm>

namespace sfs::graph {

std::size_t degree_of(const Graph& g, VertexId v, DegreeKind kind) {
  switch (kind) {
    case DegreeKind::kUndirected: return g.degree(v);
    case DegreeKind::kIn: return g.in_degree(v);
    case DegreeKind::kOut: return g.out_degree(v);
    case DegreeKind::kTotal: return g.in_degree(v) + g.out_degree(v);
  }
  SFS_CHECK(false, "unknown DegreeKind");
  return 0;
}

std::vector<std::size_t> degree_sequence(const Graph& g, DegreeKind kind) {
  std::vector<std::size_t> seq(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) seq[v] = degree_of(g, v, kind);
  return seq;
}

std::vector<std::size_t> degree_histogram(const Graph& g, DegreeKind kind) {
  const auto seq = degree_sequence(g, kind);
  const std::size_t dmax = seq.empty() ? 0 : *std::max_element(seq.begin(),
                                                               seq.end());
  std::vector<std::size_t> hist(dmax + 1, 0);
  for (const std::size_t d : seq) ++hist[d];
  return hist;
}

std::vector<std::pair<std::size_t, double>> degree_ccdf(const Graph& g,
                                                        DegreeKind kind) {
  const auto hist = degree_histogram(g, kind);
  const double n = static_cast<double>(g.num_vertices());
  std::vector<std::pair<std::size_t, double>> ccdf;
  if (n == 0.0) return ccdf;
  // Suffix sums over the histogram, reported at observed degrees >= 1.
  std::size_t at_least = 0;
  std::vector<std::pair<std::size_t, std::size_t>> rev;  // (d, count >= d)
  for (std::size_t d = hist.size(); d-- > 1;) {
    at_least += hist[d];
    if (hist[d] > 0) rev.emplace_back(d, at_least);
  }
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    ccdf.emplace_back(it->first, static_cast<double>(it->second) / n);
  }
  return ccdf;
}

std::size_t max_degree(const Graph& g, DegreeKind kind) {
  std::size_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    best = std::max(best, degree_of(g, v, kind));
  return best;
}

double mean_degree(const Graph& g, DegreeKind kind) {
  if (g.num_vertices() == 0) return 0.0;
  double sum = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    sum += static_cast<double>(degree_of(g, v, kind));
  return sum / static_cast<double>(g.num_vertices());
}

}  // namespace sfs::graph
