#include "graph/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "base/check.hpp"

// Error discipline (mirrors graph/io.cpp): anything the *format* promises
// — magic, version, endianness, declared lengths, checksum, identity —
// is validated with SFS_REQUIRE, so corrupt or mismatched snapshots fail
// as std::invalid_argument with the path in the message. Only
// environmental failures (open, map, write, rename) use
// std::runtime_error, which is the documented graph I/O contract.

namespace sfs::graph {

namespace {

constexpr std::size_t kHeaderWords = 26;
constexpr std::size_t kHeaderBytes = kHeaderWords * 8;
constexpr std::size_t kGeneratorBytes = 32;
constexpr std::size_t kGeneratorWord = 8;   // header index of the name
constexpr std::size_t kChecksumWord = 3;
constexpr std::size_t kChecksumStart = 32;  // checksum covers [32, EOF)

std::size_t pad8(std::size_t x) { return (x + 7) & ~static_cast<std::size_t>(7); }

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u64(std::uint8_t* base, std::size_t word, std::uint64_t value) {
  std::memcpy(base + word * 8, &value, 8);
}

std::uint64_t get_u64(const std::uint8_t* base, std::size_t word) {
  std::uint64_t value = 0;
  std::memcpy(&value, base + word * 8, 8);
  return value;
}

struct EfDescriptor {
  std::uint64_t count = 0;
  std::uint64_t universe = 0;
  std::uint64_t low_bits = 0;
  std::uint64_t low_words = 0;
  std::uint64_t high_words = 0;
  std::uint64_t samples = 0;
};

EfDescriptor describe(const EliasFanoView& v) {
  return {v.count,            v.universe,           v.low_bits,
          v.low_words.size(), v.high_words.size(),  v.samples.size()};
}

void put_descriptor(std::uint8_t* base, std::size_t word,
                    const EfDescriptor& d) {
  put_u64(base, word + 0, d.count);
  put_u64(base, word + 1, d.universe);
  put_u64(base, word + 2, d.low_bits);
  put_u64(base, word + 3, d.low_words);
  put_u64(base, word + 4, d.high_words);
  put_u64(base, word + 5, d.samples);
}

EfDescriptor get_descriptor(const std::uint8_t* base, std::size_t word) {
  return {get_u64(base, word + 0), get_u64(base, word + 1),
          get_u64(base, word + 2), get_u64(base, word + 3),
          get_u64(base, word + 4), get_u64(base, word + 5)};
}

std::size_t descriptor_word_count(const EfDescriptor& d) {
  return static_cast<std::size_t>(d.low_words + d.high_words + d.samples);
}

void append_bytes(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
  out.resize(pad8(out.size()), 0);
}

void append_words(std::vector<std::uint8_t>& out,
                  std::span<const std::uint64_t> words) {
  const auto* raw = reinterpret_cast<const std::uint8_t*>(words.data());
  out.insert(out.end(), raw, raw + words.size() * 8);
}

/// Reinterprets an 8-aligned byte range of the mapping as u64 words.
std::span<const std::uint64_t> word_span(const std::uint8_t* base,
                                         std::size_t byte_offset,
                                         std::uint64_t words,
                                         const std::string& path) {
  SFS_REQUIRE(byte_offset % 8 == 0,
              "snapshot section misaligned: " + path);
  return {reinterpret_cast<const std::uint64_t*>(base + byte_offset),
          static_cast<std::size_t>(words)};
}

}  // namespace

void write_snapshot(const std::string& path, const CompressedView& view,
                    const SnapshotMeta& meta) {
  SFS_REQUIRE(meta.generator.size() < kGeneratorBytes,
              "snapshot generator name too long: " + meta.generator);

  const EfDescriptor deg = describe(view.degree_offsets);
  const EfDescriptor row = describe(view.row_offsets);

  std::vector<std::uint8_t> buf;
  buf.resize(kHeaderBytes, 0);
  append_bytes(buf, view.tail_stream);
  append_bytes(buf, view.adj_stream);
  append_words(buf, view.degree_offsets.low_words);
  append_words(buf, view.degree_offsets.high_words);
  append_words(buf, view.degree_offsets.samples);
  append_words(buf, view.row_offsets.low_words);
  append_words(buf, view.row_offsets.high_words);
  append_words(buf, view.row_offsets.samples);

  std::uint8_t* base = buf.data();
  put_u64(base, 0, kSnapshotMagic);
  put_u64(base, 1, kSnapshotVersion);
  put_u64(base, 2, kSnapshotEndianMarker);
  put_u64(base, 4, view.num_vertices);
  put_u64(base, 5, view.num_edges);
  put_u64(base, 6, static_cast<std::uint64_t>(view.codec));
  put_u64(base, 7, meta.seed);
  std::memcpy(base + kGeneratorWord * 8, meta.generator.data(),
              meta.generator.size());
  put_u64(base, 12, view.tail_stream.size());
  put_u64(base, 13, view.adj_stream.size());
  put_descriptor(base, 14, deg);
  put_descriptor(base, 20, row);
  put_u64(base, kChecksumWord,
          fnv1a64(base + kChecksumStart, buf.size() - kChecksumStart));

  // Write-then-rename keeps the final path atomic: a crash mid-write
  // leaves only the .tmp fragment, never a short file readers could open.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot open snapshot for writing: " + tmp);
  }
  const std::size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != buf.size() || !closed) {
    std::remove(tmp.c_str());
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("short write for snapshot: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot rename snapshot into place: " + path);
  }
}

MappedSnapshot::MappedSnapshot(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot open snapshot: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot stat snapshot: " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ < kHeaderBytes) {
    ::close(fd);
    SFS_REQUIRE(false, "snapshot truncated below header size: " + path);
  }
  void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) {
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot mmap snapshot: " + path);
  }
  data_ = static_cast<const std::uint8_t*>(mapping);
  mapped_ = true;

  // Header validation order: identity words first (cheap, and a version
  // or endianness mismatch should be reported as such rather than as a
  // checksum failure), then structural sizes, then the full checksum.
  bool ok = false;
  struct Unmapper {
    MappedSnapshot* self;
    const bool* ok;
    ~Unmapper() {
      if (!*ok) self->reset();
    }
  } guard{this, &ok};

  SFS_REQUIRE(get_u64(data_, 0) == kSnapshotMagic,
              "not a snapshot (bad magic): " + path);
  SFS_REQUIRE(get_u64(data_, 1) == kSnapshotVersion,
              "unsupported snapshot version: " + path);
  SFS_REQUIRE(get_u64(data_, 2) == kSnapshotEndianMarker,
              "snapshot written with different endianness: " + path);

  const std::uint64_t n = get_u64(data_, 4);
  const std::uint64_t m = get_u64(data_, 5);
  const std::uint64_t codec_value = get_u64(data_, 6);
  SFS_REQUIRE(codec_value <= static_cast<std::uint64_t>(RowCodec::kEliasFano),
              "snapshot declares unknown row codec: " + path);
  const std::uint64_t tail_len = get_u64(data_, 12);
  const std::uint64_t adj_len = get_u64(data_, 13);
  const EfDescriptor deg = get_descriptor(data_, 14);
  const EfDescriptor row = get_descriptor(data_, 20);
  SFS_REQUIRE(deg.low_bits < 64 && row.low_bits < 64,
              "snapshot declares invalid Elias-Fano split: " + path);

  const std::size_t off_tail = kHeaderBytes;
  const std::size_t off_adj =
      off_tail + pad8(static_cast<std::size_t>(tail_len));
  const std::size_t off_deg =
      off_adj + pad8(static_cast<std::size_t>(adj_len));
  const std::size_t off_row = off_deg + descriptor_word_count(deg) * 8;
  const std::size_t total = off_row + descriptor_word_count(row) * 8;
  SFS_REQUIRE(total == size_,
              "snapshot size disagrees with declared sections: " + path);
  SFS_REQUIRE(get_u64(data_, kChecksumWord) ==
                  fnv1a64(data_ + kChecksumStart, size_ - kChecksumStart),
              "snapshot checksum mismatch: " + path);

  view_.num_vertices = static_cast<std::size_t>(n);
  view_.num_edges = static_cast<std::size_t>(m);
  view_.codec = static_cast<RowCodec>(codec_value);
  view_.tail_stream = {data_ + off_tail, static_cast<std::size_t>(tail_len)};
  view_.adj_stream = {data_ + off_adj, static_cast<std::size_t>(adj_len)};
  std::size_t cursor = off_deg;
  const auto take = [&](std::uint64_t words) {
    const auto span = word_span(data_, cursor, words, path);
    cursor += static_cast<std::size_t>(words) * 8;
    return span;
  };
  view_.degree_offsets = {static_cast<std::size_t>(deg.count), deg.universe,
                          static_cast<std::uint32_t>(deg.low_bits),
                          take(deg.low_words), take(deg.high_words),
                          take(deg.samples)};
  view_.row_offsets = {static_cast<std::size_t>(row.count), row.universe,
                       static_cast<std::uint32_t>(row.low_bits),
                       take(row.low_words), take(row.high_words),
                       take(row.samples)};

  const char* name = reinterpret_cast<const char*>(data_) + kGeneratorWord * 8;
  meta_.generator.assign(name, ::strnlen(name, kGeneratorBytes));
  meta_.seed = get_u64(data_, 7);
  ok = true;
}

void MappedSnapshot::reset() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  view_ = CompressedView{};
}

MappedSnapshot::~MappedSnapshot() { reset(); }

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      view_(other.view_),
      meta_(std::move(other.meta_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.view_ = CompressedView{};
}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    view_ = other.view_;
    meta_ = std::move(other.meta_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.view_ = CompressedView{};
  }
  return *this;
}

std::string snapshot_cache_path(const std::string& dir,
                                const SnapshotMeta& meta, std::size_t n) {
  char seed_hex[17] = {};
  const auto res = std::to_chars(seed_hex, seed_hex + 16, meta.seed, 16);
  SFS_CHECK(res.ec == std::errc(), "seed formatting cannot fail");
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += meta.generator;
  path += "-n";
  path += std::to_string(n);
  path += "-s";
  path += seed_hex;
  path += ".sfsnap";
  return path;
}

namespace detail {

bool snapshot_file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

void require_snapshot_identity(const MappedSnapshot& snap,
                               const SnapshotMeta& meta, std::size_t n,
                               const std::string& path) {
  SFS_REQUIRE(snap.meta().generator == meta.generator &&
                  snap.meta().seed == meta.seed &&
                  snap.view().num_vertices == n,
              "snapshot cache collision: " + path + " holds (" +
                  snap.meta().generator + ", n=" +
                  std::to_string(snap.view().num_vertices) +
                  "), wanted (" + meta.generator + ", n=" +
                  std::to_string(n) + ")");
}

}  // namespace detail

}  // namespace sfs::graph
