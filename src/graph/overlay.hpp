// Dynamic overlay: the incremental-mutation layer over the immutable Graph.
//
// The paper's non-searchability results are proved on a static snapshot of
// a power-law overlay, but a deployed P2P system lives with continuous
// churn: peers join, peers leave, links fail. An Overlay wraps one Graph
// snapshot and makes that operational reality expressible while keeping
// the library's determinism discipline intact:
//
//  * Vertex JOIN — a new peer attaches to `m` existing peers chosen by
//    preferential attachment over the *live* degree mass (weight
//    live_degree(v) + 1, so an isolated survivor can be re-attached).
//    Two interchangeable sampling backends realize that distribution (see
//    OverlaySampler below): the default rng::BucketedSampler maintains the
//    live mass incrementally through every mutation — O(1) per join
//    target, departure slot and edge failure — while the legacy bag mode
//    reproduces the PR 6 repeat-array draws (an internal id-ordered bag,
//    lazily rebuilt in O(n + m) after any departure or edge failure). Joined vertices and their edges are STAGED: they
//    receive final ids immediately but enter the CSR snapshot only at the
//    next compaction.
//
//  * Vertex DEPARTURE — a tombstone: the peer's alive bit flips off in
//    O(1); its edges stay in the CSR until compaction and are skipped by
//    the departure-tolerant search layer (search/local_view.hpp). Vertex
//    ids are never reused and never shift, so long-lived queries and
//    checkpointed experiments keep naming the same peers.
//
//  * EDGE FAILURE — targeted link failure between two live peers, also a
//    mask bit.
//
//  * COMPACTION — rebuilds the CSR from the live topology plus the staged
//    joins, recycling the scratch builder's buffers (GraphBuilder::reset +
//    build_into). Dead vertices remain as isolated ids (stable numbering);
//    dead edges are dropped, so edge ids are renumbered — any consumer
//    holding per-edge state must treat a compaction as a new epoch (see
//    below). maybe_compact() implements the periodic policy: compact when
//    staged joins exist or the dead-edge debt crosses a fraction of m.
//
// Epochs: every mutation and every compaction bumps epoch() (a uint64 — it
// does not wrap in any real run). Consumers that cache anything derived
// from the snapshot (search sessions, adjacency spans, per-edge arrays)
// must revalidate against epoch(); search::QueryEngine uses it to rebuild
// stale sessions and to detect a mutation racing a running batch.
//
// Determinism: join() draws targets from the caller's Rng only, and bag
// (re)construction iterates vertices and CSR slots in id order, so an
// identical mutation sequence with identical seeds reproduces the overlay
// bit for bit — the property sim::ChurnSchedule builds on.
//
// Threading: an Overlay is a single-writer object; mutations must not race
// reads. The read side (snapshot + masks) is safe to share across search
// workers between mutations, which is exactly the batch contract
// QueryEngine enforces via the epoch check. Because the contract is
// "externally serialized", the class carries no mutex and no capability
// annotations — see docs/ANALYSIS.md ("Capability annotations") for the
// per-class lock-ownership table this fits into.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "rng/discrete.hpp"
#include "rng/random.hpp"

namespace sfs::graph {

/// Backend realizing the join target distribution (live_degree + 1).
enum class OverlaySampler : std::uint8_t {
  /// rng::BucketedSampler over the live mass, maintained incrementally:
  /// O(1) expected per join draw and O(1) per weight update — no rebuild
  /// after departures/edge failures. Same distribution as kBag, different
  /// (documented) draw stream. The default.
  kBucketed,
  /// The PR 6 repeat-array bag: id-ordered, O(total live mass) lazy
  /// rebuild after any departure or edge failure. Frozen — use when a
  /// churn trace must replay historical join draws bit for bit.
  kBag,
};

class Overlay {
 public:
  /// Takes ownership of `base` as the epoch-1 snapshot; every vertex and
  /// edge starts alive.
  explicit Overlay(Graph base,
                   OverlaySampler sampler = OverlaySampler::kBucketed);

  // ------------------------------------------------------------------ views

  /// The current CSR snapshot: committed topology only (staged joins are
  /// invisible until compact()). The reference is stable for the Overlay's
  /// lifetime; its *contents* change at each compaction — consumers must
  /// revalidate via epoch().
  [[nodiscard]] const Graph& snapshot() const noexcept { return graph_; }

  /// Monotone change counter: starts at 1, bumps on every join / depart /
  /// fail_edge / compact.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Total ids ever issued (snapshot vertices + staged joins). Ids are
  /// never reused; `v < num_vertices()` is the valid-id check.
  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return alive_.size();
  }
  [[nodiscard]] std::size_t num_alive() const noexcept { return num_alive_; }
  /// Joined vertices not yet committed to the CSR by a compaction.
  [[nodiscard]] std::size_t staged_joins() const noexcept {
    return staged_vertices_;
  }
  [[nodiscard]] std::size_t compactions() const noexcept {
    return compactions_;
  }
  [[nodiscard]] OverlaySampler sampler() const noexcept {
    return sampler_kind_;
  }

  /// Mass the join sampler currently assigns to `v`
  /// (live_degree(v) + 1 for live vertices, 0 for departed ones). O(1)
  /// for kBucketed; O(live mass) for kBag (test/diagnostic use).
  [[nodiscard]] std::uint64_t join_mass(VertexId v);

  [[nodiscard]] bool alive(VertexId v) const {
    SFS_REQUIRE(v < alive_.size(), "Overlay::alive: vertex id out of range");
    return alive_[v] != 0;
  }
  /// Liveness of a snapshot edge id (staged edges have no ids yet).
  [[nodiscard]] bool edge_alive(EdgeId e) const {
    SFS_REQUIRE(e < edge_alive_.size(),
                "Overlay::edge_alive: edge id out of range");
    return edge_alive_[e] != 0;
  }

  /// Mask spans for the departure-tolerant search layer
  /// (search::LivenessView): one byte per vertex id / per snapshot edge
  /// id, nonzero = alive. Invalidated by every mutating call.
  [[nodiscard]] std::span<const std::uint8_t> vertex_alive_mask()
      const noexcept {
    return alive_;
  }
  [[nodiscard]] std::span<const std::uint8_t> edge_alive_mask()
      const noexcept {
    return edge_alive_;
  }

  /// Live degree of `v`: live snapshot incidence (both the edge and the
  /// far endpoint alive; a live self-loop counts twice) plus staged edges
  /// at `v` with a live far endpoint. O(degree). Dead vertices have live
  /// degree 0.
  [[nodiscard]] std::size_t live_degree(VertexId v) const;

  // ------------------------------------------------------------- mutations

  /// A new peer joins with (up to) `attach` preferential-attachment links
  /// into the live overlay; returns its id. Targets are drawn from the
  /// live-mass bag (weight live_degree + 1; duplicates allowed — the
  /// snapshot is a multigraph). Requires attach >= 1 and at least one live
  /// vertex. The join is staged until the next compaction.
  VertexId join(std::size_t attach, rng::Rng& rng);

  /// Tombstones a live vertex (O(1) plus its live-degree contribution to
  /// the compaction debt). Requires `v` alive.
  void depart(VertexId v);

  /// Fails a live snapshot edge. Requires `e` alive.
  void fail_edge(EdgeId e);

  /// Rebuilds the CSR snapshot: live committed edges plus staged joins,
  /// dead edges dropped, vertex ids preserved (tombstoned vertices become
  /// isolated ids). Edge ids are renumbered; the edge mask resets to
  /// all-alive. Recycles the internal scratch builder, so steady-state
  /// compactions reuse the CSR buffers.
  void compact();

  /// Compacts when staged joins exist or the dead-edge debt exceeds
  /// `debt_threshold` (a fraction of the snapshot edge count). Returns
  /// whether a compaction ran. This is the "periodic CSR compaction"
  /// policy applied by sim::ChurnSchedule after each event batch.
  bool maybe_compact(double debt_threshold);

 private:
  void rebuild_bag();
  /// Subtracts the live-incidence mass `v` grants its neighbors, then
  /// zeroes `v`'s own weight (kBucketed departure bookkeeping).
  void retire_live_mass(VertexId v);

  Graph graph_;  // committed snapshot (staged joins not yet included)
  /// Staged join edges: tail = the joining vertex, head = its target.
  std::vector<Edge> staged_edges_;
  std::size_t staged_vertices_ = 0;

  std::vector<std::uint8_t> alive_;       // size num_vertices() (incl staged)
  std::vector<std::uint8_t> edge_alive_;  // size snapshot().num_edges()
  std::size_t num_alive_ = 0;

  /// Snapshot edges made unusable since the last compaction (failed edges
  /// + live incidence of departed vertices); drives maybe_compact().
  std::size_t compaction_debt_ = 0;

  std::uint64_t epoch_ = 1;
  std::size_t compactions_ = 0;

  /// Edge-log + CSR packing scratch recycled across compactions. Owned
  /// directly (not via gen::GenScratch): graph/ sits below gen/ in the
  /// include-layering DAG (sfs_lint R8), and the overlay needs only the
  /// builder and the two vectors below, not the full generator arena.
  GraphBuilder builder_;
  /// kBag mode: the preferential-attachment bag — live_degree(v) + 1
  /// entries per live vertex, id-ordered. Joins append incrementally;
  /// departures and edge failures mark it dirty for a lazy rebuild.
  std::vector<VertexId> pref_bag_;
  /// join() target staging buffer (reused across calls).
  std::vector<VertexId> targets_;
  bool bag_dirty_ = true;

  /// kBucketed mode: the live mass as explicit per-vertex weights,
  /// maintained incrementally through every mutation (compaction preserves
  /// live degrees, so it needs no work there). Invariant:
  /// live_mass_.weight(v) == alive(v) ? live_degree(v) + 1 : 0.
  OverlaySampler sampler_kind_;
  rng::BucketedSampler live_mass_;
};

}  // namespace sfs::graph
