#include "graph/structure.hpp"

#include <algorithm>
#include <cmath>

namespace sfs::graph {

std::vector<VertexId> CoreDecomposition::core_members(std::uint32_t k) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < core_number.size(); ++v) {
    if (core_number[v] >= k) out.push_back(v);
  }
  return out;
}

CoreDecomposition core_decomposition(const Graph& g) {
  const std::size_t n = g.num_vertices();
  CoreDecomposition out;
  out.core_number.assign(n, 0);
  if (n == 0) return out;

  // Bucket sort vertices by (remaining) degree.
  std::vector<std::uint32_t> deg(n);
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(v));
    max_deg = std::max(max_deg, deg[v]);
  }
  std::vector<std::size_t> bucket_start(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[deg[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d)
    bucket_start[d] += bucket_start[d - 1];
  std::vector<VertexId> order(n);
  std::vector<std::size_t> pos(n);
  {
    auto cursor = bucket_start;
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[deg[v]]++;
      order[pos[v]] = v;
    }
  }
  // bucket_start[d] = index of the first vertex with remaining degree >= d.
  // Peel in nondecreasing degree order.
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    out.core_number[v] = deg[v];
    out.degeneracy = std::max(out.degeneracy, deg[v]);
    for (const VertexId u : g.adjacent(v)) {
      if (deg[u] > deg[v]) {
        // Move u one bucket down: swap it with the first vertex of its
        // current bucket, then shrink the bucket boundary.
        const std::size_t du = deg[u];
        const std::size_t pu = pos[u];
        const std::size_t pw = bucket_start[du];
        const VertexId w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bucket_start[du];
        --deg[u];
      }
    }
  }
  return out;
}

namespace {

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

double degree_assortativity(const Graph& g) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(2 * g.num_edges());
  ys.reserve(2 * g.num_edges());
  for (const Edge& e : g.edges()) {
    if (e.is_loop()) continue;
    const auto dt = static_cast<double>(g.degree(e.tail));
    const auto dh = static_cast<double>(g.degree(e.head));
    xs.push_back(dt);
    ys.push_back(dh);
    xs.push_back(dh);
    ys.push_back(dt);
  }
  return pearson(xs, ys);
}

double age_degree_correlation(const Graph& g) {
  std::vector<double> age;
  std::vector<double> deg;
  age.reserve(g.num_vertices());
  deg.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    age.push_back(static_cast<double>(v));
    deg.push_back(static_cast<double>(g.degree(v)));
  }
  return pearson(age, deg);
}

}  // namespace sfs::graph
