// Whole-graph algorithms on the unoriented view: BFS, connectivity,
// distance/diameter estimation, tree checks.
//
// These are the instruments behind experiment E9 (logarithmic diameter of
// the scale-free models, contrasted with the polynomial search lower bound)
// and behind many structural test invariants.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "rng/random.hpp"

namespace sfs::graph {

/// Distance value for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Result of a single-source BFS.
struct BfsResult {
  std::vector<std::uint32_t> distance;  // kUnreachable if not reached
  std::vector<VertexId> parent;         // kNoVertex for source/unreached
  std::vector<EdgeId> parent_edge;      // kNoEdge for source/unreached
  std::uint32_t max_distance = 0;       // eccentricity within the component
  VertexId farthest = kNoVertex;        // a vertex at max_distance
};

/// Breadth-first search from `source` over the unoriented multigraph.
[[nodiscard]] BfsResult bfs(const Graph& g, VertexId source);

/// Shortest-path distance between two vertices (kUnreachable if none).
[[nodiscard]] std::uint32_t distance(const Graph& g, VertexId s, VertexId t);

/// Extracts the path s -> t implied by a BFS from s (empty if unreachable;
/// otherwise starts with s and ends with t).
[[nodiscard]] std::vector<VertexId> shortest_path(const Graph& g, VertexId s,
                                                  VertexId t);

/// Component label per vertex (labels are 0..k-1 in discovery order) and
/// component count.
struct Components {
  std::vector<std::uint32_t> label;
  std::size_t count = 0;

  /// Sizes indexed by label.
  [[nodiscard]] std::vector<std::size_t> sizes() const;
  /// Label of the largest component (ties: smallest label).
  [[nodiscard]] std::uint32_t largest() const;
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Induced subgraph on the given vertices (ids are re-mapped to 0..k-1 in
/// the order given; returns the mapping old->new for callers that need it).
struct Subgraph {
  Graph graph;
  std::vector<VertexId> to_old;                // new id -> old id
  std::vector<VertexId> to_new;                // old id -> new id or kNoVertex
};

[[nodiscard]] Subgraph induced_subgraph(const Graph& g,
                                        const std::vector<VertexId>& keep);

/// Largest connected component as a subgraph.
[[nodiscard]] Subgraph largest_component(const Graph& g);

/// True if the unoriented graph is a tree: connected, m == n-1, no loops.
[[nodiscard]] bool is_tree(const Graph& g);

/// Pseudo-diameter by the double-sweep heuristic: BFS from `hint`, then BFS
/// from the farthest vertex found; returns that second eccentricity (a lower
/// bound on the true diameter, usually tight on small-world graphs).
[[nodiscard]] std::uint32_t pseudo_diameter(const Graph& g,
                                            VertexId hint = 0);

/// Distance statistics estimated from `samples` random-source BFS runs.
struct DistanceStats {
  double mean_distance = 0.0;     // over reachable ordered pairs sampled
  double mean_eccentricity = 0.0; // over sampled sources
  std::uint32_t max_observed = 0; // max eccentricity seen (diameter l.b.)
  std::size_t sources = 0;
};

[[nodiscard]] DistanceStats sample_distances(const Graph& g, std::size_t samples,
                                             rng::Rng& rng);

/// Global clustering coefficient estimated by sampling `samples` wedge
/// centers (vertices chosen proportionally to the number of wedges they
/// center) and checking closure. Self-loops and parallel edges are ignored
/// for wedge purposes. Returns 0 for graphs with no wedges.
[[nodiscard]] double sample_clustering(const Graph& g, std::size_t samples,
                                       rng::Rng& rng);

}  // namespace sfs::graph
