// Structural analysis beyond distances: k-core decomposition and degree
// assortativity.
//
// The k-core machinery backs the percolation-search story (E11): Sarshar
// et al.'s protocol works because the high-degree core of a power-law
// graph percolates at tiny edge probabilities, and random walks find that
// core quickly. Assortativity quantifies the degree-age correlation
// footprint that distinguishes evolving models from configuration models.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sfs::graph {

/// Core number per vertex: the largest k such that the vertex survives in
/// the k-core (maximal subgraph of minimum degree >= k). Self-loops count
/// 2 toward degree, parallel edges count individually (multigraph
/// convention, consistent with Graph::degree).
struct CoreDecomposition {
  std::vector<std::uint32_t> core_number;
  std::uint32_t degeneracy = 0;  // max core number

  /// Vertices with core number >= k.
  [[nodiscard]] std::vector<VertexId> core_members(std::uint32_t k) const;
};

/// Batagelj–Zaveršnik bucket peeling, O(n + m).
[[nodiscard]] CoreDecomposition core_decomposition(const Graph& g);

/// Pearson degree assortativity over the unoriented edges (loops skipped;
/// each edge contributes its two endpoint degrees once in each order, the
/// standard Newman convention). Returns 0 for degenerate graphs (fewer
/// than 2 non-loop edges or zero degree variance).
[[nodiscard]] double degree_assortativity(const Graph& g);

/// Pearson correlation between vertex id (age rank) and degree — the
/// age/degree correlation that makes evolving graphs behave differently
/// from configuration models with the same degrees. Returns 0 when either
/// variance vanishes.
[[nodiscard]] double age_degree_correlation(const Graph& g);

}  // namespace sfs::graph
