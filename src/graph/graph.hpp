// Immutable multigraph with directed edge origins and undirected incidence.
//
// All graph models in the paper are *constructed* as oriented graphs (each
// new vertex emits out-edges), but "searching always takes place in the
// corresponding unoriented graph". Graph therefore stores, for every edge,
// its construction orientation (tail -> head), and exposes an undirected
// incidence structure (CSR) that the search layer and all algorithms use.
//
// Multigraph semantics: parallel edges and self-loops are allowed — the
// merged Móri graph G^{(m)} produces both. A self-loop appears twice in the
// incidence list of its vertex and contributes 2 to its degree (standard
// multigraph convention).
//
// Vertex ids are 0-based std::uint32_t. The paper numbers vertices 1..n;
// the paper's vertex t is id t-1 here (see DESIGN.md §7).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/check.hpp"

namespace sfs::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Sentinel for "no vertex" (e.g. BFS parent of the root).
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);
/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// A directed edge as constructed by a generator: tail emitted the edge,
/// head received it (head's indegree grows).
struct Edge {
  VertexId tail = kNoVertex;
  VertexId head = kNoVertex;

  [[nodiscard]] bool is_loop() const noexcept { return tail == head; }
  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder;

/// Immutable multigraph. Construct through GraphBuilder.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// The directed edge record for edge id `e`.
  [[nodiscard]] const Edge& edge(EdgeId e) const {
    SFS_REQUIRE(e < edges_.size(), "edge id out of range");
    return edges_[e];
  }

  /// Undirected incidence list of `v`: every edge id with `v` as an
  /// endpoint, self-loops listed twice. Order: by edge id, tail occurrences
  /// and head occurrences interleaved by construction order.
  [[nodiscard]] std::span<const EdgeId> incident(VertexId v) const {
    SFS_REQUIRE(v < num_vertices(), "vertex id out of range");
    return {incidence_.data() + offsets_[v],
            incidence_.data() + offsets_[v + 1]};
  }

  /// Neighbor ids of `v`, slot-aligned with incident(v): adjacent(v)[i] is
  /// the endpoint of incident(v)[i] opposite to `v` (a self-loop
  /// contributes `v` itself, twice). This is the search-layer fast path:
  /// hot loops read the neighbor straight from the CSR payload instead of
  /// bouncing through edges_[e].
  [[nodiscard]] std::span<const VertexId> adjacent(VertexId v) const {
    SFS_REQUIRE(v < num_vertices(), "vertex id out of range");
    return {incidence_vertex_.data() + offsets_[v],
            incidence_vertex_.data() + offsets_[v + 1]};
  }

  /// Undirected degree (self-loops count twice).
  [[nodiscard]] std::size_t degree(VertexId v) const {
    SFS_REQUIRE(v < num_vertices(), "vertex id out of range");
    return offsets_[v + 1] - offsets_[v];
  }

  /// Indegree under the construction orientation.
  [[nodiscard]] std::size_t in_degree(VertexId v) const {
    SFS_REQUIRE(v < num_vertices(), "vertex id out of range");
    return in_degree_[v];
  }

  /// Outdegree under the construction orientation.
  [[nodiscard]] std::size_t out_degree(VertexId v) const {
    SFS_REQUIRE(v < num_vertices(), "vertex id out of range");
    return out_degree_[v];
  }

  /// The endpoint of `e` opposite to `v`. For a self-loop returns `v`.
  /// Requires that `v` is an endpoint of `e`.
  [[nodiscard]] VertexId other_endpoint(EdgeId e, VertexId v) const {
    const Edge& ed = edge(e);
    SFS_REQUIRE(ed.tail == v || ed.head == v, "v is not an endpoint of e");
    return ed.tail == v ? ed.head : ed.tail;
  }

  /// Materializes the (multiset of) neighbors of `v` in the unoriented
  /// graph; a self-loop contributes `v` twice, parallel edges repeat the
  /// neighbor.
  [[nodiscard]] std::vector<VertexId> neighbors(VertexId v) const;

  /// True if some edge joins `u` and `v` in the unoriented graph
  /// (O(min(deg u, deg v))).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// All edge records (construction order).
  [[nodiscard]] std::span<const Edge> edges() const noexcept {
    return edges_;
  }

 private:
  friend class GraphBuilder;

  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;      // CSR offsets, size n+1
  std::vector<EdgeId> incidence_;         // CSR payload, size 2m
  std::vector<VertexId> incidence_vertex_;  // far endpoint per slot, size 2m
  std::vector<std::uint32_t> in_degree_;
  std::vector<std::uint32_t> out_degree_;
};

}  // namespace sfs::graph
