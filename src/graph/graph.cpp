#include "graph/graph.hpp"

namespace sfs::graph {

std::vector<VertexId> Graph::neighbors(VertexId v) const {
  const auto adj = adjacent(v);
  return {adj.begin(), adj.end()};
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  SFS_REQUIRE(u < num_vertices() && v < num_vertices(),
              "vertex id out of range");
  const VertexId probe = degree(u) <= degree(v) ? u : v;
  const VertexId other = probe == u ? v : u;
  for (const VertexId w : adjacent(probe)) {
    if (w == other) return true;
  }
  return false;
}

}  // namespace sfs::graph
