#include "graph/graph.hpp"

namespace sfs::graph {

std::vector<VertexId> Graph::neighbors(VertexId v) const {
  const auto inc = incident(v);
  std::vector<VertexId> result;
  result.reserve(inc.size());
  for (const EdgeId e : inc) result.push_back(other_endpoint(e, v));
  return result;
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  SFS_REQUIRE(u < num_vertices() && v < num_vertices(),
              "vertex id out of range");
  const VertexId probe = degree(u) <= degree(v) ? u : v;
  const VertexId other = probe == u ? v : u;
  for (const EdgeId e : incident(probe)) {
    if (other_endpoint(e, probe) == other) return true;
  }
  return false;
}

}  // namespace sfs::graph
