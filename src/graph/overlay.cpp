#include "graph/overlay.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace sfs::graph {

Overlay::Overlay(Graph base, OverlaySampler sampler)
    : graph_(std::move(base)), sampler_kind_(sampler) {
  alive_.assign(graph_.num_vertices(), 1u);
  edge_alive_.assign(graph_.num_edges(), 1u);
  num_alive_ = graph_.num_vertices();
  if (sampler_kind_ == OverlaySampler::kBucketed) {
    // Everything starts alive, so live_degree(v) is just the incidence
    // size (self-loops occupy two slots, matching live_degree's count).
    live_mass_.resize(graph_.num_vertices());
    for (std::size_t vi = 0; vi < graph_.num_vertices(); ++vi) {
      const auto v = static_cast<VertexId>(vi);
      live_mass_.set_weight(vi, graph_.incident(v).size() + 1);
    }
  }
}

std::uint64_t Overlay::join_mass(VertexId v) {
  SFS_REQUIRE(v < alive_.size(), "Overlay::join_mass: vertex id out of range");
  if (sampler_kind_ == OverlaySampler::kBucketed) return live_mass_.weight(v);
  if (bag_dirty_) rebuild_bag();
  const auto& bag = pref_bag_;
  return static_cast<std::uint64_t>(std::count(bag.begin(), bag.end(), v));
}

std::size_t Overlay::live_degree(VertexId v) const {
  SFS_REQUIRE(v < alive_.size(),
              "Overlay::live_degree: vertex id out of range");
  if (alive_[v] == 0) return 0;
  std::size_t deg = 0;
  if (v < graph_.num_vertices()) {
    const auto inc = graph_.incident(v);
    const auto adj = graph_.adjacent(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      if (edge_alive_[inc[i]] != 0 && alive_[adj[i]] != 0) ++deg;
    }
  }
  for (const Edge& e : staged_edges_) {
    if (e.tail == v && alive_[e.head] != 0) ++deg;
    if (e.head == v && alive_[e.tail] != 0) ++deg;
  }
  return deg;
}

void Overlay::rebuild_bag() {
  // Weight live_degree(v) + 1 per live vertex, laid out in id order (and
  // slot order within a vertex) so the bag — hence every join draw — is a
  // pure function of the overlay state.
  auto& bag = pref_bag_;
  bag.clear();
  for (std::size_t vi = 0; vi < alive_.size(); ++vi) {
    const auto v = static_cast<VertexId>(vi);
    if (alive_[v] == 0) continue;
    bag.push_back(v);  // the +1 baseline: keeps isolated survivors joinable
    if (v < graph_.num_vertices()) {
      const auto inc = graph_.incident(v);
      const auto adj = graph_.adjacent(v);
      for (std::size_t i = 0; i < inc.size(); ++i) {
        if (edge_alive_[inc[i]] != 0 && alive_[adj[i]] != 0) bag.push_back(v);
      }
    }
  }
  for (const Edge& e : staged_edges_) {
    if (alive_[e.tail] != 0 && alive_[e.head] != 0) {
      bag.push_back(e.tail);
      bag.push_back(e.head);
    }
  }
  bag_dirty_ = false;
}

VertexId Overlay::join(std::size_t attach, rng::Rng& rng) {
  SFS_REQUIRE(attach >= 1, "Overlay::join: need at least one attachment");
  SFS_REQUIRE(num_alive_ >= 1,
              "Overlay::join: cannot join an overlay with no live peers");
  SFS_REQUIRE(alive_.size() < static_cast<std::size_t>(kNoVertex),
              "Overlay::join: vertex id space exhausted");

  const auto v = static_cast<VertexId>(alive_.size());
  // Draw the targets first, then add the new vertex's own mass: a peer
  // cannot attach to itself on arrival.
  targets_.clear();
  if (sampler_kind_ == OverlaySampler::kBucketed) {
    SFS_CHECK(live_mass_.total_weight() > 0,
              "live mass empty despite live peers");
    for (std::size_t i = 0; i < attach; ++i) {
      targets_.push_back(
          static_cast<VertexId>(live_mass_.sample(rng)));
    }
    alive_.push_back(1u);
    ++num_alive_;
    ++staged_vertices_;
    // Newcomer: the +1 baseline plus one unit per staged edge (every
    // target is live by construction); each target gains one unit.
    const std::size_t id = live_mass_.push_back(attach + 1);
    SFS_CHECK(id == v, "live mass ids out of sync with vertex ids");
    for (const VertexId t : targets_) {
      staged_edges_.push_back(Edge{v, t});
      live_mass_.add(t, 1);
    }
  } else {
    if (bag_dirty_) rebuild_bag();
    auto& bag = pref_bag_;
    SFS_CHECK(!bag.empty(), "live bag empty despite live peers");
    for (std::size_t i = 0; i < attach; ++i) {
      targets_.push_back(
          bag[static_cast<std::size_t>(rng.uniform_index(bag.size()))]);
    }
    alive_.push_back(1u);
    ++num_alive_;
    ++staged_vertices_;
    bag.push_back(v);  // baseline entry of the newcomer
    for (const VertexId t : targets_) {
      staged_edges_.push_back(Edge{v, t});
      bag.push_back(v);
      bag.push_back(t);
    }
  }
  ++epoch_;
  return v;
}

void Overlay::retire_live_mass(VertexId v) {
  // Mass granted to neighbors through `v`: one unit per live incidence
  // pair, committed or staged. Self-loop slots grant mass to `v` itself,
  // which the final set_weight(v, 0) retires wholesale.
  if (v < graph_.num_vertices()) {
    const auto inc = graph_.incident(v);
    const auto adj = graph_.adjacent(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const VertexId w = adj[i];
      if (edge_alive_[inc[i]] != 0 && alive_[w] != 0 && w != v) {
        live_mass_.add(w, -1);
      }
    }
  }
  for (const Edge& e : staged_edges_) {
    if (alive_[e.tail] == 0 || alive_[e.head] == 0) continue;
    if (e.tail == v && e.head != v) live_mass_.add(e.head, -1);
    if (e.head == v && e.tail != v) live_mass_.add(e.tail, -1);
  }
  live_mass_.set_weight(v, 0);
}

void Overlay::depart(VertexId v) {
  SFS_REQUIRE(v < alive_.size(), "Overlay::depart: vertex id out of range");
  SFS_REQUIRE(alive_[v] != 0, "Overlay::depart: vertex already departed");
  // Its live snapshot incidence becomes dead weight the next compaction
  // reclaims (count before flipping the bit — live_degree of a dead vertex
  // is 0 by definition).
  std::size_t snapshot_live = 0;
  if (v < graph_.num_vertices()) {
    const auto inc = graph_.incident(v);
    const auto adj = graph_.adjacent(v);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      if (edge_alive_[inc[i]] != 0 && alive_[adj[i]] != 0) ++snapshot_live;
    }
  }
  if (sampler_kind_ == OverlaySampler::kBucketed) retire_live_mass(v);
  alive_[v] = 0;
  --num_alive_;
  compaction_debt_ += snapshot_live;
  bag_dirty_ = true;
  ++epoch_;
}

void Overlay::fail_edge(EdgeId e) {
  SFS_REQUIRE(e < edge_alive_.size(),
              "Overlay::fail_edge: edge id out of range");
  SFS_REQUIRE(edge_alive_[e] != 0, "Overlay::fail_edge: edge already failed");
  edge_alive_[e] = 0;
  if (sampler_kind_ == OverlaySampler::kBucketed) {
    // The edge contributed live mass only while both endpoints were alive
    // (a self-loop grants its vertex two units via its two slots).
    const Edge& ed = graph_.edge(e);
    if (alive_[ed.tail] != 0 && alive_[ed.head] != 0) {
      live_mass_.add(ed.tail, -1);
      live_mass_.add(ed.head, -1);
    }
  }
  ++compaction_debt_;
  bag_dirty_ = true;
  ++epoch_;
}

void Overlay::compact() {
  GraphBuilder& builder = builder_;
  builder.reset(alive_.size());
  builder.reserve_edges(graph_.num_edges() + staged_edges_.size());
  for (std::size_t ei = 0; ei < graph_.num_edges(); ++ei) {
    const auto e = static_cast<EdgeId>(ei);
    if (edge_alive_[e] == 0) continue;
    const Edge& ed = graph_.edge(e);
    if (alive_[ed.tail] == 0 || alive_[ed.head] == 0) continue;
    builder.add_edge(ed.tail, ed.head);
  }
  for (const Edge& ed : staged_edges_) {
    if (alive_[ed.tail] != 0 && alive_[ed.head] != 0) {
      builder.add_edge(ed.tail, ed.head);
    }
  }
  builder.build_into(graph_);
  staged_edges_.clear();
  staged_vertices_ = 0;
  edge_alive_.assign(graph_.num_edges(), 1u);
  compaction_debt_ = 0;
  // Compaction preserves every live degree (it commits exactly the live
  // topology), so the kBucketed live mass is already correct; only the
  // kBag bag keys off edge ids and needs a rebuild.
  bag_dirty_ = true;
  ++compactions_;
  ++epoch_;
}

bool Overlay::maybe_compact(double debt_threshold) {
  SFS_REQUIRE(debt_threshold >= 0.0,
              "Overlay::maybe_compact: threshold must be non-negative");
  const bool staleness =
      graph_.num_edges() > 0 &&
      static_cast<double>(compaction_debt_) >
          debt_threshold * static_cast<double>(graph_.num_edges());
  if (staged_vertices_ == 0 && !staleness) return false;
  compact();
  return true;
}

}  // namespace sfs::graph
