#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "graph/builder.hpp"
#include "rng/discrete.hpp"

namespace sfs::graph {

BfsResult bfs(const Graph& g, VertexId source) {
  SFS_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  const std::size_t n = g.num_vertices();
  BfsResult r;
  r.distance.assign(n, kUnreachable);
  r.parent.assign(n, kNoVertex);
  r.parent_edge.assign(n, kNoEdge);
  r.distance[source] = 0;
  r.farthest = source;

  std::deque<VertexId> queue{source};
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    const auto inc = g.incident(u);
    const auto adj = g.adjacent(u);
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const VertexId v = adj[i];
      if (r.distance[v] != kUnreachable) continue;
      r.distance[v] = r.distance[u] + 1;
      r.parent[v] = u;
      r.parent_edge[v] = inc[i];
      if (r.distance[v] > r.max_distance) {
        r.max_distance = r.distance[v];
        r.farthest = v;
      }
      queue.push_back(v);
    }
  }
  return r;
}

std::uint32_t distance(const Graph& g, VertexId s, VertexId t) {
  SFS_REQUIRE(t < g.num_vertices(), "target out of range");
  return bfs(g, s).distance[t];
}

std::vector<VertexId> shortest_path(const Graph& g, VertexId s, VertexId t) {
  const BfsResult r = bfs(g, s);
  if (r.distance[t] == kUnreachable) return {};
  std::vector<VertexId> path;
  for (VertexId v = t; v != kNoVertex; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  SFS_CHECK(path.front() == s, "path reconstruction broke");
  return path;
}

std::vector<std::size_t> Components::sizes() const {
  std::vector<std::size_t> s(count, 0);
  for (const std::uint32_t l : label) ++s[l];
  return s;
}

std::uint32_t Components::largest() const {
  SFS_REQUIRE(count > 0, "no components in an empty graph");
  const auto s = sizes();
  return static_cast<std::uint32_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
}

Components connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  Components c;
  c.label.assign(n, static_cast<std::uint32_t>(-1));
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (c.label[s] != static_cast<std::uint32_t>(-1)) continue;
    const auto lab = static_cast<std::uint32_t>(c.count++);
    c.label[s] = lab;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId v : g.adjacent(u)) {
        if (c.label[v] == static_cast<std::uint32_t>(-1)) {
          c.label[v] = lab;
          stack.push_back(v);
        }
      }
    }
  }
  return c;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() <= 1) return true;
  return connected_components(g).count == 1;
}

Subgraph induced_subgraph(const Graph& g, const std::vector<VertexId>& keep) {
  Subgraph out;
  out.to_new.assign(g.num_vertices(), kNoVertex);
  out.to_old = keep;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    SFS_REQUIRE(keep[i] < g.num_vertices(), "kept vertex out of range");
    SFS_REQUIRE(out.to_new[keep[i]] == kNoVertex, "duplicate vertex in keep");
    out.to_new[keep[i]] = static_cast<VertexId>(i);
  }
  GraphBuilder b(keep.size());
  for (const Edge& e : g.edges()) {
    const VertexId nt = out.to_new[e.tail];
    const VertexId nh = out.to_new[e.head];
    if (nt != kNoVertex && nh != kNoVertex) b.add_edge(nt, nh);
  }
  out.graph = b.build();
  return out;
}

Subgraph largest_component(const Graph& g) {
  const Components c = connected_components(g);
  SFS_REQUIRE(c.count > 0, "empty graph has no components");
  const std::uint32_t big = c.largest();
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (c.label[v] == big) keep.push_back(v);
  }
  return induced_subgraph(g, keep);
}

bool is_tree(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return false;
  if (g.num_edges() != n - 1) return false;
  for (const Edge& e : g.edges()) {
    if (e.is_loop()) return false;
  }
  return is_connected(g);
}

std::uint32_t pseudo_diameter(const Graph& g, VertexId hint) {
  SFS_REQUIRE(g.num_vertices() > 0, "empty graph");
  const BfsResult first = bfs(g, hint);
  const BfsResult second = bfs(g, first.farthest);
  return second.max_distance;
}

DistanceStats sample_distances(const Graph& g, std::size_t samples,
                               rng::Rng& rng) {
  SFS_REQUIRE(g.num_vertices() > 0, "empty graph");
  DistanceStats st;
  st.sources = samples;
  double dist_sum = 0.0;
  std::size_t dist_count = 0;
  double ecc_sum = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto src = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    const BfsResult r = bfs(g, src);
    for (const std::uint32_t d : r.distance) {
      if (d != kUnreachable && d > 0) {
        dist_sum += d;
        ++dist_count;
      }
    }
    ecc_sum += r.max_distance;
    st.max_observed = std::max(st.max_observed, r.max_distance);
  }
  if (dist_count > 0) st.mean_distance = dist_sum / static_cast<double>(dist_count);
  if (samples > 0) st.mean_eccentricity = ecc_sum / static_cast<double>(samples);
  return st;
}

double sample_clustering(const Graph& g, std::size_t samples, rng::Rng& rng) {
  // Simple-graph neighbor sets per vertex, dropping loops and duplicates.
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    auto nb = g.neighbors(v);
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    nb.erase(std::remove(nb.begin(), nb.end(), v), nb.end());
    adj[v] = std::move(nb);
  }
  // Wedge weights: deg*(deg-1)/2 on the simple degrees.
  std::vector<double> wedges(n, 0.0);
  double total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    const double d = static_cast<double>(adj[v].size());
    wedges[v] = d * (d - 1.0) / 2.0;
    total += wedges[v];
  }
  if (total <= 0.0) return 0.0;
  const rng::CdfSampler centers{wedges};

  std::size_t closed = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto v = static_cast<VertexId>(centers.sample(rng));
    const auto& nb = adj[v];
    // Uniform unordered pair of distinct neighbors.
    const auto a = static_cast<std::size_t>(rng.uniform_index(nb.size()));
    auto b = static_cast<std::size_t>(rng.uniform_index(nb.size() - 1));
    if (b >= a) ++b;
    const VertexId x = nb[a];
    const VertexId y = nb[b];
    if (std::binary_search(adj[x].begin(), adj[x].end(), y)) ++closed;
  }
  return static_cast<double>(closed) / static_cast<double>(samples);
}

}  // namespace sfs::graph
