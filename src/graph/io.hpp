// Plain-text edge-list serialization.
//
// Format (line-oriented, '#' comments allowed):
//   sfsearch-graph v1
//   <num_vertices> <num_edges>
//   <tail> <head>          # one line per edge, construction order, 0-based
//
// Round-trip is exact: edge order and orientation are preserved, so a
// serialized evolving graph replays identically through the equivalence and
// search machinery.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace sfs::graph {

/// Writes `g` to `out` in the sfsearch-graph v1 format.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses a graph from `in`; throws std::invalid_argument on malformed
/// input.
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Convenience: serialize to / parse from a string.
[[nodiscard]] std::string to_string(const Graph& g);
[[nodiscard]] Graph from_string(const std::string& text);

/// File helpers; throw std::runtime_error if the file cannot be opened.
void save(const std::string& path, const Graph& g);
[[nodiscard]] Graph load(const std::string& path);

}  // namespace sfs::graph
