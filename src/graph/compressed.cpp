#include "graph/compressed.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "base/check.hpp"
#include "graph/builder.hpp"

namespace sfs::graph {

namespace {

// ------------------------------------------------------ varint primitives

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    SFS_CHECK(p != end, "compressed stream: truncated varint");
    const std::uint8_t b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint64_t zigzag(std::int64_t x) {
  return (static_cast<std::uint64_t>(x) << 1) ^
         static_cast<std::uint64_t>(x >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// -------------------------------------------------- bit-packing (bytes)
// Per-row Elias-Fano payloads are byte-aligned so rows stay independently
// addressable through row_offsets without global bit arithmetic.

void pack_bits(std::uint8_t* base, std::size_t bit_pos, std::uint64_t value,
               unsigned width) {
  std::size_t byte = bit_pos >> 3;
  unsigned off = bit_pos & 7u;
  while (width > 0) {
    base[byte] |= static_cast<std::uint8_t>(value << off);
    const unsigned wrote = std::min(8u - off, width);
    value >>= wrote;
    width -= wrote;
    off = 0;
    ++byte;
  }
}

std::uint64_t unpack_bits(const std::uint8_t* base, std::size_t bit_pos,
                          unsigned width) {
  if (width == 0) return 0;
  std::size_t byte = bit_pos >> 3;
  unsigned off = bit_pos & 7u;
  std::uint64_t value = 0;
  unsigned got = 0;
  while (got < width) {
    value |= static_cast<std::uint64_t>(base[byte] >> off) << got;
    got += 8u - off;
    off = 0;
    ++byte;
  }
  return value & ((1ULL << width) - 1);
}

// ------------------------------------------------- word-level bit reading

std::uint64_t get_word_bits(std::span<const std::uint64_t> words,
                            std::size_t bit_pos, unsigned width) {
  if (width == 0) return 0;
  const std::size_t w = bit_pos >> 6;
  const unsigned off = bit_pos & 63u;
  std::uint64_t v = words[w] >> off;
  if (off + width > 64) v |= words[w + 1] << (64u - off);
  return v & ((1ULL << width) - 1);
}

/// Position of the k-th (0-indexed) set bit of `word`. Requires popcount
/// of `word` > k.
unsigned select_in_u64(std::uint64_t word, unsigned k) {
  while (k--) word &= word - 1;
  return static_cast<unsigned>(std::countr_zero(word));
}

/// `floor(log2(universe / count))`, the canonical Elias-Fano low-bit
/// split, clamped to 0 for dense sequences.
unsigned ef_low_bits(std::uint64_t universe, std::size_t count) {
  if (count == 0) return 0;
  const std::uint64_t ratio = universe / count;
  return ratio == 0 ? 0u : static_cast<unsigned>(std::bit_width(ratio)) - 1u;
}

// ------------------------------------------------------- row codec bodies

void encode_row_varint(std::vector<std::uint8_t>& out, VertexId v,
                       std::span<const VertexId> slots) {
  std::int64_t prev = static_cast<std::int64_t>(v);
  for (const VertexId s : slots) {
    append_varint(out, zigzag(static_cast<std::int64_t>(s) - prev));
    prev = static_cast<std::int64_t>(s);
  }
}

/// Per-row Elias-Fano blob:
///   varint high_bits | byte l | low bytes | high bytes | deg rank varints
/// The rank stream is a stable permutation (duplicates get increasing
/// ranks in slot order) mapping the sorted sequence back to slot order, so
/// the decode reproduces Graph::adjacent(v) exactly.
void encode_row_elias_fano(std::vector<std::uint8_t>& out, VertexId /*v*/,
                           std::span<const VertexId> slots,
                           std::vector<std::uint32_t>& order_scratch,
                           std::vector<std::uint32_t>& rank_scratch) {
  const std::size_t deg = slots.size();
  if (deg == 0) return;
  order_scratch.resize(deg);
  for (std::size_t k = 0; k < deg; ++k) {
    order_scratch[k] = static_cast<std::uint32_t>(k);
  }
  std::stable_sort(order_scratch.begin(), order_scratch.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return slots[a] < slots[b];
                   });
  const std::uint64_t max_value = slots[order_scratch[deg - 1]];
  const unsigned l = ef_low_bits(max_value, deg);
  const std::uint64_t high_bits = deg + (max_value >> l) + 1;
  append_varint(out, high_bits);
  SFS_CHECK(l < 0x100, "row Elias-Fano low-bit width exceeds a byte");
  out.push_back(static_cast<std::uint8_t>(l));

  const std::size_t low_len = (deg * l + 7) / 8;
  const std::size_t high_len = (static_cast<std::size_t>(high_bits) + 7) / 8;
  const std::size_t low_begin = out.size();
  out.resize(out.size() + low_len + high_len, 0);
  std::uint8_t* low = out.data() + low_begin;
  std::uint8_t* high = low + low_len;
  for (std::size_t j = 0; j < deg; ++j) {
    const std::uint64_t value = slots[order_scratch[j]];
    if (l > 0) pack_bits(low, j * l, value & ((1ULL << l) - 1), l);
    const std::size_t pos = static_cast<std::size_t>(value >> l) + j;
    high[pos >> 3] |= static_cast<std::uint8_t>(1u << (pos & 7u));
  }
  // Rank stream: slot k holds sorted position rank[k]; order_scratch is
  // the inverse permutation (rank[order_scratch[j]] == j).
  rank_scratch.resize(deg);
  for (std::size_t j = 0; j < deg; ++j) {
    rank_scratch[order_scratch[j]] = static_cast<std::uint32_t>(j);
  }
  for (std::size_t k = 0; k < deg; ++k) append_varint(out, rank_scratch[k]);
}

void decode_row_varint(const std::uint8_t* p, const std::uint8_t* end,
                       VertexId v, std::size_t deg, VertexId* out) {
  std::int64_t prev = static_cast<std::int64_t>(v);
  for (std::size_t k = 0; k < deg; ++k) {
    prev += unzigzag(read_varint(p, end));
    out[k] = static_cast<VertexId>(prev);
  }
  SFS_CHECK(p == end, "compressed row: varint decode did not consume the row");
}

void decode_row_elias_fano(const std::uint8_t* p, const std::uint8_t* end,
                           std::size_t deg, VertexId* out,
                           std::vector<VertexId>& sorted_scratch) {
  const std::uint64_t high_bits = read_varint(p, end);
  SFS_CHECK(p != end, "compressed row: missing low-bit width byte");
  const unsigned l = *p++;
  const std::size_t low_len = (deg * l + 7) / 8;
  const std::size_t high_len = (static_cast<std::size_t>(high_bits) + 7) / 8;
  SFS_CHECK(static_cast<std::size_t>(end - p) >= low_len + high_len,
            "compressed row: payload shorter than declared");
  const std::uint8_t* low = p;
  const std::uint8_t* high = p + low_len;
  p += low_len + high_len;

  if (sorted_scratch.size() < deg) sorted_scratch.resize(deg);
  std::size_t ones = 0;
  for (std::size_t byte_i = 0; ones < deg; ++byte_i) {
    SFS_CHECK(byte_i < high_len, "compressed row: high bitmap exhausted");
    unsigned b = high[byte_i];
    while (b != 0 && ones < deg) {
      const unsigned t = static_cast<unsigned>(std::countr_zero(b));
      b &= b - 1;
      const std::size_t pos = byte_i * 8 + t;
      const std::uint64_t hi_value = pos - ones;
      sorted_scratch[ones] = static_cast<VertexId>(
          (hi_value << l) | unpack_bits(low, ones * l, l));
      ++ones;
    }
  }
  for (std::size_t k = 0; k < deg; ++k) {
    const std::uint64_t r = read_varint(p, end);
    SFS_CHECK(r < deg, "compressed row: rank out of range");
    out[k] = sorted_scratch[static_cast<std::size_t>(r)];
  }
  SFS_CHECK(p == end,
            "compressed row: Elias-Fano decode did not consume the row");
}

}  // namespace

// --------------------------------------------------------- EliasFanoView

std::uint64_t EliasFanoView::get(std::size_t i) const {
  SFS_REQUIRE(i < count, "Elias-Fano index out of range");
  // select1(i) over the high bitmap, starting from the nearest sample.
  std::size_t word_idx = 0;
  std::size_t need = i;
  std::uint64_t word = 0;
  if (!samples.empty()) {
    const std::size_t j = i / kEfSampleRate;
    const std::uint64_t sample_pos = samples[j];
    word_idx = static_cast<std::size_t>(sample_pos >> 6);
    word = high_words[word_idx] &
           (~0ULL << static_cast<unsigned>(sample_pos & 63u));
    need = i - j * kEfSampleRate;
  } else {
    word = high_words.empty() ? 0 : high_words[0];
  }
  for (;;) {
    const unsigned pc = static_cast<unsigned>(std::popcount(word));
    if (need < pc) break;
    need -= pc;
    ++word_idx;
    word = high_words[word_idx];
  }
  const std::uint64_t select_pos =
      (static_cast<std::uint64_t>(word_idx) << 6) +
      select_in_u64(word, static_cast<unsigned>(need));
  const std::uint64_t high = select_pos - i;
  return (high << low_bits) |
         get_word_bits(low_words, static_cast<std::size_t>(i) * low_bits,
                       low_bits);
}

// ----------------------------------------------------- EliasFanoSequence

EliasFanoSequence EliasFanoSequence::encode(
    std::span<const std::uint64_t> values) {
  EliasFanoSequence seq;
  seq.count_ = values.size();
  if (values.empty()) return seq;
  seq.universe_ = values.back();
  seq.low_bits_ = ef_low_bits(seq.universe_, seq.count_);
  const unsigned l = seq.low_bits_;

  const std::size_t low_total_bits = values.size() * l;
  seq.low_words_.assign((low_total_bits + 63) / 64, 0);
  const std::uint64_t high_bits =
      values.size() + (seq.universe_ >> l) + 1;
  seq.high_words_.assign(static_cast<std::size_t>((high_bits + 63) / 64), 0);
  seq.samples_.reserve(values.size() / kEfSampleRate + 1);

  std::uint64_t prev = 0;
  for (std::size_t k = 0; k < values.size(); ++k) {
    const std::uint64_t v = values[k];
    SFS_REQUIRE(v >= prev, "Elias-Fano input must be non-decreasing");
    prev = v;
    if (l > 0) {
      const std::size_t bit_pos = k * l;
      const std::uint64_t low = v & ((1ULL << l) - 1);
      const std::size_t w = bit_pos >> 6;
      const unsigned off = bit_pos & 63u;
      seq.low_words_[w] |= low << off;
      if (off + l > 64) seq.low_words_[w + 1] |= low >> (64u - off);
    }
    const std::uint64_t pos = (v >> l) + k;
    seq.high_words_[pos >> 6] |= 1ULL << (pos & 63u);
    if (k % kEfSampleRate == 0) seq.samples_.push_back(pos);
  }
  return seq;
}

// ------------------------------------------------------------ decode API

const char* row_codec_name(RowCodec codec) noexcept {
  switch (codec) {
    case RowCodec::kVarint:
      return "varint";
    case RowCodec::kEliasFano:
      return "elias_fano";
  }
  return "unknown";
}

std::size_t decoded_degree(const CompressedView& view, VertexId v) {
  SFS_REQUIRE(v < view.num_vertices, "vertex id out of range");
  return static_cast<std::size_t>(view.degree_offsets.get(v + 1) -
                                  view.degree_offsets.get(v));
}

std::span<const VertexId> decode_adjacent(const CompressedView& view,
                                          VertexId v,
                                          AdjacencyDecodeBuffer& buffer) {
  SFS_REQUIRE(v < view.num_vertices, "vertex id out of range");
  const std::size_t deg = decoded_degree(view, v);
  if (buffer.slots.size() < deg) buffer.slots.resize(deg);
  const std::size_t row_begin =
      static_cast<std::size_t>(view.row_offsets.get(v));
  const std::size_t row_end =
      static_cast<std::size_t>(view.row_offsets.get(v + 1));
  SFS_CHECK(row_begin <= row_end && row_end <= view.adj_stream.size(),
            "compressed row: byte range out of bounds");
  const std::uint8_t* p = view.adj_stream.data() + row_begin;
  const std::uint8_t* end = view.adj_stream.data() + row_end;
  if (deg == 0) {
    SFS_CHECK(p == end, "compressed row: empty row has payload bytes");
    return {buffer.slots.data(), 0};
  }
  switch (view.codec) {
    case RowCodec::kVarint:
      decode_row_varint(p, end, v, deg, buffer.slots.data());
      break;
    case RowCodec::kEliasFano:
      decode_row_elias_fano(p, end, deg, buffer.slots.data(), buffer.sorted);
      break;
  }
  return {buffer.slots.data(), deg};
}

Graph decompress(const CompressedView& view) {
  const std::size_t n = view.num_vertices;
  const std::size_t m = view.num_edges;
  validate_edge_capacity(m);

  // Materialize the degree offsets once, decode every row into one flat
  // 2m-slot array, then replay the tail stream against per-row cursors:
  // edge e's slot in its tail row is always the next unconsumed one
  // (incidence rows are ordered by edge id), which yields the head; the
  // matching head-row slot is consumed to keep the cursors aligned.
  std::vector<std::size_t> offsets(n + 1);
  for (std::size_t v = 0; v <= n; ++v) {
    offsets[v] = static_cast<std::size_t>(view.degree_offsets.get(v));
  }
  SFS_CHECK(offsets[n] == 2 * m,
            "compressed graph: degree offsets disagree with edge count");

  std::vector<VertexId> adj(2 * m);
  AdjacencyDecodeBuffer buffer;
  for (std::size_t v = 0; v < n; ++v) {
    const auto row =
        decode_adjacent(view, static_cast<VertexId>(v), buffer);
    std::copy(row.begin(), row.end(), adj.begin() + offsets[v]);
  }

  std::vector<std::size_t> cursor(offsets.begin(), offsets.begin() + n);
  GraphBuilder builder(n);
  builder.reserve_edges(m);
  const std::uint8_t* p = view.tail_stream.data();
  const std::uint8_t* end = p + view.tail_stream.size();
  std::int64_t prev = 0;
  for (std::size_t e = 0; e < m; ++e) {
    prev += unzigzag(read_varint(p, end));
    SFS_CHECK(prev >= 0 && static_cast<std::size_t>(prev) < n,
              "compressed graph: tail id out of range");
    const VertexId tail = static_cast<VertexId>(prev);
    SFS_CHECK(cursor[tail] < offsets[tail + 1],
              "compressed graph: tail row exhausted during replay");
    const VertexId head = adj[cursor[tail]++];
    if (head == tail) {
      // A self-loop occupies two consecutive slots of its vertex's row.
      SFS_CHECK(cursor[tail] < offsets[tail + 1] && adj[cursor[tail]] == tail,
                "compressed graph: broken self-loop slot pair");
      ++cursor[tail];
    } else {
      SFS_CHECK(cursor[head] < offsets[head + 1] && adj[cursor[head]] == tail,
                "compressed graph: head row disagrees with tail stream");
      ++cursor[head];
    }
    builder.add_edge(tail, head);
  }
  SFS_CHECK(p == end, "compressed graph: tail stream not fully consumed");
  for (std::size_t v = 0; v < n; ++v) {
    SFS_CHECK(cursor[v] == offsets[v + 1],
              "compressed graph: unconsumed incidence slots after replay");
  }
  return builder.build();
}

// ------------------------------------------------------- CompressedGraph

CompressedGraph CompressedGraph::from_graph(const Graph& g, RowCodec codec) {
  CompressedGraph c;
  c.n_ = g.num_vertices();
  c.m_ = g.num_edges();
  c.codec_ = codec;

  c.tail_stream_.reserve(c.m_ + c.m_ / 8);
  std::int64_t prev = 0;
  for (const Edge& e : g.edges()) {
    append_varint(c.tail_stream_,
                  zigzag(static_cast<std::int64_t>(e.tail) - prev));
    prev = static_cast<std::int64_t>(e.tail);
  }

  std::vector<std::uint64_t> degree_offsets(c.n_ + 1);
  degree_offsets[0] = 0;
  for (std::size_t v = 0; v < c.n_; ++v) {
    degree_offsets[v + 1] =
        degree_offsets[v] + g.degree(static_cast<VertexId>(v));
  }
  c.degree_offsets_ = EliasFanoSequence::encode(degree_offsets);

  std::vector<std::uint64_t> row_offsets(c.n_ + 1);
  row_offsets[0] = 0;
  c.adj_stream_.reserve(2 * c.m_ + c.m_ / 4);
  std::vector<std::uint32_t> order_scratch;
  std::vector<std::uint32_t> rank_scratch;
  for (std::size_t v = 0; v < c.n_; ++v) {
    const auto slots = g.adjacent(static_cast<VertexId>(v));
    switch (codec) {
      case RowCodec::kVarint:
        encode_row_varint(c.adj_stream_, static_cast<VertexId>(v), slots);
        break;
      case RowCodec::kEliasFano:
        encode_row_elias_fano(c.adj_stream_, static_cast<VertexId>(v), slots,
                              order_scratch, rank_scratch);
        break;
    }
    row_offsets[v + 1] = c.adj_stream_.size();
  }
  c.row_offsets_ = EliasFanoSequence::encode(row_offsets);
  return c;
}

CompressedView CompressedGraph::view() const noexcept {
  return {n_,          m_,          codec_,
          tail_stream_, adj_stream_, degree_offsets_.view(),
          row_offsets_.view()};
}

std::size_t CompressedGraph::memory_bytes() const noexcept {
  return sizeof(*this) + tail_stream_.size() + adj_stream_.size() +
         degree_offsets_.view().payload_bytes() +
         row_offsets_.view().payload_bytes();
}

std::size_t graph_memory_bytes(const Graph& g) noexcept {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  return m * sizeof(Edge)                          // edge log
         + (n != 0 ? n + 1 : 0) * sizeof(std::size_t)  // CSR offsets
         + 2 * m * sizeof(EdgeId)                  // incidence payload
         + 2 * m * sizeof(VertexId)                // far endpoint per slot
         + 2 * n * sizeof(std::uint32_t);          // in/out degree vectors
}

}  // namespace sfs::graph
