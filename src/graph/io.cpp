#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "graph/builder.hpp"

namespace sfs::graph {
namespace {

constexpr const char* kMagic = "sfsearch-graph v1";

/// Reads the next content line (skipping blank lines and '#' comments).
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto pos = line.find('#');
    if (pos != std::string::npos) line.erase(pos);
    // Trim trailing whitespace / CR.
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.pop_back();
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t'))
      ++start;
    line.erase(0, start);
    if (!line.empty()) return true;
  }
  return false;
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << kMagic << '\n';
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.tail << ' ' << e.head << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  SFS_REQUIRE(next_line(in, line), "empty graph stream");
  SFS_REQUIRE(line == kMagic, "bad magic line: expected 'sfsearch-graph v1'");

  SFS_REQUIRE(next_line(in, line), "missing header line");
  std::istringstream header(line);
  std::size_t n = 0;
  std::size_t m = 0;
  SFS_REQUIRE(static_cast<bool>(header >> n >> m), "malformed header line");

  GraphBuilder b(n);
  b.reserve_edges(m);
  for (std::size_t i = 0; i < m; ++i) {
    SFS_REQUIRE(next_line(in, line), "truncated edge list");
    std::istringstream row(line);
    std::uint64_t tail = 0;
    std::uint64_t head = 0;
    SFS_REQUIRE(static_cast<bool>(row >> tail >> head), "malformed edge line");
    SFS_REQUIRE(tail < n && head < n, "edge endpoint out of range");
    b.add_edge(static_cast<VertexId>(tail), static_cast<VertexId>(head));
  }
  return b.build();
}

std::string to_string(const Graph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

Graph from_string(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

// The three raw throws below are deliberate: a missing or unwritable file
// is an environmental I/O failure, not a caller precondition or library
// invariant, and std::runtime_error is this API's documented contract
// (SFS_REQUIRE/SFS_CHECK would misclassify it as invalid_argument or
// logic_error).
void save(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write_edge_list(f, g);
  // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
  if (!f) throw std::runtime_error("write failed: " + path);
}

Graph load(const std::string& path) {
  std::ifstream f(path);
  // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return read_edge_list(f);
}

}  // namespace sfs::graph
