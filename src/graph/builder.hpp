// Mutable construction interface for Graph.
//
// Generators append vertices and directed edges in construction order and
// finalize with build(), which packs the undirected incidence structure into
// CSR form. Edge ids are assigned in insertion order, which matters: the
// evolving-graph models and the equivalence machinery rely on "edge id order
// == time order".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sfs::graph {

/// Throws std::invalid_argument unless a graph with `num_edges` edges can
/// be finalized: every edge id must fit EdgeId (std::uint32_t, with
/// kNoEdge reserved as a sentinel) and the 2m undirected incidence slots
/// must be computable without size_t wrap-around. add_edge enforces this
/// incrementally; build_into re-checks the whole count so the CSR arrays
/// can never be sized from a wrapped value, and high-degree generators can
/// pre-validate a planned edge count before paying for construction.
void validate_edge_capacity(std::size_t num_edges);

/// Vertex-id layout of the packed CSR.
enum class CsrLayout : std::uint8_t {
  /// Ids as inserted (the default everywhere): edge id order == time order
  /// and vertex ids are the caller's.
  kInsertionOrder,
  /// Vertices relabeled by (undirected degree desc, old id asc) before
  /// packing. Hubs — where searches spend most slots — get the low ids,
  /// so their offset/incidence/mask entries share a handful of cache
  /// lines instead of scattering across the arrays. Changes every vertex
  /// id (the permutation is reported to the caller); edge ids still
  /// follow insertion order.
  kDegreeSorted,
};

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Starts with `n` isolated vertices. Requires n <= kNoVertex.
  explicit GraphBuilder(std::size_t n) { reset(n); }

  /// Re-initializes to `n` isolated vertices and no edges, keeping every
  /// internal buffer's capacity. This is the zero-realloc entry point for
  /// replication loops: reset + add_edge* + build_into touches the
  /// allocator only while the graphs are still growing past the
  /// high-water mark.
  void reset(std::size_t n);

  /// Pre-allocates for `m` edges.
  void reserve_edges(std::size_t m) { edges_.reserve(m); }

  /// Appends an isolated vertex; returns its id.
  VertexId add_vertex();

  /// Appends `count` isolated vertices; returns the id of the first.
  VertexId add_vertices(std::size_t count);

  /// Appends the directed edge tail -> head; returns its id.
  /// Both endpoints must already exist. Parallel edges and loops allowed.
  EdgeId add_edge(VertexId tail, VertexId head);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Finalizes into an immutable Graph. The builder is left empty.
  [[nodiscard]] Graph build();

  /// Finalizes into `g`, recycling g's CSR arrays (offsets_, incidence_,
  /// incidence_vertex_) and degree vectors instead of reallocating them.
  /// The builder swaps its edge log with g's previous one (keeping its
  /// capacity for the next replication) and is left empty, exactly as
  /// after build(). Equivalent to `g = build()` — same Graph, bit for bit.
  void build_into(Graph& g);

  /// build_into with an explicit id layout. For kDegreeSorted the edge
  /// log's endpoints are relabeled through the degree-sorted permutation
  /// before packing; when `to_new` is non-null it receives the mapping
  /// old id -> new id (size num_vertices()). kInsertionOrder is exactly
  /// build_into(g) (and fills `to_new` with the identity).
  void build_into(Graph& g, CsrLayout layout,
                  std::vector<VertexId>* to_new = nullptr);

 private:
  std::size_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  // CSR packing scratch reused across build_into() calls.
  std::vector<std::size_t> deg_scratch_;
  std::vector<std::size_t> cursor_scratch_;
  std::vector<VertexId> perm_scratch_;  // degree-sorted relabeling
};

}  // namespace sfs::graph
