// Mutable construction interface for Graph.
//
// Generators append vertices and directed edges in construction order and
// finalize with build(), which packs the undirected incidence structure into
// CSR form. Edge ids are assigned in insertion order, which matters: the
// evolving-graph models and the equivalence machinery rely on "edge id order
// == time order".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sfs::graph {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Starts with `n` isolated vertices.
  explicit GraphBuilder(std::size_t n) : num_vertices_(n) {}

  /// Pre-allocates for `m` edges.
  void reserve_edges(std::size_t m) { edges_.reserve(m); }

  /// Appends an isolated vertex; returns its id.
  VertexId add_vertex();

  /// Appends `count` isolated vertices; returns the id of the first.
  VertexId add_vertices(std::size_t count);

  /// Appends the directed edge tail -> head; returns its id.
  /// Both endpoints must already exist. Parallel edges and loops allowed.
  EdgeId add_edge(VertexId tail, VertexId head);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Finalizes into an immutable Graph. The builder is left empty.
  [[nodiscard]] Graph build();

 private:
  std::size_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace sfs::graph
