// CSR layout transforms for existing graphs.
//
// The degree-sorted layout (graph/builder.hpp CsrLayout::kDegreeSorted)
// concentrates the hub vertices — where power-law searches spend nearly
// all their probes — at the low end of every per-vertex array, so the
// offset, degree and liveness entries the inner loops touch fit a few hot
// cache lines. These helpers apply that layout to an already-built Graph
// and carry the permutation needed to translate caller-facing vertex ids
// (search::QueryEngine uses them to serve queries in original ids over a
// relabeled CSR).
//
// Relabeling changes which vertex a given id names, so any consumer that
// mixes relabeled structures with original-id state must translate at the
// boundary; search *traces* over a relabeled graph are therefore not
// bit-comparable with traces over the original layout (the RNG draws see
// different slot orders). Determinism is unaffected: the permutation is a
// pure function of the degree sequence (degree desc, old id asc).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace sfs::graph {

/// A relabeled graph plus both directions of the vertex-id mapping.
struct DegreeSortedRelabeling {
  Graph graph;                     // degree-sorted CSR
  std::vector<VertexId> to_new;    // original id -> relabeled id
  std::vector<VertexId> to_old;    // relabeled id -> original id
};

/// Relabels `g` into the degree-sorted layout. Edge ids keep their
/// insertion order; endpoints are mapped through to_new. O(n log n + m).
[[nodiscard]] DegreeSortedRelabeling degree_sorted_relabel(const Graph& g);

/// Applies an arbitrary vertex relabeling (to_new[old] = new id, a
/// permutation of [0, n)) to `g`. Building block for layout round-trips.
[[nodiscard]] Graph relabel_vertices(const Graph& g,
                                     const std::vector<VertexId>& to_new);

}  // namespace sfs::graph
