#include "graph/csr_layout.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace sfs::graph {

DegreeSortedRelabeling degree_sorted_relabel(const Graph& g) {
  DegreeSortedRelabeling out;
  GraphBuilder builder(g.num_vertices());
  builder.reserve_edges(g.num_edges());
  for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
    const Edge& e = g.edge(static_cast<EdgeId>(ei));
    builder.add_edge(e.tail, e.head);
  }
  builder.build_into(out.graph, CsrLayout::kDegreeSorted, &out.to_new);
  out.to_old.resize(out.to_new.size());
  for (std::size_t v = 0; v < out.to_new.size(); ++v) {
    out.to_old[out.to_new[v]] = static_cast<VertexId>(v);
  }
  return out;
}

Graph relabel_vertices(const Graph& g, const std::vector<VertexId>& to_new) {
  SFS_REQUIRE(to_new.size() == g.num_vertices(),
              "relabel_vertices: permutation size must match vertex count");
  GraphBuilder builder(g.num_vertices());
  builder.reserve_edges(g.num_edges());
  for (std::size_t ei = 0; ei < g.num_edges(); ++ei) {
    const Edge& e = g.edge(static_cast<EdgeId>(ei));
    builder.add_edge(to_new[e.tail], to_new[e.head]);
  }
  return builder.build();
}

}  // namespace sfs::graph
