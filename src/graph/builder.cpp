#include "graph/builder.hpp"

#include <utility>

namespace sfs::graph {

VertexId GraphBuilder::add_vertex() {
  SFS_REQUIRE(num_vertices_ < kNoVertex, "vertex count overflow");
  return static_cast<VertexId>(num_vertices_++);
}

VertexId GraphBuilder::add_vertices(std::size_t count) {
  const auto first = static_cast<VertexId>(num_vertices_);
  SFS_REQUIRE(num_vertices_ + count < kNoVertex, "vertex count overflow");
  num_vertices_ += count;
  return first;
}

EdgeId GraphBuilder::add_edge(VertexId tail, VertexId head) {
  SFS_REQUIRE(tail < num_vertices_, "edge tail does not exist");
  SFS_REQUIRE(head < num_vertices_, "edge head does not exist");
  SFS_REQUIRE(edges_.size() < kNoEdge, "edge count overflow");
  edges_.push_back(Edge{tail, head});
  return static_cast<EdgeId>(edges_.size() - 1);
}

Graph GraphBuilder::build() {
  Graph g;
  const std::size_t n = num_vertices_;
  g.edges_ = std::move(edges_);
  edges_.clear();
  num_vertices_ = 0;

  g.in_degree_.assign(n, 0);
  g.out_degree_.assign(n, 0);
  // Counting pass: undirected degree per vertex (loops twice).
  std::vector<std::size_t> deg(n, 0);
  for (const Edge& e : g.edges_) {
    ++deg[e.tail];
    ++deg[e.head];
    ++g.out_degree_[e.tail];
    ++g.in_degree_[e.head];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.incidence_.assign(g.offsets_[n], kNoEdge);
  g.incidence_vertex_.assign(g.offsets_[n], kNoVertex);

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i < g.edges_.size(); ++i) {
    const auto id = static_cast<EdgeId>(i);
    const Edge& e = g.edges_[i];
    g.incidence_[cursor[e.tail]] = id;
    g.incidence_vertex_[cursor[e.tail]++] = e.head;
    g.incidence_[cursor[e.head]] = id;  // self-loop: listed twice
    g.incidence_vertex_[cursor[e.head]++] = e.tail;
  }
  return g;
}

}  // namespace sfs::graph
