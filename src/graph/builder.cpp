#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

namespace sfs::graph {

void validate_edge_capacity(std::size_t num_edges) {
  SFS_REQUIRE(num_edges <= static_cast<std::size_t>(kNoEdge),
              "edge count does not fit EdgeId (kNoEdge is a sentinel)");
  // Each edge occupies two incidence slots; on 32-bit size_t hosts 2m can
  // wrap before the EdgeId bound above trips.
  (void)checked_mul(num_edges, 2, "incidence slot count 2m");
}

void GraphBuilder::reset(std::size_t n) {
  SFS_REQUIRE(n <= static_cast<std::size_t>(kNoVertex),
              "vertex count overflow");
  num_vertices_ = n;
  edges_.clear();
}

VertexId GraphBuilder::add_vertex() {
  SFS_REQUIRE(num_vertices_ < kNoVertex, "vertex count overflow");
  return static_cast<VertexId>(num_vertices_++);
}

VertexId GraphBuilder::add_vertices(std::size_t count) {
  const auto first = static_cast<VertexId>(num_vertices_);
  // Subtraction form: `num_vertices_ + count < kNoVertex` wraps for count
  // near SIZE_MAX and lets the check pass. num_vertices_ <= kNoVertex is a
  // class invariant, so the difference below cannot itself wrap.
  SFS_REQUIRE(count < static_cast<std::size_t>(kNoVertex) - num_vertices_,
              "vertex count overflow");
  num_vertices_ += count;
  return first;
}

EdgeId GraphBuilder::add_edge(VertexId tail, VertexId head) {
  SFS_REQUIRE(tail < num_vertices_, "edge tail does not exist");
  SFS_REQUIRE(head < num_vertices_, "edge head does not exist");
  SFS_REQUIRE(edges_.size() < kNoEdge, "edge count overflow");
  edges_.push_back(Edge{tail, head});
  return static_cast<EdgeId>(edges_.size() - 1);
}

Graph GraphBuilder::build() {
  Graph g;
  build_into(g);
  return g;
}

void GraphBuilder::build_into(Graph& g, CsrLayout layout,
                              std::vector<VertexId>* to_new) {
  if (layout == CsrLayout::kDegreeSorted) {
    const std::size_t n = num_vertices_;
    // Undirected degree from the edge log (loops count twice, matching
    // the incidence layout the sort is optimizing).
    deg_scratch_.assign(n, 0);
    for (const Edge& e : edges_) {
      ++deg_scratch_[e.tail];
      ++deg_scratch_[e.head];
    }
    // Rank vertices by (degree desc, old id asc) — fully deterministic.
    perm_scratch_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      perm_scratch_[v] = static_cast<VertexId>(v);
    }
    std::sort(perm_scratch_.begin(), perm_scratch_.end(),
              [&](VertexId a, VertexId b) {
                if (deg_scratch_[a] != deg_scratch_[b]) {
                  return deg_scratch_[a] > deg_scratch_[b];
                }
                return a < b;
              });
    // Invert rank order into old -> new, reusing cursor_scratch_ to avoid
    // aliasing the caller's to_new vector.
    cursor_scratch_.assign(n, 0);
    for (std::size_t rank = 0; rank < n; ++rank) {
      cursor_scratch_[perm_scratch_[rank]] = rank;
    }
    for (Edge& e : edges_) {
      e.tail = static_cast<VertexId>(cursor_scratch_[e.tail]);
      e.head = static_cast<VertexId>(cursor_scratch_[e.head]);
    }
    if (to_new != nullptr) {
      to_new->resize(n);
      for (std::size_t v = 0; v < n; ++v) {
        (*to_new)[v] = static_cast<VertexId>(cursor_scratch_[v]);
      }
    }
  } else if (to_new != nullptr) {
    to_new->resize(num_vertices_);
    for (std::size_t v = 0; v < num_vertices_; ++v) {
      (*to_new)[v] = static_cast<VertexId>(v);
    }
  }
  build_into(g);
}

void GraphBuilder::build_into(Graph& g) {
  const std::size_t n = num_vertices_;
  validate_edge_capacity(edges_.size());
  // Swap rather than move: the builder inherits g's previous edge buffer
  // (sized for the last replication), so the next reset + add_edge cycle
  // reuses it.
  g.edges_.swap(edges_);
  edges_.clear();
  num_vertices_ = 0;

  g.in_degree_.assign(n, 0);
  g.out_degree_.assign(n, 0);
  // Counting pass: undirected degree per vertex (loops twice).
  deg_scratch_.assign(n, 0);
  for (const Edge& e : g.edges_) {
    ++deg_scratch_[e.tail];
    ++deg_scratch_[e.head];
    ++g.out_degree_[e.tail];
    ++g.in_degree_[e.head];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + deg_scratch_[v];
  }
  g.incidence_.assign(g.offsets_[n], kNoEdge);
  g.incidence_vertex_.assign(g.offsets_[n], kNoVertex);

  cursor_scratch_.assign(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i < g.edges_.size(); ++i) {
    const auto id = static_cast<EdgeId>(i);
    const Edge& e = g.edges_[i];
    g.incidence_[cursor_scratch_[e.tail]] = id;
    g.incidence_vertex_[cursor_scratch_[e.tail]++] = e.head;
    g.incidence_[cursor_scratch_[e.head]] = id;  // self-loop: listed twice
    g.incidence_vertex_[cursor_scratch_[e.head]++] = e.tail;
  }
}

}  // namespace sfs::graph
