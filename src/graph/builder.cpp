#include "graph/builder.hpp"

#include <utility>

namespace sfs::graph {

void validate_edge_capacity(std::size_t num_edges) {
  SFS_REQUIRE(num_edges <= static_cast<std::size_t>(kNoEdge),
              "edge count does not fit EdgeId (kNoEdge is a sentinel)");
  // Each edge occupies two incidence slots; on 32-bit size_t hosts 2m can
  // wrap before the EdgeId bound above trips.
  (void)checked_mul(num_edges, 2, "incidence slot count 2m");
}

void GraphBuilder::reset(std::size_t n) {
  SFS_REQUIRE(n <= static_cast<std::size_t>(kNoVertex),
              "vertex count overflow");
  num_vertices_ = n;
  edges_.clear();
}

VertexId GraphBuilder::add_vertex() {
  SFS_REQUIRE(num_vertices_ < kNoVertex, "vertex count overflow");
  return static_cast<VertexId>(num_vertices_++);
}

VertexId GraphBuilder::add_vertices(std::size_t count) {
  const auto first = static_cast<VertexId>(num_vertices_);
  // Subtraction form: `num_vertices_ + count < kNoVertex` wraps for count
  // near SIZE_MAX and lets the check pass. num_vertices_ <= kNoVertex is a
  // class invariant, so the difference below cannot itself wrap.
  SFS_REQUIRE(count < static_cast<std::size_t>(kNoVertex) - num_vertices_,
              "vertex count overflow");
  num_vertices_ += count;
  return first;
}

EdgeId GraphBuilder::add_edge(VertexId tail, VertexId head) {
  SFS_REQUIRE(tail < num_vertices_, "edge tail does not exist");
  SFS_REQUIRE(head < num_vertices_, "edge head does not exist");
  SFS_REQUIRE(edges_.size() < kNoEdge, "edge count overflow");
  edges_.push_back(Edge{tail, head});
  return static_cast<EdgeId>(edges_.size() - 1);
}

Graph GraphBuilder::build() {
  Graph g;
  build_into(g);
  return g;
}

void GraphBuilder::build_into(Graph& g) {
  const std::size_t n = num_vertices_;
  validate_edge_capacity(edges_.size());
  // Swap rather than move: the builder inherits g's previous edge buffer
  // (sized for the last replication), so the next reset + add_edge cycle
  // reuses it.
  g.edges_.swap(edges_);
  edges_.clear();
  num_vertices_ = 0;

  g.in_degree_.assign(n, 0);
  g.out_degree_.assign(n, 0);
  // Counting pass: undirected degree per vertex (loops twice).
  deg_scratch_.assign(n, 0);
  for (const Edge& e : g.edges_) {
    ++deg_scratch_[e.tail];
    ++deg_scratch_[e.head];
    ++g.out_degree_[e.tail];
    ++g.in_degree_[e.head];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + deg_scratch_[v];
  }
  g.incidence_.assign(g.offsets_[n], kNoEdge);
  g.incidence_vertex_.assign(g.offsets_[n], kNoVertex);

  cursor_scratch_.assign(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i < g.edges_.size(); ++i) {
    const auto id = static_cast<EdgeId>(i);
    const Edge& e = g.edges_[i];
    g.incidence_[cursor_scratch_[e.tail]] = id;
    g.incidence_vertex_[cursor_scratch_[e.tail]++] = e.head;
    g.incidence_[cursor_scratch_[e.head]] = id;  // self-loop: listed twice
    g.incidence_vertex_[cursor_scratch_[e.head]++] = e.tail;
  }
}

}  // namespace sfs::graph
