// mmap-able graph snapshots: write a CompressedGraph to disk once per
// (generator, n, seed), map it read-only forever after.
//
// Generation drops out of the measurement loop entirely: experiments and
// server restarts open the snapshot, validate its header, and search
// straight off the mapped compressed streams through the same
// CompressedView decode surface the in-memory CompressedGraph exposes.
//
// On-disk layout (all integers little-endian u64 unless noted):
//
//   [0]   magic            "SFSSNAP1"
//   [1]   version          kSnapshotVersion
//   [2]   endian marker    0x0102030405060708 as written by the host
//   [3]   checksum         FNV-1a-64 over every byte from offset 32 to EOF
//   [4]   n                vertices
//   [5]   m                edges
//   [6]   row codec        graph::RowCodec value
//   [7]   seed             the audited stream seed the graph was built from
//   [8..11] generator      char[32], NUL-padded
//   [12]  tail stream length (bytes)
//   [13]  adjacency stream length (bytes)
//   [14..19] degree-offset Elias-Fano descriptor
//           (count, universe, low_bits, low words, high words, samples)
//   [20..25] row-offset Elias-Fano descriptor (same six fields)
//   ---- payload, each section padded to an 8-byte boundary ----
//   tail stream | adjacency stream |
//   degree-offset EF words (low | high | samples) |
//   row-offset EF words (low | high | samples)
//
// Writes go to "<path>.tmp" and are renamed into place, so a mid-write
// interrupt never leaves a partial file at the final path — and any
// truncation or corruption that does reach a reader is caught by the size
// cross-checks and the checksum before a single payload byte is decoded.
//
// Header validation failures (bad magic / version / endianness / checksum
// / declared lengths) are format-contract violations and throw
// std::invalid_argument via SFS_REQUIRE with the offending path in the
// message; only environmental open/map/write failures use runtime_error
// (the graph/io contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/compressed.hpp"

namespace sfs::graph {

inline constexpr std::uint64_t kSnapshotMagic = 0x3150414E53534653ULL;
inline constexpr std::uint64_t kSnapshotVersion = 1;
inline constexpr std::uint64_t kSnapshotEndianMarker = 0x0102030405060708ULL;

/// Identity of the graph a snapshot holds: which generator configuration
/// produced it and from which audited stream seed. Stored in the header
/// and cross-checked on every cache hit, so a path collision between two
/// different (generator, seed) builds is an error, never silent reuse.
struct SnapshotMeta {
  std::string generator;  // <= 31 bytes, e.g. "mori_merged_m1_p0.5"
  std::uint64_t seed = 0;
};

/// Serializes `view` (plus identity metadata) to `path`. Atomic: writes
/// "<path>.tmp" then renames, so readers never observe a partial file.
void write_snapshot(const std::string& path, const CompressedView& view,
                    const SnapshotMeta& meta);

/// A snapshot mapped read-only. The CompressedView spans point straight
/// into the mapping — zero copies, page cache shared across processes —
/// and stay valid for the lifetime of this object. Move-only.
class MappedSnapshot {
 public:
  /// Opens, maps and validates `path` (magic, version, endianness, section
  /// lengths vs file size, checksum).
  explicit MappedSnapshot(const std::string& path);
  ~MappedSnapshot();

  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  [[nodiscard]] const CompressedView& view() const noexcept { return view_; }
  [[nodiscard]] const SnapshotMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] std::size_t file_bytes() const noexcept { return size_; }

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // mmap'd (munmap on destroy) vs owned buffer
  CompressedView view_;
  SnapshotMeta meta_;
};

/// Canonical cache filename for a (generator, n, seed) build under `dir`:
/// "<dir>/<generator>-n<n>-s<seed as hex>.sfsnap".
[[nodiscard]] std::string snapshot_cache_path(const std::string& dir,
                                              const SnapshotMeta& meta,
                                              std::size_t n);

/// Snapshot cache: returns a mapping of `path`, building and writing the
/// snapshot first if the file does not exist yet. On a cache hit the
/// stored (generator, seed, n) identity must match `meta`/`n` exactly —
/// a mismatch means two different builds collided on one path and throws.
/// `build` is only invoked on a miss and must return the compressed graph
/// for exactly this identity.
template <typename BuildFn>
[[nodiscard]] MappedSnapshot load_or_write_snapshot(const std::string& path,
                                                    const SnapshotMeta& meta,
                                                    std::size_t n,
                                                    BuildFn&& build);

/// Non-template core of load_or_write_snapshot.
namespace detail {
[[nodiscard]] bool snapshot_file_exists(const std::string& path);
void require_snapshot_identity(const MappedSnapshot& snap,
                               const SnapshotMeta& meta, std::size_t n,
                               const std::string& path);
}  // namespace detail

template <typename BuildFn>
MappedSnapshot load_or_write_snapshot(const std::string& path,
                                      const SnapshotMeta& meta, std::size_t n,
                                      BuildFn&& build) {
  if (!detail::snapshot_file_exists(path)) {
    const CompressedGraph compressed = build();
    write_snapshot(path, compressed.view(), meta);
  }
  MappedSnapshot snap(path);
  detail::require_snapshot_identity(snap, meta, n, path);
  return snap;
}

}  // namespace sfs::graph
