// Degree statistics: distributions, CCDFs, extreme degrees.
//
// These feed experiment E5 (Móri maximum degree Θ(t^p)) and E6 (power-law
// degree distributions), and the power-law fitting in stats/powerlaw.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sfs::graph {

/// Which degree notion to aggregate.
enum class DegreeKind {
  kUndirected,  // incidence degree (loops count twice)
  kIn,          // construction indegree
  kOut,         // construction outdegree
  kTotal,       // in + out
};

/// The degree of `v` under `kind`.
[[nodiscard]] std::size_t degree_of(const Graph& g, VertexId v,
                                    DegreeKind kind);

/// All degrees, indexed by vertex.
[[nodiscard]] std::vector<std::size_t> degree_sequence(const Graph& g,
                                                       DegreeKind kind);

/// histogram[d] = number of vertices with degree exactly d.
[[nodiscard]] std::vector<std::size_t> degree_histogram(const Graph& g,
                                                        DegreeKind kind);

/// Pairs (d, P(D >= d)) for every observed degree value d >= 1, sorted by d.
/// The empirical complementary CDF is the standard object for judging
/// power-law tails on a log-log plot.
[[nodiscard]] std::vector<std::pair<std::size_t, double>> degree_ccdf(
    const Graph& g, DegreeKind kind);

/// Maximum degree under `kind`.
[[nodiscard]] std::size_t max_degree(const Graph& g, DegreeKind kind);

/// Mean degree under `kind`.
[[nodiscard]] double mean_degree(const Graph& g, DegreeKind kind);

}  // namespace sfs::graph
