// Compressed CSR: the out-of-core graph substrate (docs/PERF.md
// "Out-of-core & sharded scale").
//
// A CompressedGraph is an immutable, byte-compressed encoding of a Graph
// targeting 4-8x less memory than the uncompressed CSR, so the scaling
// sweeps and the lookup-service scenarios can hold graphs with tens of
// millions of vertices in RAM (and map them read-only from disk via
// graph/snapshot.hpp). Three ideas carry the whole design:
//
//  1. The adjacency rows are stored compressed but *exactly*: for every
//     vertex, decode_adjacent() reproduces Graph::adjacent(v) slot for
//     slot (same multiset, same order), into a caller-owned
//     AdjacencyDecodeBuffer — the per-worker buffer in sim::WorkerContext
//     keeps search hot loops zero-alloc.
//  2. The construction-order edge log is NOT stored twice. Only the tail
//     sequence is kept (delta-compressed; near-free for growth models,
//     whose tails are non-decreasing): because every incidence row lists
//     its slots in edge-id order, replaying the tails against per-row
//     cursors recovers each edge's head from the adjacency payload, and
//     decompress() rebuilds the original Graph through GraphBuilder —
//     bit-exact by construction, for every generator.
//  3. The two monotone offset sequences (cumulative degrees and row byte
//     offsets) are Elias-Fano encoded with select sampling, so random row
//     access stays O(1)-ish at ~3-5 bits per vertex instead of 64.
//
// Two row codecs are supported and benchmarked head-to-head by the
// m6_compression experiment: byte-aligned zigzag varint deltas in slot
// order (kVarint, the default) and per-row Elias-Fano over the sorted
// neighbors plus a rank stream restoring slot order (kEliasFano). Both
// round-trip bit-exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace sfs::graph {

// ------------------------------------------------------------- Elias-Fano

/// Non-owning decoder over an Elias-Fano encoded non-decreasing sequence.
/// The owning encoder (EliasFanoSequence) and the mmap'd snapshot both
/// expose one of these; all random access goes through get().
struct EliasFanoView {
  std::size_t count = 0;       // number of encoded values
  std::uint64_t universe = 0;  // upper bound: every value <= universe
  std::uint32_t low_bits = 0;  // split: value = (high << low_bits) | low
  std::span<const std::uint64_t> low_words;   // packed low halves
  std::span<const std::uint64_t> high_words;  // unary-coded high halves
  std::span<const std::uint64_t> samples;     // select-1 samples

  /// The i-th encoded value. Requires i < count. O(1) amortized: a select
  /// sample every kEfSampleRate set bits bounds the popcount scan.
  [[nodiscard]] std::uint64_t get(std::size_t i) const;

  /// Bytes referenced by the three word spans (excludes this struct).
  [[nodiscard]] std::size_t payload_bytes() const noexcept {
    return (low_words.size() + high_words.size() + samples.size()) *
           sizeof(std::uint64_t);
  }
};

/// One select sample per this many set bits of the high bitmap.
inline constexpr std::size_t kEfSampleRate = 256;

/// Owning Elias-Fano sequence: encode once, then read through view().
class EliasFanoSequence {
 public:
  EliasFanoSequence() = default;

  /// Encodes `values`, which must be non-decreasing.
  [[nodiscard]] static EliasFanoSequence encode(
      std::span<const std::uint64_t> values);

  [[nodiscard]] EliasFanoView view() const noexcept {
    return {count_, universe_, low_bits_, low_words_, high_words_, samples_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t get(std::size_t i) const { return view().get(i); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return sizeof(*this) + view().payload_bytes();
  }

 private:
  std::size_t count_ = 0;
  std::uint64_t universe_ = 0;
  std::uint32_t low_bits_ = 0;
  std::vector<std::uint64_t> low_words_;
  std::vector<std::uint64_t> high_words_;
  std::vector<std::uint64_t> samples_;
};

// -------------------------------------------------------- compressed view

/// Row payload encoding (benchmarked head-to-head by m6_compression).
enum class RowCodec : std::uint8_t {
  /// Zigzag varint deltas in slot order (first slot relative to the row's
  /// vertex id). Byte-aligned, branch-light decode; the default.
  kVarint = 0,
  /// Per-row Elias-Fano over the sorted far endpoints plus a varint rank
  /// stream restoring the exact slot order.
  kEliasFano = 1,
};

[[nodiscard]] const char* row_codec_name(RowCodec codec) noexcept;

/// Non-owning view of a compressed graph: the shared decode surface of
/// the in-memory CompressedGraph and the mmap'd snapshot
/// (graph/snapshot.hpp). Spans must outlive the view.
struct CompressedView {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  RowCodec codec = RowCodec::kVarint;
  /// Zigzag varint deltas of the edge-log tail sequence (construction
  /// order; first delta relative to 0).
  std::span<const std::uint8_t> tail_stream;
  /// Concatenated encoded adjacency rows (per-vertex, codec-dependent).
  std::span<const std::uint8_t> adj_stream;
  /// Cumulative undirected degrees: n+1 values, last == 2m. Equals the
  /// uncompressed CSR's offsets_ array, Elias-Fano encoded.
  EliasFanoView degree_offsets;
  /// Byte offset of each row in adj_stream: n+1 values, last == size.
  EliasFanoView row_offsets;
};

/// Scratch for decode_adjacent: reused across calls so row decoding in
/// search hot paths allocates only until the high-water degree is reached.
/// One per worker (sim::WorkerContext) — not thread-safe.
struct AdjacencyDecodeBuffer {
  std::vector<VertexId> slots;   // decoded row, slot order
  std::vector<VertexId> sorted;  // kEliasFano scratch: sorted neighbors
};

/// Decodes the incidence row of `v` into `buffer` and returns a span over
/// it: element i is Graph::adjacent(v)[i], bit for bit. The span is valid
/// until the next decode into the same buffer.
[[nodiscard]] std::span<const VertexId> decode_adjacent(
    const CompressedView& view, VertexId v, AdjacencyDecodeBuffer& buffer);

/// Undirected degree of `v` (== Graph::degree(v)); no row decode.
[[nodiscard]] std::size_t decoded_degree(const CompressedView& view,
                                         VertexId v);

/// Rebuilds the original Graph: decodes every row, replays the tail
/// stream against per-row cursors to recover each edge's head, and packs
/// through GraphBuilder — so the result is bit-identical to the Graph the
/// view was compressed from (edge log, CSR arrays, degree vectors).
[[nodiscard]] Graph decompress(const CompressedView& view);

// ------------------------------------------------------- compressed graph

/// Owning compressed encoding of a Graph. Immutable once built.
class CompressedGraph {
 public:
  CompressedGraph() = default;

  /// Compresses `g`. The encoding is deterministic: equal graphs yield
  /// byte-identical streams (snapshots of the same (generator, n, seed)
  /// are reproducible artifacts).
  [[nodiscard]] static CompressedGraph from_graph(
      const Graph& g, RowCodec codec = RowCodec::kVarint);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return m_; }
  [[nodiscard]] RowCodec codec() const noexcept { return codec_; }

  /// Decode surface shared with mmap'd snapshots; valid while *this lives.
  [[nodiscard]] CompressedView view() const noexcept;

  [[nodiscard]] std::size_t degree(VertexId v) const {
    return decoded_degree(view(), v);
  }
  [[nodiscard]] std::span<const VertexId> adjacent(
      VertexId v, AdjacencyDecodeBuffer& buffer) const {
    return decode_adjacent(view(), v, buffer);
  }
  [[nodiscard]] Graph decompress() const { return graph::decompress(view()); }

  /// Heap bytes held by the compressed representation (streams + both
  /// Elias-Fano sequences + fixed fields). The m6 ratio denominator.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  std::size_t n_ = 0;
  std::size_t m_ = 0;
  RowCodec codec_ = RowCodec::kVarint;
  std::vector<std::uint8_t> tail_stream_;
  std::vector<std::uint8_t> adj_stream_;
  EliasFanoSequence degree_offsets_;
  EliasFanoSequence row_offsets_;
};

/// Heap bytes of the uncompressed Graph representation (size-based, not
/// capacity-based): edge records + CSR offsets/incidence/far-endpoint
/// arrays + degree vectors. The m6 ratio numerator.
[[nodiscard]] std::size_t graph_memory_bytes(const Graph& g) noexcept;

}  // namespace sfs::graph
