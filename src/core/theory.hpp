// Closed-form predictions collected from the paper and the works it builds
// on. Every benchmark table prints the relevant prediction next to the
// measurement, so EXPERIMENTS.md can record paper-vs-measured explicitly.
#pragma once

#include <cstddef>

namespace sfs::core::theory {

/// Theorem 1 / Theorem 2 (weak model): expected requests are Ω(n^0.5) in
/// the merged Móri graph (any m >= 1, 0 < p <= 1) and in Cooper–Frieze
/// models with 0 < alpha < 1.
[[nodiscard]] constexpr double weak_lower_bound_exponent() { return 0.5; }

/// Theorem 1 (strong model): for Móri p < 1/2, expected requests are
/// Ω(n^{1/2 - p - eps}). Returns max(0, 1/2 - p).
[[nodiscard]] double strong_lower_bound_exponent(double p);

/// Móri (2005): the maximum degree of the Móri tree G_t grows like t^p
/// (with the indegree-based attachment weight p·d + (1-p)).
[[nodiscard]] double mori_max_degree_exponent(double p);

/// Degree-distribution exponent of the Móri tree: since a fixed vertex's
/// indegree grows like t^p, P(D >= d) ~ d^{-1/p} and the pmf exponent is
/// 1 + 1/p. (p = 1/2 recovers the BA-tree exponent 3.)
[[nodiscard]] double mori_degree_distribution_exponent(double p);

/// Adamic et al. (2001), power-law graphs with pmf exponent k in (2, 3):
/// expected steps of the high-degree greedy strategy scale as
/// n^{2(1 - 2/k)} ...
[[nodiscard]] double adamic_greedy_exponent(double k);

/// ... and of the pure random walk as n^{3(1 - 2/k)}.
[[nodiscard]] double adamic_random_walk_exponent(double k);

/// Lemma 3: with b = a + floor(sqrt(a-1)), P(E_{a,b}) >= e^{-(1-p)}.
[[nodiscard]] double lemma3_bound(double p);

/// The Lemma 3 window end b for a given a (paper ids, a >= 2).
[[nodiscard]] std::size_t lemma3_window_end(std::size_t a);

/// Lemma 1: a set of `equivalent_vertices` vertices, equivalent conditional
/// on an event of probability `event_probability`, forces expected search
/// cost >= |V| * P(E) / 2.
[[nodiscard]] double lemma1_bound(std::size_t equivalent_vertices,
                                  double event_probability);

/// Kleinberg (2000): greedy routing on a d-dimensional lattice with
/// long-range exponent r is polylogarithmic iff r == d.
[[nodiscard]] bool kleinberg_navigable(double r, std::size_t dim = 2);

/// Kleinberg's lower-bound exponent for greedy routing away from the
/// navigable point (2-D): (2 - r) / 3 for 0 <= r < 2 and
/// (r - 2) / (r - 1) for r > 2. Returns 0 at r == 2.
[[nodiscard]] double kleinberg_routing_exponent(double r);

}  // namespace sfs::core::theory
