// The probabilistic vertex-equivalence machinery of Section 2.
//
// Definition 2 (paper): vertices V ⊂ [[1,n]] are equivalent conditional on
// an event E if for every permutation σ of V, the random graphs G and σ(G)
// have the same distribution conditional on E.
//
// Lemma 2 instantiates this for the Móri tree with V = [[a+1, b]] and
//   E_{a,b} = ⋂_{a<k≤b} { N_k ≤ a }          (N_k = father of vertex k),
// and Lemma 3 shows P(E_{a,b}) ≥ e^{-(1-p)} for b = a + ⌊√(a-1)⌋.
//
// This header provides: the event test, Monte-Carlo estimation of P(E_{a,b})
// (for Móri and for the analogous untouched-window event in Cooper–Frieze),
// and an empirical exchangeability check that validates Lemma 2 by comparing
// per-position feature distributions of window vertices conditional on E.
//
// All `a`, `b`, `k` in this API are PAPER vertex ids (1-based); internal
// graph ids are paper ids minus one.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/cooper_frieze.hpp"
#include "gen/mori.hpp"
#include "rng/random.hpp"

namespace sfs::core {

/// True iff E_{a,b} holds for the given recursive-tree fathers (0-based
/// internal ids as returned by gen::fathers / MoriProcess::all_fathers):
/// every paper vertex k in (a, b] has father with paper id <= a.
/// Requires 2 <= a <= b <= #vertices.
[[nodiscard]] bool event_holds(const std::vector<graph::VertexId>& fathers,
                               std::size_t a, std::size_t b);

/// Monte-Carlo estimate of P(E_{a,b}) in the Móri tree with parameter p,
/// over `reps` independently grown trees of b vertices.
struct EventEstimate {
  double probability = 0.0;
  double stderr_est = 0.0;  // binomial standard error
  std::size_t reps = 0;
  std::size_t hits = 0;
};

[[nodiscard]] EventEstimate estimate_event_probability(
    double p, std::size_t a, std::size_t b, std::size_t reps,
    std::uint64_t seed);

/// Per-position empirical means of a window-vertex feature in the Móri tree
/// grown to t vertices, conditional on E_{a,b} (rejection sampling).
/// Under Lemma 2 the conditional distribution is exchangeable over the
/// window, so all positions must share the same marginal; tests and bench
/// E10 assert the means agree within noise.
struct WindowFeatureStats {
  /// means[i] = conditional mean feature of paper vertex a+1+i.
  std::vector<double> mean_final_indegree;
  /// P(vertex is a leaf of the final tree | E).
  std::vector<double> leaf_probability;
  std::size_t accepted = 0;  // trees satisfying E
  std::size_t attempted = 0;
};

[[nodiscard]] WindowFeatureStats window_feature_stats(
    double p, std::size_t a, std::size_t b, std::size_t t, std::size_t reps,
    std::uint64_t seed);

/// Cooper–Frieze analogue of E_{a,b}: between the births of the a-th and
/// b-th vertices, every edge endpoint chosen by the process (terminal
/// vertices and OLD initial vertices) lies among the first `a` born
/// vertices. Conditional on this event the window vertices received no
/// edges and form the equivalent set used in Theorem 2's proof sketch.
[[nodiscard]] EventEstimate estimate_cf_event_probability(
    const gen::CooperFriezeParams& params, std::size_t a, std::size_t b,
    std::size_t reps, std::uint64_t seed);

}  // namespace sfs::core
