// End-to-end lower-bound estimation: combines Lemma 2's equivalent window,
// the Monte-Carlo estimate of P(E_{a,b}) (Lemma 3), and Lemma 1's
// |V|·P(E)/2 bound into the quantity Theorem 1 compares against measured
// search cost. Used by bench E10 and the integration tests.
#pragma once

#include <cstdint>

#include "core/equivalence.hpp"
#include "gen/cooper_frieze.hpp"

namespace sfs::core {

struct LowerBoundEstimate {
  std::size_t a = 0;            // window start (paper id)
  std::size_t b = 0;            // window end (paper id)
  std::size_t window_size = 0;  // |V| = b - a
  EventEstimate event;          // P̂(E_{a,b})
  double bound = 0.0;           // |V| * P̂ / 2 (Lemma 1)
  double theory_floor = 0.0;    // |V| * e^{-(1-p)} / 2 for Móri, 0 for CF
};

/// Theorem 1 instantiation for target vertex n (paper id): the window is
/// [[n, b]] with a = n - 1 and b = lemma3_window_end(a), so the target is
/// one of the ~sqrt(n) equivalent vertices. Requires n >= 3.
[[nodiscard]] LowerBoundEstimate mori_lower_bound(double p, std::size_t n,
                                                  std::size_t reps,
                                                  std::uint64_t seed);

/// Theorem 2 instantiation for the Cooper–Frieze model: window of size
/// floor(sqrt(a-1)) after the a-th born vertex, with a = n - 1.
[[nodiscard]] LowerBoundEstimate cooper_frieze_lower_bound(
    const gen::CooperFriezeParams& params, std::size_t n, std::size_t reps,
    std::uint64_t seed);

}  // namespace sfs::core
