#include "core/equivalence.hpp"

#include <cmath>

namespace sfs::core {

using graph::VertexId;

bool event_holds(const std::vector<VertexId>& fathers, std::size_t a,
                 std::size_t b) {
  SFS_REQUIRE(a >= 2, "Lemma 2 needs a >= 2");
  SFS_REQUIRE(a <= b, "need a <= b");
  SFS_REQUIRE(b <= fathers.size(), "window exceeds tree size");
  // Paper vertex k is internal id k-1; its father must have paper id <= a,
  // i.e. internal id <= a-1.
  for (std::size_t k = a + 1; k <= b; ++k) {
    const VertexId father = fathers[k - 1];
    if (static_cast<std::size_t>(father) > a - 1) return false;
  }
  return true;
}

namespace {

EventEstimate finish_estimate(std::size_t hits, std::size_t reps) {
  EventEstimate est;
  est.reps = reps;
  est.hits = hits;
  if (reps > 0) {
    est.probability = static_cast<double>(hits) / static_cast<double>(reps);
    est.stderr_est = std::sqrt(est.probability * (1.0 - est.probability) /
                               static_cast<double>(reps));
  }
  return est;
}

}  // namespace

EventEstimate estimate_event_probability(double p, std::size_t a,
                                         std::size_t b, std::size_t reps,
                                         std::uint64_t seed) {
  SFS_REQUIRE(reps > 0, "need at least one replication");
  std::size_t hits = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    rng::Rng rng(rng::derive_seed(seed, rep));
    gen::MoriProcess proc(gen::MoriParams{p});
    // Growing to b vertices is enough: the event only constrains fathers of
    // vertices a+1..b, and fathers never change afterwards.
    proc.grow_to(b, rng);
    if (event_holds(proc.all_fathers(), a, b)) ++hits;
  }
  return finish_estimate(hits, reps);
}

WindowFeatureStats window_feature_stats(double p, std::size_t a,
                                        std::size_t b, std::size_t t,
                                        std::size_t reps,
                                        std::uint64_t seed) {
  SFS_REQUIRE(b >= a + 1, "empty window");
  SFS_REQUIRE(t >= b, "final time must cover the window");
  SFS_REQUIRE(reps > 0, "need at least one replication");
  const std::size_t w = b - a;
  WindowFeatureStats st;
  st.mean_final_indegree.assign(w, 0.0);
  st.leaf_probability.assign(w, 0.0);

  for (std::size_t rep = 0; rep < reps; ++rep) {
    rng::Rng rng(rng::derive_seed(seed, rep));
    gen::MoriProcess proc(gen::MoriParams{p});
    proc.grow_to(b, rng);
    ++st.attempted;
    if (!event_holds(proc.all_fathers(), a, b)) continue;
    proc.grow_to(t, rng);
    ++st.accepted;
    for (std::size_t i = 0; i < w; ++i) {
      const auto v = static_cast<VertexId>(a + i);  // paper id a+1+i
      const auto indeg = static_cast<double>(proc.in_degree(v));
      st.mean_final_indegree[i] += indeg;
      if (indeg == 0.0) st.leaf_probability[i] += 1.0;
    }
  }
  if (st.accepted > 0) {
    for (std::size_t i = 0; i < w; ++i) {
      st.mean_final_indegree[i] /= static_cast<double>(st.accepted);
      st.leaf_probability[i] /= static_cast<double>(st.accepted);
    }
  }
  return st;
}

EventEstimate estimate_cf_event_probability(
    const gen::CooperFriezeParams& params, std::size_t a, std::size_t b,
    std::size_t reps, std::uint64_t seed) {
  SFS_REQUIRE(a >= 1 && a <= b, "need 1 <= a <= b");
  SFS_REQUIRE(reps > 0, "need at least one replication");
  std::size_t hits = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    rng::Rng rng(rng::derive_seed(seed, rep));
    gen::CooperFriezeProcess proc(params);
    // Phase 1: grow to a vertices.
    while (proc.num_vertices() < a) (void)proc.step(rng);
    // Phase 2: continue until b vertices. The event requires every edge
    // endpoint chosen during the window — terminal heads of all steps and
    // the initial (tail) vertex of OLD steps — to be one of the first `a`
    // born vertices (ids < a, since CF numbers vertices by birth). Then no
    // window vertex is touched by anything except its own out-edges.
    bool ok = true;
    while (proc.num_vertices() < b && ok) {
      const bool was_new = proc.step(rng);
      for (const VertexId h : proc.last_heads()) {
        if (static_cast<std::size_t>(h) >= a) {
          ok = false;
          break;
        }
      }
      if (!was_new && ok && static_cast<std::size_t>(proc.last_tail()) >= a) {
        ok = false;
      }
    }
    if (ok) ++hits;
  }
  return finish_estimate(hits, reps);
}

}  // namespace sfs::core
