#include "core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace sfs::core::theory {

double strong_lower_bound_exponent(double p) {
  SFS_REQUIRE(p > 0.0 && p <= 1.0, "Mori p must be in (0,1]");
  return std::max(0.0, 0.5 - p);
}

double mori_max_degree_exponent(double p) {
  SFS_REQUIRE(p >= 0.0 && p <= 1.0, "Mori p must be in [0,1]");
  return p;
}

double mori_degree_distribution_exponent(double p) {
  SFS_REQUIRE(p > 0.0 && p <= 1.0, "Mori p must be in (0,1]");
  return 1.0 + 1.0 / p;
}

double adamic_greedy_exponent(double k) {
  SFS_REQUIRE(k > 2.0, "Adamic exponents need k > 2");
  return 2.0 * (1.0 - 2.0 / k);
}

double adamic_random_walk_exponent(double k) {
  SFS_REQUIRE(k > 2.0, "Adamic exponents need k > 2");
  return 3.0 * (1.0 - 2.0 / k);
}

double lemma3_bound(double p) {
  SFS_REQUIRE(p >= 0.0 && p <= 1.0, "Mori p must be in [0,1]");
  return std::exp(-(1.0 - p));
}

std::size_t lemma3_window_end(std::size_t a) {
  SFS_REQUIRE(a >= 2, "Lemma 3 needs a >= 2");
  return a + static_cast<std::size_t>(
                 std::floor(std::sqrt(static_cast<double>(a - 1))));
}

double lemma1_bound(std::size_t equivalent_vertices,
                    double event_probability) {
  SFS_REQUIRE(event_probability >= 0.0 && event_probability <= 1.0,
              "probability out of range");
  return static_cast<double>(equivalent_vertices) * event_probability / 2.0;
}

bool kleinberg_navigable(double r, std::size_t dim) {
  return r == static_cast<double>(dim);
}

double kleinberg_routing_exponent(double r) {
  SFS_REQUIRE(r >= 0.0, "exponent must be >= 0");
  if (r < 2.0) return (2.0 - r) / 3.0;
  if (r == 2.0) return 0.0;
  return (r - 2.0) / (r - 1.0);
}

}  // namespace sfs::core::theory
