#include "core/lower_bound.hpp"

#include "core/theory.hpp"

namespace sfs::core {

LowerBoundEstimate mori_lower_bound(double p, std::size_t n, std::size_t reps,
                                    std::uint64_t seed) {
  SFS_REQUIRE(n >= 3, "need n >= 3 so that a = n-1 >= 2");
  LowerBoundEstimate est;
  est.a = n - 1;
  est.b = theory::lemma3_window_end(est.a);
  est.window_size = est.b - est.a;
  est.event = estimate_event_probability(p, est.a, est.b, reps, seed);
  est.bound = theory::lemma1_bound(est.window_size, est.event.probability);
  est.theory_floor =
      theory::lemma1_bound(est.window_size, theory::lemma3_bound(p));
  return est;
}

LowerBoundEstimate cooper_frieze_lower_bound(
    const gen::CooperFriezeParams& params, std::size_t n, std::size_t reps,
    std::uint64_t seed) {
  SFS_REQUIRE(n >= 3, "need n >= 3 so that a = n-1 >= 2");
  LowerBoundEstimate est;
  est.a = n - 1;
  est.b = theory::lemma3_window_end(est.a);
  est.window_size = est.b - est.a;
  est.event = estimate_cf_event_probability(params, est.a, est.b, reps, seed);
  est.bound = theory::lemma1_bound(est.window_size, est.event.probability);
  est.theory_floor = 0.0;  // the paper gives no closed form for CF
  return est;
}

}  // namespace sfs::core
