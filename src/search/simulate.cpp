#include "search/simulate.hpp"

#include "search/strong_algorithms.hpp"

namespace sfs::search {

using graph::EdgeId;
using graph::kNoVertex;
using graph::VertexId;

StrongViaWeak::StrongViaWeak(std::unique_ptr<StrongSearcher> inner)
    : inner_(std::move(inner)) {
  SFS_REQUIRE(inner_ != nullptr, "inner strong policy required");
}

void StrongViaWeak::start(const LocalView& view, rng::Rng& rng) {
  current_ = kNoVertex;
  pending_.clear();
  revealed_batch_.clear();
  strong_requests_ = 0;
  inner_->start(view, rng);
}

bool StrongViaWeak::refill(const LocalView& view, rng::Rng& rng) {
  // Finish the previous simulated request first: report the (now complete)
  // neighbor list to the inner policy, exactly as the strong model would.
  if (current_ != kNoVertex) {
    inner_->observe(view, current_,
                    std::span<const VertexId>(revealed_batch_));
    revealed_batch_.clear();
    current_ = kNoVertex;
  }
  const auto want = inner_->next(view, rng);
  if (!want) return false;
  SFS_REQUIRE(view.is_known(*want),
              "inner policy requested an unknown vertex");
  ++strong_requests_;
  current_ = *want;
  pending_.clear();
  for (const EdgeId e : view.incident(current_)) pending_.push_back(e);
  return true;
}

std::optional<WeakRequest> StrongViaWeak::next(const LocalView& view,
                                               rng::Rng& rng) {
  // Drop already-explored edges (free in the weak model anyway, but
  // skipping them keeps the simulation's charged-request accounting tight).
  for (;;) {
    while (!pending_.empty() &&
           view.edge_explored(pending_.front())) {
      const EdgeId e = pending_.front();
      pending_.pop_front();
      // The far endpoint is already known; record it for the inner
      // policy's neighbor list without spending a request.
      if (const auto far = view.far_endpoint(e, current_)) {
        revealed_batch_.push_back(*far);
      }
    }
    if (!pending_.empty()) {
      return WeakRequest{current_, pending_.front()};
    }
    if (!refill(view, rng)) return std::nullopt;
  }
}

void StrongViaWeak::observe(const LocalView&, const WeakRequest& request,
                            VertexId revealed) {
  if (!pending_.empty() && pending_.front() == request.e) pending_.pop_front();
  revealed_batch_.push_back(revealed);
}

std::unique_ptr<WeakSearcher> make_simulated_degree_greedy() {
  return std::make_unique<StrongViaWeak>(make_degree_greedy_strong());
}

}  // namespace sfs::search
