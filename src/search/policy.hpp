// Search-policy registry: the v2 policy surface of the search API.
//
// The paper's statements quantify over "any search algorithm" in the weak
// and strong knowledge models. V1 of the API hard-coded that quantifier as
// two raw function-pointer typedefs (WeakSearcherFactory /
// StrongSearcherFactory) plus two hand-maintained portfolio lists
// (weak_portfolio() / strong_portfolio()); selecting a subset, listing what
// exists, or adding a policy meant editing those lists and relinking every
// caller. V2 replaces them with a model-tagged registry mirroring the
// experiment registry (sim/experiment.hpp): each policy registers a
// PolicySpec — name, one-line description, knowledge model, and a stateful
// std::function factory — via a static PolicyRegistrar, and every consumer
// (the portfolio engine in sim/sweep, the QueryEngine, sfsearch_cli,
// sfs_bench --policies) selects policies by name.
//
// Registration order is load-bearing: the full-portfolio order per model is
// the registration order, which reproduces the legacy weak_portfolio() /
// strong_portfolio() order exactly — the portfolio measurement engine
// derives each policy's RNG stream from its index in the selected
// portfolio, so reordering registrations would silently change every
// pinned-seed experiment output. Append new policies at the end of their
// model's block in policy.cpp.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "search/searcher.hpp"

namespace sfs::search {

/// "weak" / "strong" — the registry's and CLI's spelling of the model tag.
[[nodiscard]] std::string_view model_name(KnowledgeModel model) noexcept;

/// A registered search policy. Exactly one of the two factories is set,
/// matching `model`; the factories are stateful std::functions (they may
/// capture parameters — see the priority-greedy registrations), replacing
/// the raw function-pointer WeakSearcherFactory/StrongSearcherFactory
/// typedefs of the v1 API.
struct PolicySpec {
  /// Unique id across BOTH models (the weak and strong built-ins already
  /// use distinct name() strings, e.g. "bfs" vs "bfs-strong"). Used by
  /// --policies lists, sfsearch_cli and the registry printout.
  std::string name;
  /// One-line description for `sfsearch_cli policies` / docs.
  std::string description;
  KnowledgeModel model = KnowledgeModel::kWeak;
  /// Set iff model == kWeak. Must return a fresh searcher whose name()
  /// equals `name`.
  std::function<std::unique_ptr<WeakSearcher>()> make_weak;
  /// Set iff model == kStrong. Same naming contract.
  std::function<std::unique_ptr<StrongSearcher>()> make_strong;
};

/// The policy registry. The process-wide instance() holds the built-ins
/// (registered in policy.cpp) plus any user registrations; tests construct
/// their own instances to exercise the registration rules in isolation.
class PolicyRegistry {
 public:
  /// Registers a spec. Throws std::invalid_argument on an empty name, a
  /// duplicate name, or a factory/model mismatch (missing factory for the
  /// declared model, or a factory for the other model also set).
  void add(PolicySpec spec);

  /// Looks up a spec by name; nullptr when absent.
  [[nodiscard]] const PolicySpec* find(std::string_view name) const;

  /// All specs in registration order.
  [[nodiscard]] std::vector<const PolicySpec*> all() const;

  /// The specs of one model in registration order — the model's full
  /// portfolio (bit-compatible with the legacy portfolio lists).
  [[nodiscard]] std::vector<const PolicySpec*> all(KnowledgeModel model) const;

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

  static PolicyRegistry& instance();

 private:
  /// Deque, not vector: find()/all()/resolve_policies() hand out
  /// PolicySpec pointers that long-lived consumers (QueryEngine) keep, so
  /// a later registration must not relocate existing specs.
  std::deque<PolicySpec> specs_;
};

/// Registers a spec with PolicyRegistry::instance() at static
/// initialization.
struct PolicyRegistrar {
  explicit PolicyRegistrar(PolicySpec spec);
};

/// Resolves a policy-name filter against the process-wide registry:
/// an empty `names` list selects the full portfolio of `model` in
/// registration order; otherwise the named policies in the given order.
/// Throws std::invalid_argument on an unknown name, a policy of the wrong
/// model, a duplicate selection, or when the registry holds no policy of
/// `model` at all — an empty portfolio is never returned silently.
[[nodiscard]] std::vector<const PolicySpec*> resolve_policies(
    KnowledgeModel model, std::span<const std::string> names);

/// Instantiates fresh searchers from resolved specs (all of the matching
/// model; violating specs throw std::invalid_argument).
[[nodiscard]] std::vector<std::unique_ptr<WeakSearcher>> make_weak_searchers(
    std::span<const PolicySpec* const> specs);
[[nodiscard]] std::vector<std::unique_ptr<StrongSearcher>>
make_strong_searchers(std::span<const PolicySpec* const> specs);

}  // namespace sfs::search
