// The strong-to-weak simulation argument of Theorem 1:
//
//   "Any algorithm operating in the strong model can be simulated in the
//    weak model by replacing each request about vertex u with requests
//    about all edges incident to u, which gives a slowdown factor of at
//    most the maximum degree."
//
// StrongViaWeak wraps any StrongSearcher as a WeakSearcher implementing
// exactly this reduction: when the inner policy asks for vertex u, the
// wrapper replays (u, e) weak requests for every incident edge of u before
// consulting the inner policy again. The property tests verify the two
// sides of the argument: the simulation discovers the same vertex set in
// the same order, and its weak-request count is at most
// max_degree × (strong requests).
#pragma once

#include <deque>
#include <memory>

#include "search/searcher.hpp"

namespace sfs::search {

class StrongViaWeak final : public WeakSearcher {
 public:
  explicit StrongViaWeak(std::unique_ptr<StrongSearcher> inner);

  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override {
    return "weak-sim(" + inner_->name() + ")";
  }

  /// Number of strong requests the inner policy has issued so far.
  [[nodiscard]] std::size_t strong_requests() const noexcept {
    return strong_requests_;
  }

 private:
  /// Pulls the next vertex from the inner policy and queues its incident
  /// edges; returns false if the inner policy gave up.
  bool refill(const LocalView& view, rng::Rng& rng);

  std::unique_ptr<StrongSearcher> inner_;
  graph::VertexId current_ = graph::kNoVertex;  // vertex being opened
  std::deque<graph::EdgeId> pending_;           // its remaining edges
  std::vector<graph::VertexId> revealed_batch_; // neighbors found so far
  std::size_t strong_requests_ = 0;
};

/// Convenience: wraps a fresh Adamic-style strong degree-greedy policy.
[[nodiscard]] std::unique_ptr<WeakSearcher> make_simulated_degree_greedy();

}  // namespace sfs::search
