#include "search/query_engine.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "base/check.hpp"
#include "base/parallel.hpp"
#include "graph/overlay.hpp"
#include "search/drive.hpp"
#include "search/local_view.hpp"

namespace sfs::search {

namespace {

// Per-query stream tag. Tempered through mix64 like the sweep's endpoint
// and policy tags (raw XOR tags alias across sessions whose seeds differ
// by a small XOR delta; see sim/sweep.cpp). The audit triple is
// (options.seed, kQueryStream, batch index).
const std::uint64_t kQueryStream = rng::mix64(0x10e57ULL);  // "lookup query"

}  // namespace

/// One suspended search's worth of state. A worker session owns
/// options.interleave lanes and steps the live ones round-robin, so each
/// lane's dependent cache misses (stamp-array probes inside the drive
/// step) overlap the other lanes' work.
struct QueryEngine::Lane {
  std::unique_ptr<WeakSearcher> weak;      // set iff model == kWeak
  std::unique_ptr<StrongSearcher> strong;  // set iff model == kStrong
  /// Per-lane search scratch (stamp arrays, frontier). Owned directly —
  /// search/ sits below sim/ in the include-layering DAG (sfs_lint R8),
  /// so a Lane cannot carry a sim::WorkerContext; the engine only ever
  /// used its workspace member anyway.
  SearchWorkspace workspace;
  /// Per-query engine; reseeded before each search. A member (not a drive
  /// local) because the suspended drive borrows it across step() calls.
  rng::Rng rng{0};
  /// The suspended search. Emplaced per query; exactly one of the two is
  /// engaged while a query is in flight (matching the model).
  std::optional<LocalView> view;
  std::optional<WeakDrive> weak_drive;
  std::optional<StrongDrive> strong_drive;
};

struct QueryEngine::Session {
  std::vector<std::unique_ptr<Lane>> lanes;
  /// Overlay epoch this session last served (0 = fresh; overlay epochs
  /// start at 1, so a fresh session over an overlay always rebuilds its
  /// searchers into a counted, known-good state).
  std::uint64_t overlay_epoch = 0;
};

void QueryEngine::bind_policy(std::string_view policy) {
  spec_ = PolicyRegistry::instance().find(policy);
  SFS_REQUIRE(spec_ != nullptr,
              "QueryEngine: unknown policy '" + std::string(policy) +
                  "' (see sfsearch_cli policies for the registry)");
}

QueryEngine::QueryEngine(const graph::Graph& g, std::string_view policy,
                         QueryEngineOptions options)
    : graph_(&g), options_(options) {
  SFS_REQUIRE(options_.interleave > 0,
              "QueryEngine: options.interleave must be positive");
  bind_policy(policy);
}

QueryEngine::QueryEngine(const graph::Overlay& overlay,
                         std::string_view policy, QueryEngineOptions options)
    : graph_(&overlay.snapshot()), overlay_(&overlay), options_(options) {
  SFS_REQUIRE(options_.interleave > 0,
              "QueryEngine: options.interleave must be positive");
  bind_policy(policy);
}

QueryEngine::~QueryEngine() = default;

std::uint64_t QueryEngine::query_stream_seed(std::uint64_t index) const {
  return rng::StreamPlan(options_.seed, kQueryStream, options_.stream_plan)
      .stream_seed(index);
}

void QueryEngine::ensure_sessions(std::size_t workers) {
  while (sessions_.size() < workers) {
    sessions_.push_back(std::make_unique<Session>());
  }
  const bool weak = spec_->model == KnowledgeModel::kWeak;
  for (std::size_t w = 0; w < workers; ++w) {
    Session& session = *sessions_[w];
    while (session.lanes.size() < options_.interleave) {
      auto lane = std::make_unique<Lane>();
      if (weak) {
        lane->weak = spec_->make_weak();
      } else {
        lane->strong = spec_->make_strong();
      }
      session.lanes.push_back(std::move(lane));
    }
  }
  if (overlay_ == nullptr) return;
  // Invalidation: any session that last served an older overlay epoch gets
  // fresh searchers before this batch touches it. Sequential on purpose —
  // it runs before the fan-out, so the rebuild counter needs no locking.
  const std::uint64_t epoch = overlay_->epoch();
  for (std::size_t w = 0; w < workers; ++w) {
    Session& session = *sessions_[w];
    if (session.overlay_epoch == epoch) continue;
    for (auto& lane : session.lanes) {
      if (weak) {
        lane->weak = spec_->make_weak();
      } else {
        lane->strong = spec_->make_strong();
      }
    }
    session.overlay_epoch = epoch;
    ++sessions_rebuilt_;
  }
}

void QueryEngine::run_batch(std::span<const Query> queries,
                            std::span<SearchResult> results,
                            std::size_t threads) {
  SFS_REQUIRE(results.size() == queries.size(),
              "QueryEngine::run_batch: results span must match the batch "
              "size");
  // Validate the whole batch before running any of it: a malformed query
  // in the middle of a parallel batch must not leave half-written results.
  const std::size_t n = graph_->num_vertices();
  if (overlay_ != nullptr) {
    SFS_REQUIRE(overlay_->staged_joins() == 0,
                "QueryEngine::run_batch: overlay has staged joins; compact "
                "before serving queries");
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SFS_REQUIRE(queries[i].start < n && queries[i].target < n,
                "QueryEngine::run_batch: query " + std::to_string(i) +
                    " has endpoints outside the graph");
    if (overlay_ != nullptr) {
      SFS_REQUIRE(overlay_->alive(queries[i].start),
                  "QueryEngine::run_batch: query " + std::to_string(i) +
                      " starts at a departed vertex");
      SFS_REQUIRE(overlay_->alive(queries[i].target),
                  "QueryEngine::run_batch: query " + std::to_string(i) +
                      " targets a departed vertex");
    }
  }
  if (queries.empty()) return;

  ensure_sessions(base::resolve_worker_count(threads));
  // Epoch contract: the overlay must hold still for the whole batch.
  const std::uint64_t epoch_at_start =
      overlay_ != nullptr ? overlay_->epoch() : 0;
  const LivenessView liveness =
      overlay_ != nullptr ? LivenessView{overlay_->vertex_alive_mask(),
                                         overlay_->edge_alive_mask()}
                          : LivenessView{};
  const bool weak = spec_->model == KnowledgeModel::kWeak;
  // Fan out over blocks of `interleave` queries. Each worker suspends its
  // block's searches and steps them round-robin: one drive step per lane
  // per sweep, so up to `interleave` independent walks keep their memory
  // accesses in flight at once. Streams depend only on (seed, plan, batch
  // index): identical results for any thread count or interleave width,
  // and replayable for a fixed batch.
  const std::size_t width = options_.interleave;
  const std::size_t blocks = (queries.size() + width - 1) / width;
  base::parallel_for(blocks, threads, [&](std::size_t b, std::size_t worker) {
    Session& session = *sessions_[worker];
    const std::size_t lo = b * width;
    const std::size_t count = std::min(width, queries.size() - lo);
    for (std::size_t k = 0; k < count; ++k) {
      Lane& lane = *session.lanes[k];
      const Query& q = queries[lo + k];
      lane.rng = rng::Rng(query_stream_seed(lo + k));
      // Drop any previous drive before re-emplacing the view it borrows.
      lane.weak_drive.reset();
      lane.strong_drive.reset();
      lane.view.emplace(*graph_, spec_->model, q.start, q.target,
                        lane.workspace, liveness);
      if (weak) {
        lane.weak_drive.emplace(*lane.view, *lane.weak, lane.rng,
                                options_.budget, options_.retry);
      } else {
        lane.strong_drive.emplace(*lane.view, *lane.strong, lane.rng,
                                  options_.budget, options_.retry);
      }
    }
    std::size_t active = count;
    while (active > 0) {
      for (std::size_t k = 0; k < count; ++k) {
        Lane& lane = *session.lanes[k];
        if (weak) {
          if (lane.weak_drive->done()) continue;
          if (!lane.weak_drive->step()) {
            results[lo + k] = lane.weak_drive->result();
            --active;
          }
        } else {
          if (lane.strong_drive->done()) continue;
          if (!lane.strong_drive->step()) {
            results[lo + k] = lane.strong_drive->result();
            --active;
          }
        }
      }
    }
  });
  if (overlay_ != nullptr) {
    SFS_CHECK(overlay_->epoch() == epoch_at_start,
              "QueryEngine::run_batch: overlay mutated while the batch was "
              "running (single-writer contract violated)");
  }
  queries_served_ += queries.size();
}

std::vector<SearchResult> QueryEngine::run_batch(std::span<const Query> queries,
                                                 std::size_t threads) {
  std::vector<SearchResult> results(queries.size());
  run_batch(queries, results, threads);
  return results;
}

}  // namespace sfs::search
