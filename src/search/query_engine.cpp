#include "search/query_engine.hpp"

#include <string>

#include "base/check.hpp"
#include "graph/overlay.hpp"
#include "rng/stream_audit.hpp"
#include "sim/parallel.hpp"
#include "sim/worker_context.hpp"

namespace sfs::search {

namespace {

// Per-query stream tag. Tempered through mix64 like the sweep's endpoint
// and policy tags (raw XOR tags alias across sessions whose seeds differ
// by a small XOR delta; see sim/sweep.cpp). The audit triple is
// (options.seed, kQueryStream, batch index).
const std::uint64_t kQueryStream = rng::mix64(0x10e57ULL);  // "lookup query"

}  // namespace

struct QueryEngine::Session {
  std::unique_ptr<WeakSearcher> weak;      // set iff model == kWeak
  std::unique_ptr<StrongSearcher> strong;  // set iff model == kStrong
  sim::WorkerContext ctx;
  /// Overlay epoch this session last served (0 = fresh; overlay epochs
  /// start at 1, so a fresh session over an overlay always rebuilds its
  /// searcher into a counted, known-good state).
  std::uint64_t overlay_epoch = 0;
};

void QueryEngine::bind_policy(std::string_view policy) {
  spec_ = PolicyRegistry::instance().find(policy);
  if (spec_ == nullptr) {
    throw std::invalid_argument(
        "QueryEngine: unknown policy '" + std::string(policy) +
        "' (see sfsearch_cli policies for the registry)");
  }
}

QueryEngine::QueryEngine(const graph::Graph& g, std::string_view policy,
                         QueryEngineOptions options)
    : graph_(&g), options_(options) {
  bind_policy(policy);
}

QueryEngine::QueryEngine(const graph::Overlay& overlay,
                         std::string_view policy, QueryEngineOptions options)
    : graph_(&overlay.snapshot()), overlay_(&overlay), options_(options) {
  bind_policy(policy);
}

QueryEngine::~QueryEngine() = default;

void QueryEngine::ensure_sessions(std::size_t workers) {
  while (sessions_.size() < workers) {
    auto session = std::make_unique<Session>();
    if (spec_->model == KnowledgeModel::kWeak) {
      session->weak = spec_->make_weak();
    } else {
      session->strong = spec_->make_strong();
    }
    sessions_.push_back(std::move(session));
  }
  if (overlay_ == nullptr) return;
  // Invalidation: any session that last served an older overlay epoch gets
  // a fresh searcher before this batch touches it. Sequential on purpose —
  // it runs before the fan-out, so the rebuild counter needs no locking.
  const std::uint64_t epoch = overlay_->epoch();
  for (std::size_t w = 0; w < workers; ++w) {
    Session& session = *sessions_[w];
    if (session.overlay_epoch == epoch) continue;
    if (spec_->model == KnowledgeModel::kWeak) {
      session.weak = spec_->make_weak();
    } else {
      session.strong = spec_->make_strong();
    }
    session.overlay_epoch = epoch;
    ++sessions_rebuilt_;
  }
}

void QueryEngine::run_batch(std::span<const Query> queries,
                            std::span<SearchResult> results,
                            std::size_t threads) {
  SFS_REQUIRE(results.size() == queries.size(),
              "QueryEngine::run_batch: results span must match the batch "
              "size");
  // Validate the whole batch before running any of it: a malformed query
  // in the middle of a parallel batch must not leave half-written results.
  const std::size_t n = graph_->num_vertices();
  if (overlay_ != nullptr) {
    SFS_REQUIRE(overlay_->staged_joins() == 0,
                "QueryEngine::run_batch: overlay has staged joins; compact "
                "before serving queries");
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    SFS_REQUIRE(queries[i].start < n && queries[i].target < n,
                "QueryEngine::run_batch: query " + std::to_string(i) +
                    " has endpoints outside the graph");
    if (overlay_ != nullptr) {
      SFS_REQUIRE(overlay_->alive(queries[i].start),
                  "QueryEngine::run_batch: query " + std::to_string(i) +
                      " starts at a departed vertex");
      SFS_REQUIRE(overlay_->alive(queries[i].target),
                  "QueryEngine::run_batch: query " + std::to_string(i) +
                      " targets a departed vertex");
    }
  }
  if (queries.empty()) return;

  ensure_sessions(sim::resolve_worker_count(threads));
  // Epoch contract: the overlay must hold still for the whole batch.
  const std::uint64_t epoch_at_start =
      overlay_ != nullptr ? overlay_->epoch() : 0;
  const LivenessView liveness =
      overlay_ != nullptr ? LivenessView{overlay_->vertex_alive_mask(),
                                         overlay_->edge_alive_mask()}
                          : LivenessView{};
  sim::parallel_for(
      queries.size(), threads, [&](std::size_t i, std::size_t worker) {
        Session& session = *sessions_[worker];
        // Streams depend only on (seed, batch index): identical for any
        // thread count, and replayable for a fixed batch.
        rng::Rng rng(rng::audited_stream_seed(options_.seed, kQueryStream, i));
        const Query& q = queries[i];
        if (overlay_ != nullptr) {
          if (spec_->model == KnowledgeModel::kWeak) {
            results[i] = run_weak_tolerant(
                *graph_, liveness, q.start, q.target, *session.weak, rng,
                options_.budget, options_.retry, session.ctx.workspace);
          } else {
            results[i] = run_strong_tolerant(
                *graph_, liveness, q.start, q.target, *session.strong, rng,
                options_.budget, options_.retry, session.ctx.workspace);
          }
        } else if (spec_->model == KnowledgeModel::kWeak) {
          results[i] = run_weak(*graph_, q.start, q.target, *session.weak,
                                rng, options_.budget, session.ctx.workspace);
        } else {
          results[i] = run_strong(*graph_, q.start, q.target, *session.strong,
                                  rng, options_.budget,
                                  session.ctx.workspace);
        }
      });
  if (overlay_ != nullptr) {
    SFS_CHECK(overlay_->epoch() == epoch_at_start,
              "QueryEngine::run_batch: overlay mutated while the batch was "
              "running (single-writer contract violated)");
  }
  queries_served_ += queries.size();
}

std::vector<SearchResult> QueryEngine::run_batch(std::span<const Query> queries,
                                                 std::size_t threads) {
  std::vector<SearchResult> results(queries.size());
  run_batch(queries, results, threads);
  return results;
}

}  // namespace sfs::search
