// Greedy geographic routing on the Kleinberg grid (Kle00).
//
// This is the *navigable* counterpoint to the paper's negative result: the
// greedy algorithm knows the lattice coordinates of every vertex (strictly
// more information than the paper's strong model) and still needs
// polynomial time unless the long-range exponent equals the lattice
// dimension.
#pragma once

#include <cstdint>

#include "gen/kleinberg.hpp"
#include "rng/random.hpp"

namespace sfs::search {

struct GreedyRouteResult {
  bool delivered = false;
  /// Hops taken (vertices visited minus one).
  std::size_t steps = 0;
};

/// Routes a message from `source` to `target` by always forwarding to the
/// neighbor (local or long-range, either edge direction) closest to the
/// target in lattice distance; ties broken toward the smallest vertex id.
/// On the torus the four local edges guarantee strict progress, so the
/// route always delivers; `max_steps` is a safety valve.
[[nodiscard]] GreedyRouteResult greedy_route(
    const gen::KleinbergGrid& grid, graph::VertexId source,
    graph::VertexId target,
    std::size_t max_steps = static_cast<std::size_t>(-1));

}  // namespace sfs::search
