// Weak-model search policies.
//
// The paper's lower bound holds for *every* weak-model algorithm, so the
// experiment suite runs a portfolio of natural policies and reports each —
// the observed minimum over the portfolio is the empirical counterpart of
// "no searching algorithm can do better than Ω(√n)":
//
//  * RandomWalkWeak     — uniform incident edge from the current vertex
//                         (Adamic et al.'s random-walk baseline).
//  * NoBacktrackWalkWeak— random walk that avoids the arrival edge when
//                         possible.
//  * BfsWeak            — exhaustive breadth-first frontier expansion; the
//                         canonical optimal-up-to-constants blind strategy.
//  * DfsWeak            — depth-first expansion.
//  * DegreeGreedyWeak   — expand an unexplored edge of the highest-degree
//                         discovered vertex (weak-model adaptation of
//                         Adamic et al.'s high-degree strategy).
//  * MinIdGreedyWeak    — expand the lowest-id (oldest) discovered vertex;
//                         exploits the age/degree correlation of evolving
//                         models to climb toward the core.
//  * MaxIdGreedyWeak    — expand the highest-id (youngest) discovered
//                         vertex; the natural "aim near the target id"
//                         heuristic, which the equivalence theorem dooms.
//  * RandomFrontierWeak — expand a uniformly random discovered vertex with
//                         unexplored edges.
#pragma once

#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "search/searcher.hpp"

namespace sfs::search {

/// Pure random walk; measured both in charged requests (distinct edges) and
/// raw steps.
class RandomWalkWeak final : public WeakSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override { return "random-walk"; }

 private:
  graph::VertexId current_ = graph::kNoVertex;
};

/// Random walk that never immediately re-traverses its arrival edge unless
/// the current vertex is a degree-1 dead end.
class NoBacktrackWalkWeak final : public WeakSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override {
    return "no-backtrack-walk";
  }

 private:
  graph::VertexId current_ = graph::kNoVertex;
  graph::EdgeId arrival_edge_ = graph::kNoEdge;
};

/// Breadth-first exhaustive exploration of the discovered region.
class BfsWeak final : public WeakSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override { return "bfs"; }

 private:
  std::deque<graph::VertexId> queue_;
};

/// Depth-first exploration.
class DfsWeak final : public WeakSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override { return "dfs"; }

 private:
  std::vector<graph::VertexId> stack_;
};

/// Priority-driven frontier expansion shared by the greedy policies: expand
/// the first unexplored edge of the discovered vertex maximizing a key.
class PriorityGreedyWeak : public WeakSearcher {
 public:
  /// Key function: larger key = expanded first.
  using Key = std::function<double(const LocalView&, graph::VertexId)>;

  PriorityGreedyWeak(Key key, std::string name);

  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  void push(const LocalView& view, graph::VertexId v);

  struct Entry {
    double key;
    graph::VertexId v;
    bool operator<(const Entry& other) const {
      // max-heap by key; ties broken toward smaller id for determinism.
      if (key != other.key) return key < other.key;
      return v > other.v;
    }
  };

  Key key_;
  std::string name_;
  std::priority_queue<Entry> heap_;
};

/// Expand the highest-degree discovered vertex first (Adamic-style).
[[nodiscard]] std::unique_ptr<WeakSearcher> make_degree_greedy_weak();

/// Expand the oldest (smallest-id) discovered vertex first.
[[nodiscard]] std::unique_ptr<WeakSearcher> make_min_id_greedy_weak();

/// Expand the youngest (largest-id) discovered vertex first.
[[nodiscard]] std::unique_ptr<WeakSearcher> make_max_id_greedy_weak();

/// Walk that explores an unexplored incident edge whenever the current
/// vertex has one, and otherwise moves along a uniformly random (already
/// explored, hence free) incident edge — a self-propelled frontier seeker
/// midway between the pure walk and BFS.
class FrontierWalkWeak final : public WeakSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override { return "frontier-walk"; }

 private:
  graph::VertexId current_ = graph::kNoVertex;
};

/// Expand a uniformly random discovered vertex with unexplored edges.
class RandomFrontierWeak final : public WeakSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<WeakRequest> next(const LocalView& view,
                                  rng::Rng& rng) override;
  void observe(const LocalView& view, const WeakRequest& request,
               graph::VertexId revealed) override;
  [[nodiscard]] std::string name() const override {
    return "random-frontier";
  }

 private:
  std::vector<graph::VertexId> frontier_;
};

/// The full weak-model portfolio used by the experiments: every weak
/// policy in the policy registry (search/policy.hpp), in registration
/// order. Equivalent to make_weak_searchers(resolve_policies(kWeak, {})).
[[nodiscard]] std::vector<std::unique_ptr<WeakSearcher>> weak_portfolio();

/// Names in the same order as weak_portfolio().
[[nodiscard]] std::vector<std::string> weak_portfolio_names();

}  // namespace sfs::search
