#include "search/policy.hpp"

#include <utility>

#include "base/check.hpp"
#include "search/simulate.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"

namespace sfs::search {

std::string_view model_name(KnowledgeModel model) noexcept {
  return model == KnowledgeModel::kWeak ? "weak" : "strong";
}

void PolicyRegistry::add(PolicySpec spec) {
  SFS_REQUIRE(!spec.name.empty(), "policy registration: empty name");
  const bool weak = spec.model == KnowledgeModel::kWeak;
  SFS_REQUIRE(!weak || (spec.make_weak && !spec.make_strong),
              "policy registration: '" + spec.name +
                  "' is tagged weak, so exactly make_weak must be set");
  SFS_REQUIRE(weak || (spec.make_strong && !spec.make_weak),
              "policy registration: '" + spec.name +
                  "' is tagged strong, so exactly make_strong must be set");
  for (const auto& existing : specs_) {
    SFS_REQUIRE(existing.name != spec.name,
                "policy registration: duplicate name '" + spec.name + "'");
  }
  specs_.push_back(std::move(spec));
}

const PolicySpec* PolicyRegistry::find(std::string_view name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const PolicySpec*> PolicyRegistry::all() const {
  std::vector<const PolicySpec*> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(&spec);
  return out;
}

std::vector<const PolicySpec*> PolicyRegistry::all(
    KnowledgeModel model) const {
  std::vector<const PolicySpec*> out;
  for (const auto& spec : specs_) {
    if (spec.model == model) out.push_back(&spec);
  }
  return out;
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistrar::PolicyRegistrar(PolicySpec spec) {
  PolicyRegistry::instance().add(std::move(spec));
}

std::vector<const PolicySpec*> resolve_policies(
    KnowledgeModel model, std::span<const std::string> names) {
  const auto& registry = PolicyRegistry::instance();
  if (names.empty()) {
    auto out = registry.all(model);
    SFS_REQUIRE(!out.empty(), std::string("no registered policies for the ") +
                                  std::string(model_name(model)) + " model");
    return out;
  }
  std::vector<const PolicySpec*> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    const PolicySpec* spec = registry.find(name);
    SFS_REQUIRE(spec != nullptr,
                "unknown policy '" + name +
                    "' (see sfsearch_cli policies for the registry)");
    SFS_REQUIRE(spec->model == model,
                "policy '" + name + "' is a " +
                    std::string(model_name(spec->model)) +
                    "-model policy, but the run requests the " +
                    std::string(model_name(model)) + " model");
    for (const auto* seen : out) {
      SFS_REQUIRE(seen != spec,
                  "policy '" + name + "' selected more than once");
    }
    out.push_back(spec);
  }
  return out;
}

std::vector<std::unique_ptr<WeakSearcher>> make_weak_searchers(
    std::span<const PolicySpec* const> specs) {
  std::vector<std::unique_ptr<WeakSearcher>> out;
  out.reserve(specs.size());
  for (const auto* spec : specs) {
    SFS_REQUIRE(spec->model == KnowledgeModel::kWeak && spec->make_weak,
                "policy '" + spec->name + "' is not a weak-model policy");
    out.push_back(spec->make_weak());
  }
  return out;
}

std::vector<std::unique_ptr<StrongSearcher>> make_strong_searchers(
    std::span<const PolicySpec* const> specs) {
  std::vector<std::unique_ptr<StrongSearcher>> out;
  out.reserve(specs.size());
  for (const auto* spec : specs) {
    SFS_REQUIRE(spec->model == KnowledgeModel::kStrong && spec->make_strong,
                "policy '" + spec->name + "' is not a strong-model policy");
    out.push_back(spec->make_strong());
  }
  return out;
}

// --------------------------------------------------------------- built-ins
//
// Registration order within each model IS the model's full-portfolio order
// and reproduces the legacy weak_portfolio() / strong_portfolio() lists
// bit-for-bit (the portfolio engine tags each policy's RNG stream by its
// portfolio index). Append new policies at the end of their model's block.

namespace {

PolicySpec weak_spec(std::string name, std::string description,
                     std::function<std::unique_ptr<WeakSearcher>()> make) {
  PolicySpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.model = KnowledgeModel::kWeak;
  spec.make_weak = std::move(make);
  return spec;
}

PolicySpec strong_spec(std::string name, std::string description,
                       std::function<std::unique_ptr<StrongSearcher>()> make) {
  PolicySpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.model = KnowledgeModel::kStrong;
  spec.make_strong = std::move(make);
  return spec;
}

const PolicyRegistrar reg_builtins[] = {
    // Weak model, legacy weak_portfolio() order.
    PolicyRegistrar(weak_spec(
        "bfs", "exhaustive breadth-first frontier expansion",
        [] { return std::make_unique<BfsWeak>(); })),
    PolicyRegistrar(weak_spec(
        "dfs", "depth-first frontier expansion",
        [] { return std::make_unique<DfsWeak>(); })),
    PolicyRegistrar(weak_spec(
        "degree-greedy",
        "expand an unexplored edge of the highest-degree discovered vertex "
        "(Adamic et al.)",
        make_degree_greedy_weak)),
    PolicyRegistrar(weak_spec(
        "min-id-greedy",
        "expand the oldest (smallest-id) discovered vertex first",
        make_min_id_greedy_weak)),
    PolicyRegistrar(weak_spec(
        "max-id-greedy",
        "expand the youngest (largest-id) discovered vertex first",
        make_max_id_greedy_weak)),
    PolicyRegistrar(weak_spec(
        "random-frontier",
        "expand a uniformly random discovered vertex with unexplored edges",
        [] { return std::make_unique<RandomFrontierWeak>(); })),
    PolicyRegistrar(weak_spec(
        "frontier-walk",
        "walk that explores an unexplored incident edge when one exists, "
        "else moves along a random explored edge",
        [] { return std::make_unique<FrontierWalkWeak>(); })),
    PolicyRegistrar(weak_spec(
        "no-backtrack-walk",
        "random walk avoiding the arrival edge when possible",
        [] { return std::make_unique<NoBacktrackWalkWeak>(); })),
    PolicyRegistrar(weak_spec(
        "random-walk", "uniform random walk over incident edges",
        [] { return std::make_unique<RandomWalkWeak>(); })),
    PolicyRegistrar(weak_spec(
        "weak-sim(degree-greedy-strong)",
        "weak-model simulation of the strong degree-greedy policy "
        "(equivalence theorem construction)",
        make_simulated_degree_greedy)),

    // Strong model, legacy strong_portfolio() order.
    PolicyRegistrar(strong_spec(
        "degree-greedy-strong",
        "request the highest-known-degree vertex first (Adamic et al. "
        "high-degree search)",
        make_degree_greedy_strong)),
    PolicyRegistrar(strong_spec(
        "bfs-strong", "request vertices in discovery order (ball growing)",
        [] { return std::make_unique<BfsStrong>(); })),
    PolicyRegistrar(strong_spec(
        "random-strong", "request a uniformly random known unrequested vertex",
        [] { return std::make_unique<RandomStrong>(); })),
    PolicyRegistrar(strong_spec(
        "min-id-strong", "request the oldest known vertex first",
        make_min_id_strong)),
    PolicyRegistrar(strong_spec(
        "max-id-strong", "request the youngest known vertex first",
        make_max_id_strong)),
};

}  // namespace

// The legacy portfolio lists, now registry-backed: one source of truth for
// portfolio membership and order.

std::vector<std::unique_ptr<WeakSearcher>> weak_portfolio() {
  return make_weak_searchers(
      resolve_policies(KnowledgeModel::kWeak, {}));
}

std::vector<std::string> weak_portfolio_names() {
  std::vector<std::string> names;
  for (const auto* spec : resolve_policies(KnowledgeModel::kWeak, {})) {
    names.push_back(spec->name);
  }
  return names;
}

std::vector<std::unique_ptr<StrongSearcher>> strong_portfolio() {
  return make_strong_searchers(
      resolve_policies(KnowledgeModel::kStrong, {}));
}

}  // namespace sfs::search
