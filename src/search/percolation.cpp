#include "search/percolation.hpp"

#include <vector>

namespace sfs::search {

using graph::EdgeId;
using graph::VertexId;

namespace {

/// Appends the vertices of a `len`-step random walk from `from` (excluding
/// `from` itself) to `out`, marking them in `mark`. Returns steps taken
/// (may stop early at an isolated vertex).
std::size_t random_walk_implant(const graph::Graph& g, VertexId from,
                                std::size_t len, std::vector<bool>& mark,
                                std::vector<VertexId>& out, rng::Rng& rng) {
  VertexId current = from;
  std::size_t steps = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const auto adj = g.adjacent(current);
    if (adj.empty()) break;
    current = adj[static_cast<std::size_t>(rng.uniform_index(adj.size()))];
    ++steps;
    if (!mark[current]) {
      mark[current] = true;
      out.push_back(current);
    }
  }
  return steps;
}

}  // namespace

PercolationResult percolation_search(const graph::Graph& g, VertexId owner,
                                     VertexId requester,
                                     const PercolationParams& params,
                                     rng::Rng& rng) {
  SFS_REQUIRE(owner < g.num_vertices() && requester < g.num_vertices(),
              "owner/requester out of range");
  SFS_REQUIRE(params.edge_prob >= 0.0 && params.edge_prob <= 1.0,
              "edge probability out of [0,1]");

  PercolationResult r;

  // 1. Content implantation.
  std::vector<bool> has_replica(g.num_vertices(), false);
  std::vector<VertexId> replicas;
  has_replica[owner] = true;
  replicas.push_back(owner);
  r.messages += random_walk_implant(g, owner, params.replication_walk,
                                    has_replica, replicas, rng);
  r.replicas = replicas.size();

  // 2. Query implantation.
  std::vector<bool> reached(g.num_vertices(), false);
  std::vector<VertexId> frontier;
  reached[requester] = true;
  frontier.push_back(requester);
  r.messages += random_walk_implant(g, requester, params.query_walk, reached,
                                    frontier, rng);

  // 3. Bond-percolation broadcast (BFS where each directed forwarding of an
  // edge fires independently with probability q_e; an edge may be tried
  // from both sides, matching the message-passing protocol).
  std::size_t head = 0;
  bool found = false;
  for (const VertexId v : frontier) {
    if (has_replica[v]) found = true;
  }
  while (head < frontier.size() && !found) {
    const VertexId u = frontier[head++];
    for (const VertexId v : g.adjacent(u)) {
      if (!rng.bernoulli(params.edge_prob)) continue;
      ++r.messages;
      if (reached[v]) continue;
      reached[v] = true;
      frontier.push_back(v);
      if (has_replica[v]) {
        found = true;
        break;
      }
    }
  }
  r.found = found;
  r.vertices_reached = frontier.size();
  return r;
}

}  // namespace sfs::search
