// LocalView: the information mediator between a search algorithm and the
// hidden graph, implementing the paper's two local-knowledge models.
//
// From the paper (§1, "Modeling the searching process"):
//
//   "In both models, the searching process has access to a list of already
//    discovered vertices (initially reduced to a single vertex), each with
//    its degree and a list of incident edges. At each time step, the
//    searching process can try to discover a new vertex by making a
//    request. In the weak model, a request is in the form of a pair (u, e),
//    where u is an already discovered vertex, and e is an edge incident to
//    u. The answer to the request is the identity v of the other endpoint
//    of edge e, together with the list of all edges incident to v. In the
//    strong model, a request is in the form of a vertex u that is adjacent
//    to an already discovered vertex, and the answer consists of the list
//    of vertices adjacent to u, together with their respective lists of
//    incident edges. Our measure of performance is the number of requests
//    made prior to stopping."
//
// Accounting convention: a request whose answer is already implied by past
// answers (re-requesting an explored edge, or a strong request for an
// already-requested vertex) is served from cache and NOT charged — an
// optimal process never repeats itself, and the paper's lower bounds count
// distinct discoveries. The raw count including repeats is also kept, since
// the Adamic et al. random-walk baseline is traditionally measured in steps.
//
// The view also maintains the discovery forest (who revealed whom), from
// which the found path start -> target is extracted, satisfying the paper's
// goal of "finding a path to vertex n".
//
// Allocation model: all per-search state lives in a SearchWorkspace whose
// arrays are epoch-stamped, so starting a new search over a same-size graph
// is O(1) — no clearing, no reallocation. A LocalView either borrows a
// caller-owned workspace (the Monte-Carlo replication engines reuse one per
// worker thread across thousands of runs) or lazily owns a private one (the
// convenient single-run path, identical behavior).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "base/check.hpp"
#include "base/prefetch.hpp"
#include "graph/graph.hpp"

namespace sfs::search {

enum class KnowledgeModel {
  kWeak,
  kStrong,
};

/// A weak-model request: reveal the far endpoint of edge `e` from vertex
/// `u`.
///
/// `slot` is an optional performance hint: the incidence-span index of `e`
/// at `u` (incident(u)[slot] == e). Policies that picked the edge by
/// indexing the span (walks, cursor scans) already hold the index; passing
/// it lets the view resolve the far endpoint from the adjacency span it is
/// streaming anyway instead of a random load into the edge array. Purely
/// an optimization: accounting and results are bit-identical with or
/// without the hint, and equality ignores it.
struct WeakRequest {
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  graph::VertexId u = graph::kNoVertex;
  graph::EdgeId e = graph::kNoEdge;
  std::uint32_t slot = kNoSlot;

  friend bool operator==(const WeakRequest& a, const WeakRequest& b) {
    return a.u == b.u && a.e == b.e;  // slot is a hint, not identity
  }
};

/// Liveness masks overlaying the searched snapshot (one byte per vertex /
/// per edge id, nonzero = alive; graph::Overlay::vertex_alive_mask() and
/// edge_alive_mask() produce them). An empty span means "all alive", so a
/// default-constructed LivenessView is the static-graph case and adds no
/// work to the hot path. The spans must outlive the LocalView and must not
/// be mutated while a search is running (the Overlay single-writer
/// contract).
///
/// Under a mask, requests can FAIL: probing a dead link or a departed
/// peer returns no discovery (see request_edge / request_vertex_span).
/// Failures model stale routing tables — the searcher only learns a
/// neighbor is gone by spending a probe on it.
struct LivenessView {
  std::span<const std::uint8_t> vertex_alive{};  // empty = all alive
  std::span<const std::uint8_t> edge_alive{};    // empty = all alive

  [[nodiscard]] bool vertex_ok(graph::VertexId v) const noexcept {
    return vertex_alive.empty() || vertex_alive[v] != 0;
  }
  [[nodiscard]] bool edge_ok(graph::EdgeId e) const noexcept {
    return edge_alive.empty() || edge_alive[e] != 0;
  }
};

/// Reusable per-search scratch state. The known/explored/requested flags
/// are stamped with the run epoch instead of being booleans: a slot is
/// "set" iff its stamp equals the current epoch, so resetting between runs
/// is a single epoch increment (arrays are only re-zeroed on the ~2^32-run
/// stamp wraparound, and only grow when a larger graph arrives).
///
/// A workspace may be bound to at most one live LocalView at a time; it is
/// not thread-safe (use one per worker).
class SearchWorkspace {
 public:
  SearchWorkspace() = default;

  // Not copyable or movable: a live LocalView holds a raw pointer to its
  // workspace, so relocating one would dangle the view.
  SearchWorkspace(const SearchWorkspace&) = delete;
  SearchWorkspace& operator=(const SearchWorkspace&) = delete;
  SearchWorkspace(SearchWorkspace&&) = delete;
  SearchWorkspace& operator=(SearchWorkspace&&) = delete;

  /// The current run-epoch stamp (test/debug observability; 0 means no run
  /// has started yet or the counter was just wrap-reset).
  [[nodiscard]] std::uint32_t debug_epoch() const noexcept { return epoch_; }

  /// Test hook: fast-forwards the run-epoch counter so the wrap-around
  /// guard in begin_run can be exercised without ~2^32 real runs. Forward
  /// only (a backward jump could alias live stamps as belonging to a
  /// not-yet-started run, which is exactly the bug the guard prevents).
  /// Must not be called while a LocalView is live on this workspace.
  void debug_fast_forward_epoch(std::uint32_t epoch);

 private:
  friend class LocalView;

  /// Starts a fresh run over a graph with `n` vertices and `m` edges.
  void begin_run(std::size_t n, std::size_t m);

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> known_stamp_;      // size >= n
  std::vector<std::uint32_t> explored_stamp_;   // size >= m
  std::vector<std::uint32_t> requested_stamp_;  // size >= n (strong model)
  std::vector<std::uint32_t> unexplored_cursor_;  // valid for known vertices
  std::vector<graph::VertexId> parent_;           // valid for known vertices
  std::vector<graph::VertexId> known_order_;      // cleared per run
};

class LocalView {
 public:
  /// Starts a search over `g` from `start` for `target` with a private
  /// workspace. The view holds a reference to `g`; the graph must outlive
  /// the view. A non-default `liveness` makes the view departure-tolerant
  /// (masks must match the graph's sizes; start and target must be alive).
  LocalView(const graph::Graph& g, KnowledgeModel model, graph::VertexId start,
            graph::VertexId target, LivenessView liveness = {});

  /// Same, but reuses the caller's workspace (zero-allocation when the
  /// workspace has already served a graph at least this large). The
  /// workspace must outlive the view and must not be shared with another
  /// live view.
  LocalView(const graph::Graph& g, KnowledgeModel model, graph::VertexId start,
            graph::VertexId target, SearchWorkspace& workspace,
            LivenessView liveness = {});

  [[nodiscard]] KnowledgeModel model() const noexcept { return model_; }
  [[nodiscard]] graph::VertexId start() const noexcept { return start_; }
  [[nodiscard]] graph::VertexId target() const noexcept { return target_; }
  [[nodiscard]] const LivenessView& liveness() const noexcept {
    return liveness_;
  }

  /// Global vertex count. The paper's processes know the id range [1, n],
  /// so exposing n leaks nothing beyond the model.
  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return graph_->num_vertices();
  }

  // ------------------------------------------------------------------
  // Knowledge accessors (legal for *known* vertices only).
  // ------------------------------------------------------------------

  /// Vertices whose identity, degree and incident edge list are currently
  /// known, in discovery order (the first element is start()).
  [[nodiscard]] std::span<const graph::VertexId> known_vertices()
      const noexcept {
    return ws_->known_order_;
  }

  [[nodiscard]] bool is_known(graph::VertexId v) const;

  /// Degree of a known vertex (self-loops count twice, as in Graph).
  [[nodiscard]] std::size_t degree(graph::VertexId v) const;

  /// Incident edge ids of a known vertex.
  [[nodiscard]] std::span<const graph::EdgeId> incident(
      graph::VertexId v) const;

  /// Whether both endpoints of `e` have been revealed.
  [[nodiscard]] bool edge_explored(graph::EdgeId e) const;

  /// The far endpoint of `e` as seen from `u`, if already revealed.
  [[nodiscard]] std::optional<graph::VertexId> far_endpoint(
      graph::EdgeId e, graph::VertexId u) const;

  /// First incident edge of known vertex `v` that is not yet explored, if
  /// any. Amortized O(deg) over the whole search via a monotone cursor.
  [[nodiscard]] std::optional<graph::EdgeId> first_unexplored(
      graph::VertexId v) const;

  /// Incidence-span index of first_unexplored(v), if any — the natural
  /// `slot` hint for a WeakRequest built from the cursor scan.
  [[nodiscard]] std::optional<std::uint32_t> first_unexplored_slot(
      graph::VertexId v) const;

  /// True if `v` (known) has at least one unexplored incident edge.
  [[nodiscard]] bool has_unexplored(graph::VertexId v) const {
    return first_unexplored(v).has_value();
  }

  // ------------------------------------------------------------------
  // Requests.
  // ------------------------------------------------------------------

  /// Weak-model request (u, e): requires model() == kWeak, `u` known and
  /// `e` incident to `u`. Returns the identity of the far endpoint, which
  /// becomes known. Charged once per edge.
  ///
  /// Under a liveness mask the probe FAILS (returns kNoVertex, reveals
  /// nothing, counts toward failed_requests() but is never charged) when
  /// the edge is dead or its far endpoint has departed; the edge is marked
  /// explored so the searcher does not re-probe a known-dead link. Dead
  /// vertices are thus never known in the weak model.
  graph::VertexId request_edge(graph::VertexId u, graph::EdgeId e);
  graph::VertexId request_edge(const WeakRequest& r) {
    return r.slot == WeakRequest::kNoSlot ? request_edge(r.u, r.e)
                                          : request_incident(r.u, r.slot, r.e);
  }

  /// request_edge through a slot hint: `slot` indexes `u`'s incidence span
  /// and must name `e` (incident(u)[slot] == e). Identical semantics and
  /// accounting to request_edge(u, e); the far endpoint comes from the
  /// adjacency span instead of the edge array.
  graph::VertexId request_incident(graph::VertexId u, std::uint32_t slot,
                                   graph::EdgeId e);

  /// Strong-model request: requires model() == kStrong and `u` known (the
  /// start vertex is known from the outset). All neighbors of `u` become
  /// known. Returns the neighbor identities (multiset, loop gives u).
  /// Charged once per vertex.
  ///
  /// Under a liveness mask, requesting a departed vertex FAILS (empty
  /// result, failed_requests()++, never charged; `u` is marked requested
  /// so policies skip it from then on). Opening a live vertex skips
  /// dead-link slots — their endpoints stay invisible — but DOES reveal
  /// departed endpoints reachable over live edges: neighbor tables are
  /// stale, so the searcher learns those identities and only discovers
  /// the departure by probing them.
  std::vector<graph::VertexId> request_vertex(graph::VertexId u);

  /// Allocation-free variant of request_vertex: the returned span aliases
  /// the graph's CSR neighbor payload and stays valid for the graph's
  /// lifetime. Note: under a liveness mask the span is the *stale* CSR
  /// neighbor table (it still lists endpoints behind dead links, which are
  /// not revealed); consult is_known()/known_vertices() for what a failed
  /// or filtered request actually disclosed. On a failed request the span
  /// is empty.
  std::span<const graph::VertexId> request_vertex_span(graph::VertexId u);

  /// Whether `u` is "fully opened": in the strong model, already the
  /// subject of a charged request; in the weak model, known with every
  /// incident edge explored (the state a simulated strong request leaves a
  /// vertex in — see search/simulate.hpp).
  [[nodiscard]] bool vertex_requested(graph::VertexId u) const;

  // ------------------------------------------------------------------
  // Accounting and outcome.
  // ------------------------------------------------------------------

  /// Charged (novel) requests so far.
  [[nodiscard]] std::size_t requests() const noexcept { return requests_; }
  /// All requests including cached repeats.
  [[nodiscard]] std::size_t raw_requests() const noexcept {
    return raw_requests_;
  }
  /// Requests that failed against the liveness mask (dead link / departed
  /// peer). Failed probes count toward raw_requests() but are never
  /// charged; always 0 without a mask.
  [[nodiscard]] std::size_t failed_requests() const noexcept {
    return failed_requests_;
  }

  /// True once the target's identity is known (also true immediately if
  /// start == target).
  [[nodiscard]] bool target_found() const;

  /// Path start -> target through the discovery forest; empty unless
  /// target_found(). Every consecutive pair is joined by an edge of the
  /// graph.
  [[nodiscard]] std::vector<graph::VertexId> discovery_path() const;

  /// Vertex that first revealed `v` (kNoVertex for start or unknown `v`).
  [[nodiscard]] graph::VertexId discoverer(graph::VertexId v) const;

 private:
  void make_known(graph::VertexId v, graph::VertexId via);
  [[nodiscard]] bool known(graph::VertexId v) const noexcept {
    return ws_->known_stamp_[v] == ws_->epoch_;
  }
  [[nodiscard]] bool explored(graph::EdgeId e) const noexcept {
    return ws_->explored_stamp_[e] == ws_->epoch_;
  }

  const graph::Graph* graph_;
  KnowledgeModel model_;
  graph::VertexId start_;
  graph::VertexId target_;
  LivenessView liveness_;

  std::unique_ptr<SearchWorkspace> owned_;  // null when borrowing
  SearchWorkspace* ws_;

  std::size_t requests_ = 0;
  std::size_t raw_requests_ = 0;
  std::size_t failed_requests_ = 0;
};

// ---------------------------------------------------------------------
// Inline hot-path accessors. These sit on the per-probe path of every
// weak-model policy (one slot scan + one incidence read per decision);
// keeping them header-inline lets the drive loop fold them into the
// probe instead of paying an out-of-line call each.
// ---------------------------------------------------------------------

inline bool LocalView::is_known(graph::VertexId v) const {
  SFS_REQUIRE(v < graph_->num_vertices(), "vertex out of range");
  return known(v);
}

inline std::span<const graph::EdgeId> LocalView::incident(
    graph::VertexId v) const {
  SFS_REQUIRE(is_known(v), "incident edges of an unknown vertex");
  return graph_->incident(v);
}

inline std::optional<std::uint32_t> LocalView::first_unexplored_slot(
    graph::VertexId v) const {
  SFS_REQUIRE(is_known(v), "first_unexplored of an unknown vertex");
  const auto inc = graph_->incident(v);
  auto& cur = ws_->unexplored_cursor_[v];
  while (cur < inc.size() && explored(inc[cur])) {
    ++cur;
    if (cur + 2 < inc.size()) {
      // The stamp reads above are the scan's only random accesses;
      // overlap the next ones with this iteration's work.
      base::prefetch(&ws_->explored_stamp_[inc[cur + 2]]);
    }
  }
  if (cur >= inc.size()) return std::nullopt;
  return cur;
}

inline std::optional<graph::EdgeId> LocalView::first_unexplored(
    graph::VertexId v) const {
  const auto s = first_unexplored_slot(v);
  if (!s) return std::nullopt;
  return graph_->incident(v)[*s];
}

}  // namespace sfs::search
