#include "search/weak_algorithms.hpp"

#include <algorithm>

#include "search/simulate.hpp"

namespace sfs::search {

using graph::EdgeId;
using graph::kNoEdge;
using graph::kNoVertex;
using graph::VertexId;

// ---------------------------------------------------------------- walks

void RandomWalkWeak::start(const LocalView& view, rng::Rng&) {
  current_ = view.start();
}

std::optional<WeakRequest> RandomWalkWeak::next(const LocalView& view,
                                                rng::Rng& rng) {
  const auto inc = view.incident(current_);
  if (inc.empty()) return std::nullopt;  // isolated start: stuck
  // The drawn index doubles as the slot hint.
  const auto slot = static_cast<std::uint32_t>(rng.uniform_index(inc.size()));
  return WeakRequest{current_, inc[slot], slot};
}

void RandomWalkWeak::observe(const LocalView&, const WeakRequest&,
                             VertexId revealed) {
  current_ = revealed;
}

void NoBacktrackWalkWeak::start(const LocalView& view, rng::Rng&) {
  current_ = view.start();
  arrival_edge_ = kNoEdge;
}

std::optional<WeakRequest> NoBacktrackWalkWeak::next(const LocalView& view,
                                                     rng::Rng& rng) {
  const auto inc = view.incident(current_);
  if (inc.empty()) return std::nullopt;
  if (inc.size() == 1) return WeakRequest{current_, inc[0], 0};
  // Choose uniformly among incident edges other than the arrival edge.
  std::uint32_t slot;
  do {
    slot = static_cast<std::uint32_t>(rng.uniform_index(inc.size()));
  } while (inc[slot] == arrival_edge_);
  return WeakRequest{current_, inc[slot], slot};
}

void NoBacktrackWalkWeak::observe(const LocalView&,
                                  const WeakRequest& request,
                                  VertexId revealed) {
  current_ = revealed;
  arrival_edge_ = request.e;
}

// ---------------------------------------------------------------- bfs/dfs

void BfsWeak::start(const LocalView& view, rng::Rng&) {
  queue_.clear();
  queue_.push_back(view.start());
}

std::optional<WeakRequest> BfsWeak::next(const LocalView& view, rng::Rng&) {
  while (!queue_.empty()) {
    const VertexId v = queue_.front();
    if (const auto s = view.first_unexplored_slot(v)) {
      return WeakRequest{v, view.incident(v)[*s], *s};
    }
    queue_.pop_front();
  }
  return std::nullopt;
}

void BfsWeak::observe(const LocalView&, const WeakRequest&,
                      VertexId revealed) {
  // Duplicates are harmless: an exhausted vertex is popped by next() when
  // first_unexplored comes back empty, so total queue churn stays O(m).
  queue_.push_back(revealed);
}

void DfsWeak::start(const LocalView& view, rng::Rng&) {
  stack_.clear();
  stack_.push_back(view.start());
}

std::optional<WeakRequest> DfsWeak::next(const LocalView& view, rng::Rng&) {
  while (!stack_.empty()) {
    const VertexId v = stack_.back();
    if (const auto s = view.first_unexplored_slot(v)) {
      return WeakRequest{v, view.incident(v)[*s], *s};
    }
    stack_.pop_back();
  }
  return std::nullopt;
}

void DfsWeak::observe(const LocalView&, const WeakRequest&,
                      VertexId revealed) {
  stack_.push_back(revealed);
}

// ---------------------------------------------------------------- greedy

PriorityGreedyWeak::PriorityGreedyWeak(Key key, std::string name)
    : key_(std::move(key)), name_(std::move(name)) {}

void PriorityGreedyWeak::start(const LocalView& view, rng::Rng&) {
  heap_ = {};
  push(view, view.start());
}

void PriorityGreedyWeak::push(const LocalView& view, VertexId v) {
  heap_.push(Entry{key_(view, v), v});
}

std::optional<WeakRequest> PriorityGreedyWeak::next(const LocalView& view,
                                                    rng::Rng&) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    if (const auto s = view.first_unexplored_slot(top.v)) {
      return WeakRequest{top.v, view.incident(top.v)[*s], *s};
    }
    heap_.pop();  // exhausted vertex
  }
  return std::nullopt;
}

void PriorityGreedyWeak::observe(const LocalView& view, const WeakRequest&,
                                 VertexId revealed) {
  // A vertex may be pushed more than once (revealed via several edges);
  // the exhaustion check in next() makes duplicates harmless.
  push(view, revealed);
}

std::unique_ptr<WeakSearcher> make_degree_greedy_weak() {
  return std::make_unique<PriorityGreedyWeak>(
      [](const LocalView& view, VertexId v) {
        return static_cast<double>(view.degree(v));
      },
      "degree-greedy");
}

std::unique_ptr<WeakSearcher> make_min_id_greedy_weak() {
  return std::make_unique<PriorityGreedyWeak>(
      [](const LocalView&, VertexId v) { return -static_cast<double>(v); },
      "min-id-greedy");
}

std::unique_ptr<WeakSearcher> make_max_id_greedy_weak() {
  return std::make_unique<PriorityGreedyWeak>(
      [](const LocalView&, VertexId v) { return static_cast<double>(v); },
      "max-id-greedy");
}

// ---------------------------------------------------------------- frontier

void FrontierWalkWeak::start(const LocalView& view, rng::Rng&) {
  current_ = view.start();
}

std::optional<WeakRequest> FrontierWalkWeak::next(const LocalView& view,
                                                  rng::Rng& rng) {
  if (const auto s = view.first_unexplored_slot(current_)) {
    return WeakRequest{current_, view.incident(current_)[*s], *s};
  }
  const auto inc = view.incident(current_);
  if (inc.empty()) return std::nullopt;
  // All incident edges explored: drift along one (free, raw-only request).
  const auto slot = static_cast<std::uint32_t>(rng.uniform_index(inc.size()));
  return WeakRequest{current_, inc[slot], slot};
}

void FrontierWalkWeak::observe(const LocalView&, const WeakRequest&,
                               VertexId revealed) {
  current_ = revealed;
}

void RandomFrontierWeak::start(const LocalView& view, rng::Rng&) {
  frontier_ = {view.start()};
}

std::optional<WeakRequest> RandomFrontierWeak::next(const LocalView& view,
                                                    rng::Rng& rng) {
  while (!frontier_.empty()) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform_index(frontier_.size()));
    const VertexId v = frontier_[idx];
    if (const auto s = view.first_unexplored_slot(v)) {
      return WeakRequest{v, view.incident(v)[*s], *s};
    }
    // Exhausted: swap-remove and retry.
    frontier_[idx] = frontier_.back();
    frontier_.pop_back();
  }
  return std::nullopt;
}

void RandomFrontierWeak::observe(const LocalView&, const WeakRequest&,
                                 VertexId revealed) {
  frontier_.push_back(revealed);
}

// The portfolio lists (weak_portfolio, weak_portfolio_names) are defined
// in policy.cpp, backed by the policy registry.

}  // namespace sfs::search
