// Drives a searcher against a LocalView until the target is found, the
// policy gives up, or a budget is exhausted.
//
// The *_tolerant variants run the same loop against a liveness-masked view
// (graph::Overlay masks): failed probes (dead link / departed peer) are
// absorbed by a bounded RetryBudget instead of being surfaced to the
// policy — the policy only ever observes successful answers, and a search
// that keeps stranding is restarted (policy state reset, discovered
// knowledge retained) and finally abandoned. With empty masks the failure
// branch is unreachable and consumes no randomness, so a tolerant run
// over an all-alive overlay is bit-identical to the static run — the
// churn-rate-0 acceptance invariant.
#pragma once

#include <cstdint>
#include <limits>

#include "search/searcher.hpp"

namespace sfs::search {

struct RunBudget {
  /// Cap on charged requests (distinct discoveries). The weak model can
  /// charge at most m requests and the strong model at most n, so the
  /// default of "no cap" always terminates for exhaustive policies.
  std::size_t max_requests = std::numeric_limits<std::size_t>::max();
  /// Cap on raw requests including cached repeats; this is what stops a
  /// random walk that keeps re-traversing known edges.
  std::size_t max_raw_requests = std::numeric_limits<std::size_t>::max();
};

/// Bounds on how much probe failure a tolerant run absorbs before
/// escalating. Failures are "consecutive" across requests: any successful
/// probe resets the streak.
struct RetryBudget {
  /// Failed probes in a row tolerated before the policy is restarted
  /// (searcher.start() again; the view keeps everything discovered so
  /// far, so a restart re-plans rather than re-pays).
  std::size_t max_consecutive_failures = 8;
  /// Restarts allowed before the search is abandoned outright.
  std::size_t max_restarts = 2;
};

struct SearchResult {
  bool found = false;
  /// Charged requests when the search stopped.
  std::size_t requests = 0;
  /// Raw requests (incl. repeats) when the search stopped.
  std::size_t raw_requests = 0;
  /// Probes that failed against the liveness mask (always 0 for static
  /// runs).
  std::size_t failed_requests = 0;
  /// Number of edges of the discovered start->target path (0 if !found and
  /// also 0 when start == target).
  std::size_t path_length = 0;
  /// True if the run stopped on a budget rather than success/exhaustion.
  bool budget_exhausted = false;
  /// True if the policy returned nullopt (gave up / exhausted region).
  bool gave_up = false;
  /// Policy restarts consumed from the RetryBudget.
  std::size_t restarts = 0;
  /// True if the run stopped because the RetryBudget ran dry.
  bool abandoned = false;
};

/// Runs a weak-model search for `target` from `start` on `g`.
[[nodiscard]] SearchResult run_weak(const graph::Graph& g,
                                    graph::VertexId start,
                                    graph::VertexId target,
                                    WeakSearcher& searcher, rng::Rng& rng,
                                    const RunBudget& budget = {});

/// Runs a strong-model search for `target` from `start` on `g`.
[[nodiscard]] SearchResult run_strong(const graph::Graph& g,
                                      graph::VertexId start,
                                      graph::VertexId target,
                                      StrongSearcher& searcher, rng::Rng& rng,
                                      const RunBudget& budget = {});

/// Workspace-reusing variants: identical results to the overloads above,
/// but all per-search state lives in `workspace`, so back-to-back runs on
/// same-size graphs allocate nothing. One workspace per worker thread.
[[nodiscard]] SearchResult run_weak(const graph::Graph& g,
                                    graph::VertexId start,
                                    graph::VertexId target,
                                    WeakSearcher& searcher, rng::Rng& rng,
                                    const RunBudget& budget,
                                    SearchWorkspace& workspace);

[[nodiscard]] SearchResult run_strong(const graph::Graph& g,
                                      graph::VertexId start,
                                      graph::VertexId target,
                                      StrongSearcher& searcher, rng::Rng& rng,
                                      const RunBudget& budget,
                                      SearchWorkspace& workspace);

/// Departure-tolerant runs over a liveness-masked snapshot. `liveness`
/// usually comes from a graph::Overlay (vertex_alive_mask /
/// edge_alive_mask over overlay.snapshot()); with empty masks these are
/// bit-identical to the static overloads above.
[[nodiscard]] SearchResult run_weak_tolerant(
    const graph::Graph& g, const LivenessView& liveness,
    graph::VertexId start, graph::VertexId target, WeakSearcher& searcher,
    rng::Rng& rng, const RunBudget& budget, const RetryBudget& retry,
    SearchWorkspace& workspace);

[[nodiscard]] SearchResult run_strong_tolerant(
    const graph::Graph& g, const LivenessView& liveness,
    graph::VertexId start, graph::VertexId target, StrongSearcher& searcher,
    rng::Rng& rng, const RunBudget& budget, const RetryBudget& retry,
    SearchWorkspace& workspace);

}  // namespace sfs::search
