// Drives a searcher against a LocalView until the target is found, the
// policy gives up, or a budget is exhausted.
#pragma once

#include <cstdint>
#include <limits>

#include "search/searcher.hpp"

namespace sfs::search {

struct RunBudget {
  /// Cap on charged requests (distinct discoveries). The weak model can
  /// charge at most m requests and the strong model at most n, so the
  /// default of "no cap" always terminates for exhaustive policies.
  std::size_t max_requests = std::numeric_limits<std::size_t>::max();
  /// Cap on raw requests including cached repeats; this is what stops a
  /// random walk that keeps re-traversing known edges.
  std::size_t max_raw_requests = std::numeric_limits<std::size_t>::max();
};

struct SearchResult {
  bool found = false;
  /// Charged requests when the search stopped.
  std::size_t requests = 0;
  /// Raw requests (incl. repeats) when the search stopped.
  std::size_t raw_requests = 0;
  /// Number of edges of the discovered start->target path (0 if !found and
  /// also 0 when start == target).
  std::size_t path_length = 0;
  /// True if the run stopped on a budget rather than success/exhaustion.
  bool budget_exhausted = false;
  /// True if the policy returned nullopt (gave up / exhausted region).
  bool gave_up = false;
};

/// Runs a weak-model search for `target` from `start` on `g`.
[[nodiscard]] SearchResult run_weak(const graph::Graph& g,
                                    graph::VertexId start,
                                    graph::VertexId target,
                                    WeakSearcher& searcher, rng::Rng& rng,
                                    const RunBudget& budget = {});

/// Runs a strong-model search for `target` from `start` on `g`.
[[nodiscard]] SearchResult run_strong(const graph::Graph& g,
                                      graph::VertexId start,
                                      graph::VertexId target,
                                      StrongSearcher& searcher, rng::Rng& rng,
                                      const RunBudget& budget = {});

/// Workspace-reusing variants: identical results to the overloads above,
/// but all per-search state lives in `workspace`, so back-to-back runs on
/// same-size graphs allocate nothing. One workspace per worker thread.
[[nodiscard]] SearchResult run_weak(const graph::Graph& g,
                                    graph::VertexId start,
                                    graph::VertexId target,
                                    WeakSearcher& searcher, rng::Rng& rng,
                                    const RunBudget& budget,
                                    SearchWorkspace& workspace);

[[nodiscard]] SearchResult run_strong(const graph::Graph& g,
                                      graph::VertexId start,
                                      graph::VertexId target,
                                      StrongSearcher& searcher, rng::Rng& rng,
                                      const RunBudget& budget,
                                      SearchWorkspace& workspace);

}  // namespace sfs::search
