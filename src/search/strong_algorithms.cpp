#include "search/strong_algorithms.hpp"

namespace sfs::search {

using graph::VertexId;

PriorityStrong::PriorityStrong(Key key, std::string name)
    : key_(std::move(key)), name_(std::move(name)) {}

void PriorityStrong::start(const LocalView& view, rng::Rng&) {
  heap_ = {};
  enqueued_upto_ = 0;
  sync(view);
}

void PriorityStrong::sync(const LocalView& view) {
  const auto known = view.known_vertices();
  for (; enqueued_upto_ < known.size(); ++enqueued_upto_) {
    const VertexId v = known[enqueued_upto_];
    heap_.push(Entry{key_(view, v), v});
  }
}

std::optional<VertexId> PriorityStrong::next(const LocalView& view,
                                             rng::Rng&) {
  sync(view);
  while (!heap_.empty()) {
    const VertexId v = heap_.top().v;
    if (!view.vertex_requested(v)) return v;
    heap_.pop();
  }
  return std::nullopt;
}

void PriorityStrong::observe(const LocalView& view, VertexId,
                             std::span<const VertexId>) {
  sync(view);
}

std::unique_ptr<StrongSearcher> make_degree_greedy_strong() {
  return std::make_unique<PriorityStrong>(
      [](const LocalView& view, VertexId v) {
        return static_cast<double>(view.degree(v));
      },
      "degree-greedy-strong");
}

std::unique_ptr<StrongSearcher> make_min_id_strong() {
  return std::make_unique<PriorityStrong>(
      [](const LocalView&, VertexId v) { return -static_cast<double>(v); },
      "min-id-strong");
}

std::unique_ptr<StrongSearcher> make_max_id_strong() {
  return std::make_unique<PriorityStrong>(
      [](const LocalView&, VertexId v) { return static_cast<double>(v); },
      "max-id-strong");
}

void BfsStrong::start(const LocalView&, rng::Rng&) { cursor_ = 0; }

std::optional<VertexId> BfsStrong::next(const LocalView& view, rng::Rng&) {
  const auto known = view.known_vertices();
  while (cursor_ < known.size()) {
    const VertexId v = known[cursor_];
    if (!view.vertex_requested(v)) return v;
    ++cursor_;
  }
  return std::nullopt;
}

void BfsStrong::observe(const LocalView&, VertexId,
                        std::span<const VertexId>) {}

void RandomStrong::start(const LocalView& view, rng::Rng&) {
  pool_.clear();
  synced_upto_ = 0;
  const auto known = view.known_vertices();
  pool_.assign(known.begin(), known.end());
  synced_upto_ = known.size();
}

std::optional<VertexId> RandomStrong::next(const LocalView& view,
                                           rng::Rng& rng) {
  const auto known = view.known_vertices();
  for (; synced_upto_ < known.size(); ++synced_upto_)
    pool_.push_back(known[synced_upto_]);
  while (!pool_.empty()) {
    const auto idx = static_cast<std::size_t>(rng.uniform_index(pool_.size()));
    const VertexId v = pool_[idx];
    if (!view.vertex_requested(v)) return v;
    pool_[idx] = pool_.back();
    pool_.pop_back();
  }
  return std::nullopt;
}

void RandomStrong::observe(const LocalView&, VertexId,
                           std::span<const VertexId>) {}

// strong_portfolio() is defined in policy.cpp, backed by the policy
// registry.

}  // namespace sfs::search
