// Strong-model search policies.
//
// In the strong model one request opens *all* edges of a vertex, so the
// natural policies order the known-but-unrequested vertices:
//
//  * DegreeGreedyStrong — highest known degree first. This is exactly the
//    Adamic et al. (2001) high-degree search ("the next visited vertex is
//    the highest degree neighbor of the set of visited vertices").
//  * BfsStrong          — discovery order (breadth-first ball growing).
//  * RandomStrong       — uniformly random known unrequested vertex.
//  * MinIdStrong / MaxIdStrong — oldest-first / youngest-first.
#pragma once

#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "search/searcher.hpp"

namespace sfs::search {

/// Priority-driven strong searcher: request the known, unrequested vertex
/// maximizing a key.
class PriorityStrong : public StrongSearcher {
 public:
  using Key = std::function<double(const LocalView&, graph::VertexId)>;

  PriorityStrong(Key key, std::string name);

  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<graph::VertexId> next(const LocalView& view,
                                      rng::Rng& rng) override;
  void observe(const LocalView& view, graph::VertexId requested,
               std::span<const graph::VertexId> neighbors) override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  struct Entry {
    double key;
    graph::VertexId v;
    bool operator<(const Entry& other) const {
      if (key != other.key) return key < other.key;
      return v > other.v;
    }
  };

  Key key_;
  std::string name_;
  std::priority_queue<Entry> heap_;
  std::size_t enqueued_upto_ = 0;  // cursor into view.known_vertices()
  void sync(const LocalView& view);
};

/// Adamic et al. high-degree strategy.
[[nodiscard]] std::unique_ptr<StrongSearcher> make_degree_greedy_strong();
/// Oldest-known-vertex-first.
[[nodiscard]] std::unique_ptr<StrongSearcher> make_min_id_strong();
/// Youngest-known-vertex-first.
[[nodiscard]] std::unique_ptr<StrongSearcher> make_max_id_strong();

/// Breadth-first ball growing: vertices requested in discovery order.
class BfsStrong final : public StrongSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<graph::VertexId> next(const LocalView& view,
                                      rng::Rng& rng) override;
  void observe(const LocalView& view, graph::VertexId requested,
               std::span<const graph::VertexId> neighbors) override;
  [[nodiscard]] std::string name() const override { return "bfs-strong"; }

 private:
  std::size_t cursor_ = 0;  // into view.known_vertices()
};

/// Uniformly random known unrequested vertex.
class RandomStrong final : public StrongSearcher {
 public:
  void start(const LocalView& view, rng::Rng& rng) override;
  std::optional<graph::VertexId> next(const LocalView& view,
                                      rng::Rng& rng) override;
  void observe(const LocalView& view, graph::VertexId requested,
               std::span<const graph::VertexId> neighbors) override;
  [[nodiscard]] std::string name() const override { return "random-strong"; }

 private:
  std::vector<graph::VertexId> pool_;
  std::size_t synced_upto_ = 0;
};

/// The strong-model portfolio used by the experiments: every strong
/// policy in the policy registry (search/policy.hpp), in registration
/// order.
[[nodiscard]] std::vector<std::unique_ptr<StrongSearcher>> strong_portfolio();

}  // namespace sfs::search
