#include "search/local_view.hpp"

#include <algorithm>

namespace sfs::search {

using graph::EdgeId;
using graph::kNoEdge;
using graph::kNoVertex;
using graph::VertexId;

LocalView::LocalView(const graph::Graph& g, KnowledgeModel model,
                     VertexId start, VertexId target)
    : graph_(&g), model_(model), start_(start), target_(target) {
  SFS_REQUIRE(start < g.num_vertices(), "start vertex out of range");
  SFS_REQUIRE(target < g.num_vertices(), "target vertex out of range");
  known_.assign(g.num_vertices(), false);
  parent_.assign(g.num_vertices(), kNoVertex);
  explored_edge_.assign(g.num_edges(), false);
  requested_vertex_.assign(g.num_vertices(), false);
  unexplored_cursor_.assign(g.num_vertices(), 0);
  make_known(start, kNoVertex);
}

bool LocalView::is_known(VertexId v) const {
  SFS_REQUIRE(v < graph_->num_vertices(), "vertex out of range");
  return known_[v];
}

std::size_t LocalView::degree(VertexId v) const {
  SFS_REQUIRE(is_known(v), "degree of an unknown vertex");
  return graph_->degree(v);
}

std::span<const EdgeId> LocalView::incident(VertexId v) const {
  SFS_REQUIRE(is_known(v), "incident edges of an unknown vertex");
  return graph_->incident(v);
}

bool LocalView::edge_explored(EdgeId e) const {
  SFS_REQUIRE(e < graph_->num_edges(), "edge out of range");
  return explored_edge_[e];
}

std::optional<VertexId> LocalView::far_endpoint(EdgeId e, VertexId u) const {
  SFS_REQUIRE(is_known(u), "far_endpoint from an unknown vertex");
  const graph::Edge& ed = graph_->edge(e);
  SFS_REQUIRE(ed.tail == u || ed.head == u, "edge not incident to u");
  if (!explored_edge_[e]) return std::nullopt;
  return graph_->other_endpoint(e, u);
}

std::optional<EdgeId> LocalView::first_unexplored(VertexId v) const {
  SFS_REQUIRE(is_known(v), "first_unexplored of an unknown vertex");
  const auto inc = graph_->incident(v);
  auto& cur = unexplored_cursor_[v];
  while (cur < inc.size() && explored_edge_[inc[cur]]) ++cur;
  if (cur >= inc.size()) return std::nullopt;
  return inc[cur];
}

VertexId LocalView::request_edge(VertexId u, EdgeId e) {
  SFS_REQUIRE(model_ == KnowledgeModel::kWeak,
              "request_edge is a weak-model request");
  SFS_REQUIRE(is_known(u), "requests must start from a discovered vertex");
  const graph::Edge& ed = graph_->edge(e);
  SFS_REQUIRE(ed.tail == u || ed.head == u, "edge not incident to u");

  ++raw_requests_;
  const VertexId v = graph_->other_endpoint(e, u);
  if (!explored_edge_[e]) {
    ++requests_;
    explored_edge_[e] = true;
    if (!known_[v]) make_known(v, u);
  }
  return v;
}

std::vector<VertexId> LocalView::request_vertex(VertexId u) {
  SFS_REQUIRE(model_ == KnowledgeModel::kStrong,
              "request_vertex is a strong-model request");
  SFS_REQUIRE(is_known(u),
              "strong requests must name a vertex whose identity is known");

  ++raw_requests_;
  if (!requested_vertex_[u]) {
    ++requests_;
    requested_vertex_[u] = true;
    for (const EdgeId e : graph_->incident(u)) {
      explored_edge_[e] = true;
      const VertexId v = graph_->other_endpoint(e, u);
      if (!known_[v]) make_known(v, u);
    }
  }
  return graph_->neighbors(u);
}

bool LocalView::vertex_requested(VertexId u) const {
  SFS_REQUIRE(u < graph_->num_vertices(), "vertex out of range");
  if (model_ == KnowledgeModel::kStrong) return requested_vertex_[u];
  return known_[u] && !first_unexplored(u).has_value();
}

bool LocalView::target_found() const { return known_[target_]; }

VertexId LocalView::discoverer(VertexId v) const {
  SFS_REQUIRE(v < graph_->num_vertices(), "vertex out of range");
  return parent_[v];
}

std::vector<VertexId> LocalView::discovery_path() const {
  if (!target_found()) return {};
  std::vector<VertexId> path;
  for (VertexId v = target_; v != kNoVertex; v = parent_[v]) {
    path.push_back(v);
    SFS_CHECK(path.size() <= graph_->num_vertices(),
              "discovery forest contains a cycle");
  }
  std::reverse(path.begin(), path.end());
  SFS_CHECK(path.front() == start_, "discovery path does not start at start");
  return path;
}

void LocalView::make_known(VertexId v, VertexId via) {
  known_[v] = true;
  parent_[v] = via;
  known_order_.push_back(v);
}

}  // namespace sfs::search
