#include "search/local_view.hpp"

#include <algorithm>
#include <limits>

#include "base/prefetch.hpp"

namespace sfs::search {

using graph::EdgeId;
using graph::kNoEdge;
using graph::kNoVertex;
using graph::VertexId;

void SearchWorkspace::begin_run(std::size_t n, std::size_t m) {
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Stamp wraparound (once per ~4 billion runs): re-zero so stale stamps
    // from long-dead epochs cannot collide with fresh ones.
    std::fill(known_stamp_.begin(), known_stamp_.end(), 0u);
    std::fill(explored_stamp_.begin(), explored_stamp_.end(), 0u);
    std::fill(requested_stamp_.begin(), requested_stamp_.end(), 0u);
    epoch_ = 0;
  }
  ++epoch_;
  if (known_stamp_.size() < n) {
    known_stamp_.resize(n, 0u);
    requested_stamp_.resize(n, 0u);
    unexplored_cursor_.resize(n);
    parent_.resize(n, kNoVertex);
  }
  if (explored_stamp_.size() < m) explored_stamp_.resize(m, 0u);
  known_order_.clear();
}

void SearchWorkspace::debug_fast_forward_epoch(std::uint32_t epoch) {
  SFS_REQUIRE(epoch >= epoch_,
              "debug_fast_forward_epoch: epoch may only move forward");
  epoch_ = epoch;
}

namespace {

void validate_view_args(const graph::Graph& g, VertexId start, VertexId target,
                        const LivenessView& liveness) {
  SFS_REQUIRE(start < g.num_vertices(), "start vertex out of range");
  SFS_REQUIRE(target < g.num_vertices(), "target vertex out of range");
  SFS_REQUIRE(liveness.vertex_alive.empty() ||
                  liveness.vertex_alive.size() == g.num_vertices(),
              "liveness vertex mask size does not match the graph");
  SFS_REQUIRE(liveness.edge_alive.empty() ||
                  liveness.edge_alive.size() == g.num_edges(),
              "liveness edge mask size does not match the graph");
  SFS_REQUIRE(liveness.vertex_ok(start),
              "search cannot start at a departed vertex");
  SFS_REQUIRE(liveness.vertex_ok(target),
              "search cannot target a departed vertex");
}

}  // namespace

LocalView::LocalView(const graph::Graph& g, KnowledgeModel model,
                     VertexId start, VertexId target, LivenessView liveness)
    : graph_(&g),
      model_(model),
      start_(start),
      target_(target),
      liveness_(liveness),
      owned_(std::make_unique<SearchWorkspace>()),
      ws_(owned_.get()) {
  validate_view_args(g, start, target, liveness_);
  ws_->begin_run(g.num_vertices(), g.num_edges());
  make_known(start, kNoVertex);
}

LocalView::LocalView(const graph::Graph& g, KnowledgeModel model,
                     VertexId start, VertexId target,
                     SearchWorkspace& workspace, LivenessView liveness)
    : graph_(&g),
      model_(model),
      start_(start),
      target_(target),
      liveness_(liveness),
      ws_(&workspace) {
  validate_view_args(g, start, target, liveness_);
  ws_->begin_run(g.num_vertices(), g.num_edges());
  make_known(start, kNoVertex);
}

std::size_t LocalView::degree(VertexId v) const {
  SFS_REQUIRE(is_known(v), "degree of an unknown vertex");
  return graph_->degree(v);
}

bool LocalView::edge_explored(EdgeId e) const {
  SFS_REQUIRE(e < graph_->num_edges(), "edge out of range");
  return explored(e);
}

std::optional<VertexId> LocalView::far_endpoint(EdgeId e, VertexId u) const {
  SFS_REQUIRE(is_known(u), "far_endpoint from an unknown vertex");
  const graph::Edge& ed = graph_->edge(e);
  SFS_REQUIRE(ed.tail == u || ed.head == u, "edge not incident to u");
  if (!explored(e)) return std::nullopt;
  return graph_->other_endpoint(e, u);
}

VertexId LocalView::request_edge(VertexId u, EdgeId e) {
  SFS_REQUIRE(model_ == KnowledgeModel::kWeak,
              "request_edge is a weak-model request");
  SFS_REQUIRE(is_known(u), "requests must start from a discovered vertex");
  const graph::Edge& ed = graph_->edge(e);
  SFS_REQUIRE(ed.tail == u || ed.head == u, "edge not incident to u");

  ++raw_requests_;
  const VertexId v = ed.tail == u ? ed.head : ed.tail;
  if (!liveness_.edge_ok(e) || !liveness_.vertex_ok(v)) {
    // Dead link or departed far endpoint: the probe fails and reveals
    // nothing. Mark the edge explored so first_unexplored() skips the
    // known-dead link from now on. (The liveness check runs before the
    // cache check so a repeated probe of a dead edge stays a failure.)
    ++failed_requests_;
    ws_->explored_stamp_[e] = ws_->epoch_;
    return kNoVertex;
  }
  if (!explored(e)) {
    ++requests_;
    ws_->explored_stamp_[e] = ws_->epoch_;
    if (!known(v)) make_known(v, u);
  }
  return v;
}

VertexId LocalView::request_incident(VertexId u, std::uint32_t slot,
                                     EdgeId e) {
  SFS_REQUIRE(model_ == KnowledgeModel::kWeak,
              "request_incident is a weak-model request");
  SFS_REQUIRE(is_known(u), "requests must start from a discovered vertex");
  const auto inc = graph_->incident(u);
  SFS_REQUIRE(slot < inc.size() && inc[slot] == e,
              "slot hint does not name edge e at u");

  ++raw_requests_;
  // The far endpoint sits in the adjacency slot parallel to the incidence
  // slot (self-loop slots store u itself, matching other_endpoint).
  const VertexId v = graph_->adjacent(u)[slot];
  if (!liveness_.edge_ok(e) || !liveness_.vertex_ok(v)) {
    ++failed_requests_;
    ws_->explored_stamp_[e] = ws_->epoch_;
    return kNoVertex;
  }
  if (!explored(e)) {
    ++requests_;
    ws_->explored_stamp_[e] = ws_->epoch_;
    if (!known(v)) make_known(v, u);
  }
  return v;
}

std::span<const VertexId> LocalView::request_vertex_span(VertexId u) {
  SFS_REQUIRE(model_ == KnowledgeModel::kStrong,
              "request_vertex is a strong-model request");
  SFS_REQUIRE(is_known(u),
              "strong requests must name a vertex whose identity is known");

  ++raw_requests_;
  if (!liveness_.vertex_ok(u)) {
    // Departed peer: the probe fails with an empty answer. Mark it
    // requested so vertex_requested() reports the known-dead state and
    // policies stop proposing it. (Liveness before the cache check, as in
    // request_edge.)
    ++failed_requests_;
    ws_->requested_stamp_[u] = ws_->epoch_;
    return {};
  }
  if (ws_->requested_stamp_[u] != ws_->epoch_) {
    ++requests_;
    ws_->requested_stamp_[u] = ws_->epoch_;
    const auto inc = graph_->incident(u);
    const auto adj = graph_->adjacent(u);
    if (liveness_.edge_alive.empty()) {
      // Static fast path: no per-slot mask checks, and the stamp lines —
      // random accesses by edge/vertex id, the loop's only misses — are
      // prefetched a few slots ahead of use. Same stores, same
      // make_known order: bit-identical to the masked loop below with an
      // all-alive mask.
      constexpr std::size_t kAhead = 8;
      for (std::size_t i = 0; i < inc.size(); ++i) {
        if (i + kAhead < inc.size()) {
          base::prefetch(&ws_->explored_stamp_[inc[i + kAhead]]);
          base::prefetch(&ws_->known_stamp_[adj[i + kAhead]]);
        }
        ws_->explored_stamp_[inc[i]] = ws_->epoch_;
        const VertexId v = adj[i];
        if (!known(v)) make_known(v, u);
      }
    } else {
      for (std::size_t i = 0; i < inc.size(); ++i) {
        // A dead link hides its endpoint entirely; a live link to a
        // departed peer still discloses the stale identity (the probe
        // that follows is what fails).
        if (!liveness_.edge_ok(inc[i])) continue;
        ws_->explored_stamp_[inc[i]] = ws_->epoch_;
        const VertexId v = adj[i];
        if (!known(v)) make_known(v, u);
      }
    }
  }
  return graph_->adjacent(u);
}

std::vector<VertexId> LocalView::request_vertex(VertexId u) {
  const auto adj = request_vertex_span(u);
  return {adj.begin(), adj.end()};
}

bool LocalView::vertex_requested(VertexId u) const {
  SFS_REQUIRE(u < graph_->num_vertices(), "vertex out of range");
  if (model_ == KnowledgeModel::kStrong) {
    return ws_->requested_stamp_[u] == ws_->epoch_;
  }
  return known(u) && !first_unexplored(u).has_value();
}

bool LocalView::target_found() const { return known(target_); }

VertexId LocalView::discoverer(VertexId v) const {
  SFS_REQUIRE(v < graph_->num_vertices(), "vertex out of range");
  return known(v) ? ws_->parent_[v] : kNoVertex;
}

std::vector<VertexId> LocalView::discovery_path() const {
  if (!target_found()) return {};
  std::vector<VertexId> path;
  for (VertexId v = target_; v != kNoVertex; v = ws_->parent_[v]) {
    path.push_back(v);
    SFS_CHECK(path.size() <= graph_->num_vertices(),
              "discovery forest contains a cycle");
  }
  std::reverse(path.begin(), path.end());
  SFS_CHECK(path.front() == start_, "discovery path does not start at start");
  return path;
}

void LocalView::make_known(VertexId v, VertexId via) {
  ws_->known_stamp_[v] = ws_->epoch_;
  ws_->parent_[v] = via;
  ws_->unexplored_cursor_[v] = 0;
  ws_->known_order_.push_back(v);
}

}  // namespace sfs::search
