#include "search/runner.hpp"

namespace sfs::search {

namespace {

SearchResult finish(const LocalView& view, bool budget_hit, bool gave_up) {
  SearchResult r;
  r.found = view.target_found();
  r.requests = view.requests();
  r.raw_requests = view.raw_requests();
  r.budget_exhausted = budget_hit;
  r.gave_up = gave_up;
  if (r.found) {
    const auto path = view.discovery_path();
    r.path_length = path.empty() ? 0 : path.size() - 1;
  }
  return r;
}

SearchResult drive_weak(LocalView& view, WeakSearcher& searcher, rng::Rng& rng,
                        const RunBudget& budget) {
  searcher.start(view, rng);
  while (!view.target_found()) {
    if (view.requests() >= budget.max_requests ||
        view.raw_requests() >= budget.max_raw_requests) {
      return finish(view, /*budget_hit=*/true, /*gave_up=*/false);
    }
    const auto req = searcher.next(view, rng);
    if (!req) return finish(view, false, /*gave_up=*/true);
    const graph::VertexId revealed = view.request_edge(*req);
    searcher.observe(view, *req, revealed);
  }
  return finish(view, false, false);
}

SearchResult drive_strong(LocalView& view, StrongSearcher& searcher,
                          rng::Rng& rng, const RunBudget& budget) {
  searcher.start(view, rng);
  while (!view.target_found()) {
    if (view.requests() >= budget.max_requests ||
        view.raw_requests() >= budget.max_raw_requests) {
      return finish(view, true, false);
    }
    const auto req = searcher.next(view, rng);
    if (!req) return finish(view, false, true);
    const auto neighbors = view.request_vertex_span(*req);
    searcher.observe(view, *req, neighbors);
  }
  return finish(view, false, false);
}

}  // namespace

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kWeak, start, target);
  return drive_weak(view, searcher, rng, budget);
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kStrong, start, target);
  return drive_strong(view, searcher, rng, budget);
}

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget,
                      SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kWeak, start, target, workspace);
  return drive_weak(view, searcher, rng, budget);
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget,
                        SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kStrong, start, target, workspace);
  return drive_strong(view, searcher, rng, budget);
}

}  // namespace sfs::search
