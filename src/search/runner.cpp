#include "search/runner.hpp"

#include "search/drive.hpp"

namespace sfs::search {

namespace {

// One loop serves both the static and the tolerant runs. The failure
// branch keys off view.failed_requests(), which never moves without a
// liveness mask, so a static run takes the exact pre-churn path (same
// calls, same RNG draws) — bit-identity by construction, not by testing.
// The loop body lives in search/drive.hpp's step machines (so QueryEngine
// can interleave suspended searches); driving one to completion here IS
// the closed loop.
SearchResult drive_weak(LocalView& view, WeakSearcher& searcher, rng::Rng& rng,
                        const RunBudget& budget, const RetryBudget& retry) {
  WeakDrive drive(view, searcher, rng, budget, retry);
  while (drive.step()) {
  }
  return drive.result();
}

SearchResult drive_strong(LocalView& view, StrongSearcher& searcher,
                          rng::Rng& rng, const RunBudget& budget,
                          const RetryBudget& retry) {
  StrongDrive drive(view, searcher, rng, budget, retry);
  while (drive.step()) {
  }
  return drive.result();
}

}  // namespace

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kWeak, start, target);
  return drive_weak(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kStrong, start, target);
  return drive_strong(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget,
                      SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kWeak, start, target, workspace);
  return drive_weak(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget,
                        SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kStrong, start, target, workspace);
  return drive_strong(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_weak_tolerant(const graph::Graph& g,
                               const LivenessView& liveness,
                               graph::VertexId start, graph::VertexId target,
                               WeakSearcher& searcher, rng::Rng& rng,
                               const RunBudget& budget,
                               const RetryBudget& retry,
                               SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kWeak, start, target, workspace, liveness);
  return drive_weak(view, searcher, rng, budget, retry);
}

SearchResult run_strong_tolerant(const graph::Graph& g,
                                 const LivenessView& liveness,
                                 graph::VertexId start, graph::VertexId target,
                                 StrongSearcher& searcher, rng::Rng& rng,
                                 const RunBudget& budget,
                                 const RetryBudget& retry,
                                 SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kStrong, start, target, workspace,
                 liveness);
  return drive_strong(view, searcher, rng, budget, retry);
}

}  // namespace sfs::search
