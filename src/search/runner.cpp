#include "search/runner.hpp"

namespace sfs::search {

namespace {

SearchResult finish(const LocalView& view, bool budget_hit, bool gave_up) {
  SearchResult r;
  r.found = view.target_found();
  r.requests = view.requests();
  r.raw_requests = view.raw_requests();
  r.budget_exhausted = budget_hit;
  r.gave_up = gave_up;
  if (r.found) {
    const auto path = view.discovery_path();
    r.path_length = path.empty() ? 0 : path.size() - 1;
  }
  return r;
}

}  // namespace

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kWeak, start, target);
  searcher.start(view, rng);
  while (!view.target_found()) {
    if (view.requests() >= budget.max_requests ||
        view.raw_requests() >= budget.max_raw_requests) {
      return finish(view, /*budget_hit=*/true, /*gave_up=*/false);
    }
    const auto req = searcher.next(view, rng);
    if (!req) return finish(view, false, /*gave_up=*/true);
    const graph::VertexId revealed = view.request_edge(*req);
    searcher.observe(view, *req, revealed);
  }
  return finish(view, false, false);
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kStrong, start, target);
  searcher.start(view, rng);
  while (!view.target_found()) {
    if (view.requests() >= budget.max_requests ||
        view.raw_requests() >= budget.max_raw_requests) {
      return finish(view, true, false);
    }
    const auto req = searcher.next(view, rng);
    if (!req) return finish(view, false, true);
    const auto neighbors = view.request_vertex(*req);
    searcher.observe(view, *req,
                     std::span<const graph::VertexId>(neighbors));
  }
  return finish(view, false, false);
}

}  // namespace sfs::search
