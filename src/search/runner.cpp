#include "search/runner.hpp"

namespace sfs::search {

namespace {

SearchResult finish(const LocalView& view, bool budget_hit, bool gave_up,
                    std::size_t restarts = 0, bool abandoned = false) {
  SearchResult r;
  r.found = view.target_found();
  r.requests = view.requests();
  r.raw_requests = view.raw_requests();
  r.failed_requests = view.failed_requests();
  r.budget_exhausted = budget_hit;
  r.gave_up = gave_up;
  r.restarts = restarts;
  r.abandoned = abandoned;
  if (r.found) {
    const auto path = view.discovery_path();
    r.path_length = path.empty() ? 0 : path.size() - 1;
  }
  return r;
}

// One loop serves both the static and the tolerant runs. The failure
// branch keys off view.failed_requests(), which never moves without a
// liveness mask, so a static run takes the exact pre-churn path (same
// calls, same RNG draws) — bit-identity by construction, not by testing.
SearchResult drive_weak(LocalView& view, WeakSearcher& searcher, rng::Rng& rng,
                        const RunBudget& budget, const RetryBudget& retry) {
  searcher.start(view, rng);
  std::size_t consecutive_failures = 0;
  std::size_t restarts = 0;
  while (!view.target_found()) {
    if (view.requests() >= budget.max_requests ||
        view.raw_requests() >= budget.max_raw_requests) {
      return finish(view, /*budget_hit=*/true, /*gave_up=*/false, restarts);
    }
    const auto req = searcher.next(view, rng);
    if (!req) return finish(view, false, /*gave_up=*/true, restarts);
    const std::size_t failures_before = view.failed_requests();
    const graph::VertexId revealed = view.request_edge(*req);
    if (view.failed_requests() != failures_before) {
      // Stranded probe: the policy never observes it (the view already
      // marked the link dead). Too many in a row -> restart the policy on
      // the retained knowledge; out of restarts -> abandon.
      if (++consecutive_failures > retry.max_consecutive_failures) {
        if (restarts >= retry.max_restarts) {
          return finish(view, false, false, restarts, /*abandoned=*/true);
        }
        ++restarts;
        consecutive_failures = 0;
        searcher.start(view, rng);
      }
      continue;
    }
    consecutive_failures = 0;
    searcher.observe(view, *req, revealed);
  }
  return finish(view, false, false, restarts);
}

SearchResult drive_strong(LocalView& view, StrongSearcher& searcher,
                          rng::Rng& rng, const RunBudget& budget,
                          const RetryBudget& retry) {
  searcher.start(view, rng);
  std::size_t consecutive_failures = 0;
  std::size_t restarts = 0;
  while (!view.target_found()) {
    if (view.requests() >= budget.max_requests ||
        view.raw_requests() >= budget.max_raw_requests) {
      return finish(view, true, false, restarts);
    }
    const auto req = searcher.next(view, rng);
    if (!req) return finish(view, false, true, restarts);
    const std::size_t failures_before = view.failed_requests();
    const auto neighbors = view.request_vertex_span(*req);
    if (view.failed_requests() != failures_before) {
      if (++consecutive_failures > retry.max_consecutive_failures) {
        if (restarts >= retry.max_restarts) {
          return finish(view, false, false, restarts, /*abandoned=*/true);
        }
        ++restarts;
        consecutive_failures = 0;
        searcher.start(view, rng);
      }
      continue;
    }
    consecutive_failures = 0;
    searcher.observe(view, *req, neighbors);
  }
  return finish(view, false, false, restarts);
}

}  // namespace

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kWeak, start, target);
  return drive_weak(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget) {
  LocalView view(g, KnowledgeModel::kStrong, start, target);
  return drive_strong(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_weak(const graph::Graph& g, graph::VertexId start,
                      graph::VertexId target, WeakSearcher& searcher,
                      rng::Rng& rng, const RunBudget& budget,
                      SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kWeak, start, target, workspace);
  return drive_weak(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_strong(const graph::Graph& g, graph::VertexId start,
                        graph::VertexId target, StrongSearcher& searcher,
                        rng::Rng& rng, const RunBudget& budget,
                        SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kStrong, start, target, workspace);
  return drive_strong(view, searcher, rng, budget, RetryBudget{});
}

SearchResult run_weak_tolerant(const graph::Graph& g,
                               const LivenessView& liveness,
                               graph::VertexId start, graph::VertexId target,
                               WeakSearcher& searcher, rng::Rng& rng,
                               const RunBudget& budget,
                               const RetryBudget& retry,
                               SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kWeak, start, target, workspace, liveness);
  return drive_weak(view, searcher, rng, budget, retry);
}

SearchResult run_strong_tolerant(const graph::Graph& g,
                                 const LivenessView& liveness,
                                 graph::VertexId start, graph::VertexId target,
                                 StrongSearcher& searcher, rng::Rng& rng,
                                 const RunBudget& budget,
                                 const RetryBudget& retry,
                                 SearchWorkspace& workspace) {
  LocalView view(g, KnowledgeModel::kStrong, start, target, workspace,
                 liveness);
  return drive_strong(view, searcher, rng, budget, retry);
}

}  // namespace sfs::search
