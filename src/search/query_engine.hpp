// QueryEngine: batched search over ONE fixed, long-lived graph.
//
// The replication harnesses in sim/ answer "how expensive is a search on a
// fresh random graph?" — one query per generated graph. The paper's model
// also implies the opposite regime, the one P2P resource-discovery systems
// actually run: a single long-lived overlay serving many lookups (Adamic
// et al.'s Gnutella measurements; the dynamic-hypercube and
// resource-discovery systems in PAPERS.md). Nothing in-tree could express
// it without re-paying graph construction and workspace setup per query.
//
// A QueryEngine owns the per-session state for that regime: it binds to
// one graph and one registered policy (search/policy.hpp), keeps one
// searcher instance + SearchWorkspace per worker, and
// runs query batches with deterministic per-query RNG streams:
//
//   query i of a batch draws its randomness from
//   StreamPlan(options.seed, kQueryStream, options.stream_plan).stream_seed(i)
//
// (rng/stream_plan.hpp; the default plan is kCounter/v2 — O(1) seekable
// Philox derivation. options.stream_plan = kLegacy reproduces the
// pre-versioning derive_stream_seed streams bit for bit.) So a batch is a
// pure function of (graph, policy, options.seed, options.stream_plan,
// queries) —
// bit-identical for any thread count, including sequential, and replayable
// (re-running the same batch reproduces it — the property the seq-vs-pool
// audits in m5_query_engine and tests/test_query_engine rely on).
// Corollary: the stream index is the position WITHIN a batch, not a
// session-global counter, so query i of batch A and query i of batch B
// share randomness. Do not pool statistics across repeated same-seed
// batches as if they were independent samples; give each logical batch
// its own engine seed (or one big batch) when independence matters.
// Derivations go through the audited wrapper, so a batch run under
// SFS_RNG_AUDIT=1 verifies its stream plan (rng/stream_audit.hpp).
//
// Overlay binding (dynamic graphs): an engine constructed over a
// graph::Overlay serves departure-tolerant queries against the overlay's
// live topology (liveness masks + the runner's RetryBudget). Batches must
// observe a consistent snapshot, enforced with the overlay's epoch
// counter:
//
//   * a batch records the epoch before fanning out and SFS_CHECKs it
//     unchanged after the join — a mutation racing a running batch is a
//     contract violation, not a data race discovered the hard way;
//   * between batches the overlay may mutate freely: each session
//     remembers the epoch it last served, and run_batch rebuilds stale
//     sessions (fresh searcher instance; sessions_rebuilt() counts them)
//     before any query runs;
//   * staged joins must be committed (Overlay::compact /
//     maybe_compact) before serving — queries cannot route to a peer the
//     CSR snapshot has never seen.
//
// Threading: a QueryEngine is externally serialized — run_batch must not
// race itself or any other member call. Inside a batch, worker w touches
// only sessions_[w] (lanes, workspaces, RNGs), so no engine state is ever
// shared between two workers and the class carries no mutex and no
// capability annotations; the session/epoch bookkeeping above is the
// whole concurrency contract. See docs/ANALYSIS.md ("Capability
// annotations") for the per-class lock-ownership table.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "rng/stream_plan.hpp"
#include "search/policy.hpp"
#include "search/runner.hpp"

namespace sfs::graph {
class Overlay;
}

namespace sfs::search {

/// One lookup: find `target` starting from `start` (internal 0-based ids).
struct Query {
  graph::VertexId start = graph::kNoVertex;
  graph::VertexId target = graph::kNoVertex;
  friend bool operator==(const Query&, const Query&) = default;
};

struct QueryEngineOptions {
  /// Budget applied to every query (see search/runner.hpp). The default is
  /// uncapped, which terminates for exhaustive policies; give walk
  /// policies a max_raw_requests cap.
  RunBudget budget;
  /// Base seed of the session's per-query streams.
  std::uint64_t seed = 0;
  /// Failure tolerance per query; only consulted by overlay-bound engines
  /// (static-graph queries cannot fail probes).
  RetryBudget retry;
  /// Searches interleaved per worker: each worker advances up to this many
  /// suspended searches round-robin, one drive step at a time, so the next
  /// dependent cache miss of one walk overlaps the others' work. Results
  /// are bit-identical for every width (per-query streams are positional);
  /// 1 = the classic run-to-completion loop. Must be positive.
  ///
  /// Default 1: widths > 1 multiply the per-worker view working set by the
  /// width and pay round-robin bookkeeping per probe, which measured as a
  /// net loss (0.7-0.9x) on the single-core capture host at every graph
  /// size tried — see "Interleaved batch search" in docs/PERF.md. Raise it
  /// only where a measurement on the deployment host shows the miss
  /// overlap winning (deep out-of-order cores, DRAM-resident graphs).
  std::size_t interleave = 1;
  /// Stream-plan version of the per-query streams (rng/stream_plan.hpp).
  /// kCounter (v2) is the default for new work; kLegacy reproduces the
  /// pre-versioning stream derivation bit for bit.
  rng::StreamPlanVersion stream_plan = rng::StreamPlanVersion::kCounter;
};

class QueryEngine {
 public:
  /// Binds to `g` and the registered policy named `policy` (any model;
  /// the model is read off the policy's spec). Throws
  /// std::invalid_argument on an unknown policy name. The graph must
  /// outlive the engine.
  QueryEngine(const graph::Graph& g, std::string_view policy,
              QueryEngineOptions options = {});

  /// Overlay-bound engine: queries run departure-tolerant against
  /// `overlay`'s live topology, and batches enforce the epoch contract
  /// described above. The overlay must outlive the engine and must not be
  /// mutated while a batch is running.
  QueryEngine(const graph::Overlay& overlay, std::string_view policy,
              QueryEngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const PolicySpec& policy() const noexcept { return *spec_; }
  [[nodiscard]] KnowledgeModel model() const noexcept { return spec_->model; }
  [[nodiscard]] const QueryEngineOptions& options() const noexcept {
    return options_;
  }
  /// Total queries run through this engine so far (all batches).
  [[nodiscard]] std::size_t queries_served() const noexcept {
    return queries_served_;
  }
  /// The bound overlay, or nullptr for a static-graph engine.
  [[nodiscard]] const graph::Overlay* overlay() const noexcept {
    return overlay_;
  }
  /// Sessions recreated because the overlay mutated between batches.
  [[nodiscard]] std::size_t sessions_rebuilt() const noexcept {
    return sessions_rebuilt_;
  }

  /// Re-seeds the per-query streams. Multi-round traffic over one engine
  /// (e.g. the d1_churn rounds between churn steps) must give every round
  /// its own seed — batch streams are positional, so same-seed rounds
  /// would replay identical randomness (see the header comment).
  void set_seed(std::uint64_t seed) noexcept { options_.seed = seed; }

  /// Runs every query; results[i] answers queries[i]. `threads` selects
  /// the fan-out: 1 (default) = sequential, 0 = the shared pool, n = a
  /// pool of n workers — bit-identical in all cases (per-query streams
  /// depend only on the batch index). Workers execute blocks of
  /// options.interleave queries as round-robin-stepped suspended searches
  /// (search/drive.hpp); the width changes execution order only, never
  /// results. Validates every query's endpoints against the graph before
  /// running anything. `results` must be exactly queries.size() long.
  void run_batch(std::span<const Query> queries,
                 std::span<SearchResult> results, std::size_t threads = 1);

  /// Allocating convenience overload.
  [[nodiscard]] std::vector<SearchResult> run_batch(
      std::span<const Query> queries, std::size_t threads = 1);

 private:
  struct Lane;
  struct Session;
  void ensure_sessions(std::size_t workers);
  void bind_policy(std::string_view policy);
  [[nodiscard]] std::uint64_t query_stream_seed(std::uint64_t index) const;

  const graph::Graph* graph_;
  const graph::Overlay* overlay_ = nullptr;  // null for static engines
  const PolicySpec* spec_;
  QueryEngineOptions options_;
  /// One session per worker index, holding options.interleave lanes (each
  /// a searcher instance + SearchWorkspace + drive slot), grown on demand
  /// and reused across batches: steady-state batches allocate nothing in
  /// the engine itself.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t queries_served_ = 0;
  std::size_t sessions_rebuilt_ = 0;
};

}  // namespace sfs::search
