#include "search/kleinberg_routing.hpp"

namespace sfs::search {

using graph::VertexId;

GreedyRouteResult greedy_route(const gen::KleinbergGrid& grid,
                               VertexId source, VertexId target,
                               std::size_t max_steps) {
  const graph::Graph& g = grid.graph();
  SFS_REQUIRE(source < g.num_vertices() && target < g.num_vertices(),
              "route endpoints out of range");
  GreedyRouteResult r;
  VertexId current = source;
  while (current != target && r.steps < max_steps) {
    VertexId best = current;
    std::size_t best_dist = grid.lattice_distance(current, target);
    for (const VertexId v : g.adjacent(current)) {
      const std::size_t d = grid.lattice_distance(v, target);
      if (d < best_dist || (d == best_dist && v < best && best != current)) {
        best = v;
        best_dist = d;
      }
    }
    if (best == current) {
      // No strictly closer neighbor — cannot happen on the torus with local
      // edges, but guard against misuse with a truthful result.
      return r;
    }
    current = best;
    ++r.steps;
  }
  r.delivered = current == target;
  return r;
}

}  // namespace sfs::search
