// Percolation search (Sarshar, Boykin, Roychowdhury, P2P'04).
//
// The protocol the paper cites as the way around non-searchability when
// content can be *replicated*:
//   1. content implantation: the owner caches the content on every vertex
//      of a random walk of length L_r;
//   2. query implantation: the requester plants its query on every vertex
//      of a random walk of length L_q;
//   3. bond-percolation broadcast: from every query holder, the query is
//      flooded where each edge forwards independently with probability q_e.
// The lookup succeeds if the percolation cluster of the query reaches any
// content replica. High-degree vertices are hit by both walks quickly, and
// for power-law graphs a q_e slightly above the percolation threshold makes
// the high-degree core connected, giving sublinear traffic per query.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/random.hpp"

namespace sfs::search {

struct PercolationParams {
  /// Content-implantation random-walk length L_r (0 = owner only).
  std::size_t replication_walk = 0;
  /// Query-implantation random-walk length L_q (0 = requester only).
  std::size_t query_walk = 0;
  /// Bond-percolation broadcast probability q_e in [0, 1].
  double edge_prob = 0.5;
};

struct PercolationResult {
  bool found = false;
  /// Messages: walk steps for both implantations plus every percolated
  /// (forwarded) edge traversal during the broadcast.
  std::size_t messages = 0;
  /// Vertices reached by the broadcast (incl. query-walk vertices).
  std::size_t vertices_reached = 0;
  /// Replica holders (owner + replication walk, deduplicated).
  std::size_t replicas = 0;
};

/// Executes one lookup of content owned by `owner` issued at `requester`.
[[nodiscard]] PercolationResult percolation_search(
    const graph::Graph& g, graph::VertexId owner, graph::VertexId requester,
    const PercolationParams& params, rng::Rng& rng);

}  // namespace sfs::search
