// Resumable drive machines: the runner's weak/strong drive loops unrolled
// into step objects, one loop iteration per step() call.
//
// Motivation: QueryEngine::run_batch interleaves W independent walks per
// worker (memory-latency hiding — each walk's next dependent cache miss
// overlaps the others' useful work), which needs the drive loop suspended
// between iterations. A drive object owns exactly the loop-local state of
// runner.cpp's closed loops (consecutive-failure streak, restart count)
// and borrows everything else (view, searcher, rng, budgets), so stepping
// a drive to completion performs the same calls in the same order as the
// closed loop — run_weak/run_strong are implemented on top of these, and
// interleaved execution is bit-identical to sequential by construction.
//
// Everything is defined inline: step() sits on the per-probe hot path of
// every search in the tree (runner loops and QueryEngine lanes both), and
// an out-of-line definition costs a call per probe that the old closed
// loops never paid — measurably so on cache-resident graphs, where the
// probe itself is a handful of loads.
//
// Lifetime: the borrowed view, searcher, rng, and budgets must outlive the
// drive. One drive serves one search; construct a fresh one per query.
#pragma once

#include "base/check.hpp"
#include "search/runner.hpp"

namespace sfs::search {

namespace detail {

inline SearchResult finish_result(const LocalView& view, bool budget_hit,
                                  bool gave_up, std::size_t restarts,
                                  bool abandoned) {
  SearchResult r;
  r.found = view.target_found();
  r.requests = view.requests();
  r.raw_requests = view.raw_requests();
  r.failed_requests = view.failed_requests();
  r.budget_exhausted = budget_hit;
  r.gave_up = gave_up;
  r.restarts = restarts;
  r.abandoned = abandoned;
  if (r.found) {
    const auto path = view.discovery_path();
    r.path_length = path.empty() ? 0 : path.size() - 1;
  }
  return r;
}

}  // namespace detail

/// Weak-model drive. The constructor performs searcher.start(); each
/// step() runs one iteration of the drive loop (one policy decision + one
/// probe, or a termination check). step() returns false once the search
/// has finished; result() is then valid.
class WeakDrive {
 public:
  WeakDrive(LocalView& view, WeakSearcher& searcher, rng::Rng& rng,
            const RunBudget& budget, const RetryBudget& retry)
      : view_(&view),
        searcher_(&searcher),
        rng_(&rng),
        budget_(&budget),
        retry_(&retry) {
    searcher_->start(*view_, *rng_);
  }

  /// Advances one iteration. Returns true while the search is running.
  /// Calling step() after completion is a checked error.
  ///
  /// The branch order mirrors the closed loop this replaced exactly:
  /// termination checks first (success, then budgets), then one policy
  /// decision, then one probe whose failure is absorbed by the retry
  /// budget — so stepping to completion makes the same calls in the same
  /// order and consumes the same RNG draws.
  bool step() {
    SFS_REQUIRE(!done_, "WeakDrive::step called after completion");
    if (view_->target_found()) {
      result_ = detail::finish_result(*view_, false, false, restarts_, false);
      done_ = true;
      return false;
    }
    if (view_->requests() >= budget_->max_requests ||
        view_->raw_requests() >= budget_->max_raw_requests) {
      result_ = detail::finish_result(*view_, /*budget_hit=*/true, false,
                                      restarts_, false);
      done_ = true;
      return false;
    }
    const auto req = searcher_->next(*view_, *rng_);
    if (!req) {
      result_ = detail::finish_result(*view_, false, /*gave_up=*/true,
                                      restarts_, false);
      done_ = true;
      return false;
    }
    const std::size_t failures_before = view_->failed_requests();
    const graph::VertexId revealed = view_->request_edge(*req);
    if (view_->failed_requests() != failures_before) {
      // Stranded probe: the policy never observes it (the view already
      // marked the link dead). Too many in a row -> restart the policy on
      // the retained knowledge; out of restarts -> abandon.
      if (++consecutive_failures_ > retry_->max_consecutive_failures) {
        if (restarts_ >= retry_->max_restarts) {
          result_ = detail::finish_result(*view_, false, false, restarts_,
                                          /*abandoned=*/true);
          done_ = true;
          return false;
        }
        ++restarts_;
        consecutive_failures_ = 0;
        searcher_->start(*view_, *rng_);
      }
      return true;
    }
    consecutive_failures_ = 0;
    searcher_->observe(*view_, *req, revealed);
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return done_; }

  /// The finished search's result; a checked error before done().
  [[nodiscard]] const SearchResult& result() const {
    SFS_REQUIRE(done_, "WeakDrive::result before the search finished");
    return result_;
  }

 private:
  LocalView* view_;
  WeakSearcher* searcher_;
  rng::Rng* rng_;
  const RunBudget* budget_;
  const RetryBudget* retry_;
  std::size_t consecutive_failures_ = 0;
  std::size_t restarts_ = 0;
  bool done_ = false;
  SearchResult result_;
};

/// Strong-model drive; same contract as WeakDrive with vertex probes.
class StrongDrive {
 public:
  StrongDrive(LocalView& view, StrongSearcher& searcher, rng::Rng& rng,
              const RunBudget& budget, const RetryBudget& retry)
      : view_(&view),
        searcher_(&searcher),
        rng_(&rng),
        budget_(&budget),
        retry_(&retry) {
    searcher_->start(*view_, *rng_);
  }

  bool step() {
    SFS_REQUIRE(!done_, "StrongDrive::step called after completion");
    if (view_->target_found()) {
      result_ = detail::finish_result(*view_, false, false, restarts_, false);
      done_ = true;
      return false;
    }
    if (view_->requests() >= budget_->max_requests ||
        view_->raw_requests() >= budget_->max_raw_requests) {
      result_ = detail::finish_result(*view_, /*budget_hit=*/true, false,
                                      restarts_, false);
      done_ = true;
      return false;
    }
    const auto req = searcher_->next(*view_, *rng_);
    if (!req) {
      result_ = detail::finish_result(*view_, false, /*gave_up=*/true,
                                      restarts_, false);
      done_ = true;
      return false;
    }
    const std::size_t failures_before = view_->failed_requests();
    const auto neighbors = view_->request_vertex_span(*req);
    if (view_->failed_requests() != failures_before) {
      if (++consecutive_failures_ > retry_->max_consecutive_failures) {
        if (restarts_ >= retry_->max_restarts) {
          result_ = detail::finish_result(*view_, false, false, restarts_,
                                          /*abandoned=*/true);
          done_ = true;
          return false;
        }
        ++restarts_;
        consecutive_failures_ = 0;
        searcher_->start(*view_, *rng_);
      }
      return true;
    }
    consecutive_failures_ = 0;
    searcher_->observe(*view_, *req, neighbors);
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return done_; }

  [[nodiscard]] const SearchResult& result() const {
    SFS_REQUIRE(done_, "StrongDrive::result before the search finished");
    return result_;
  }

 private:
  LocalView* view_;
  StrongSearcher* searcher_;
  rng::Rng* rng_;
  const RunBudget* budget_;
  const RetryBudget* retry_;
  std::size_t consecutive_failures_ = 0;
  std::size_t restarts_ = 0;
  bool done_ = false;
  SearchResult result_;
};

}  // namespace sfs::search
