// Search-algorithm interfaces.
//
// A searcher is a (possibly randomized) policy that, given the current
// LocalView, proposes the next request. The runner (runner.hpp) applies the
// request, informs the searcher of the answer, and repeats until the target
// is found, the searcher gives up, or a budget is hit.
//
// Searchers are single-search objects: construct (or reset) one per run.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "rng/random.hpp"
#include "search/local_view.hpp"

namespace sfs::search {

/// Policy for the weak knowledge model.
class WeakSearcher {
 public:
  virtual ~WeakSearcher() = default;

  /// Called once before the first request.
  virtual void start(const LocalView& view, rng::Rng& rng) = 0;

  /// Proposes the next request, or nullopt to give up (e.g. every reachable
  /// edge explored).
  virtual std::optional<WeakRequest> next(const LocalView& view,
                                          rng::Rng& rng) = 0;

  /// Informs the policy of the answer to its last request.
  virtual void observe(const LocalView& view, const WeakRequest& request,
                       graph::VertexId revealed) = 0;

  /// Human-readable policy name (used in experiment tables).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Policy for the strong knowledge model.
class StrongSearcher {
 public:
  virtual ~StrongSearcher() = default;

  virtual void start(const LocalView& view, rng::Rng& rng) = 0;

  /// Proposes the next vertex to request, or nullopt to give up.
  virtual std::optional<graph::VertexId> next(const LocalView& view,
                                              rng::Rng& rng) = 0;

  virtual void observe(const LocalView& view, graph::VertexId requested,
                       std::span<const graph::VertexId> neighbors) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

// Policy factories are registered as model-tagged PolicySpec entries in
// the policy registry (search/policy.hpp), which replaced the raw
// WeakSearcherFactory/StrongSearcherFactory function-pointer typedefs of
// the v1 API.

}  // namespace sfs::search
