// Deterministic, seedable random number generation.
//
// Every random procedure in sfsearch takes an explicit seed or an Rng&; the
// library never touches global RNG state, so identical seeds reproduce
// identical graphs and search traces on every platform (we do not rely on
// libstdc++ distribution implementations for anything that affects results).
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through splitmix64,
// which is the standard recommendation for initializing xoshiro state from a
// single 64-bit seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "base/check.hpp"

namespace sfs::rng {

/// One step of the splitmix64 sequence. Used for seed expansion and as a
/// cheap stateless hash of a 64-bit value.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of a single value (one splitmix64 step from `x`).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** 1.0 engine. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// substreams.
  void jump() noexcept;

  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper bundling an engine with the uniform-variate helpers
/// every generator and search algorithm needs. All methods are cheap; the
/// class is freely copyable (copying forks the stream deterministically at
/// the current state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) noexcept : engine_(seed) {}

  /// Raw 64 uniform bits.
  [[nodiscard]] std::uint64_t u64() noexcept { return engine_(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// True with probability p (p clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard exponential variate (rate 1) via inversion.
  [[nodiscard]] double exponential() noexcept;

  /// Geometric variate: number of failures before first success with success
  /// probability p in (0, 1]. Mean (1-p)/p.
  [[nodiscard]] std::uint64_t geometric(double p) noexcept;

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(uniform_index(items.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement
  /// (Floyd's algorithm; order is not uniform, membership is).
  [[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
      std::uint64_t n, std::uint64_t k);

  /// Deterministically derives an independent substream: the result is
  /// seeded from a hash of (current state, tag). Use to hand child tasks
  /// their own generators without correlating streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept;

  [[nodiscard]] Xoshiro256& engine() noexcept { return engine_; }

 private:
  Xoshiro256 engine_;
};

/// Derives the seed for replication `rep` of experiment `experiment_seed`
/// in a way that decorrelates nearby (seed, rep) pairs.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t experiment_seed,
                                        std::uint64_t rep) noexcept;

/// Derives the seed for logical stream `stream` of replication `rep`
/// (stream 0 = the graph, further streams = endpoints, per-policy
/// searches, ...). Every stream of every replication is a pure function of
/// (experiment_seed, stream, rep), which is what lets the parallel
/// replication engine (sim/parallel.hpp) fan replications out across
/// threads while staying bit-identical to a sequential loop — no RNG
/// state is ever shared between replications. See docs/PERF.md.
[[nodiscard]] std::uint64_t derive_stream_seed(std::uint64_t experiment_seed,
                                               std::uint64_t stream,
                                               std::uint64_t rep) noexcept;

}  // namespace sfs::rng
