#include "rng/stream_plan.hpp"

#include "base/check.hpp"
#include "rng/stream_audit.hpp"

namespace sfs::rng {

std::uint64_t StreamPlan::stream_seed(std::uint64_t index) const {
  switch (version_) {
    case StreamPlanVersion::kLegacy:
      // audited_stream_seed == derive_stream_seed + audit record; the
      // legacy tempering discipline (stream 0 untempered, callers temper
      // their tags through mix64) is the caller's contract, not ours.
      return audited_stream_seed(seed_, stream_, index);
    case StreamPlanVersion::kCounter: {
      const Philox4x64 cipher(seed_, stream_);
      const std::uint64_t derived = cipher.block_at(index)[0];
      StreamAudit& audit = StreamAudit::instance();
      if (audit.enabled()) {
        audit.record(StreamTriple{seed_, stream_, index}, derived);
      }
      return derived;
    }
  }
  SFS_CHECK(false, "StreamPlan: unknown version");
  return 0;
}

Philox4x64 StreamPlan::counter_engine() const {
  SFS_REQUIRE(version_ == StreamPlanVersion::kCounter,
              "StreamPlan::counter_engine requires the kCounter plan");
  return Philox4x64(seed_, stream_);
}

}  // namespace sfs::rng
